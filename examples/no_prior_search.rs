//! Counting with no prior knowledge of `#H`: geometric search.
//!
//! The paper parameterizes its algorithms by a lower bound `L ≤ #H`
//! (§1.1). When none is known, a geometric search over `L` starting from
//! the AGM ceiling `(2m)^ρ(H)` converges in `O(log)` rounds, with total
//! work within a constant factor of the final round (cf. Lemma 21 for
//! the clique counter).
//!
//! ```sh
//! cargo run --release --example no_prior_search
//! ```

use subgraph_streams::prelude::*;

fn main() {
    let graph = sgs_graph::gen::gnm(200, 1500, 9);
    let exact = sgs_graph::exact::triangles::count_triangles(&graph);
    println!("graph: n=200, m=1500, exact #T = {exact} (unknown to the algorithm)\n");
    let stream = InsertionStream::from_graph(&graph, 10);

    let res =
        sgs_core::fgp::search_count_insertion(&Pattern::triangle(), &stream, 0.25, 11, 500_000)
            .unwrap();

    println!("round  guess L          trials   estimate");
    let mut guess = {
        let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
        plan.rho().pow(2.0 * 1500.0)
    };
    for (i, e) in res.trace.iter().enumerate() {
        println!(
            "{:>5}  {:>12.0} {:>10} {:>10.1}",
            i + 1,
            guess,
            e.trials,
            e.estimate
        );
        guess /= 2.0;
    }
    println!(
        "\naccepted at L={:.0}: #T ≈ {:.1} (error {:.1}%), {} rounds, {} passes total",
        res.accepted_lower_bound,
        res.estimate,
        (res.estimate - exact as f64).abs() / exact as f64 * 100.0,
        res.rounds,
        res.total_passes
    );
    println!(
        "total trials {} ≤ 3x the final round's {} (geometric sum)",
        res.total_trials,
        res.trace.last().unwrap().trials
    );
}
