//! Clique counting in low-degeneracy graphs (Theorem 2).
//!
//! Real-world graphs — planar graphs, preferential-attachment networks —
//! have small degeneracy λ, and the ERS streaming algorithm counts
//! `#K_r` with `m·λ^{r-2}/#K_r`-type space in `≤ 5r` passes, beating the
//! worst-case `m^{r/2}/#K_r` bound the FGP estimator pays on the same
//! input. This example runs both on a preferential-attachment graph.
//!
//! ```sh
//! cargo run --release --example clique_degeneracy
//! ```

use subgraph_streams::prelude::*;

fn main() {
    let n = 800;
    let graph = sgs_graph::gen::barabasi_albert(n, 6, 77);
    let m = graph.num_edges();
    let lambda = sgs_graph::degeneracy::degeneracy(&graph);
    println!("preferential-attachment graph: n={n}, m={m}, degeneracy λ={lambda}\n");

    let stream = InsertionStream::from_graph(&graph, 78);

    for r in [3usize, 4] {
        let exact = sgs_graph::exact::cliques::count_cliques(&graph, r);
        println!("#K{r}: exact = {exact}");

        // ERS (Theorem 2): space ~ m·λ^{r-2}/#K_r.
        let params = ErsParams::practical(r, lambda, 0.3, (exact as f64 * 0.5).max(1.0));
        let ers = count_cliques_insertion(&params, &stream, 7, 80 + r as u64);
        println!(
            "  ERS : estimate {:>9.1}  ({} passes <= 5r={}, max level sample {} cliques)",
            ers.estimate,
            ers.report.passes,
            5 * r,
            ers.max_sample_size(),
        );

        // FGP (Theorem 1): trials ~ (2m)^{r/2}/#K_r — fine for r=3,
        // painful for r=4 on the same budget.
        let pattern = Pattern::clique(r);
        let plan = SamplerPlan::new(&pattern).unwrap();
        let trials =
            practical_trials(m, plan.rho(), 0.3, (exact as f64).max(1.0)).clamp(10_000, 250_000);
        let fgp = estimate_insertion(&pattern, &stream, trials, 90 + r as u64).unwrap();
        println!(
            "  FGP : estimate {:>9.1}  ({} passes, {} trials needed at rho={})",
            fgp.estimate,
            fgp.report.passes,
            fgp.trials,
            plan.rho(),
        );
        println!();
    }

    println!("On low-degeneracy graphs ERS wins for r >= 4: its sample sizes");
    println!("grow like m·λ^(r-2)/#K_r while FGP's trial budget grows like m^(r/2)/#K_r.");
}
