//! Estimating the transitivity of a social network from a stream.
//!
//! The paper's introduction motivates subgraph counting with the
//! transitivity / clustering coefficient of social networks:
//! `transitivity = 3·#triangles / #wedges`. Social graphs are well
//! modeled by preferential attachment (and have small degeneracy, which
//! §5 exploits). This example estimates both counts from the same
//! 3-pass run — the two estimators run as one parallel batch, sharing
//! every pass.
//!
//! ```sh
//! cargo run --release --example social_triangles
//! ```

use subgraph_streams::prelude::*;

fn main() {
    let n = 2_000;
    let graph = sgs_graph::gen::barabasi_albert(n, 5, 123);
    let m = graph.num_edges();
    let exact_t = sgs_graph::exact::triangles::count_triangles(&graph);
    let exact_w = sgs_graph::exact::stars::count_wedges(&graph);
    let exact_transitivity = 3.0 * exact_t as f64 / exact_w as f64;

    println!("synthetic social network: n={n}, m={m} (BA, k=5)");
    println!("exact: #T={exact_t}, #wedges={exact_w}, transitivity={exact_transitivity:.4}");

    let stream = InsertionStream::from_graph(&graph, 99);

    let tri = estimate_insertion(&Pattern::triangle(), &stream, 150_000, 1).unwrap();
    let wed = estimate_insertion(&Pattern::star(2), &stream, 60_000, 2).unwrap();

    let transitivity = 3.0 * tri.estimate / wed.estimate.max(1.0);
    println!(
        "streamed: #T~{:.0} ({} passes), #wedges~{:.0} ({} passes)",
        tri.estimate, tri.report.passes, wed.estimate, wed.report.passes
    );
    println!(
        "streamed transitivity ~ {transitivity:.4}  (error {:.1}%)",
        (transitivity - exact_transitivity).abs() / exact_transitivity * 100.0
    );
    println!(
        "sketch state: {} KiB vs {} KiB to store the whole graph",
        (tri.report.total_space_bytes() + wed.report.total_space_bytes()) / 1024,
        m * 8 / 1024
    );
}
