//! Uniform motif sampling (Algorithm 10): draw random *instances* of a
//! motif, not just count them.
//!
//! Beyond counting, the FGP machinery yields an exactly-uniform sampler
//! over the copies of `H` — useful when downstream analysis wants
//! representative instances (e.g. inspecting where triangles live in a
//! network). Every trial returns each copy with the same probability
//! `1/(2m)^ρ(H)`, so the first success is uniform.
//!
//! ```sh
//! cargo run --release --example uniform_motifs
//! ```

use std::collections::HashMap;
use subgraph_streams::prelude::*;

fn main() {
    // Two communities bridged by one vertex: triangles concentrate in
    // the communities; a uniform sampler must reflect their proportions.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for base in [0u32, 20] {
        // Dense community of 20 vertices (G(20, 0.4) style, deterministic).
        for a in 0..20u32 {
            for b in (a + 1)..20u32 {
                if (a * 7 + b * 13 + base) % 5 < 2 {
                    edges.push((base + a, base + b));
                }
            }
        }
    }
    edges.push((5, 25)); // bridge
    let graph = AdjListGraph::from_pairs(40, edges);
    let exact = sgs_graph::exact::triangles::count_triangles(&graph);
    let m = graph.num_edges();
    println!("two-community graph: n=40, m={m}, #T={exact}");

    let stream = InsertionStream::from_graph(&graph, 3);
    let trials = sgs_core::fgp::uniform_trials(m, &Pattern::triangle(), exact as f64)
        .unwrap()
        .max(500);

    let mut per_community = HashMap::new();
    let draws = 400;
    let mut got = 0;
    for seed in 0..draws {
        let s =
            sgs_core::fgp::sample_uniform_insertion(&Pattern::triangle(), &stream, trials, seed)
                .unwrap();
        if let Some(copy) = s.copy {
            got += 1;
            let side = if copy.vertices[0].0 < 20 { "A" } else { "B" };
            *per_community.entry(side).or_insert(0u32) += 1;
        }
    }
    println!("drew {got}/{draws} uniform triangles in 3 passes each (k={trials} trials/draw)");
    for (side, count) in &per_community {
        println!("  community {side}: {count} samples");
    }
    println!(
        "\nA uniform sampler reflects where the motifs actually are — here the\n\
         two communities' triangle counts — without ever materializing them."
    );
}
