//! Quickstart: count triangles in an edge stream with three passes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use subgraph_streams::prelude::*;

fn main() {
    // A random graph we pretend is too big to store... except we also
    // compute the exact count to show the estimate is close.
    let n = 400;
    let m = 3_000;
    let graph = sgs_graph::gen::gnm(n, m, 42);
    let exact = sgs_graph::exact::triangles::count_triangles(&graph);

    // The stream arrives in arbitrary (here: seeded-shuffled) order.
    let stream = InsertionStream::from_graph(&graph, 7);

    // Pick the trial budget from the paper's formula k ~ (2m)^rho / (eps^2 L),
    // using a rough lower bound on the triangle count.
    let pattern = Pattern::triangle();
    let plan = SamplerPlan::new(&pattern).expect("triangle has an edge cover");
    let epsilon = 0.2;
    let lower_bound = (exact as f64 * 0.5).max(1.0);
    let trials = practical_trials(m, plan.rho(), epsilon, lower_bound).min(400_000);

    println!("graph: n={n}, m={m}, exact #T = {exact}");
    println!(
        "FGP estimator: rho(T) = {}, f_T = {}, trials = {trials}",
        plan.rho(),
        plan.tuple_multiplicity()
    );

    let est = estimate_insertion(&pattern, &stream, trials, 1).expect("valid pattern");
    let rel = est.relative_error(exact);
    println!(
        "estimate = {:.1}  (hits {}/{} trials, {} passes, {} KiB sketch state)",
        est.estimate,
        est.hits,
        est.trials,
        est.report.passes,
        est.report.total_space_bytes() / 1024,
    );
    println!("relative error = {:.1}%", rel * 100.0);
    assert_eq!(est.report.passes, 3, "Theorem 17: exactly 3 passes");
}
