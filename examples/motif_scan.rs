//! Motif scanning: estimate several small-pattern counts on one graph.
//!
//! The paper's introduction cites motif detection in biological networks
//! [GK07]: over/under-represented small subgraphs hint at function. This
//! example estimates a panel of motifs — triangle, 4-cycle, 5-cycle,
//! 3-star, K4 — on a planted-motif workload, and prints the `ρ(H)` and
//! decomposition the sampler derived for each.
//!
//! ```sh
//! cargo run --release --example motif_scan
//! ```

use subgraph_streams::prelude::*;

fn main() {
    // A sparse "interaction network" with extra planted motifs.
    let base = sgs_graph::gen::gnm(120, 360, 5);
    let with_c5 = sgs_graph::gen::plant_pattern(&base, &Pattern::cycle(5), 30, 6);
    let graph = sgs_graph::gen::plant_pattern(&with_c5, &Pattern::clique(4), 40, 7);
    let m = graph.num_edges();
    println!("interaction network: n={}, m={m}\n", graph.num_vertices());
    println!(
        "{:<10} {:>6} {:>5} {:>12} {:>12} {:>8} {:>7}",
        "motif", "rho", "f_T", "exact", "estimate", "err%", "passes"
    );

    let motifs = [
        Pattern::triangle(),
        Pattern::cycle(4),
        Pattern::cycle(5),
        Pattern::star(3),
        Pattern::clique(4),
    ];
    let stream = InsertionStream::from_graph(&graph, 11);

    for (i, motif) in motifs.iter().enumerate() {
        let plan = SamplerPlan::new(motif).expect("all motifs coverable");
        let exact = sgs_graph::exact::count_pattern_auto(&graph, motif);
        // Budget: the paper's k ~ (2m)^rho/(eps^2 #H), capped for the demo.
        let trials =
            practical_trials(m, plan.rho(), 0.25, (exact as f64).max(1.0)).clamp(20_000, 600_000);
        let est = estimate_insertion(motif, &stream, trials, 100 + i as u64).unwrap();
        let err = if exact > 0 {
            est.relative_error(exact) * 100.0
        } else {
            0.0
        };
        println!(
            "{:<10} {:>6} {:>5} {:>12} {:>12.0} {:>7.1}% {:>7}",
            motif.name(),
            plan.rho().to_string(),
            plan.tuple_multiplicity(),
            exact,
            est.estimate,
            err,
            est.report.passes
        );
    }

    println!("\nNote: rarer motifs need more trials at equal error — exactly");
    println!("the (2m)^rho/#H dependence of Theorem 1.");
}
