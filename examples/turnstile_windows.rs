//! Turnstile counting: estimates that survive deletions.
//!
//! The paper motivates the turnstile model with streams "split into
//! multiple substreams that cannot be joined for privacy reasons" and
//! general insert/delete churn. Here a graph suffers heavy churn — edges
//! appear, disappear, reappear — and the 3-pass turnstile estimator
//! (Theorem 1, built on ℓ₀-samplers) still tracks the *final* graph,
//! while a naive insertion-only run over the same update sequence would
//! be meaningless.
//!
//! ```sh
//! cargo run --release --example turnstile_windows
//! ```

use subgraph_streams::prelude::*;

fn main() {
    let n = 150;
    let m = 900;
    let graph = sgs_graph::gen::gnm(n, m, 21);
    let exact = sgs_graph::exact::triangles::count_triangles(&graph);

    for churn in [0.0, 1.0, 3.0] {
        let stream = TurnstileStream::from_graph_with_churn(&graph, churn, 22);
        let est = estimate_turnstile(&Pattern::triangle(), &stream, 25_000, 23).unwrap();
        println!(
            "churn x{churn:>3}: stream has {:>5} updates ({:>4.1}% deletions) \
             -> estimate {:>7.1} vs exact {exact} ({} passes, {} KiB)",
            stream.len(),
            stream.deletion_fraction() * 100.0,
            est.estimate,
            est.report.passes,
            est.report.total_space_bytes() / 1024,
        );
        assert!(est.report.passes <= 3);
    }

    println!(
        "\nAll three runs produce the *identical* estimate: every sketch \
         the executor keeps\n(l0-samplers, degree counters, adjacency \
         flags) is a linear function of the\nupdate vector, so churn \
         cancels exactly and only the final graph matters (Lemma 7)."
    );
}
