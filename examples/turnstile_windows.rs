//! Sliding windows over a churning edge stream, rolled with persisted
//! ℓ₀-sketches.
//!
//! The paper motivates the turnstile model with streams "split into
//! multiple substreams that cannot be joined for privacy reasons" and
//! general insert/delete churn. This demo adds the durability angle:
//! every sketch the turnstile executor keeps is a **linear** function of
//! the update vector, so a *persisted* prefix sketch is subtractable —
//! restore the snapshot taken at the window start, `negate()` it, and
//! `merge()` it into the current sketch, and the prefix cancels exactly.
//! No rescan of the stream, no per-window state kept while streaming:
//! one running sketch plus one serialized snapshot per boundary
//! (the same framed, checksummed records the checkpoint WAL uses).
//!
//! The demo maintains a bank of edge-domain ℓ₀-samplers over a timeline
//! of churn epochs, shelves a snapshot at every boundary, then answers
//! "which edges changed during window [s, e)?" by sketch subtraction —
//! and proves each rolled window agrees sample-for-sample with a sketch
//! built fresh from only that window's updates.
//!
//! ```sh
//! cargo run --release --example turnstile_windows
//! ```

use sgs_prng::FastRng;
use sgs_stream::l0::L0Sampler;
use sgs_stream::EdgeUpdate;
use std::collections::BTreeSet;
use subgraph_streams::prelude::*;

const N: usize = 60;
const EPOCHS: usize = 12;
const WINDOW: usize = 4;
const REPS: usize = 6;

fn main() {
    // ----- A churning timeline: each epoch deletes ~1/3 of the live
    // edges and inserts a batch of fresh ones. ------------------------
    let mut rng = FastRng::seed_from_u64(21);
    let mut present: BTreeSet<u64> = BTreeSet::new();
    let mut epochs: Vec<Vec<EdgeUpdate>> = Vec::new();
    // Exact edge set at each epoch boundary, for verification.
    let mut boundary_sets: Vec<BTreeSet<u64>> = vec![present.clone()];
    for _ in 0..EPOCHS {
        let mut ups = Vec::new();
        let victims: Vec<u64> = present
            .iter()
            .copied()
            .filter(|_| rng.next_u64().is_multiple_of(3))
            .collect();
        for k in victims {
            present.remove(&k);
            ups.push(EdgeUpdate::delete(Edge::from_key(k)));
        }
        for _ in 0..40 {
            let a = (rng.next_u64() % N as u64) as u32;
            let b = (rng.next_u64() % N as u64) as u32;
            if a == b {
                continue;
            }
            let e = Edge::new(VertexId(a.min(b)), VertexId(a.max(b)));
            if present.insert(e.key()) {
                ups.push(EdgeUpdate::insert(e));
            }
        }
        epochs.push(ups);
        boundary_sets.push(present.clone());
    }

    // ----- Stream once, shelving a serialized snapshot of the sketch
    // bank at every epoch boundary. ------------------------------------
    let mut bank: Vec<L0Sampler> = (0..REPS)
        .map(|i| L0Sampler::for_edge_domain(N, 100 + i as u64))
        .collect();
    let mut shelf: Vec<Vec<Vec<u8>>> = vec![bank.iter().map(|s| s.to_persist_bytes()).collect()];
    for ep in &epochs {
        for u in ep {
            for s in &mut bank {
                s.update(u.edge.key(), i64::from(u.delta));
            }
        }
        shelf.push(bank.iter().map(|s| s.to_persist_bytes()).collect());
    }
    let snapshot_bytes: usize = shelf[EPOCHS].iter().map(Vec::len).sum();
    println!(
        "{EPOCHS} epochs streamed; one {REPS}-sampler snapshot per boundary \
         ({snapshot_bytes} bytes each)\n"
    );

    // ----- Roll sliding windows by subtracting persisted prefixes. ----
    for start in (0..=EPOCHS - WINDOW).step_by(2) {
        let end = start + WINDOW;
        // Restore the window-end snapshot, then cancel everything before
        // the window: restore the start snapshot, negate, merge.
        let window: Vec<L0Sampler> = (0..REPS)
            .map(|i| {
                let mut w = L0Sampler::from_persist_bytes(&shelf[end][i]).unwrap();
                let mut s0 = L0Sampler::from_persist_bytes(&shelf[start][i]).unwrap();
                s0.negate();
                w.merge(&s0);
                w
            })
            .collect();
        // The ground truth the subtraction must reproduce: sketches fed
        // *only* the window's updates.
        let direct: Vec<L0Sampler> = (0..REPS)
            .map(|i| {
                let mut d = L0Sampler::for_edge_domain(N, 100 + i as u64);
                for ep in &epochs[start..end] {
                    for u in ep {
                        d.update(u.edge.key(), i64::from(u.delta));
                    }
                }
                d
            })
            .collect();
        for (w, d) in window.iter().zip(&direct) {
            assert_eq!(
                w.sample(),
                d.sample(),
                "sketch subtraction must cancel the prefix exactly"
            );
        }
        // The window sketch's support is the symmetric difference of the
        // boundary graphs: every sampled edge genuinely changed.
        let changed: BTreeSet<u64> = boundary_sets[start]
            .symmetric_difference(&boundary_sets[end])
            .copied()
            .collect();
        let mut sampled: BTreeSet<u64> = BTreeSet::new();
        for w in &window {
            if let Some(k) = w.sample() {
                assert!(changed.contains(&k), "sampled an edge that did not change");
                sampled.insert(k);
            }
        }
        let shown: Vec<String> = sampled
            .iter()
            .map(|&k| {
                let e = Edge::from_key(k);
                format!("{}–{}", e.u(), e.v())
            })
            .collect();
        println!(
            "window [{start:>2}, {end:>2}): {:>3} edges changed; \
             ℓ₀-samples drew {}",
            changed.len(),
            shown.join(", "),
        );
    }

    // ----- And the counting side still works on the full turnstile
    // stream: the estimator tracks the final graph through all churn. --
    let all: Vec<EdgeUpdate> = epochs.concat();
    let deletions = all.iter().filter(|u| !u.is_insert()).count();
    let stream = TurnstileStream::from_updates(N, all);
    let est = estimate_turnstile(&Pattern::triangle(), &stream, 15_000, 23).unwrap();
    let pairs: Vec<(u32, u32)> = present
        .iter()
        .map(|&k| {
            let e = Edge::from_key(k);
            (e.u().0, e.v().0)
        })
        .collect();
    let final_graph = AdjListGraph::from_pairs(N, pairs);
    let exact = sgs_graph::exact::triangles::count_triangles(&final_graph);
    println!(
        "\nfull stream: {} updates ({deletions} deletions) -> triangle \
         estimate {:.1} vs exact {exact} ({} passes)",
        stream.len(),
        est.estimate,
        est.report.passes,
    );
    assert!(est.report.passes <= 3);
}
