//! Exact-counter validation on the Petersen graph, whose small-subgraph
//! census is known in closed form — a strong cross-check that the exact
//! ground truth used by every experiment is itself correct.

use sgs_graph::{exact, gen, zoo, Pattern, StaticGraph};

#[test]
fn petersen_basic_facts() {
    let g = gen::petersen();
    assert_eq!(g.num_vertices(), 10);
    assert_eq!(g.num_edges(), 15);
    for v in g.vertices() {
        assert_eq!(g.degree(v), 3, "Petersen is cubic");
    }
    assert_eq!(sgs_graph::degeneracy::degeneracy(&g), 3);
}

#[test]
fn petersen_cycle_census() {
    let g = gen::petersen();
    assert_eq!(exact::cycles::count_cycles(&g, 3), 0, "girth 5");
    assert_eq!(exact::cycles::count_cycles(&g, 4), 0, "girth 5");
    assert_eq!(exact::cycles::count_cycles(&g, 5), 12);
    assert_eq!(exact::cycles::count_cycles(&g, 6), 10);
    assert_eq!(exact::cycles::count_cycles(&g, 8), 15);
    // No Hamiltonian cycle, famously.
    assert_eq!(exact::cycles::count_cycles(&g, 10), 0);
}

#[test]
fn petersen_star_and_path_census() {
    let g = gen::petersen();
    // 3-regular: wedges = 10 * C(3,2) = 30; claws = 10 * C(3,3) = 10.
    assert_eq!(exact::stars::count_wedges(&g), 30);
    assert_eq!(exact::stars::count_stars(&g, 3), 10);
    // P2 copies = wedges; P3 = via generic counter vs formula:
    // paths of length 3 = sum over edges (d(u)-1)(d(v)-1) - 3*#T = 15*4 = 60.
    assert_eq!(exact::generic::count_pattern(&g, &Pattern::path(3)), 60);
}

#[test]
fn petersen_zoo_patterns_absent() {
    let g = gen::petersen();
    // Everything containing a triangle or C4 is absent.
    for p in [
        zoo::paw(),
        zoo::diamond(),
        zoo::bull(),
        zoo::bowtie(),
        zoo::house(),
    ] {
        assert_eq!(
            exact::generic::count_pattern(&g, &p),
            0,
            "{p:?} requires a 3- or 4-cycle"
        );
    }
    assert_eq!(exact::cliques::count_cliques(&g, 4), 0);
}

#[test]
fn fgp_estimates_match_petersen_census() {
    use sgs_stream::InsertionStream;
    let g = gen::petersen();
    let stream = InsertionStream::from_graph(&g, 1);
    // No triangles: estimator must report 0.
    let t = sgs_core::fgp::estimate_insertion(&Pattern::triangle(), &stream, 3_000, 2).unwrap();
    assert_eq!(t.hits, 0);
    // Twelve 5-cycles: (2m)^2.5 = 30^2.5 ~ 4930, hit rate 12/4930.
    let c5 = sgs_core::fgp::estimate_insertion(&Pattern::cycle(5), &stream, 60_000, 3).unwrap();
    let rel = c5.relative_error(12);
    assert!(rel < 0.3, "C5 estimate {} vs 12", c5.estimate);
}
