//! Distribution-equivalence suite for the skip-ahead reservoir rework.
//!
//! The skip-ahead sampler (`ReservoirMode::Skip`) consumes a different
//! RNG sequence than the per-offer oracle (`ReservoirMode::Offer`), so —
//! like the PR-2 ℓ₀ base-hash rework — correctness is re-established
//! *distributionally*, not by byte-identity:
//!
//! 1. **Winner uniformity** — chi-square tests on the winning index of
//!    skip-mode reservoirs, on direct banks and on router-fed
//!    (predicate-filtered) banks driven through the full insertion
//!    executors at shard counts 1, 2 and 4.
//! 2. **Acceptance-count distribution** — the number of acceptances over
//!    `m` offers matches the per-offer oracle's empirical distribution
//!    (mean and spread), not just its mean.
//! 3. **`seen()` accounting** — exactly identical between the two modes
//!    at every stream prefix, including duplicate-heavy and
//!    single-update streams, through the router's predicate-filtered
//!    delivery.
//!
//! Byte-identity *within* a mode (scalar vs blocked vs sharded) is pinned
//! in `tests/block_equivalence.rs` / `tests/sharded_equivalence.rs` and
//! the `sgs_query::sharded` unit tests.

use sgs_graph::{Edge, StaticGraph, VertexId};
use sgs_query::exec::{answer_insertion_batch_with_opts, insertion_pass_reservoir_draws, PassOpts};
use sgs_query::sharded::answer_insertion_batch_sharded_with_opts;
use sgs_query::{Answer, Query, QueryRouter, ReservoirMode, RouterArena, RouterMode};
use sgs_stream::hash::split_seed;
use sgs_stream::reservoir::ReservoirBank;
use sgs_stream::{EdgeUpdate, InsertionStream, ShardedFeed};

/// Chi-square statistic of observed counts against a uniform expectation.
fn chi_square(counts: &[u64], total: u64) -> f64 {
    let expect = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expect;
            d * d / expect
        })
        .sum()
}

/// Loose 99.9th-percentile bound for a chi-square variable with `df`
/// degrees of freedom (Wilson–Hilferty cube approximation plus slack) —
/// enough to make the gates fail loudly on a real bias without flaking.
fn chi2_bound(df: usize) -> f64 {
    let df = df as f64;
    let z = 3.1; // ~99.9th percentile of N(0,1)
    let cube = 1.0 - 2.0 / (9.0 * df) + z * (2.0 / (9.0 * df)).sqrt();
    df * cube.powi(3) * 1.15
}

#[test]
fn direct_bank_skip_winners_uniform_chi_square() {
    // One skip bank of 4000 lanes, every lane offered the same 25 items:
    // winners must be uniform over the items.
    let n_items = 25usize;
    let lanes = 4000usize;
    let items: Vec<u32> = (0..n_items as u32).collect();
    let mut bank: ReservoirBank<u32> = ReservoirBank::with_mode(lanes, 0xe41, ReservoirMode::Skip);
    bank.offer_batch(&items);
    let mut wins = vec![0u64; n_items];
    for s in bank.samples_iter() {
        wins[s.unwrap() as usize] += 1;
    }
    let chi2 = chi_square(&wins, lanes as u64);
    let bound = chi2_bound(n_items - 1);
    assert!(chi2 < bound, "chi2 {chi2:.1} >= bound {bound:.1}: {wins:?}");
}

#[test]
fn acceptance_count_distribution_matches_oracle_mean_and_spread() {
    // Acceptances over m offers: compare the skip bank's empirical mean
    // AND standard deviation against the per-offer oracle's (same law:
    // sum of independent Bernoulli(1/t)). Acceptances are counted from
    // the draw counter (skip mode: draws == acceptances by construction;
    // offer mode: re-derived per lane by replaying the per-offer coins).
    let m = 3_000u32;
    let lanes = 600usize;
    let items: Vec<u32> = (0..m).collect();

    // Skip: per-lane acceptance counts via per-lane banks (draws of a
    // 1-lane bank == that lane's acceptances).
    let mut skip_counts = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        let mut b: ReservoirBank<u32> =
            ReservoirBank::from_seeds([split_seed(0xe42, lane as u64)], ReservoirMode::Skip);
        b.offer_batch(&items);
        skip_counts.push(b.rng_draws() as f64);
    }
    // Oracle: count acceptances by watching the kept item change (items
    // are distinct, so every acceptance changes it).
    let mut offer_counts = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        let mut r = sgs_stream::reservoir::ReservoirSampler::with_mode(
            split_seed(0xe42, lane as u64),
            ReservoirMode::Offer,
        );
        let mut n = 0u64;
        let mut last = None;
        for &it in &items {
            r.offer(it);
            if r.sample() != last {
                n += 1;
                last = r.sample();
            }
        }
        offer_counts.push(n as f64);
    }
    let stats = |xs: &[f64]| {
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        (mean, var.sqrt())
    };
    let (sm, ss) = stats(&skip_counts);
    let (om, os) = stats(&offer_counts);
    let h_m: f64 = (1..=m as u64).map(|i| 1.0 / i as f64).sum();
    // Mean of 600 lanes has std ~ sqrt(H_m)/sqrt(600) ≈ 0.12; 5σ gates.
    assert!((sm - h_m).abs() < 0.6, "skip mean {sm:.2} vs H_m {h_m:.2}");
    assert!((om - h_m).abs() < 0.6, "offer mean {om:.2} vs H_m {h_m:.2}");
    assert!((sm - om).abs() < 0.8, "means diverged: {sm:.2} vs {om:.2}");
    // Spread: std ≈ sqrt(H_m - pi^2/6) ≈ 2.6; allow ±25%.
    assert!(
        (ss / os - 1.0).abs() < 0.25,
        "stds diverged: {ss:.2} vs {os:.2}"
    );
}

/// Build a router over RandomNeighbor queries and drive both reservoir
/// modes through the *same* predicate-filtered delivery, checking
/// `seen()` equality at every prefix.
#[test]
fn router_fed_seen_accounting_identical_at_every_prefix() {
    // Duplicate-heavy adversarial order: every edge delivered several
    // times, plus vertices with no registered queries (the predicate
    // filter), plus a single-update tail vertex.
    let batch: Vec<Query> = (0..40u32)
        .map(|i| Query::RandomNeighbor(VertexId(i % 7)))
        .chain([Query::RandomNeighbor(VertexId(99))])
        .collect();
    let updates: Vec<EdgeUpdate> = (0..300u32)
        .map(|i| EdgeUpdate::insert(Edge::from((i % 9, 9 + i % 4))))
        .chain([EdgeUpdate::insert(Edge::from((99, 100)))])
        .collect();
    let mut router_a = QueryRouter::build(&batch, RouterMode::Insertion);
    let mut router_b = QueryRouter::build(&batch, RouterMode::Insertion);
    let seeds: Vec<u64> = router_a
        .neighbor_slots()
        .iter()
        .map(|&s| split_seed(0xe43, s as u64))
        .collect();
    let mut offer: ReservoirBank<Edge> =
        ReservoirBank::from_seeds(seeds.iter().copied(), ReservoirMode::Offer);
    let mut skip: ReservoirBank<Edge> =
        ReservoirBank::from_seeds(seeds.iter().copied(), ReservoirMode::Skip);
    for (i, &u) in updates.iter().enumerate() {
        let edge = u.edge;
        router_a.feed(u, |s, e| offer.offer_range(s as usize, e as usize, edge));
        router_b.feed(u, |s, e| skip.offer_range(s as usize, e as usize, edge));
        assert_eq!(offer.seen_counts(), skip.seen_counts(), "prefix {i}");
    }
    // The single-update vertex: exactly one offer, kept in both modes.
    let last = offer.len() - 1;
    assert_eq!(offer.seen(last), 1);
    assert_eq!(offer.sample(last), skip.sample(last));
    // Skip drew far fewer coins on the duplicate-heavy lanes.
    assert!(skip.rng_draws() < offer.rng_draws());
}

/// End-to-end winner uniformity through the full (sharded) insertion
/// executors: a RandomNeighbor answer on a star center must be uniform
/// over the petals in skip mode at shard counts 1, 2 and 4, and the
/// sharded answers must stay byte-identical to the single-stream pass.
#[test]
fn router_fed_skip_winners_uniform_at_shards_1_2_4() {
    let petals = 12u32;
    let g = sgs_graph::gen::star_graph(petals as usize);
    let ins = InsertionStream::from_graph(&g, 21);
    let batch = vec![
        Query::RandomNeighbor(VertexId(0)),
        Query::Degree(VertexId(0)),
    ];
    let trials = 4000u64;
    let opts = PassOpts::default();
    for shards in [1usize, 2, 4] {
        let feed = ShardedFeed::partition(&ins, shards);
        let mut arena = RouterArena::new();
        let mut wins = vec![0u64; petals as usize];
        for pass_seed in 0..trials {
            let (a, _) = answer_insertion_batch_sharded_with_opts(
                &batch, &feed, pass_seed, &mut arena, opts,
            );
            let (b, _) = answer_insertion_batch_with_opts(&batch, &ins, pass_seed, opts);
            assert_eq!(a, b, "shards {shards}, pass seed {pass_seed}");
            let Answer::Neighbor(Some(v)) = a[0] else {
                panic!("star center must always have a neighbor");
            };
            wins[v.0 as usize - 1] += 1;
            assert_eq!(a[1], Answer::Degree(petals as usize));
        }
        let chi2 = chi_square(&wins, trials);
        let bound = chi2_bound(petals as usize - 1);
        assert!(
            chi2 < bound,
            "shards {shards}: chi2 {chi2:.1} >= {bound:.1}: {wins:?}"
        );
    }
}

#[test]
fn skip_mode_sampled_neighbors_match_offer_mode_distribution() {
    // Same executor pass, general graph: per-vertex winner histograms of
    // the two modes must agree (two-sample chi-square against the
    // pooled expectation, all RandomNeighbor slots of a mixed batch).
    let g = sgs_graph::gen::gnm(16, 48, 31);
    let ins = InsertionStream::from_graph(&g, 32);
    let vs: Vec<VertexId> = (0..6u32).map(VertexId).collect();
    let batch: Vec<Query> = vs.iter().map(|&v| Query::RandomNeighbor(v)).collect();
    let trials = 2500u64;
    let mut hist: std::collections::HashMap<(usize, u32, ReservoirMode), u64> =
        std::collections::HashMap::new();
    for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
        let opts = PassOpts::with_reservoir(mode);
        for pass_seed in 0..trials {
            let (a, _) = answer_insertion_batch_with_opts(&batch, &ins, pass_seed, opts);
            for (qi, ans) in a.iter().enumerate() {
                if let Answer::Neighbor(Some(u)) = ans {
                    *hist.entry((qi, u.0, mode)).or_insert(0) += 1;
                }
            }
        }
    }
    for (qi, &v) in vs.iter().enumerate() {
        let deg = g.degree(v);
        if deg == 0 {
            continue;
        }
        // Two-sample chi-square over this vertex's neighbor histogram.
        let mut chi2 = 0.0;
        let mut cells = 0usize;
        for u in g.vertices() {
            if !g.has_edge(v, u) {
                continue;
            }
            let a = *hist.get(&(qi, u.0, ReservoirMode::Offer)).unwrap_or(&0) as f64;
            let b = *hist.get(&(qi, u.0, ReservoirMode::Skip)).unwrap_or(&0) as f64;
            let e = (a + b) / 2.0;
            assert!(e > 0.0, "neighbor {u:?} of {v:?} never sampled");
            chi2 += (a - e).powi(2) / e + (b - e).powi(2) / e;
            cells += 1;
        }
        let bound = chi2_bound(cells.max(2) - 1);
        assert!(chi2 < bound, "vertex {v:?}: chi2 {chi2:.1} >= {bound:.1}");
    }
}

#[test]
fn skip_draw_count_logarithmic_through_the_executor() {
    // Counted (not estimated) RNG draws of the full relaxed-f3 pass:
    // per-offer must be exactly the total number of offers; skip must be
    // within a small factor of k·H(offers per sampler).
    let g = sgs_graph::gen::gnm(30, 400, 41);
    let ins = InsertionStream::from_graph(&g, 42);
    let k = 64usize;
    let batch: Vec<Query> = (0..k as u32)
        .map(|i| Query::RandomNeighbor(VertexId(i % 30)))
        .collect();
    let offer_draws = insertion_pass_reservoir_draws(
        &batch,
        &ins,
        7,
        PassOpts::with_reservoir(ReservoirMode::Offer),
    );
    let skip_draws = insertion_pass_reservoir_draws(
        &batch,
        &ins,
        7,
        PassOpts::with_reservoir(ReservoirMode::Skip),
    );
    // Total offers = sum over queried vertices of degree (each incident
    // update offers once per registered sampler).
    let offers: u64 = (0..k as u32)
        .map(|i| g.degree(VertexId(i % 30)) as u64)
        .sum();
    assert_eq!(offer_draws, offers, "oracle draws == total offers");
    // Expected skip draws: sum of H_deg over samplers; gate at 3×.
    let expect: f64 = (0..k as u32)
        .map(|i| {
            let d = g.degree(VertexId(i % 30)) as u64;
            (1..=d).map(|t| 1.0 / t as f64).sum::<f64>()
        })
        .sum();
    assert!(
        (skip_draws as f64) < 3.0 * expect + k as f64,
        "skip draws {skip_draws} vs expected ~{expect:.0}"
    );
    assert!(
        skip_draws * 4 < offer_draws,
        "skip draws should be far fewer"
    );
}
