//! Protocol-level integration tests for `sgs serve` — the real binary
//! behind a real TCP socket.
//!
//! Pinned guarantees:
//! * every COUNT a live node answers is **byte-identical** (`bits=` hex
//!   of the exact f64) to batch `sgs count --updates` over the same
//!   ingested prefix — both models, shards 1/2/4, offer+skip reservoirs;
//! * concurrent client sessions interleave ingest and queries without
//!   torn replies or lost updates;
//! * kill -9 mid-ingest loses only the unflushed tail: a restarted node
//!   reports the durable prefix, resumes ingest at the echoed position,
//!   and answers byte-identically to a batch run over the same updates.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_sgs");

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sgs_serve_protocol_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic strict-turnstile script: distinct inserts, and (when
/// `churn`) every third insert later retracted.
fn script(n: u32, len: usize, churn: bool) -> Vec<(u32, u32, i8)> {
    let mut updates = Vec::new();
    let mut live: Vec<(u32, u32)> = Vec::new();
    let mut x = 77u64;
    while updates.len() < len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (x >> 33) as u32 % n;
        let v = (x >> 17) as u32 % n;
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if churn && updates.len() % 3 == 2 && !live.is_empty() {
            let victim = live.remove((x >> 7) as usize % live.len());
            updates.push((victim.0, victim.1, -1));
            continue;
        }
        if live.contains(&key) {
            continue;
        }
        live.push(key);
        updates.push((key.0, key.1, 1));
    }
    updates
}

fn write_updates_file(path: &Path, updates: &[(u32, u32, i8)]) {
    let mut text = String::new();
    for &(u, v, d) in updates {
        text.push_str(&format!("{u} {v} {d:+}\n"));
    }
    std::fs::write(path, text).unwrap();
}

struct ServeProc {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    addr: String,
}

/// Spawn `sgs serve DIR <extra...>` and wait for its LISTENING line.
fn spawn_serve(dir: &Path, extra: &[&str]) -> ServeProc {
    let mut child = Command::new(BIN)
        .arg("serve")
        .arg(dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sgs serve");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let read = stdout.read_line(&mut line).expect("read serve stdout");
        assert_ne!(read, 0, "serve exited before LISTENING");
        if let Some(rest) = line.trim().strip_prefix("LISTENING ") {
            break rest.to_string();
        }
    };
    ServeProc {
        child,
        stdout,
        addr,
    }
}

struct Session {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Session {
    fn connect(addr: &str) -> Session {
        let writer = TcpStream::connect(addr).expect("connect to serve node");
        let reader = BufReader::new(writer.try_clone().unwrap());
        Session { reader, writer }
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }
}

fn bits_of(reply: &str) -> u64 {
    let hex = reply
        .split("bits=")
        .nth(1)
        .unwrap_or_else(|| panic!("no bits field in: {reply}"))
        .split_whitespace()
        .next()
        .unwrap();
    u64::from_str_radix(hex, 16).unwrap()
}

/// Run batch `sgs count --updates FILE --bits <extra...>` and pull the
/// estimate's bit pattern from the output.
fn batch_bits(updates_file: &Path, extra: &[&str]) -> u64 {
    let out = Command::new(BIN)
        .arg("count")
        .arg("--updates")
        .arg(updates_file)
        .arg("--bits")
        .args(extra)
        .output()
        .expect("run sgs count");
    assert!(
        out.status.success(),
        "sgs count failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    bits_of(std::str::from_utf8(&out.stdout).unwrap())
}

fn ingest_all(session: &mut Session, updates: &[(u32, u32, i8)], expect_from: usize) {
    for (k, &(u, v, d)) in updates.iter().enumerate() {
        let reply = session.send(&format!("INGEST {u} {v} {d:+}"));
        assert_eq!(
            reply,
            format!("OK {}", expect_from + k),
            "position echo for update {}",
            expect_from + k
        );
    }
}

fn wait_shutdown(mut proc: ServeProc) {
    let mut rest = String::new();
    proc.stdout.read_to_string(&mut rest).unwrap();
    let status = proc.child.wait().unwrap();
    assert!(status.success(), "serve exited nonzero; stdout: {rest}");
    assert!(rest.contains("shutdown:"), "no shutdown summary: {rest}");
}

#[test]
fn live_counts_match_batch_cli_across_shards_models_reservoirs() {
    let updates = script(12, 40, false);
    for shards in [1usize, 2, 4] {
        let dir = tmp(&format!("match_{shards}"));
        let updates_file = dir.join("updates.txt");
        write_updates_file(&updates_file, &updates);
        let node_dir = dir.join("node");
        let shards_s = shards.to_string();
        let proc = spawn_serve(
            &node_dir,
            &["--shards", &shards_s, "--wal-block", "8", "--seed", "1"],
        );
        let mut s = Session::connect(&proc.addr);
        ingest_all(&mut s, &updates, 0);

        // Insertion model, both reservoir acceptance schemes.
        for reservoir in ["skip", "offer"] {
            let live = bits_of(&s.send(&format!(
                "COUNT triangle trials=60 seed=9 reservoir={reservoir}"
            )));
            let batch = batch_bits(
                &updates_file,
                &[
                    "--pattern",
                    "triangle",
                    "--trials",
                    "60",
                    "--seed",
                    "9",
                    "--shards",
                    &shards_s,
                    "--reservoir",
                    reservoir,
                ],
            );
            assert_eq!(
                live, batch,
                "insertion/{reservoir} at {shards} shard(s) diverged from batch"
            );
        }

        // Turnstile model over the same prefix.
        let live = bits_of(&s.send("COUNT triangle trials=40 seed=5 turnstile"));
        let batch = batch_bits(
            &updates_file,
            &[
                "--pattern",
                "triangle",
                "--trials",
                "40",
                "--seed",
                "5",
                "--shards",
                &shards_s,
                "--turnstile",
            ],
        );
        assert_eq!(live, batch, "turnstile at {shards} shard(s) diverged");

        assert_eq!(s.send("QUIT"), "BYE");
        wait_shutdown(proc);
    }
}

#[test]
fn concurrent_clients_interleave_ingest_and_queries() {
    let dir = tmp("concurrent");
    let node_dir = dir.join("node");
    let updates = script(14, 60, false);
    let updates_file = dir.join("updates.txt");
    write_updates_file(&updates_file, &updates);
    let proc = spawn_serve(&node_dir, &["--wal-block", "8", "--seed", "1"]);

    // One session ingests the first half so queries have substance.
    let mut feeder = Session::connect(&proc.addr);
    ingest_all(&mut feeder, &updates[..30], 0);

    // Concurrent sessions: more ingest interleaved with COUNTs and STATs
    // from other clients. Every reply must be well-formed for ITS request
    // (no torn or misrouted replies).
    let addr = proc.addr.clone();
    let tail: Vec<(u32, u32, i8)> = updates[30..].to_vec();
    let ingester = std::thread::spawn(move || {
        let mut s = Session::connect(&addr);
        ingest_all(&mut s, &tail, 30);
    });
    let queriers: Vec<_> = (0..3u64)
        .map(|c| {
            let addr = proc.addr.clone();
            std::thread::spawn(move || {
                let mut s = Session::connect(&addr);
                for round in 0..4u64 {
                    let reply = s.send(&format!(
                        "COUNT triangle trials=30 seed={}",
                        50 + 10 * c + round
                    ));
                    assert!(
                        reply.starts_with("OK #triangle ≈ "),
                        "client {c} round {round}: {reply}"
                    );
                    assert!(reply.contains("bits="), "{reply}");
                    let stat = s.send("STAT");
                    assert!(stat.starts_with("OK updates="), "{stat}");
                }
            })
        })
        .collect();
    ingester.join().unwrap();
    for q in queriers {
        q.join().unwrap();
    }

    // With all 60 updates in, a COUNT matches the batch run exactly.
    let stat = feeder.send("STAT");
    assert!(stat.contains("edges=60"), "all updates must land: {stat}");
    let live = bits_of(&feeder.send("COUNT triangle trials=50 seed=7"));
    let batch = batch_bits(
        &updates_file,
        &["--pattern", "triangle", "--trials", "50", "--seed", "7"],
    );
    assert_eq!(live, batch);
    assert_eq!(feeder.send("QUIT"), "BYE");
    wait_shutdown(proc);
}

#[test]
fn kill_nine_mid_ingest_then_restart_resumes_byte_identical() {
    let dir = tmp("kill9");
    let node_dir = dir.join("node");
    // A churny strict-turnstile script: deletions force the turnstile
    // model, the interesting recovery case.
    let updates = script(10, 41, true);
    let args = ["--wal-block", "4", "--snapshot-every", "2", "--seed", "1"];

    let mut proc = spawn_serve(&node_dir, &args);
    let mut s = Session::connect(&proc.addr);
    ingest_all(&mut s, &updates[..37], 0);
    // kill -9 mid-ingest: 36 updates are in sealed WAL blocks (wal-block
    // 4), the 37th is pending and MUST be lost.
    proc.child.kill().unwrap();
    proc.child.wait().unwrap();

    // Restart over the same directory: the persisted config wins and the
    // node reports the durable prefix.
    let proc = spawn_serve(&node_dir, &[]);
    let mut s = Session::connect(&proc.addr);
    let stat = s.send("STAT");
    assert!(
        stat.contains("updates=36") && stat.contains("pending=0"),
        "durable prefix after kill -9: {stat}"
    );
    // The ring cursor checkpoint survived: produced == consumed.
    assert!(stat.contains("ring_produced=9"), "{stat}");
    assert!(stat.contains("ring_consumed=9"), "{stat}");

    // A COUNT over the recovered 36-update prefix is byte-identical to a
    // batch run over that exact prefix.
    let prefix_file = dir.join("prefix.txt");
    write_updates_file(&prefix_file, &updates[..36]);
    let live = bits_of(&s.send("COUNT triangle trials=40 seed=3 turnstile"));
    assert_eq!(
        live,
        batch_bits(
            &prefix_file,
            &[
                "--pattern",
                "triangle",
                "--trials",
                "40",
                "--seed",
                "3",
                "--turnstile"
            ],
        ),
        "recovered prefix diverged from batch"
    );

    // Ingest resumes at the echoed position (36), replaying the lost
    // tail and the rest of the script.
    ingest_all(&mut s, &updates[36..], 36);
    let full_file = dir.join("full.txt");
    write_updates_file(&full_file, &updates);
    let live = bits_of(&s.send("COUNT triangle trials=40 seed=3 turnstile"));
    assert_eq!(
        live,
        batch_bits(
            &full_file,
            &[
                "--pattern",
                "triangle",
                "--trials",
                "40",
                "--seed",
                "3",
                "--turnstile"
            ],
        ),
        "post-recovery stream diverged from batch"
    );

    // Graceful shutdown this time; a second restart then serves the
    // sealed log and still answers identically.
    assert_eq!(s.send("QUIT"), "BYE");
    wait_shutdown(proc);
    let proc = spawn_serve(&node_dir, &[]);
    let mut s = Session::connect(&proc.addr);
    let live = bits_of(&s.send("COUNT triangle trials=40 seed=3 turnstile"));
    assert_eq!(
        live,
        batch_bits(
            &full_file,
            &[
                "--pattern",
                "triangle",
                "--trials",
                "40",
                "--seed",
                "3",
                "--turnstile"
            ],
        ),
        "answers must survive a graceful restart cycle"
    );
    assert_eq!(s.send("QUIT"), "BYE");
    wait_shutdown(proc);
}
