//! Arbitrary-order model: guarantees must hold for *every* stream order,
//! not just random ones. These tests feed adversarially structured
//! orders — sorted, reverse-sorted, degree-clustered, motif-batched —
//! and check the estimator stays unbiased.

use sgs_graph::StaticGraph;
use subgraph_streams::prelude::*;

fn orders(g: &AdjListGraph) -> Vec<(&'static str, InsertionStream)> {
    let n = g.num_vertices();
    let mut sorted = g.edge_vec();
    sorted.sort_unstable();
    let mut reversed = sorted.clone();
    reversed.reverse();
    // Cluster by lower endpoint degree (low-degree edges first): an
    // adversary that front-loads the sparse part of the graph.
    let mut by_degree = sorted.clone();
    by_degree.sort_by_key(|e| g.degree(e.u()).min(g.degree(e.v())));
    // Interleave first and second half.
    let mut interleaved = Vec::with_capacity(sorted.len());
    let half = sorted.len() / 2;
    for i in 0..half {
        interleaved.push(sorted[i]);
        interleaved.push(sorted[half + i]);
    }
    interleaved.extend_from_slice(&sorted[2 * half..]);

    vec![
        ("sorted", InsertionStream::from_edge_order(n, sorted)),
        ("reversed", InsertionStream::from_edge_order(n, reversed)),
        ("by-degree", InsertionStream::from_edge_order(n, by_degree)),
        (
            "interleaved",
            InsertionStream::from_edge_order(n, interleaved),
        ),
    ]
}

#[test]
fn triangle_estimates_order_independent() {
    let g = sgs_graph::gen::gnm(40, 240, 1);
    let exact = sgs_graph::exact::triangles::count_triangles(&g);
    assert!(exact > 50);
    for (name, stream) in orders(&g) {
        let est =
            sgs_core::fgp::estimate_insertion(&Pattern::triangle(), &stream, 25_000, 2).unwrap();
        assert!(
            est.relative_error(exact) < 0.25,
            "{name}: estimate {} vs exact {exact}",
            est.estimate
        );
    }
}

#[test]
fn wedge_estimates_order_independent() {
    let g = sgs_graph::gen::gnm(30, 120, 3);
    let exact = sgs_graph::exact::stars::count_wedges(&g);
    for (name, stream) in orders(&g) {
        let est = sgs_core::fgp::estimate_insertion(&Pattern::star(2), &stream, 15_000, 4).unwrap();
        assert!(
            est.relative_error(exact) < 0.25,
            "{name}: estimate {} vs exact {exact}",
            est.estimate
        );
    }
}

#[test]
fn ers_order_independent() {
    let g = sgs_graph::gen::barabasi_albert(100, 4, 5);
    let exact = sgs_graph::exact::cliques::count_cliques(&g, 3);
    assert!(exact > 20);
    let lambda = sgs_graph::degeneracy::degeneracy(&g);
    let params = ErsParams::practical(3, lambda, 0.3, exact as f64 * 0.5);
    for (name, stream) in orders(&g) {
        let est = count_cliques_insertion(&params, &stream, 7, 6);
        assert!(
            est.relative_error(exact) < 0.4,
            "{name}: estimate {} vs exact {exact}",
            est.estimate
        );
    }
}

#[test]
fn pass_counts_unaffected_by_order() {
    let g = sgs_graph::gen::gnm(25, 100, 7);
    for (_, stream) in orders(&g) {
        let est = sgs_core::fgp::estimate_insertion(&Pattern::triangle(), &stream, 100, 8).unwrap();
        assert_eq!(est.report.passes, 3);
    }
}

/// Skip-ahead reservoirs under adversarial orders: the relaxed query mix
/// (RandomNeighbor, answered by the reservoir bank) must stay unbiased
/// for every stream order, in both acceptance schemes — the skip rework
/// changes *when* coins are drawn, never which prefix a sampler is
/// uniform over.
#[test]
fn relaxed_estimates_order_independent_in_both_reservoir_modes() {
    use sgs_query::{PassOpts, ReservoirMode};
    let g = sgs_graph::gen::gnm(40, 240, 1);
    let exact = sgs_graph::exact::triangles::count_triangles(&g);
    assert!(exact > 50);
    for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
        for (name, stream) in orders(&g) {
            let est = sgs_core::fgp::estimate_insertion_threaded_with_opts(
                &Pattern::triangle(),
                &stream,
                25_000,
                1,
                2,
                PassOpts::with_reservoir(mode),
                SamplerMode::Relaxed,
            )
            .unwrap();
            assert_eq!(est.report.passes, 3);
            assert!(
                est.relative_error(exact) < 0.3,
                "{name}/{mode:?}: estimate {} vs exact {exact}",
                est.estimate
            );
        }
    }
}

/// Duplicate-heavy adversarial order: every edge arrives several times.
/// Degrees count arrivals (not distinct neighbors) in this model, and
/// the skip reservoir's `seen()` clock must agree with the per-offer
/// oracle's on every prefix — checked here end to end via the degree
/// answers and a skip-mode neighbor answer that must be a true neighbor.
#[test]
fn duplicate_heavy_streams_keep_reservoir_accounting_exact() {
    use sgs_query::exec::{answer_insertion_batch_with_opts, PassOpts};
    use sgs_query::{Answer, Query, ReservoirMode};
    let g = sgs_graph::gen::gnm(12, 30, 9);
    let mut edges = g.edge_vec();
    let copy = edges.clone();
    edges.extend(copy.iter().rev());
    edges.extend(copy.iter());
    let n = g.num_vertices();
    let stream = InsertionStream::from_edge_order(n, edges);
    let batch: Vec<Query> = (0..n as u32)
        .flat_map(|v| {
            [
                Query::Degree(VertexId(v)),
                Query::RandomNeighbor(VertexId(v)),
            ]
        })
        .collect();
    for seed in 0..40u64 {
        let (offer, _) = answer_insertion_batch_with_opts(
            &batch,
            &stream,
            seed,
            PassOpts::with_reservoir(ReservoirMode::Offer),
        );
        let (skip, _) = answer_insertion_batch_with_opts(
            &batch,
            &stream,
            seed,
            PassOpts::with_reservoir(ReservoirMode::Skip),
        );
        for (qi, (a, b)) in offer.iter().zip(&skip).enumerate() {
            match (a, b) {
                // Deterministic answers must be identical across modes.
                (Answer::Degree(x), Answer::Degree(y)) => {
                    assert_eq!(x, y, "seed {seed} slot {qi}");
                    assert_eq!(x % 3, 0, "triplicated stream: degree divisible by 3");
                }
                // Sampled answers: both must be true neighbors.
                (Answer::Neighbor(x), Answer::Neighbor(y)) => {
                    let v = VertexId(qi as u32 / 2);
                    for u in [x, y].into_iter().flatten() {
                        assert!(g.has_edge(v, *u), "seed {seed}: {u:?} not adj {v:?}");
                    }
                    assert_eq!(x.is_some(), y.is_some(), "seed {seed} slot {qi}");
                }
                other => panic!("unexpected answer pair {other:?}"),
            }
        }
    }
}

/// Survivor-level dispatch under adversarial orders: duplicate-heavy
/// turnstile streams (the same edge arriving several times inside one
/// block, including insert/delete pairs that cancel to zero) and
/// clamp-stressing ℓ₀ banks must answer bit-identically to the
/// predicated oracle — the dispatch rework changes which rows are
/// *touched*, never what any row accumulates.
#[test]
fn dispatch_feed_is_duplicate_and_cancellation_independent() {
    use sgs_query::exec::answer_turnstile_batch_with_opts;
    use sgs_query::{L0Mode, PassOpts, Query};
    use sgs_stream::update::EdgeUpdate;

    let g = sgs_graph::gen::gnm(14, 40, 41);
    // Every edge arrives five times back to back (insert, delete,
    // insert, delete, insert — weight bouncing inside the strict {0,1}
    // band): net weight one, but a blocked feed sees heavy in-block
    // duplication with cancelling pairs. Every third edge then gets a
    // final delete, cancelling its whole detector traffic to zero.
    let mut updates = Vec::new();
    for (i, e) in g.edge_vec().into_iter().enumerate() {
        for _ in 0..2 {
            updates.push(EdgeUpdate::insert(e));
            updates.push(EdgeUpdate::delete(e));
        }
        updates.push(EdgeUpdate::insert(e));
        if i % 3 == 0 {
            updates.push(EdgeUpdate::delete(e));
        }
    }
    let stream = TurnstileStream::from_updates(g.num_vertices(), updates);
    let batch: Vec<Query> = (0..g.num_vertices() as u32)
        .flat_map(|v| {
            [
                Query::Degree(VertexId(v)),
                Query::RandomNeighbor(VertexId(v)),
            ]
        })
        .chain([Query::EdgeCount, Query::RandomEdge])
        .collect();
    for seed in 0..10u64 {
        let (oracle, _) =
            answer_turnstile_batch_with_opts(&batch, &stream, seed, PassOpts::oracle());
        for block in [0usize, 1, 13, 16, 64] {
            for mode in [L0Mode::Predicated, L0Mode::Dispatch] {
                let opts = PassOpts::with_block(block).l0(mode);
                let (got, _) = answer_turnstile_batch_with_opts(&batch, &stream, seed, opts);
                assert_eq!(got, oracle, "seed {seed} block {block} {mode:?}");
            }
        }
    }
}

/// Dispatch with a shallow bank: `max_level + 1 = 2` rows means roughly
/// half of all survivor draws clamp to ℓ = L-1, the geometry where an
/// off-by-one in the prefix walk or the cohort drain would corrupt the
/// deepest row. Feed duplicate-heavy key sequences in adversarial
/// orders (sorted, reversed, interleaved) plus literal zero-delta
/// updates through every path and demand identical planes.
#[test]
fn dispatch_survives_level_clamp_under_adversarial_key_orders() {
    use sgs_stream::hash::FastRng;
    use sgs_stream::l0::{L0Mode, L0Sampler};
    use sgs_stream::SpaceUsage;

    let mut rng = FastRng::seed_from_u64(43);
    let mut sorted: Vec<(u64, i64)> = (0..500)
        .map(|i| (rng.gen_range(1..64u64), if i % 3 == 2 { -1 } else { 1 }))
        .collect();
    sorted.extend((0..20).map(|i| (i + 1, 0i64))); // zero-delta updates
    sorted.sort_unstable();
    let mut reversed = sorted.clone();
    reversed.reverse();
    let half = sorted.len() / 2;
    let mut interleaved = Vec::with_capacity(sorted.len());
    for i in 0..half {
        interleaved.push(sorted[i]);
        interleaved.push(sorted[half + i]);
    }
    interleaved.extend_from_slice(&sorted[2 * half..]);
    for (name, updates) in [
        ("sorted", &sorted),
        ("reversed", &reversed),
        ("interleaved", &interleaved),
    ] {
        let mut oracle = L0Sampler::new(1, 6, 44);
        for &(k, d) in updates {
            oracle.update_with(L0Mode::Predicated, k, d);
        }
        let expect = oracle.sample();
        for block in [1usize, 7, 16, 64] {
            let mut s = L0Sampler::new(1, 6, 44);
            for chunk in updates.chunks(block) {
                s.update_batch_with(L0Mode::Dispatch, chunk);
            }
            assert_eq!(s.sample(), expect, "{name} block {block}");
            assert_eq!(
                s.space_bytes(),
                oracle.space_bytes(),
                "{name} block {block}"
            );
        }
        let mut s = L0Sampler::new(1, 6, 44);
        for &(k, d) in updates {
            s.update_with(L0Mode::Dispatch, k, d);
        }
        assert_eq!(s.sample(), expect, "{name} scalar dispatch");
    }
}
