//! Arbitrary-order model: guarantees must hold for *every* stream order,
//! not just random ones. These tests feed adversarially structured
//! orders — sorted, reverse-sorted, degree-clustered, motif-batched —
//! and check the estimator stays unbiased.

use sgs_graph::StaticGraph;
use subgraph_streams::prelude::*;

fn orders(g: &AdjListGraph) -> Vec<(&'static str, InsertionStream)> {
    let n = g.num_vertices();
    let mut sorted = g.edge_vec();
    sorted.sort_unstable();
    let mut reversed = sorted.clone();
    reversed.reverse();
    // Cluster by lower endpoint degree (low-degree edges first): an
    // adversary that front-loads the sparse part of the graph.
    let mut by_degree = sorted.clone();
    by_degree.sort_by_key(|e| g.degree(e.u()).min(g.degree(e.v())));
    // Interleave first and second half.
    let mut interleaved = Vec::with_capacity(sorted.len());
    let half = sorted.len() / 2;
    for i in 0..half {
        interleaved.push(sorted[i]);
        interleaved.push(sorted[half + i]);
    }
    interleaved.extend_from_slice(&sorted[2 * half..]);

    vec![
        ("sorted", InsertionStream::from_edge_order(n, sorted)),
        ("reversed", InsertionStream::from_edge_order(n, reversed)),
        ("by-degree", InsertionStream::from_edge_order(n, by_degree)),
        (
            "interleaved",
            InsertionStream::from_edge_order(n, interleaved),
        ),
    ]
}

#[test]
fn triangle_estimates_order_independent() {
    let g = sgs_graph::gen::gnm(40, 240, 1);
    let exact = sgs_graph::exact::triangles::count_triangles(&g);
    assert!(exact > 50);
    for (name, stream) in orders(&g) {
        let est =
            sgs_core::fgp::estimate_insertion(&Pattern::triangle(), &stream, 25_000, 2).unwrap();
        assert!(
            est.relative_error(exact) < 0.25,
            "{name}: estimate {} vs exact {exact}",
            est.estimate
        );
    }
}

#[test]
fn wedge_estimates_order_independent() {
    let g = sgs_graph::gen::gnm(30, 120, 3);
    let exact = sgs_graph::exact::stars::count_wedges(&g);
    for (name, stream) in orders(&g) {
        let est = sgs_core::fgp::estimate_insertion(&Pattern::star(2), &stream, 15_000, 4).unwrap();
        assert!(
            est.relative_error(exact) < 0.25,
            "{name}: estimate {} vs exact {exact}",
            est.estimate
        );
    }
}

#[test]
fn ers_order_independent() {
    let g = sgs_graph::gen::barabasi_albert(100, 4, 5);
    let exact = sgs_graph::exact::cliques::count_cliques(&g, 3);
    assert!(exact > 20);
    let lambda = sgs_graph::degeneracy::degeneracy(&g);
    let params = ErsParams::practical(3, lambda, 0.3, exact as f64 * 0.5);
    for (name, stream) in orders(&g) {
        let est = count_cliques_insertion(&params, &stream, 7, 6);
        assert!(
            est.relative_error(exact) < 0.4,
            "{name}: estimate {} vs exact {exact}",
            est.estimate
        );
    }
}

#[test]
fn pass_counts_unaffected_by_order() {
    let g = sgs_graph::gen::gnm(25, 100, 7);
    for (_, stream) in orders(&g) {
        let est = sgs_core::fgp::estimate_insertion(&Pattern::triangle(), &stream, 100, 8).unwrap();
        assert_eq!(est.report.passes, 3);
    }
}

/// Skip-ahead reservoirs under adversarial orders: the relaxed query mix
/// (RandomNeighbor, answered by the reservoir bank) must stay unbiased
/// for every stream order, in both acceptance schemes — the skip rework
/// changes *when* coins are drawn, never which prefix a sampler is
/// uniform over.
#[test]
fn relaxed_estimates_order_independent_in_both_reservoir_modes() {
    use sgs_query::{PassOpts, ReservoirMode};
    let g = sgs_graph::gen::gnm(40, 240, 1);
    let exact = sgs_graph::exact::triangles::count_triangles(&g);
    assert!(exact > 50);
    for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
        for (name, stream) in orders(&g) {
            let est = sgs_core::fgp::estimate_insertion_threaded_with_opts(
                &Pattern::triangle(),
                &stream,
                25_000,
                1,
                2,
                PassOpts::with_reservoir(mode),
                SamplerMode::Relaxed,
            )
            .unwrap();
            assert_eq!(est.report.passes, 3);
            assert!(
                est.relative_error(exact) < 0.3,
                "{name}/{mode:?}: estimate {} vs exact {exact}",
                est.estimate
            );
        }
    }
}

/// Duplicate-heavy adversarial order: every edge arrives several times.
/// Degrees count arrivals (not distinct neighbors) in this model, and
/// the skip reservoir's `seen()` clock must agree with the per-offer
/// oracle's on every prefix — checked here end to end via the degree
/// answers and a skip-mode neighbor answer that must be a true neighbor.
#[test]
fn duplicate_heavy_streams_keep_reservoir_accounting_exact() {
    use sgs_query::exec::{answer_insertion_batch_with_opts, PassOpts};
    use sgs_query::{Answer, Query, ReservoirMode};
    let g = sgs_graph::gen::gnm(12, 30, 9);
    let mut edges = g.edge_vec();
    let copy = edges.clone();
    edges.extend(copy.iter().rev());
    edges.extend(copy.iter());
    let n = g.num_vertices();
    let stream = InsertionStream::from_edge_order(n, edges);
    let batch: Vec<Query> = (0..n as u32)
        .flat_map(|v| {
            [
                Query::Degree(VertexId(v)),
                Query::RandomNeighbor(VertexId(v)),
            ]
        })
        .collect();
    for seed in 0..40u64 {
        let (offer, _) = answer_insertion_batch_with_opts(
            &batch,
            &stream,
            seed,
            PassOpts::with_reservoir(ReservoirMode::Offer),
        );
        let (skip, _) = answer_insertion_batch_with_opts(
            &batch,
            &stream,
            seed,
            PassOpts::with_reservoir(ReservoirMode::Skip),
        );
        for (qi, (a, b)) in offer.iter().zip(&skip).enumerate() {
            match (a, b) {
                // Deterministic answers must be identical across modes.
                (Answer::Degree(x), Answer::Degree(y)) => {
                    assert_eq!(x, y, "seed {seed} slot {qi}");
                    assert_eq!(x % 3, 0, "triplicated stream: degree divisible by 3");
                }
                // Sampled answers: both must be true neighbors.
                (Answer::Neighbor(x), Answer::Neighbor(y)) => {
                    let v = VertexId(qi as u32 / 2);
                    for u in [x, y].into_iter().flatten() {
                        assert!(g.has_edge(v, *u), "seed {seed}: {u:?} not adj {v:?}");
                    }
                    assert_eq!(x.is_some(), y.is_some(), "seed {seed} slot {qi}");
                }
                other => panic!("unexpected answer pair {other:?}"),
            }
        }
    }
}
