//! Round-trip property tests for every persist codec: serialize →
//! deserialize must yield **byte-identical behavior** — the restored
//! structure, fed the same suffix of the stream as the original, stays
//! bit-equal to it (same samples, same counters, same re-serialization).
//!
//! The adversarial half: every single-bit flip and every truncated
//! prefix of a valid record must produce a structured error — never a
//! panic, never a silently-accepted wrong state. The framing's FNV-1a
//! checksum guarantees all 1-bit damage is caught; these tests pin that
//! the decoders in front of it also never index or allocate their way
//! into a crash on arbitrary bytes.

use sgs_prng::FastRng;
use sgs_stream::flat::FlatIndex;
use sgs_stream::l0::L0Sampler;
use sgs_stream::reservoir::{ReservoirBank, ReservoirMode};
use subgraph_streams::prelude::*;

fn edges(n: u32, count: usize, seed: u64) -> Vec<Edge> {
    let mut rng = FastRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let a = (rng.next_u64() % n as u64) as u32;
        let b = (rng.next_u64() % n as u64) as u32;
        if a != b {
            out.push(Edge::new(VertexId(a.min(b)), VertexId(a.max(b))));
        }
    }
    out
}

// ---------------------------------------------------------------------
// ℓ₀-sampler
// ---------------------------------------------------------------------

#[test]
fn l0_sampler_round_trips_to_identical_behavior_on_shared_suffix() {
    let n = 40usize;
    let all = edges(n as u32, 120, 9);
    for split in [0usize, 1, 40, 119, 120] {
        let mut live = L0Sampler::for_edge_domain(n, 77);
        for e in &all[..split] {
            live.update(e.key(), 1);
        }
        let bytes = live.to_persist_bytes();
        let mut restored = L0Sampler::from_persist_bytes(&bytes).unwrap();
        // Bit-identical at the split point...
        assert_eq!(restored.to_persist_bytes(), bytes);
        assert_eq!(restored.sample(), live.sample());
        // ...and it *stays* bit-identical through the shared suffix,
        // including deletions (turnstile semantics).
        for (i, e) in all[split..].iter().enumerate() {
            let delta = if i % 3 == 2 { -1 } else { 1 };
            live.update(e.key(), delta);
            restored.update(e.key(), delta);
        }
        assert_eq!(restored.sample(), live.sample());
        assert_eq!(restored.updates_absorbed(), live.updates_absorbed());
        assert_eq!(restored.to_persist_bytes(), live.to_persist_bytes());
    }
}

// ---------------------------------------------------------------------
// Reservoir bank
// ---------------------------------------------------------------------

#[test]
fn reservoir_bank_round_trips_to_identical_behavior_on_shared_suffix() {
    let all = edges(50, 200, 11);
    for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
        for split in [0usize, 1, 73, 199, 200] {
            let mut live: ReservoirBank<Edge> = ReservoirBank::with_mode(6, 13, mode);
            for e in &all[..split] {
                live.offer(*e);
            }
            let bytes = live.to_persist_bytes();
            // Restore applies onto a freshly constructed bank with the
            // same geometry (the pass machines rebuild theirs the same
            // way before restoring).
            let mut restored: ReservoirBank<Edge> = ReservoirBank::with_mode(6, 13, mode);
            restored.restore_from_persist_bytes(&bytes).unwrap();
            assert_eq!(restored.samples(), live.samples());
            assert_eq!(restored.seen_counts(), live.seen_counts());
            for e in &all[split..] {
                live.offer(*e);
                restored.offer(*e);
            }
            assert_eq!(restored.samples(), live.samples());
            assert_eq!(restored.seen_counts(), live.seen_counts());
            assert_eq!(restored.rng_draws(), live.rng_draws());
            assert_eq!(restored.to_persist_bytes(), live.to_persist_bytes());
        }
    }
}

#[test]
fn reservoir_bank_restore_rejects_geometry_mismatch() {
    let mut bank: ReservoirBank<Edge> = ReservoirBank::with_mode(6, 13, ReservoirMode::Skip);
    for e in edges(50, 40, 15) {
        bank.offer(e);
    }
    let bytes = bank.to_persist_bytes();
    // Wrong lane count.
    let mut other: ReservoirBank<Edge> = ReservoirBank::with_mode(5, 13, ReservoirMode::Skip);
    assert!(other.restore_from_persist_bytes(&bytes).is_err());
    // Wrong acceptance mode.
    let mut other: ReservoirBank<Edge> = ReservoirBank::with_mode(6, 13, ReservoirMode::Offer);
    assert!(other.restore_from_persist_bytes(&bytes).is_err());
}

// ---------------------------------------------------------------------
// Flat hash index
// ---------------------------------------------------------------------

#[test]
fn flat_index_round_trips_to_identical_probes() {
    let mut live = FlatIndex::with_capacity(8);
    let keys: Vec<u64> = (0..300u64)
        .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
        .collect();
    for (i, k) in keys.iter().enumerate() {
        if i % 4 != 3 {
            live.insert_or_get(*k);
        }
    }
    let bytes = live.to_persist_bytes();
    let restored = FlatIndex::from_persist_bytes(&bytes).unwrap();
    assert_eq!(restored.len(), live.len());
    // Same hits AND same misses, over present and absent keys alike —
    // the slot plane is layout-exact, so probes walk identically.
    for k in &keys {
        assert_eq!(restored.get(*k), live.get(*k));
    }
    let (mut a, mut b) = (Vec::new(), Vec::new());
    live.probe_batch(&keys, &mut a);
    restored.probe_batch(&keys, &mut b);
    assert_eq!(a, b);
    assert_eq!(restored.to_persist_bytes(), bytes);
}

// ---------------------------------------------------------------------
// Bit-flip and truncation fuzz: errors, never panics
// ---------------------------------------------------------------------

/// Every single-bit flip must be rejected (the checksum sees all of
/// them), and every truncated prefix must error — across all three
/// public codecs. A panic anywhere fails the test by crashing it.
#[test]
fn corrupt_records_error_and_never_panic() {
    let mut l0 = L0Sampler::for_edge_domain(30, 21);
    for e in edges(30, 60, 22) {
        l0.update(e.key(), 1);
    }
    let mut bank: ReservoirBank<Edge> = ReservoirBank::with_mode(4, 23, ReservoirMode::Skip);
    for e in edges(30, 60, 24) {
        bank.offer(e);
    }
    let mut flat = FlatIndex::with_capacity(8);
    for i in 0..50u64 {
        flat.insert_or_get(i.wrapping_mul(0x2545f4914f6cdd1d));
    }

    let records: Vec<(&str, Vec<u8>)> = vec![
        ("l0", l0.to_persist_bytes()),
        ("reservoir", bank.to_persist_bytes()),
        ("flat", flat.to_persist_bytes()),
    ];
    for (name, good) in &records {
        // Sanity: the pristine record decodes.
        match *name {
            "l0" => assert!(L0Sampler::from_persist_bytes(good).is_ok()),
            "reservoir" => {
                let mut fresh: ReservoirBank<Edge> =
                    ReservoirBank::with_mode(4, 23, ReservoirMode::Skip);
                assert!(fresh.restore_from_persist_bytes(good).is_ok());
            }
            _ => assert!(FlatIndex::from_persist_bytes(good).is_ok()),
        }
        // Single-bit flips, every byte, all eight bits on a stride so the
        // sweep stays fast but still visits every region of the record.
        for pos in 0..good.len() {
            let bit = 1u8 << (pos % 8);
            let mut b = good.clone();
            b[pos] ^= bit;
            let rejected = match *name {
                "l0" => L0Sampler::from_persist_bytes(&b).is_err(),
                "reservoir" => {
                    let mut fresh: ReservoirBank<Edge> =
                        ReservoirBank::with_mode(4, 23, ReservoirMode::Skip);
                    fresh.restore_from_persist_bytes(&b).is_err()
                }
                _ => FlatIndex::from_persist_bytes(&b).is_err(),
            };
            assert!(
                rejected,
                "{name}: flip of bit {} at byte {pos} accepted",
                pos % 8
            );
        }
        // Truncated prefixes of every length.
        for cut in 0..good.len() {
            let b = &good[..cut];
            let rejected = match *name {
                "l0" => L0Sampler::from_persist_bytes(b).is_err(),
                "reservoir" => {
                    let mut fresh: ReservoirBank<Edge> =
                        ReservoirBank::with_mode(4, 23, ReservoirMode::Skip);
                    fresh.restore_from_persist_bytes(b).is_err()
                }
                _ => FlatIndex::from_persist_bytes(b).is_err(),
            };
            assert!(rejected, "{name}: truncation to {cut} bytes accepted");
        }
    }
}

/// Random garbage (not derived from any valid record) must also error
/// rather than panic — the decoders guard their allocations and
/// indexing before trusting any length field.
#[test]
fn random_garbage_errors_and_never_panics() {
    let mut rng = FastRng::seed_from_u64(31);
    for len in [0usize, 1, 7, 16, 17, 64, 333] {
        for _ in 0..50 {
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            assert!(L0Sampler::from_persist_bytes(&bytes).is_err());
            let mut bank: ReservoirBank<Edge> =
                ReservoirBank::with_mode(4, 1, ReservoirMode::Offer);
            assert!(bank.restore_from_persist_bytes(&bytes).is_err());
            assert!(FlatIndex::from_persist_bytes(&bytes).is_err());
        }
    }
}
