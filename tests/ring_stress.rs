//! Randomized-interleaving stress suite for the lock-free seqlock
//! `Broadcast` ring, with the retired `MutexBroadcast` as oracle.
//!
//! The equivalence suites exercise the ring through well-behaved
//! drivers. This suite attacks the protocol itself: for ring capacities
//! 1, 2 and 8 and a seeded schedule generator, a single-threaded driver
//! interleaves producer pumps and consumer drains in adversarial
//! orders — consumers that stall for long random stretches (forcing
//! maximal backpressure and cursor-lap pressure at capacity 1) and
//! consumers that drop mid-stream (forcing the producer's min-cursor
//! bound to recompute past a dead cursor). Invariants checked on every
//! schedule:
//!
//! * **cursor monotonicity** — `blocks_consumed`/`updates_consumed`
//!   never move backwards, and blocks arrive in strictly sequential
//!   generations (no skip, no repeat, no torn block);
//! * **lossless reconstruction** — every consumer that survives to
//!   `Ended` reconstructs the routed stream byte for byte, regardless
//!   of capacity, block size, stall pattern, or sibling drops;
//! * **oracle agreement** — the mutex/condvar reference ring, driven by
//!   the *same* schedule, delivers the same per-consumer streams (block
//!   boundaries may differ under backpressure; contents may not).
//!
//! A final pair of tests runs the same adversaries on real threads
//! (the schedule randomness becomes genuine preemption), so the suite
//! covers both execution modes the `ExecPolicy` seam can select.

use sgs_prng::FastRng;
use sgs_stream::broadcast::{Broadcast, RoutedProducer, TryNext};
use sgs_stream::sharded::RoutedUpdate;
use sgs_stream::{InsertionStream, MutexBroadcast, ShardedFeed};

/// What one consumer got to see, plus its cursor history.
#[derive(Default, Clone, PartialEq, Debug)]
struct Observed {
    updates: Vec<RoutedUpdate>,
    ended: bool,
}

/// One scheduled consumer: a drain budget per step (0 = stalled) and an
/// optional step index at which it drops its cursor entirely.
struct Plan {
    stall_bias: f64,
    drop_after_blocks: Option<u64>,
}

fn feed_for(seed: u64) -> ShardedFeed {
    let g = sgs_graph::gen::gnm(40, 200, seed);
    let ins = InsertionStream::from_graph(&g, seed ^ 1);
    ShardedFeed::partition(&ins, 3)
}

/// Drive the lock-free ring under a seeded adversarial interleave.
/// Returns each consumer's observation (drop-outs keep their prefix).
fn run_lockfree(
    feed: &ShardedFeed,
    capacity: usize,
    block: usize,
    plans: &[Plan],
    rng: &mut FastRng,
) -> Vec<Observed> {
    let ring = Broadcast::new(capacity);
    let mut consumers: Vec<_> = plans
        .iter()
        .map(|p| (Some(ring.subscribe()), Observed::default(), p))
        .collect();
    let mut producer = RoutedProducer::new(feed, block);
    let mut last_blocks = vec![0u64; plans.len()];
    let mut last_updates = vec![0u64; plans.len()];
    loop {
        // Random party order every step: sometimes the producer runs
        // first, sometimes the ring sits full while consumers squabble.
        let produced = if rng.gen_bool(0.7) {
            producer.pump(&ring)
        } else {
            producer.is_done()
        };
        let mut all_done = produced;
        for (i, (slot, obs, plan)) in consumers.iter_mut().enumerate() {
            let Some(c) = slot.as_mut() else { continue };
            if rng.gen_bool(plan.stall_bias) {
                // Stalled this step: the slowest-cursor bound must hold
                // the producer without losing this consumer's data.
                all_done = false;
                continue;
            }
            // Drain between 0 and 3 blocks, then re-check cursors.
            for _ in 0..rng.gen_index(4) {
                match c.try_next() {
                    TryNext::Block(b) => obs.updates.extend(b.iter().cloned()),
                    TryNext::Pending => break,
                    TryNext::Ended => {
                        obs.ended = true;
                        break;
                    }
                }
            }
            let blocks = c.blocks_consumed();
            let updates = c.updates_consumed();
            assert!(blocks >= last_blocks[i], "consumer {i} cursor moved back");
            assert!(
                updates >= last_updates[i],
                "consumer {i} updates moved back"
            );
            assert_eq!(
                updates as usize,
                obs.updates.len(),
                "consumer {i} cursor out of sync with delivered data"
            );
            last_blocks[i] = blocks;
            last_updates[i] = updates;
            if let Some(after) = plan.drop_after_blocks {
                if blocks >= after {
                    // Mid-stream drop-out: cursor deactivates, producer
                    // must stop waiting on it.
                    *slot = None;
                    continue;
                }
            }
            all_done &= obs.ended;
        }
        if all_done {
            break;
        }
    }
    consumers.into_iter().map(|(_, o, _)| o).collect()
}

/// The same schedule through the mutex/condvar oracle ring. The
/// interleave decisions consume the RNG identically (party order,
/// stalls, drain budgets), so discrepancies are protocol differences,
/// not schedule differences.
fn run_mutex(
    feed: &ShardedFeed,
    capacity: usize,
    block: usize,
    plans: &[Plan],
    rng: &mut FastRng,
) -> Vec<Observed> {
    let ring = MutexBroadcast::new(capacity);
    let mut consumers: Vec<_> = plans
        .iter()
        .map(|p| (Some(ring.subscribe()), Observed::default(), p))
        .collect();
    let routed = feed.routed();
    let mut off = 0usize;
    let mut finished = false;
    loop {
        if rng.gen_bool(0.7) {
            while off < routed.len() {
                let end = (off + block.max(1)).min(routed.len());
                if ring.try_push(&routed[off..end]) {
                    off = end;
                } else {
                    break;
                }
            }
            if off == routed.len() && !finished {
                ring.finish();
                finished = true;
            }
        }
        let mut all_done = finished;
        for (slot, obs, plan) in consumers.iter_mut() {
            let Some(c) = slot.as_mut() else { continue };
            if rng.gen_bool(plan.stall_bias) {
                all_done = false;
                continue;
            }
            for _ in 0..rng.gen_index(4) {
                match c.try_next() {
                    TryNext::Block(b) => obs.updates.extend(b.iter().cloned()),
                    TryNext::Pending => break,
                    TryNext::Ended => {
                        obs.ended = true;
                        break;
                    }
                }
            }
            if let Some(after) = plan.drop_after_blocks {
                if c.blocks_consumed() >= after {
                    *slot = None;
                    continue;
                }
            }
            all_done &= obs.ended;
        }
        if all_done {
            break;
        }
    }
    consumers.into_iter().map(|(_, o, _)| o).collect()
}

fn adversarial_plans(rng: &mut FastRng) -> Vec<Plan> {
    vec![
        // A well-behaved consumer: must always see everything.
        Plan {
            stall_bias: 0.0,
            drop_after_blocks: None,
        },
        // A heavy staller: backpressures the whole ring, still lossless.
        Plan {
            stall_bias: 0.85,
            drop_after_blocks: None,
        },
        // A mid-stream drop-out at a random cursor position.
        Plan {
            stall_bias: 0.3,
            drop_after_blocks: Some(1 + rng.gen_index(12)),
        },
    ]
}

#[test]
fn adversarial_interleaves_are_lossless_at_every_capacity() {
    let feed = feed_for(1001);
    let expected = feed.routed().to_vec();
    for &capacity in &[1usize, 2, 8] {
        for &block in &[7usize, 64] {
            for trial in 0..12u64 {
                let mut plan_rng = FastRng::seed_from_u64(trial ^ 0xad);
                let plans = adversarial_plans(&mut plan_rng);
                let mut rng = FastRng::seed_from_u64(trial * 31 + capacity as u64);
                let got = run_lockfree(&feed, capacity, block, &plans, &mut rng);
                for (i, obs) in got.iter().enumerate() {
                    if obs.ended {
                        assert_eq!(
                            obs.updates, expected,
                            "cap {capacity}, block {block}, trial {trial}: consumer {i} lost data"
                        );
                    } else {
                        // Drop-outs keep a clean prefix: no reorder, no
                        // tear, no block from the future.
                        assert_eq!(
                            obs.updates.as_slice(),
                            &expected[..obs.updates.len()],
                            "cap {capacity}, block {block}, trial {trial}: consumer {i} prefix torn"
                        );
                    }
                }
                assert!(got[0].ended, "the well-behaved consumer must finish");
            }
        }
    }
}

#[test]
fn lockfree_ring_agrees_with_mutex_oracle_under_identical_schedules() {
    let feed = feed_for(2002);
    for &capacity in &[1usize, 2, 8] {
        for trial in 0..8u64 {
            let mut plan_rng = FastRng::seed_from_u64(trial ^ 0xbe);
            let plans = adversarial_plans(&mut plan_rng);
            let mut rng_a = FastRng::seed_from_u64(trial * 17 + capacity as u64);
            let mut rng_b = FastRng::seed_from_u64(trial * 17 + capacity as u64);
            let a = run_lockfree(&feed, capacity, 32, &plans, &mut rng_a);
            let b = run_mutex(&feed, capacity, 32, &plans, &mut rng_b);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                // Finishers must match the oracle exactly. Drop-outs
                // stop at schedule-dependent cursor positions (the two
                // rings admit different block progress under identical
                // schedules), so for them prefix-of-oracle-stream is
                // the invariant — and both suites check that against
                // the routed stream above.
                if x.ended && y.ended {
                    assert_eq!(
                        x.updates, y.updates,
                        "cap {capacity}, trial {trial}: consumer {i} diverged from oracle"
                    );
                }
            }
        }
    }
}

/// Real-thread variant: the producer runs the blocking `run` loop while
/// consumer threads stall with yields and one drops mid-stream. The
/// scheduler provides genuine preemption; the invariants are the same.
#[test]
fn threaded_stall_and_drop_is_lossless() {
    let feed = feed_for(3003);
    let expected = feed.routed().to_vec();
    for &capacity in &[1usize, 2, 8] {
        let ring = Broadcast::new(capacity);
        let survivor = ring.subscribe();
        let staller = ring.subscribe();
        let dropper = ring.subscribe();
        let (got_survivor, got_staller) = std::thread::scope(|scope| {
            let producer = RoutedProducer::new(&feed, 16);
            scope.spawn(|| producer.run(&ring));
            scope.spawn(move || {
                // Take a few blocks, then walk away mid-stream.
                let mut c = dropper;
                for _ in 0..3 {
                    loop {
                        match c.try_next() {
                            TryNext::Block(_) => break,
                            TryNext::Pending => std::thread::yield_now(),
                            TryNext::Ended => return,
                        }
                    }
                }
            });
            let slow = scope.spawn(move || {
                let mut c = staller;
                let mut seen = Vec::new();
                let mut rng = FastRng::seed_from_u64(capacity as u64);
                loop {
                    if rng.gen_bool(0.6) {
                        std::thread::yield_now();
                        continue;
                    }
                    match c.try_next() {
                        TryNext::Block(b) => seen.extend(b.iter().cloned()),
                        TryNext::Pending => std::thread::yield_now(),
                        TryNext::Ended => break,
                    }
                }
                seen
            });
            let fast = scope.spawn(move || {
                let mut seen = Vec::new();
                for b in survivor {
                    seen.extend(b.iter().cloned());
                }
                seen
            });
            (fast.join().unwrap(), slow.join().unwrap())
        });
        assert_eq!(
            got_survivor, expected,
            "cap {capacity}: fast consumer lost data"
        );
        assert_eq!(
            got_staller, expected,
            "cap {capacity}: stalling consumer lost data"
        );
    }
}

/// Stall diagnostics fire under real backpressure: a capacity-1 ring
/// with a deliberately slow consumer must record the producer's blocked
/// time against that consumer — observability for the deadlock-in-
/// waiting the seqlock ring turns into explicit state.
#[test]
fn threaded_backpressure_reports_stall_events() {
    let feed = feed_for(4004);
    let ring = Broadcast::with_stall_threshold(1, std::time::Duration::from_micros(50));
    let consumer = ring.subscribe();
    let total = std::thread::scope(|scope| {
        let producer = RoutedProducer::new(&feed, 8);
        scope.spawn(|| producer.run(&ring));
        scope
            .spawn(move || {
                let mut n = 0u64;
                let mut c = consumer;
                loop {
                    match c.try_next() {
                        TryNext::Block(b) => n += b.len() as u64,
                        TryNext::Pending => {
                            std::thread::sleep(std::time::Duration::from_micros(200))
                        }
                        TryNext::Ended => break,
                    }
                }
                n
            })
            .join()
            .unwrap()
    });
    assert_eq!(total, feed.stream_len() as u64);
    let stalls = ring.stall_events();
    assert!(
        !stalls.is_empty(),
        "a sleeping consumer behind a capacity-1 ring must trip the stall threshold"
    );
    assert!(stalls.iter().all(|s| s.consumer == 0 && s.blocked_ns > 0));
}
