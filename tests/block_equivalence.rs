//! Block-boundary equivalence: the blocked feed path vs the scalar
//! per-update path, at every awkward block geometry.
//!
//! The block-oriented rework (SoA ℓ₀ lane loops, batched FlatIndex
//! probes, `QueryRouter::feed_block`) claims *byte-identical* answers
//! for every block size. The frozen-reference suites pin the default
//! block; this suite sweeps the geometry corners where blocking bugs
//! live: remainder blocks (stream length not divisible by the block
//! size), blocks larger than the stream, single-update streams, empty
//! streams, empty batches — in both stream models, unsharded and at
//! shard counts 1, 2, 4.

use sgs_core::fgp::{estimate_insertion_on_feed_with_block, estimate_turnstile_on_feed_with_block};
use sgs_query::exec::{answer_insertion_batch_with_block, answer_turnstile_batch_with_block};
use sgs_query::sharded::{
    answer_insertion_batch_sharded_with_block, answer_turnstile_batch_sharded_with_block,
};
use sgs_query::{Query, RouterArena};
use sgs_stream::{EdgeStream, InsertionStream, ShardedFeed, TurnstileStream};
use subgraph_streams::prelude::*;

const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

/// Block sizes chosen so `stream_len % block` hits 0, 1, and awkward
/// remainders, plus blocks larger than the whole stream.
fn block_sweep(stream_len: usize) -> Vec<usize> {
    let mut blocks = vec![2, 3, 7, 16, 64, 128];
    if stream_len > 1 {
        blocks.push(stream_len - 1); // remainder of exactly 1
        blocks.push(stream_len); // one full block, no remainder
    }
    blocks.push(stream_len + 5); // single under-full block
    blocks
}

fn mixed_batch(indexed: bool) -> Vec<Query> {
    let mut qs = vec![Query::EdgeCount, Query::RandomEdge];
    for v in 0..12u32 {
        qs.push(Query::Degree(VertexId(v % 7)));
        qs.push(Query::RandomNeighbor(VertexId(v)));
        qs.push(Query::Adjacent(VertexId(v), VertexId(v + 1)));
        if indexed {
            qs.push(Query::IthNeighbor(VertexId(v), (v as u64 % 4) + 1));
        }
        qs.push(Query::RandomEdge);
    }
    qs
}

#[test]
fn insertion_blocked_matches_scalar_at_every_block_size() {
    let g = sgs_graph::gen::gnm(25, 91, 17); // odd stream length
    let ins = InsertionStream::from_graph(&g, 18);
    let batch = mixed_batch(true);
    for pass_seed in 0..5u64 {
        let (scalar, scalar_space) = answer_insertion_batch_with_block(&batch, &ins, pass_seed, 0);
        for block in block_sweep(ins.len()) {
            let (blocked, space) =
                answer_insertion_batch_with_block(&batch, &ins, pass_seed, block);
            assert_eq!(blocked, scalar, "block {block}, seed {pass_seed}");
            assert_eq!(space, scalar_space, "block {block} changed measured space");
        }
    }
}

#[test]
fn turnstile_blocked_matches_scalar_at_every_block_size() {
    let g = sgs_graph::gen::gnm(22, 83, 19);
    let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 20);
    let batch = mixed_batch(false);
    for pass_seed in 0..3u64 {
        let (scalar, _) = answer_turnstile_batch_with_block(&batch, &tst, pass_seed, 0);
        for block in block_sweep(tst.len()) {
            let (blocked, _) = answer_turnstile_batch_with_block(&batch, &tst, pass_seed, block);
            assert_eq!(blocked, scalar, "block {block}, seed {pass_seed}");
        }
    }
}

#[test]
fn sharded_blocked_matches_scalar_across_shards_and_blocks() {
    let g = sgs_graph::gen::gnm(25, 90, 23);
    let ins = InsertionStream::from_graph(&g, 24);
    let tst = TurnstileStream::from_graph_with_churn(&g, 0.8, 25);
    let ins_batch = mixed_batch(true);
    let tst_batch = mixed_batch(false);
    for &shards in &SHARD_SWEEP {
        let ins_feed = ShardedFeed::partition(&ins, shards);
        let tst_feed = ShardedFeed::partition(&tst, shards);
        let mut arena = RouterArena::new();
        for pass_seed in 0..3u64 {
            let (ins_scalar, _) = answer_insertion_batch_sharded_with_block(
                &ins_batch, &ins_feed, pass_seed, &mut arena, 0,
            );
            let (tst_scalar, _) = answer_turnstile_batch_sharded_with_block(
                &tst_batch, &tst_feed, pass_seed, &mut arena, 0,
            );
            for block in [3usize, 16, 64, 512] {
                let (a, _) = answer_insertion_batch_sharded_with_block(
                    &ins_batch, &ins_feed, pass_seed, &mut arena, block,
                );
                assert_eq!(a, ins_scalar, "insertion {shards} shards block {block}");
                let (b, _) = answer_turnstile_batch_sharded_with_block(
                    &tst_batch, &tst_feed, pass_seed, &mut arena, block,
                );
                assert_eq!(b, tst_scalar, "turnstile {shards} shards block {block}");
            }
        }
    }
}

#[test]
fn single_update_streams_answer_identically() {
    let e = Edge::new(VertexId(0), VertexId(1));
    let ins = InsertionStream::from_edge_order(4, vec![e]);
    let batch = vec![
        Query::EdgeCount,
        Query::RandomEdge,
        Query::Degree(VertexId(0)),
        Query::RandomNeighbor(VertexId(1)),
        Query::Adjacent(VertexId(0), VertexId(1)),
        Query::IthNeighbor(VertexId(0), 1),
    ];
    for block in [0usize, 1, 2, 64] {
        let (a, _) = answer_insertion_batch_with_block(&batch, &ins, 7, block);
        assert_eq!(a[0], sgs_query::Answer::EdgeCount(1), "block {block}");
        assert_eq!(a[2], sgs_query::Answer::Degree(1), "block {block}");
        assert_eq!(a[4], sgs_query::Answer::Adjacent(true), "block {block}");
        let (b, _) = answer_insertion_batch_with_block(&batch, &ins, 7, 0);
        assert_eq!(a, b, "block {block}");
    }
    for &shards in &SHARD_SWEEP {
        let feed = ShardedFeed::partition(&ins, shards);
        let mut arena = RouterArena::new();
        let (scalar, _) =
            answer_insertion_batch_sharded_with_block(&batch, &feed, 7, &mut arena, 0);
        let (blocked, _) =
            answer_insertion_batch_sharded_with_block(&batch, &feed, 7, &mut arena, 64);
        assert_eq!(blocked, scalar, "{shards} shards");
    }
}

#[test]
fn empty_streams_and_empty_batches_are_handled() {
    let ins = InsertionStream::from_edge_order(4, vec![]);
    let batch = mixed_batch(true);
    for block in [0usize, 1, 16] {
        let (a, _) = answer_insertion_batch_with_block(&batch, &ins, 3, block);
        let (b, _) = answer_insertion_batch_with_block(&batch, &ins, 3, 0);
        assert_eq!(a, b, "empty stream, block {block}");
        // Empty batch: nothing to answer, nothing to panic over.
        let (empty, _) = answer_insertion_batch_with_block(&[], &ins, 3, block);
        assert!(empty.is_empty());
    }
    let g = sgs_graph::gen::gnm(10, 20, 5);
    let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 6);
    for block in [0usize, 16] {
        let (empty, _) = answer_turnstile_batch_with_block(&[], &tst, 3, block);
        assert!(empty.is_empty(), "block {block}");
    }
}

#[test]
fn estimates_are_bit_identical_across_block_sizes_and_shards() {
    // End to end through the public serving entry points: same hits,
    // same estimate, for scalar and blocked feeds at 1 and 4 shards.
    let g = sgs_graph::gen::gnm(30, 140, 31);
    let exact = sgs_graph::exact::triangles::count_triangles(&g);
    let ins = InsertionStream::from_graph(&g, 32);
    let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 33);
    let mut reference = None;
    let mut tst_reference = None;
    for &shards in &[1usize, 4] {
        let ins_feed = ShardedFeed::partition(&ins, shards);
        let tst_feed = ShardedFeed::partition(&tst, shards);
        for block in [0usize, 5, 128] {
            let mut arena = RouterArena::new();
            let est = estimate_insertion_on_feed_with_block(
                &Pattern::triangle(),
                &ins_feed,
                3_000,
                34,
                &mut arena,
                block,
            )
            .unwrap();
            let (hits, estimate) = *reference.get_or_insert((est.hits, est.estimate));
            assert_eq!(est.hits, hits, "{shards} shards, block {block}");
            assert_eq!(est.estimate, estimate, "{shards} shards, block {block}");
            assert_eq!(est.report.passes, 3);
            let tst_est = estimate_turnstile_on_feed_with_block(
                &Pattern::triangle(),
                &tst_feed,
                600,
                35,
                &mut arena,
                block,
            )
            .unwrap();
            let (th, te) = *tst_reference.get_or_insert((tst_est.hits, tst_est.estimate));
            assert_eq!(tst_est.hits, th, "turnstile {shards} shards, block {block}");
            assert_eq!(
                tst_est.estimate, te,
                "turnstile {shards} shards, block {block}"
            );
        }
    }
    let (_, estimate) = reference.unwrap();
    assert!(
        (estimate - exact as f64).abs() / exact.max(1) as f64 <= 0.5,
        "sanity: estimate {estimate} vs exact {exact}"
    );
}

/// Survivor-level dispatch across every awkward block geometry: the
/// remainder chunk of the cohort drain (`len % DISPATCH_CHUNK`) must be
/// handled for every size, so sweep turnstile blocks 1..=17 on an
/// odd-length stream and pin both ℓ₀ modes to the scalar predicated
/// oracle — answers and measured space alike.
#[test]
fn turnstile_dispatch_matches_predicated_at_block_remainders_1_to_17() {
    use sgs_query::exec::answer_turnstile_batch_with_opts;
    use sgs_query::{L0Mode, PassOpts};
    let g = sgs_graph::gen::gnm(22, 83, 37);
    let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 38);
    let batch = mixed_batch(false);
    for pass_seed in 0..3u64 {
        let (oracle, _) =
            answer_turnstile_batch_with_opts(&batch, &tst, pass_seed, PassOpts::oracle());
        for block in 1usize..=17 {
            let mut space_at_block = None;
            for mode in [L0Mode::Predicated, L0Mode::Dispatch] {
                let opts = PassOpts::with_block(block).l0(mode);
                let (got, space) = answer_turnstile_batch_with_opts(&batch, &tst, pass_seed, opts);
                assert_eq!(got, oracle, "block {block} {mode:?} seed {pass_seed}");
                // The ℓ₀ mode never changes measured space — the cohort
                // scratch is part of the bank either way.
                let expect = *space_at_block.get_or_insert(space);
                assert_eq!(space, expect, "block {block} {mode:?} changed space");
            }
        }
    }
}

/// End to end through the turnstile estimator entry point: hits and
/// estimate are bit-identical under both ℓ₀ modes, at 1 and 4 shards,
/// scalar and blocked.
#[test]
fn turnstile_estimates_bit_identical_across_l0_modes() {
    use sgs_core::fgp::estimate_turnstile_on_feed_with_opts;
    use sgs_query::{L0Mode, PassOpts};
    let g = sgs_graph::gen::gnm(30, 140, 31);
    let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 33);
    let mut reference = None;
    for &shards in &[1usize, 4] {
        let feed = ShardedFeed::partition(&tst, shards);
        for block in [0usize, 5, 128] {
            for mode in [L0Mode::Predicated, L0Mode::Dispatch] {
                let mut arena = RouterArena::new();
                let est = estimate_turnstile_on_feed_with_opts(
                    &Pattern::triangle(),
                    &feed,
                    600,
                    35,
                    &mut arena,
                    PassOpts::with_block(block).l0(mode),
                )
                .unwrap();
                let (hits, estimate) = *reference.get_or_insert((est.hits, est.estimate));
                assert_eq!(est.hits, hits, "{shards} shards block {block} {mode:?}");
                assert_eq!(
                    est.estimate, estimate,
                    "{shards} shards block {block} {mode:?}"
                );
            }
        }
    }
}
