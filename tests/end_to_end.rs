//! Cross-crate integration tests: the full pipeline from generator to
//! estimate, exercising every execution mode.

use subgraph_streams::prelude::*;

#[test]
fn fgp_triangle_insertion_end_to_end() {
    let g = sgs_graph::gen::gnm(60, 400, 1);
    let exact = sgs_graph::exact::triangles::count_triangles(&g);
    assert!(exact > 100);
    let stream = InsertionStream::from_graph(&g, 2);
    let est = estimate_insertion(&Pattern::triangle(), &stream, 30_000, 3).unwrap();
    assert_eq!(est.report.passes, 3);
    assert_eq!(est.m, 400);
    assert!(
        est.relative_error(exact) < 0.25,
        "estimate {} vs exact {exact}",
        est.estimate
    );
}

#[test]
fn fgp_turnstile_matches_final_graph_despite_churn() {
    let g = sgs_graph::gen::gnm(40, 200, 4);
    let exact = sgs_graph::exact::triangles::count_triangles(&g);
    assert!(exact > 20);
    let stream = TurnstileStream::from_graph_with_churn(&g, 2.0, 5);
    assert!(stream.deletion_fraction() > 0.3);
    let est = estimate_turnstile(&Pattern::triangle(), &stream, 15_000, 6).unwrap();
    assert!(est.report.passes <= 3);
    assert!(
        est.relative_error(exact) < 0.35,
        "estimate {} vs exact {exact}",
        est.estimate
    );
}

#[test]
fn fgp_handles_pattern_zoo() {
    let g = sgs_graph::gen::gnm(30, 140, 7);
    let stream = InsertionStream::from_graph(&g, 8);
    for (pattern, trials, tol) in [
        (Pattern::star(2), 20_000, 0.25),
        (Pattern::path(3), 40_000, 0.35),
        (Pattern::cycle(4), 40_000, 0.35),
    ] {
        let exact = sgs_graph::exact::count_pattern_auto(&g, &pattern);
        assert!(exact > 0, "{pattern:?} absent from workload");
        let est = estimate_insertion(&pattern, &stream, trials, 9).unwrap();
        assert!(est.report.passes <= 3);
        assert!(
            est.relative_error(exact) < tol,
            "{pattern:?}: estimate {} vs exact {exact}",
            est.estimate
        );
    }
}

#[test]
fn ers_end_to_end_on_low_degeneracy() {
    let g = sgs_graph::gen::barabasi_albert(100, 4, 10);
    let lambda = sgs_graph::degeneracy::degeneracy(&g);
    assert!(lambda <= 4);
    let exact = sgs_graph::exact::cliques::count_cliques(&g, 3);
    assert!(exact > 20);
    let stream = InsertionStream::from_graph(&g, 11);
    let params = ErsParams::practical(3, lambda, 0.3, exact as f64 * 0.5);
    let est = count_cliques_insertion(&params, &stream, 9, 12);
    assert!(est.report.passes <= 15, "{} passes > 5r", est.report.passes);
    assert!(
        est.relative_error(exact) < 0.35,
        "estimate {} vs exact {exact}",
        est.estimate
    );
}

#[test]
fn oracle_and_stream_estimates_agree_statistically() {
    // Theorem 9's "same output distribution": compare the two executions
    // of the same estimator at matched trial counts.
    let g = sgs_graph::gen::gnm(30, 150, 13);
    let exact = sgs_graph::exact::triangles::count_triangles(&g) as f64;
    let stream = InsertionStream::from_graph(&g, 14);
    let oracle_est = sgs_core::fgp::estimate_oracle(&Pattern::triangle(), &g, 25_000, 15).unwrap();
    let stream_est = estimate_insertion(&Pattern::triangle(), &stream, 25_000, 16).unwrap();
    let a = oracle_est.estimate / exact;
    let b = stream_est.estimate / exact;
    assert!((a - b).abs() < 0.25, "oracle {a:.3} vs stream {b:.3}");
}

#[test]
fn exact_baseline_agrees_everywhere() {
    let g = sgs_graph::gen::gnm(40, 250, 17);
    let exact = sgs_graph::exact::triangles::count_triangles(&g);
    let ins = InsertionStream::from_graph(&g, 18);
    let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 19);
    assert_eq!(
        sgs_core::baselines::exact_stream::count_exact(&Pattern::triangle(), &ins).count,
        exact
    );
    assert_eq!(
        sgs_core::baselines::exact_stream::count_exact(&Pattern::triangle(), &tst).count,
        exact
    );
}

#[test]
fn pass_counts_match_paper_claims() {
    let g = sgs_graph::gen::gnm(30, 120, 20);
    let ins = InsertionStream::from_graph(&g, 21);

    // FGP: 3 passes for cycle-bearing patterns, 2 for star-only.
    let tri = estimate_insertion(&Pattern::triangle(), &ins, 100, 22).unwrap();
    assert_eq!(tri.report.passes, 3);
    let star = estimate_insertion(&Pattern::star(3), &ins, 100, 23).unwrap();
    assert_eq!(star.report.passes, 2);

    // ERS for r: <= 5r passes (Theorem 2), and our construction uses
    // 4r - 5 in the worst case.
    let ba = sgs_graph::gen::barabasi_albert(60, 3, 24);
    let ba_stream = InsertionStream::from_graph(&ba, 25);
    for r in [3usize, 4] {
        let exact = sgs_graph::exact::cliques::count_cliques(&ba, r).max(1);
        let params = ErsParams::practical(r, 3, 0.4, exact as f64);
        let est = count_cliques_insertion(&params, &ba_stream, 3, 26);
        assert!(
            est.report.passes <= 5 * r,
            "r={r}: {} passes > 5r",
            est.report.passes
        );
        assert!(
            est.report.passes <= 4 * r - 5,
            "r={r}: {} passes > 4r-5",
            est.report.passes
        );
    }
}

#[test]
fn sampled_copies_are_always_real_subgraphs() {
    use sgs_core::{SamplerMode, SamplerPlan, SubgraphSampler};
    use sgs_query::exec::run_insertion;
    // Small and dense so the K4 hit probability #K4/(2m)^2 is large
    // enough to observe within the trial budget.
    let g = sgs_graph::gen::plant_pattern(
        &sgs_graph::gen::gnm(12, 40, 27),
        &Pattern::clique(4),
        12,
        28,
    );
    let stream = InsertionStream::from_graph(&g, 29);
    let plan = SamplerPlan::new(&Pattern::clique(4)).unwrap();
    let mut found = 0;
    for t in 0..10_000u64 {
        let s = SubgraphSampler::new(plan.clone(), SamplerMode::Indexed, t);
        let (out, _) = run_insertion(s, &stream, 5000 + t);
        if let Some(c) = out.copy {
            found += 1;
            assert_eq!(c.vertices.len(), 4);
            assert_eq!(c.edges.len(), 6);
            for e in &c.edges {
                assert!(g.has_edge(e.u(), e.v()));
            }
        }
    }
    assert!(found > 0, "planted K4s should be findable");
}
