//! Shard-count sweep equivalence: the sharded pipeline vs the frozen
//! single-stream reference oracle.
//!
//! The sharded executors partition the update stream across N feed
//! shards, run one private QueryRouter per shard, and merge the per-shard
//! answers. These tests pin the whole pipeline — `ShardedFeed` delivery,
//! per-shard routing, global-slot sampler seeding, central `f1` draws,
//! ℓ₀-bank merging — against `sgs_query::reference` (the pre-router
//! executors, the repo's equivalence oracle): for shard counts 1, 2, 4
//! and 7, full `Parallel` sampler banks (triangle and 5-cycle) must
//! produce **byte-identical** per-trial outcomes in both stream models,
//! for every fixed seed tried.
//!
//! Also asserted here: a logical pass over N shards counts as one pass,
//! and a warm `RouterArena` performs zero per-round heap growth across
//! repeat runs (the no-allocation claim of the arena).

use sgs_core::{SamplerMode, SamplerPlan, SubgraphSampler};
use sgs_query::reference::{run_insertion_reference, run_turnstile_reference};
use sgs_query::sharded::{run_insertion_sharded, run_turnstile_sharded};
use sgs_query::{Parallel, RouterArena};
use sgs_stream::hash::split_seed;
use sgs_stream::{InsertionStream, ShardedFeed, TurnstileStream};
use subgraph_streams::prelude::*;

const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 7];

fn bank(
    pattern: &Pattern,
    mode: SamplerMode,
    trials: usize,
    seed: u64,
) -> Parallel<SubgraphSampler> {
    let plan = SamplerPlan::new(pattern).unwrap();
    Parallel::new(
        (0..trials)
            .map(|i| SubgraphSampler::new(plan.clone(), mode, split_seed(seed, i as u64)))
            .collect(),
    )
}

#[test]
fn sharded_insertion_matches_reference_triangle() {
    let g = sgs_graph::gen::gnm(30, 140, 42);
    let ins = InsertionStream::from_graph(&g, 7);
    for &shards in &SHARD_SWEEP {
        let feed = ShardedFeed::partition(&ins, shards);
        let mut arena = RouterArena::new();
        for seed in 0..6u64 {
            let (a, ra) = run_insertion_sharded(
                bank(&Pattern::triangle(), SamplerMode::Indexed, 400, seed),
                &feed,
                seed ^ 0xaa,
                &mut arena,
            );
            let (b, rb) = run_insertion_reference(
                bank(&Pattern::triangle(), SamplerMode::Indexed, 400, seed),
                &ins,
                seed ^ 0xaa,
            );
            assert_eq!(a, b, "{shards} shards, seed {seed}: outcome mismatch");
            assert_eq!(ra.passes, rb.passes, "logical passes must not scale with N");
            assert_eq!(ra.rounds, rb.rounds);
            assert_eq!(ra.queries, rb.queries);
        }
    }
}

#[test]
fn sharded_insertion_matches_reference_five_cycle() {
    let g = sgs_graph::gen::gnm(24, 110, 5);
    let ins = InsertionStream::from_graph(&g, 6);
    for &shards in &SHARD_SWEEP {
        let feed = ShardedFeed::partition(&ins, shards);
        let mut arena = RouterArena::new();
        for seed in 0..4u64 {
            let (a, _) = run_insertion_sharded(
                bank(&Pattern::cycle(5), SamplerMode::Indexed, 300, seed),
                &feed,
                seed ^ 0xc5,
                &mut arena,
            );
            let (b, _) = run_insertion_reference(
                bank(&Pattern::cycle(5), SamplerMode::Indexed, 300, seed),
                &ins,
                seed ^ 0xc5,
            );
            assert_eq!(a, b, "{shards} shards, seed {seed}: outcome mismatch");
        }
    }
}

#[test]
fn sharded_turnstile_matches_reference_triangle_and_five_cycle() {
    let g = sgs_graph::gen::gnm(22, 90, 9);
    let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 10);
    for (pattern, trials) in [(Pattern::triangle(), 150), (Pattern::cycle(5), 100)] {
        for &shards in &SHARD_SWEEP {
            let feed = ShardedFeed::partition(&tst, shards);
            let mut arena = RouterArena::new();
            for seed in 0..3u64 {
                let (a, _) = run_turnstile_sharded(
                    bank(&pattern, SamplerMode::Relaxed, trials, seed),
                    &feed,
                    seed ^ 0x7,
                    &mut arena,
                );
                let (b, _) = run_turnstile_reference(
                    bank(&pattern, SamplerMode::Relaxed, trials, seed),
                    &tst,
                    seed ^ 0x7,
                );
                assert_eq!(
                    a, b,
                    "{pattern:?}, {shards} shards, seed {seed}: outcome mismatch"
                );
            }
        }
    }
}

#[test]
fn sharded_estimates_match_single_stream_estimators() {
    // End-to-end: the public estimator entry points agree bit for bit.
    let g = sgs_graph::gen::gnm(30, 150, 21);
    let ins = InsertionStream::from_graph(&g, 22);
    let single = sgs_core::fgp::estimate_insertion(&Pattern::triangle(), &ins, 3_000, 23).unwrap();
    for &shards in &SHARD_SWEEP[1..] {
        let multi = sgs_core::fgp::estimate_insertion_threaded(
            &Pattern::triangle(),
            &ins,
            3_000,
            shards,
            23,
        )
        .unwrap();
        assert_eq!(multi.hits, single.hits, "{shards} shards");
        assert_eq!(multi.estimate, single.estimate);
        assert_eq!(multi.report.passes, 3);
    }
    let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 24);
    let single_t = sgs_core::fgp::estimate_turnstile(&Pattern::triangle(), &tst, 400, 25).unwrap();
    for &shards in &SHARD_SWEEP[1..] {
        let multi =
            sgs_core::fgp::estimate_turnstile_threaded(&Pattern::triangle(), &tst, 400, shards, 25)
                .unwrap();
        assert_eq!(multi.hits, single_t.hits, "{shards} shards");
        assert_eq!(multi.estimate, single_t.estimate);
    }
}

#[test]
fn warm_arena_never_allocates_per_round() {
    // The RouterArena contract: after one warm-up run, repeat runs of
    // the same workload shape rebuild every per-shard router with zero
    // heap growth — the per-round pair-index rebuild cost is amortized
    // away.
    let g = sgs_graph::gen::gnm(26, 120, 31);
    let ins = InsertionStream::from_graph(&g, 32);
    let feed = ShardedFeed::partition(&ins, 4);
    let mut arena = RouterArena::new();
    let (first, _) = run_insertion_sharded(
        bank(&Pattern::triangle(), SamplerMode::Indexed, 500, 1),
        &feed,
        2,
        &mut arena,
    );
    assert!(arena.is_warm());
    let warmed = arena.heap_bytes();
    assert!(warmed > 0);
    for run in 0..3 {
        let (again, _) = run_insertion_sharded(
            bank(&Pattern::triangle(), SamplerMode::Indexed, 500, 1),
            &feed,
            2,
            &mut arena,
        );
        assert_eq!(again, first, "run {run} diverged");
    }
    assert_eq!(
        arena.growth_events_after_warmup(),
        0,
        "warm arena grew the heap mid-round"
    );
    assert_eq!(arena.heap_bytes(), warmed, "warm arena footprint drifted");
}

#[test]
fn logical_pass_accounting_under_sharding() {
    let g = sgs_graph::gen::gnm(20, 90, 41);
    let ins = InsertionStream::from_graph(&g, 42);
    let feed = ShardedFeed::partition(&ins, 7);
    let mut arena = RouterArena::new();
    let (_, report) = run_insertion_sharded(
        bank(&Pattern::triangle(), SamplerMode::Indexed, 200, 3),
        &feed,
        4,
        &mut arena,
    );
    assert_eq!(report.passes, 3, "3-pass estimator stays 3 logical passes");
    assert_eq!(feed.logical_passes(), 3, "feed agrees: 3 passes, not 21");
}

#[test]
fn placement_never_changes_answers() {
    // The load-aware ShardMap claim: any vertex -> shard placement
    // (uniform hash, hand overrides, or the greedy hot-vertex
    // rebalancer) yields byte-identical per-trial outcomes, because a
    // shard sees every update incident to every vertex it owns, in
    // stream order, whichever shard that is. Exercised on a zipf hub
    // workload -- the skewed family the rebalancer exists for -- in both
    // stream models, on the relaxed query mix (reservoirs + l0-banks).
    // Baseline: the uniform-placement sharded run, which the rest of
    // this suite already pins to the reference oracle (on the indexed
    // mix; the relaxed mix's skip-ahead reservoirs are by design only
    // distribution-equivalent to the reference's per-offer scheme).
    let g = sgs_graph::gen::zipf_hub(120, 900, 1.0, 51);
    let ins = InsertionStream::from_graph(&g, 52);
    let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 53);
    for &shards in &[2usize, 4, 7] {
        let uniform_ins = ShardedFeed::partition(&ins, shards);
        let uniform_tst = ShardedFeed::partition(&tst, shards);
        let counts = uniform_ins.vertex_delivery_counts();
        let maps = [
            sgs_stream::ShardMap::balanced(shards, &counts, 8),
            sgs_stream::ShardMap::with_overrides(shards, vec![(0, 0), (1, 0), (2, 0)]),
        ];
        assert!(!maps[0].is_uniform(), "hub workload must produce overrides");
        for seed in 0..3u64 {
            let (want_i, _) = run_insertion_sharded(
                bank(&Pattern::triangle(), SamplerMode::Relaxed, 300, seed),
                &uniform_ins,
                seed ^ 0x91,
                &mut RouterArena::new(),
            );
            let (want_t, _) = run_turnstile_sharded(
                bank(&Pattern::triangle(), SamplerMode::Relaxed, 200, seed),
                &uniform_tst,
                seed ^ 0x92,
                &mut RouterArena::new(),
            );
            for map in &maps {
                let feed = ShardedFeed::partition_with_map(&ins, map.clone());
                let mut arena = RouterArena::new();
                let (got, _) = run_insertion_sharded(
                    bank(&Pattern::triangle(), SamplerMode::Relaxed, 300, seed),
                    &feed,
                    seed ^ 0x91,
                    &mut arena,
                );
                assert_eq!(
                    got,
                    want_i,
                    "{shards} shards, seed {seed}, overrides {:?}",
                    map.overrides()
                );
                let feed = ShardedFeed::partition_with_map(&tst, map.clone());
                let mut arena = RouterArena::new();
                let (got, _) = run_turnstile_sharded(
                    bank(&Pattern::triangle(), SamplerMode::Relaxed, 200, seed),
                    &feed,
                    seed ^ 0x92,
                    &mut arena,
                );
                assert_eq!(
                    got,
                    want_t,
                    "turnstile: {shards} shards, seed {seed}, overrides {:?}",
                    map.overrides()
                );
            }
        }
    }
}

#[test]
fn balanced_placement_evens_out_zipf_shard_load() {
    // The perf half of the placement story: on the hub workload the
    // greedy rebalancer strictly lowers the hottest shard's delivery
    // count (the critical-path proxy) vs uniform hashing.
    let g = sgs_graph::gen::zipf_hub(200, 1_500, 1.1, 61);
    let ins = InsertionStream::from_graph(&g, 62);
    let shards = 4;
    let uniform = ShardedFeed::partition(&ins, shards);
    let counts = uniform.vertex_delivery_counts();
    let balanced =
        ShardedFeed::partition_with_map(&ins, sgs_stream::ShardMap::balanced(shards, &counts, 16));
    let hottest = |f: &ShardedFeed| (0..shards).map(|i| f.shard(i).len()).max().unwrap();
    assert!(
        hottest(&balanced) < hottest(&uniform),
        "rebalance did not help: {} !< {}",
        hottest(&balanced),
        hottest(&uniform)
    );
}
