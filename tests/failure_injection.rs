//! Failure injection: algorithms written for the relaxed model
//! (Definition 10) must stay *sound* under query failures — they may
//! miss copies (losing success probability) but never fabricate them,
//! and the estimator's bias must track the injected failure rate in a
//! predictable way.
//!
//! The broadcast-ingest section injects *consumer* faults into the
//! fan-out ring: a stalled consumer (backpressure must cap producer
//! advance without deadlocking anyone), a consumer dropped mid-pass
//! (everyone else finishes; pass accounting still counts one logical
//! pass), a zero-consumer feed (production completes unblocked), and
//! the stall diagnostics (a push blocked past the configured threshold
//! records a [`StallEvent`] naming the blocking consumer, visible while
//! the producer is still stuck).

use sgs_core::{SamplerMode, SamplerPlan, SubgraphSampler};
use sgs_query::exec::run_on_oracle;
use sgs_query::{Parallel, RelaxedOracle};
use sgs_stream::broadcast::{Broadcast, RoutedProducer};
use sgs_stream::hash::split_seed;
use sgs_stream::ShardedFeed;
use subgraph_streams::prelude::*;

fn hit_rate_with_failures(g: &AdjListGraph, fail_prob: f64, trials: usize, seed: u64) -> f64 {
    let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
    let par = Parallel::new(
        (0..trials)
            .map(|i| {
                SubgraphSampler::new(
                    plan.clone(),
                    SamplerMode::Relaxed,
                    split_seed(seed, i as u64),
                )
            })
            .collect(),
    );
    let mut oracle = RelaxedOracle::new(g, fail_prob, split_seed(seed, u64::MAX));
    let (outs, _) = run_on_oracle(par, &mut oracle);
    outs.iter().filter(|o| o.copy.is_some()).count() as f64 / trials as f64
}

#[test]
fn sampler_never_fabricates_under_failures() {
    let g = sgs_graph::gen::gnm(25, 110, 1);
    let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
    for fail_prob in [0.1, 0.5, 0.9] {
        for t in 0..500u64 {
            let s = SubgraphSampler::new(plan.clone(), SamplerMode::Relaxed, t);
            let mut oracle = RelaxedOracle::new(&g, fail_prob, 1000 + t);
            let (out, _) = run_on_oracle(s, &mut oracle);
            if let Some(c) = out.copy {
                for e in &c.edges {
                    assert!(
                        g.has_edge(e.u(), e.v()),
                        "fabricated edge {e:?} at fail_prob {fail_prob}"
                    );
                }
            }
        }
    }
}

#[test]
fn hit_rate_degrades_predictably() {
    // A triangle trial issues 2 f1 queries and 1 relaxed f3 query; each
    // independent failure kills it, so the success rate should scale by
    // about (1-p)^3 (the f3 failure only matters in the light case, so
    // the true factor is between (1-p)^2 and (1-p)^3).
    let g = sgs_graph::gen::gnm(25, 110, 2);
    let trials = 60_000;
    let base = hit_rate_with_failures(&g, 0.0, trials, 3);
    assert!(base > 0.0);
    let p = 0.3;
    let degraded = hit_rate_with_failures(&g, p, trials, 4);
    let ratio = degraded / base;
    let lo = (1.0f64 - p).powi(3) * 0.8;
    let hi = (1.0f64 - p).powi(2) * 1.2;
    assert!(
        (lo..=hi).contains(&ratio),
        "degradation ratio {ratio:.3} outside [{lo:.3}, {hi:.3}]"
    );
}

#[test]
fn total_failure_means_no_output_not_garbage() {
    let g = sgs_graph::gen::gnm(20, 80, 5);
    let rate = hit_rate_with_failures(&g, 1.0, 2_000, 6);
    assert_eq!(rate, 0.0);
}

#[test]
fn relaxed_failure_probability_at_definition_scale_is_negligible() {
    // Definition 10's failure probability 1/n^c: at c=2 and n=25 it is
    // 0.0016 — the hit rate moves by far less than statistical noise.
    let g = sgs_graph::gen::gnm(25, 110, 7);
    let trials = 40_000;
    let p = RelaxedOracle::definition_fail_prob(25, 2.0);
    let base = hit_rate_with_failures(&g, 0.0, trials, 8);
    let relaxed = hit_rate_with_failures(&g, p, trials, 9);
    let rel_shift = (base - relaxed).abs() / base;
    assert!(rel_shift < 0.1, "shift {rel_shift:.3} too large for p={p}");
}

// ---------------------------------------------------------------------
// Broadcast-ingest faults
// ---------------------------------------------------------------------

fn broadcast_feed(shards: usize, seed: u64) -> ShardedFeed {
    let g = sgs_graph::gen::gnm(30, 140, seed);
    let s = InsertionStream::from_graph(&g, seed ^ 0x9e37);
    ShardedFeed::partition(&s, shards)
}

#[test]
fn broadcast_stalled_consumer_caps_producer_without_deadlock() {
    let feed = broadcast_feed(2, 11);
    let capacity = 2;
    let ring = Broadcast::new(capacity);
    let mut stalled = ring.subscribe();
    let live = ring.subscribe();
    std::thread::scope(|s| {
        let producer = s.spawn(|| RoutedProducer::new(&feed, 4).run(&ring));
        let live_total = s.spawn(move || {
            let mut n = 0u64;
            for b in live {
                n += b.len() as u64;
            }
            n
        });
        // Let the producer run into the stalled cursor: it must park at
        // exactly `capacity` blocks ahead of it, not finish, not spin.
        // Backpressure guarantees it *reaches* the cap eventually, so
        // poll with a deadline instead of trusting a fixed sleep, then
        // hold still and check it never runs past the cap.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while ring.produced_blocks() < capacity as u64 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(
            ring.produced_blocks(),
            capacity as u64,
            "producer never reached the backpressure cap"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(
            ring.produced_blocks(),
            capacity as u64,
            "backpressure must cap producer advance at ring capacity"
        );
        assert!(!ring.is_finished(), "producer ran past a stalled consumer");
        // The stalled consumer wakes up and drains: everyone finishes.
        let mut stalled_total = 0u64;
        for b in stalled.by_ref() {
            stalled_total += b.len() as u64;
        }
        producer.join().unwrap();
        assert_eq!(stalled_total, feed.stream_len() as u64);
        assert_eq!(live_total.join().unwrap(), feed.stream_len() as u64);
    });
    assert_eq!(feed.logical_passes(), 1);
}

#[test]
fn broadcast_dropped_consumer_mid_pass_leaves_survivors_and_accounting_intact() {
    let feed = broadcast_feed(3, 13);
    let ring = Broadcast::new(2);
    let mut quitter = ring.subscribe();
    let survivor = ring.subscribe();
    std::thread::scope(|s| {
        let producer = s.spawn(|| RoutedProducer::new(&feed, 8).run(&ring));
        let survivor_view = s.spawn(move || {
            let mut v = Vec::new();
            for b in survivor {
                v.extend_from_slice(&b);
            }
            v
        });
        // Consume one block, then die mid-pass.
        let first = quitter.next();
        assert!(first.is_some(), "non-empty stream yields a first block");
        drop(quitter);
        producer.join().unwrap();
        // The survivor still sees the whole stream, in order.
        assert_eq!(survivor_view.join().unwrap(), feed.routed());
    });
    assert_eq!(
        feed.logical_passes(),
        1,
        "a lost consumer must not change pass accounting"
    );
    assert_eq!(ring.produced_updates(), feed.stream_len() as u64);
}

#[test]
fn broadcast_stall_diagnostics_name_the_blocking_consumer() {
    let feed = broadcast_feed(2, 19);
    // Tiny threshold: the first push blocked on the stalled cursor
    // crosses it almost immediately.
    let ring = Broadcast::with_stall_threshold(1, std::time::Duration::from_millis(2));
    let mut stalled = ring.subscribe(); // consumer id 0
    let live = ring.subscribe(); // consumer id 1, drains promptly
    std::thread::scope(|s| {
        let producer = s.spawn(|| RoutedProducer::new(&feed, 4).run(&ring));
        let drain = s.spawn(move || {
            let mut n = 0u64;
            for b in live {
                n += b.len() as u64;
            }
            n
        });
        // The stall must become visible *while* the producer is still
        // stuck — that is the point of the diagnostics.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while ring.stall_events().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let events = ring.stall_events();
        assert!(
            !events.is_empty(),
            "no stall recorded while the producer was blocked"
        );
        assert_eq!(
            events[0].consumer, 0,
            "stall must name the slowest (stalled) cursor"
        );
        // Unstick the slow consumer: everyone finishes.
        let mut stalled_total = 0u64;
        for b in stalled.by_ref() {
            stalled_total += b.len() as u64;
        }
        producer.join().unwrap();
        assert_eq!(stalled_total, feed.stream_len() as u64);
        assert_eq!(drain.join().unwrap(), feed.stream_len() as u64);
    });
    let events = ring.stall_events();
    assert_eq!(events[0].consumer, 0);
    assert!(
        events[0].blocked_ns >= 2_000_000,
        "recorded stall duration {}ns is below the 2ms threshold",
        events[0].blocked_ns
    );
}

#[test]
fn broadcast_zero_consumer_feed_completes_unblocked() {
    let feed = broadcast_feed(2, 17);
    let ring = Broadcast::new(1);
    // No subscribers at all: with a capacity-1 ring, production must
    // still run to completion (nothing to wait for) and count one pass.
    RoutedProducer::new(&feed, 4).run(&ring);
    assert!(ring.is_finished());
    assert_eq!(ring.produced_updates(), feed.stream_len() as u64);
    assert_eq!(ring.active_consumers(), 0);
    assert_eq!(feed.logical_passes(), 1);
}
