//! Property-based tests on the core invariants, spanning crates.

use proptest::prelude::*;
use subgraph_streams::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The degeneracy never exceeds the maximum degree and every graph
    /// has a peeling order witnessing it.
    #[test]
    fn degeneracy_bounded(n in 2usize..40, mdiv in 1usize..4, seed in 0u64..1000) {
        let max_m = n * (n - 1) / 2;
        let m = max_m / mdiv;
        let g = sgs_graph::gen::gnm(n, m, seed);
        let cd = sgs_graph::degeneracy::CoreDecomposition::compute(&g);
        prop_assert!(cd.degeneracy <= g.max_degree());
        for v in g.vertices() {
            prop_assert!(cd.later_neighbors(&g, v).len() <= cd.degeneracy);
        }
    }

    /// rho(H) is sandwiched by n(H)/2 and |E(H)| for connected patterns.
    #[test]
    fn rho_bounds(kind in 0usize..4, size in 3usize..8) {
        let p = match kind {
            0 => Pattern::clique(size),
            1 => Pattern::cycle(size),
            2 => Pattern::star(size - 1),
            _ => Pattern::path(size - 1),
        };
        let rho = sgs_graph::decompose::rho(&p).unwrap();
        prop_assert!(rho.as_f64() * 2.0 >= p.num_vertices() as f64);
        prop_assert!(rho.as_f64() <= p.num_edges() as f64);
    }

    /// Turnstile streams always converge to the source graph, whatever
    /// the churn, and every prefix is a simple graph.
    #[test]
    fn turnstile_strict_and_convergent(n in 5usize..30, mdiv in 2usize..5,
                                       churn in 0.0f64..3.0, seed in 0u64..500) {
        let m = (n * (n - 1) / 2) / mdiv;
        let g = sgs_graph::gen::gnm(n, m, seed);
        let s = TurnstileStream::from_graph_with_churn(&g, churn, seed ^ 0xabc);
        prop_assert!(s.is_strict());
        prop_assert_eq!(s.final_graph().edge_vec(), g.edge_vec());
    }

    /// The l0-sampler never returns a deleted or absent key.
    #[test]
    fn l0_returns_live_keys(keys in prop::collection::hash_set(0u64..500, 1..60),
                            dead_frac in 0.0f64..0.9, seed in 0u64..500) {
        use sgs_stream::l0::L0Sampler;
        let keys: Vec<u64> = keys.into_iter().collect();
        let dead = ((keys.len() as f64) * dead_frac) as usize;
        let mut s = L0Sampler::new(30, 6, seed);
        for &k in &keys {
            s.update(k, 1);
        }
        for &k in keys.iter().take(dead) {
            s.update(k, -1);
        }
        let live: std::collections::HashSet<u64> = keys[dead..].iter().copied().collect();
        if let Some(k) = s.sample() {
            prop_assert!(live.contains(&k), "returned dead key {}", k);
        } else {
            // Failure allowed, but must not happen when support is empty
            // vs non-empty confusion: empty support must return None.
            if live.is_empty() {
                prop_assert!(s.support_is_empty());
            }
        }
    }

    /// Exact counters agree with the generic embedding counter.
    #[test]
    fn exact_counters_cross_check(n in 6usize..18, mdiv in 1usize..3, seed in 0u64..200) {
        let max_m = n * (n - 1) / 2;
        let g = sgs_graph::gen::gnm(n, max_m / (mdiv + 1), seed);
        for p in [Pattern::triangle(), Pattern::cycle(4), Pattern::star(3), Pattern::clique(4)] {
            let fast = sgs_graph::exact::count_pattern_auto(&g, &p);
            let slow = sgs_graph::exact::generic::count_pattern(&g, &p);
            prop_assert_eq!(fast, slow);
        }
    }

    /// A sampled copy, when produced, is a genuine subgraph isomorphic
    /// to the pattern (here: its edge count matches and all edges exist).
    #[test]
    fn sampler_soundness(seed in 0u64..150) {
        use sgs_core::{SamplerMode, SamplerPlan, SubgraphSampler};
        use sgs_query::exec::run_insertion;
        let g = sgs_graph::gen::gnm(20, 80, 3);
        let stream = InsertionStream::from_graph(&g, 4);
        let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
        let s = SubgraphSampler::new(plan, SamplerMode::Indexed, seed);
        let (out, rep) = run_insertion(s, &stream, seed ^ 0x5555);
        prop_assert!(rep.passes <= 3);
        if let Some(c) = out.copy {
            prop_assert_eq!(c.edges.len(), 3);
            for e in &c.edges {
                prop_assert!(g.has_edge(e.u(), e.v()));
            }
        }
    }

    /// Reservoir + position sampling: a random edge from the insertion
    /// executor is always a real edge of the final graph.
    #[test]
    fn executor_random_edge_sound(n in 5usize..25, seed in 0u64..300) {
        use sgs_query::{Answer, Query, RoundAdaptive};
        struct One { asked: bool, got: Option<Edge> }
        impl RoundAdaptive for One {
            type Output = Option<Edge>;
            fn next_round(&mut self, a: &[Answer]) -> Vec<Query> {
                if self.asked { self.got = a[0].expect_edge(); return Vec::new(); }
                self.asked = true;
                vec![Query::RandomEdge]
            }
            fn output(&mut self) -> Option<Edge> { self.got }
        }
        let m = (n * (n - 1) / 2) / 2;
        let g = sgs_graph::gen::gnm(n, m, seed);
        let stream = InsertionStream::from_graph(&g, seed ^ 1);
        let (out, _) = sgs_query::exec::run_insertion(One { asked: false, got: None }, &stream, seed ^ 2);
        if m > 0 {
            let e = out.expect("non-empty stream yields an edge");
            prop_assert!(g.has_edge(e.u(), e.v()));
        }
    }
}
