//! Property-based tests on the core invariants, spanning crates.
//!
//! The build environment has no crates.io access, so instead of proptest
//! these run each property over a seeded sweep of randomized cases drawn
//! from the workspace's own [`FastRng`] — fully deterministic, and the
//! failing case is identified by its case index.

use sgs_prng::FastRng;
use subgraph_streams::prelude::*;

const CASES: u64 = 48;

fn case_rng(test_tag: u64, case: u64) -> FastRng {
    FastRng::seed_from_u64(sgs_prng::split_seed(test_tag, case))
}

/// The degeneracy never exceeds the maximum degree and every graph has a
/// peeling order witnessing it.
#[test]
fn degeneracy_bounded() {
    for case in 0..CASES {
        let mut rng = case_rng(0xd11, case);
        let n = rng.gen_range(2usize..40);
        let mdiv = rng.gen_range(1usize..4);
        let seed = rng.next_u64();
        let max_m = n * (n - 1) / 2;
        let m = max_m / mdiv;
        let g = sgs_graph::gen::gnm(n, m, seed);
        let cd = sgs_graph::degeneracy::CoreDecomposition::compute(&g);
        assert!(cd.degeneracy <= g.max_degree(), "case {case}");
        for v in g.vertices() {
            assert!(
                cd.later_neighbors(&g, v).len() <= cd.degeneracy,
                "case {case}, vertex {v:?}"
            );
        }
    }
}

/// rho(H) is sandwiched by n(H)/2 and |E(H)| for connected patterns.
#[test]
fn rho_bounds() {
    for kind in 0usize..4 {
        for size in 3usize..8 {
            let p = match kind {
                0 => Pattern::clique(size),
                1 => Pattern::cycle(size),
                2 => Pattern::star(size - 1),
                _ => Pattern::path(size - 1),
            };
            let rho = sgs_graph::decompose::rho(&p).unwrap();
            assert!(rho.as_f64() * 2.0 >= p.num_vertices() as f64, "{p:?}");
            assert!(rho.as_f64() <= p.num_edges() as f64, "{p:?}");
        }
    }
}

/// Turnstile streams always converge to the source graph, whatever the
/// churn, and every prefix is a simple graph.
#[test]
fn turnstile_strict_and_convergent() {
    for case in 0..CASES {
        let mut rng = case_rng(0x7ab, case);
        let n = rng.gen_range(5usize..30);
        let mdiv = rng.gen_range(2usize..5);
        let churn = rng.gen_f64() * 3.0;
        let seed = rng.next_u64();
        let m = (n * (n - 1) / 2) / mdiv;
        let g = sgs_graph::gen::gnm(n, m, seed);
        let s = TurnstileStream::from_graph_with_churn(&g, churn, seed ^ 0xabc);
        assert!(s.is_strict(), "case {case}");
        assert_eq!(s.final_graph().edge_vec(), g.edge_vec(), "case {case}");
    }
}

/// The l0-sampler never returns a deleted or absent key.
#[test]
fn l0_returns_live_keys() {
    use sgs_stream::l0::L0Sampler;
    for case in 0..CASES {
        let mut rng = case_rng(0x1_0, case);
        let n_keys = rng.gen_range(1usize..60);
        let mut keys: Vec<u64> = Vec::new();
        while keys.len() < n_keys {
            let k = rng.gen_range(0u64..500);
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        let dead_frac = rng.gen_f64() * 0.9;
        let seed = rng.next_u64();
        let dead = ((keys.len() as f64) * dead_frac) as usize;
        let mut s = L0Sampler::new(30, 6, seed);
        for &k in &keys {
            s.update(k, 1);
        }
        for &k in keys.iter().take(dead) {
            s.update(k, -1);
        }
        let live: std::collections::HashSet<u64> = keys[dead..].iter().copied().collect();
        if let Some(k) = s.sample() {
            assert!(live.contains(&k), "case {case}: returned dead key {k}");
        } else if live.is_empty() {
            // Failure allowed, but empty support must report as empty.
            assert!(s.support_is_empty(), "case {case}");
        }
    }
}

/// Exact counters agree with the generic embedding counter.
#[test]
fn exact_counters_cross_check() {
    for case in 0..CASES {
        let mut rng = case_rng(0xecc, case);
        let n = rng.gen_range(6usize..18);
        let mdiv = rng.gen_range(1usize..3);
        let seed = rng.next_u64();
        let max_m = n * (n - 1) / 2;
        let g = sgs_graph::gen::gnm(n, max_m / (mdiv + 1), seed);
        for p in [
            Pattern::triangle(),
            Pattern::cycle(4),
            Pattern::star(3),
            Pattern::clique(4),
        ] {
            let fast = sgs_graph::exact::count_pattern_auto(&g, &p);
            let slow = sgs_graph::exact::generic::count_pattern(&g, &p);
            assert_eq!(fast, slow, "case {case}, {p:?}");
        }
    }
}

/// A sampled copy, when produced, is a genuine subgraph isomorphic to
/// the pattern (here: its edge count matches and all edges exist).
#[test]
fn sampler_soundness() {
    use sgs_core::{SamplerMode, SamplerPlan, SubgraphSampler};
    use sgs_query::exec::run_insertion;
    let g = sgs_graph::gen::gnm(20, 80, 3);
    let stream = InsertionStream::from_graph(&g, 4);
    let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
    for seed in 0..150u64 {
        let s = SubgraphSampler::new(plan.clone(), SamplerMode::Indexed, seed);
        let (out, rep) = run_insertion(s, &stream, seed ^ 0x5555);
        assert!(rep.passes <= 3, "seed {seed}");
        if let Some(c) = out.copy {
            assert_eq!(c.edges.len(), 3, "seed {seed}");
            for e in &c.edges {
                assert!(g.has_edge(e.u(), e.v()), "seed {seed}, edge {e:?}");
            }
        }
    }
}

/// Skip-ahead reservoir bank vs the per-offer oracle over randomized
/// offer patterns: `seen()` identical at every prefix, samples always
/// drawn from the offered set, and single-offer lanes always keep their
/// one item — in both modes, including duplicate-heavy patterns.
#[test]
fn reservoir_modes_agree_on_accounting_and_support() {
    use sgs_stream::reservoir::{ReservoirBank, ReservoirMode};
    for case in 0..CASES {
        let mut rng = case_rng(0x5e5, case);
        let lanes = rng.gen_range(1usize..24);
        let n_offers = rng.gen_range(1usize..400);
        let dup_mod = rng.gen_range(1u32..8); // small modulus = duplicate-heavy
        let seed = rng.next_u64();
        let mut offer: ReservoirBank<u32> =
            ReservoirBank::with_mode(lanes, seed, ReservoirMode::Offer);
        let mut skip: ReservoirBank<u32> =
            ReservoirBank::with_mode(lanes, seed, ReservoirMode::Skip);
        let mut offered: Vec<std::collections::HashSet<u32>> =
            vec![std::collections::HashSet::new(); lanes];
        for i in 0..n_offers {
            let item = (i as u32) % dup_mod;
            let a = rng.gen_range(0usize..lanes);
            let b = rng.gen_range(a..lanes) + 1;
            offer.offer_range(a, b, item);
            skip.offer_range(a, b, item);
            for set in offered[a..b].iter_mut() {
                set.insert(item);
            }
            assert_eq!(
                offer.seen_counts(),
                skip.seen_counts(),
                "case {case} step {i}"
            );
        }
        for (lane, offered_set) in offered.iter().enumerate() {
            for bank in [&offer, &skip] {
                match bank.sample(lane) {
                    Some(s) => assert!(offered_set.contains(&s), "case {case} lane {lane}"),
                    None => assert_eq!(bank.seen(lane), 0, "case {case} lane {lane}"),
                }
            }
            if offer.seen(lane) == 1 {
                // Single-offer lane: deterministically kept in both modes.
                assert_eq!(offer.sample(lane), skip.sample(lane), "case {case}");
            }
        }
        // Draw accounting: the oracle draws exactly once per offer; skip
        // never draws more than the oracle.
        assert_eq!(offer.rng_draws(), offer.seen_counts().iter().sum::<u64>());
        assert!(skip.rng_draws() <= offer.rng_draws(), "case {case}");
    }
}

/// Reservoir + position sampling: a random edge from the insertion
/// executor is always a real edge of the final graph.
#[test]
fn executor_random_edge_sound() {
    use sgs_query::{Answer, Query, RoundAdaptive};
    struct One {
        asked: bool,
        got: Option<Edge>,
    }
    impl RoundAdaptive for One {
        type Output = Option<Edge>;
        fn next_round(&mut self, a: &[Answer]) -> Vec<Query> {
            if self.asked {
                self.got = a[0].expect_edge();
                return Vec::new();
            }
            self.asked = true;
            vec![Query::RandomEdge]
        }
        fn output(&mut self) -> Option<Edge> {
            self.got
        }
    }
    for case in 0..CASES * 4 {
        let mut rng = case_rng(0xe5e, case);
        let n = rng.gen_range(5usize..25);
        let seed = rng.next_u64();
        let m = (n * (n - 1) / 2) / 2;
        let g = sgs_graph::gen::gnm(n, m, seed);
        let stream = InsertionStream::from_graph(&g, seed ^ 1);
        let (out, _) = sgs_query::exec::run_insertion(
            One {
                asked: false,
                got: None,
            },
            &stream,
            seed ^ 2,
        );
        if m > 0 {
            let e = out.expect("non-empty stream yields an edge");
            assert!(g.has_edge(e.u(), e.v()), "case {case}");
        }
    }
}

/// Broadcast-ring cursor invariants under randomized cooperative
/// interleavings: each consumer's cursor is monotone (one block at a
/// time), never ahead of what was produced, and the blocks it consumed,
/// concatenated in cursor order, reconstruct the exact routed update
/// sequence — for random ring capacities, block lengths, shard counts,
/// and consumer counts (including zero).
#[test]
fn broadcast_cursor_monotone_bounded_and_lossless() {
    use sgs_stream::broadcast::{Broadcast, RoutedProducer, TryNext};
    use sgs_stream::sharded::RoutedUpdate;
    use sgs_stream::ShardedFeed;
    for case in 0..CASES {
        let mut rng = case_rng(0xbca5, case);
        let n = rng.gen_range(5usize..25);
        let mdiv = rng.gen_range(2usize..5);
        let m = (n * (n - 1) / 2) / mdiv;
        let g = sgs_graph::gen::gnm(n, m, rng.next_u64());
        let shards = rng.gen_range(1usize..5);
        let stream = InsertionStream::from_graph(&g, rng.next_u64());
        let feed = ShardedFeed::partition(&stream, shards);
        let capacity = rng.gen_range(1usize..5);
        let block = rng.gen_range(1usize..9);
        let n_consumers = rng.gen_range(0usize..4);

        let ring = Broadcast::new(capacity);
        let mut consumers: Vec<_> = (0..n_consumers)
            .map(|_| (ring.subscribe(), Vec::<RoutedUpdate>::new(), false))
            .collect();
        let mut producer = RoutedProducer::new(&feed, block);
        let mut produced_done = false;
        let mut steps = 0usize;
        loop {
            steps += 1;
            assert!(
                steps < 200_000,
                "case {case}: interleaving failed to make progress"
            );
            // Randomized schedule: each step one actor moves once.
            let actor = rng.gen_range(0..(n_consumers as u64) + 1) as usize;
            if actor == n_consumers {
                produced_done = producer.pump(&ring);
            } else {
                let (c, seen, ended) = &mut consumers[actor];
                let before = c.blocks_consumed();
                match c.try_next() {
                    TryNext::Block(b) => {
                        seen.extend_from_slice(&b);
                        // Monotone: exactly one block per successful read.
                        assert_eq!(c.blocks_consumed(), before + 1, "case {case}");
                    }
                    TryNext::Pending => assert!(!*ended, "case {case}"),
                    TryNext::Ended => *ended = true,
                }
                // Bounded: a cursor never runs ahead of production.
                assert!(
                    c.blocks_consumed() <= ring.produced_blocks(),
                    "case {case}: cursor ahead of producer"
                );
                assert!(
                    c.updates_consumed() <= ring.produced_updates(),
                    "case {case}"
                );
            }
            if produced_done && consumers.iter().all(|(_, _, ended)| *ended) {
                break;
            }
        }
        // Lossless: every consumer's concatenated blocks are exactly the
        // routed source sequence (order, positions, routing, deltas).
        for (i, (c, seen, _)) in consumers.iter().enumerate() {
            assert_eq!(seen.as_slice(), feed.routed(), "case {case}, consumer {i}");
            assert_eq!(c.updates_consumed(), feed.stream_len() as u64);
            assert_eq!(c.blocks_consumed(), ring.produced_blocks());
        }
        assert_eq!(ring.produced_updates(), feed.stream_len() as u64);
        assert_eq!(feed.logical_passes(), 1, "case {case}");
    }
}
