//! Seeded distribution-equivalence regression tests for the QueryRouter
//! executors.
//!
//! The QueryRouter refactor of `sgs_query::exec` is pure routing: it may
//! change *where* per-update work happens, but not a single coin of
//! algorithm or sketch randomness. These tests pin that down two ways:
//!
//! 1. **Byte-identity** — full `Parallel` sampler banks (triangle and
//!    5-cycle, the two piece shapes of Lemma 4) driven through the
//!    router-based executors must produce *identical* per-trial outcomes
//!    to the frozen pre-refactor executors in `sgs_query::reference`,
//!    for every seed tried.
//! 2. **Statistical accuracy** — the router executors' estimates must
//!    still converge to the exact subgraph counts (the end-to-end check
//!    that the equivalence above is measuring the right thing).

use sgs_core::fgp::estimate_insertion;
use sgs_core::{SamplerMode, SamplerPlan, SubgraphSampler};
use sgs_query::exec::{run_insertion, run_turnstile};
use sgs_query::reference::{run_insertion_reference, run_turnstile_reference};
use sgs_query::Parallel;
use sgs_stream::hash::split_seed;
use sgs_stream::{InsertionStream, TurnstileStream};
use subgraph_streams::prelude::*;

fn bank(
    pattern: &Pattern,
    mode: SamplerMode,
    trials: usize,
    seed: u64,
) -> Parallel<SubgraphSampler> {
    let plan = SamplerPlan::new(pattern).unwrap();
    Parallel::new(
        (0..trials)
            .map(|i| SubgraphSampler::new(plan.clone(), mode, split_seed(seed, i as u64)))
            .collect(),
    )
}

#[test]
fn insertion_byte_identical_triangle() {
    let g = sgs_graph::gen::gnm(30, 140, 42);
    let ins = InsertionStream::from_graph(&g, 7);
    for seed in 0..8u64 {
        let (a, ra) = run_insertion(
            bank(&Pattern::triangle(), SamplerMode::Indexed, 400, seed),
            &ins,
            seed ^ 0xaa,
        );
        let (b, rb) = run_insertion_reference(
            bank(&Pattern::triangle(), SamplerMode::Indexed, 400, seed),
            &ins,
            seed ^ 0xaa,
        );
        assert_eq!(a, b, "seed {seed}: outcome mismatch");
        assert_eq!(ra.passes, rb.passes);
        assert_eq!(ra.rounds, rb.rounds);
        assert_eq!(ra.queries, rb.queries);
    }
}

#[test]
fn insertion_byte_identical_five_cycle() {
    let g = sgs_graph::gen::gnm(24, 110, 5);
    let ins = InsertionStream::from_graph(&g, 6);
    for seed in 0..8u64 {
        let (a, _) = run_insertion(
            bank(&Pattern::cycle(5), SamplerMode::Indexed, 300, seed),
            &ins,
            seed ^ 0xc5,
        );
        let (b, _) = run_insertion_reference(
            bank(&Pattern::cycle(5), SamplerMode::Indexed, 300, seed),
            &ins,
            seed ^ 0xc5,
        );
        assert_eq!(a, b, "seed {seed}: outcome mismatch");
    }
}

#[test]
fn turnstile_byte_identical_triangle_and_five_cycle() {
    let g = sgs_graph::gen::gnm(22, 90, 9);
    let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 10);
    for (pattern, trials) in [(Pattern::triangle(), 150), (Pattern::cycle(5), 100)] {
        for seed in 0..4u64 {
            let (a, _) = run_turnstile(
                bank(&pattern, SamplerMode::Relaxed, trials, seed),
                &tst,
                seed ^ 0x7,
            );
            let (b, _) = run_turnstile_reference(
                bank(&pattern, SamplerMode::Relaxed, trials, seed),
                &tst,
                seed ^ 0x7,
            );
            assert_eq!(a, b, "{pattern:?} seed {seed}: outcome mismatch");
        }
    }
}

#[test]
fn router_estimates_stay_accurate_triangle() {
    let g = sgs_graph::gen::gnm(30, 150, 21);
    let exact = sgs_graph::exact::triangles::count_triangles(&g);
    assert!(exact > 20, "workload sanity: {exact}");
    let ins = InsertionStream::from_graph(&g, 22);
    let est = estimate_insertion(&Pattern::triangle(), &ins, 40_000, 23).unwrap();
    assert_eq!(est.report.passes, 3);
    assert!(
        est.relative_error(exact) < 0.2,
        "estimate {} vs exact {exact}",
        est.estimate
    );
}

#[test]
fn router_estimates_stay_accurate_five_cycle() {
    let g = sgs_graph::gen::gnm(16, 60, 31);
    let exact = sgs_graph::exact::count_pattern_auto(&g, &Pattern::cycle(5));
    assert!(exact > 0, "workload sanity");
    let ins = InsertionStream::from_graph(&g, 32);
    let est = estimate_insertion(&Pattern::cycle(5), &ins, 120_000, 33).unwrap();
    assert_eq!(est.report.passes, 3);
    assert!(
        est.relative_error(exact) < 0.35,
        "estimate {} vs exact {exact}",
        est.estimate
    );
}
