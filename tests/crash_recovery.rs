//! Kill-and-restore crash-recovery harness — the durability subsystem's
//! headline guarantee, pinned end to end:
//!
//! For EVERY delivery-block boundary a checkpointed run can crash at,
//! `CheckpointSession::resume` + rerun produces an estimate
//! **byte-identical** to the uninterrupted run — same estimate bits,
//! hits, `m`, trials, and full [`ExecReport`] — at shards 1/2/4, in both
//! stream models, with both reservoir acceptance schemes. The sweep
//! enumerates crash points exhaustively rather than sampling them: the
//! recovery path has per-block state (snapshot cadence, mid-pass
//! offsets, round-history replay) where an off-by-one only shows at
//! specific boundaries.
//!
//! The failure edges ride along: a damaged WAL tail (truncation or bit
//! rot) and a version-bumped or bit-flipped snapshot must produce clean
//! structured errors — never a panic, never a silently wrong answer.

use sgs_core::fgp::{
    estimate_insertion_checkpointed, estimate_insertion_on_feed_with_opts,
    estimate_turnstile_checkpointed, estimate_turnstile_on_feed_with_block,
};
use sgs_query::{CheckpointSession, PassOpts, RouterArena};
use sgs_stream::persist::PersistError;
use sgs_stream::reservoir::ReservoirMode;
use sgs_stream::{ShardMap, ShardedFeed};
use subgraph_streams::prelude::*;

const SEED: u64 = 41;
const CHUNK: usize = 32;
const SNAP_EVERY: u64 = 2;

#[derive(Clone, Copy)]
enum Cfg {
    InsertionOffer,
    InsertionSkip,
    Turnstile,
}

impl Cfg {
    fn trials(self) -> usize {
        match self {
            Cfg::Turnstile => 120,
            _ => 200,
        }
    }

    fn opts(self) -> PassOpts {
        PassOpts::with_block(16).reservoir(match self {
            Cfg::InsertionOffer => ReservoirMode::Offer,
            _ => ReservoirMode::Skip,
        })
    }
}

fn feed_for(cfg: Cfg, shards: usize) -> ShardedFeed {
    let g = sgs_graph::gen::gnm(30, 140, 41);
    match cfg {
        Cfg::Turnstile => {
            let s = TurnstileStream::from_graph_with_churn(&g, 0.5, 42);
            ShardedFeed::partition(&s, shards)
        }
        _ => {
            let s = InsertionStream::from_graph(&g, 42);
            ShardedFeed::partition(&s, shards)
        }
    }
}

/// One checkpointed estimation attempt; `None` means the session's
/// simulated crash point fired.
fn drive(cfg: Cfg, feed: &ShardedFeed, session: &mut CheckpointSession) -> Option<CountEstimate> {
    let mut arena = RouterArena::new();
    match cfg {
        Cfg::Turnstile => estimate_turnstile_checkpointed(
            &Pattern::triangle(),
            feed,
            cfg.trials(),
            SEED,
            &mut arena,
            cfg.opts(),
            session,
        ),
        _ => estimate_insertion_checkpointed(
            &Pattern::triangle(),
            feed,
            cfg.trials(),
            SEED,
            &mut arena,
            cfg.opts(),
            SamplerMode::Indexed,
            session,
        ),
    }
    .expect("checkpointed run must not error")
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("sgs-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn assert_identical(rec: &CountEstimate, base: &CountEstimate, ctx: &str) {
    assert_eq!(
        rec.estimate.to_bits(),
        base.estimate.to_bits(),
        "estimate bits differ: {ctx}"
    );
    assert_eq!(rec.hits, base.hits, "hits differ: {ctx}");
    assert_eq!(rec.m, base.m, "m differs: {ctx}");
    assert_eq!(rec.trials, base.trials, "trials differ: {ctx}");
    assert_eq!(rec.report, base.report, "exec report differs: {ctx}");
}

/// Crash after every block 1..=total, recover, demand bytewise equality.
fn sweep(cfg: Cfg, tag: &str) {
    for shards in [1usize, 2, 4] {
        let feed = feed_for(cfg, shards);
        let dir = tmp_dir(&format!("{tag}-base-{shards}"));
        let mut session = CheckpointSession::create(&dir, &feed, SNAP_EVERY, CHUNK).unwrap();
        let base = drive(cfg, &feed, &mut session).expect("uninterrupted run completes");
        let total_blocks = session.blocks_processed();
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(total_blocks >= 4, "workload too small to crash anywhere");
        for crash_at in 1..=total_blocks {
            let dir = tmp_dir(&format!("{tag}-{shards}-{crash_at}"));
            let mut session = CheckpointSession::create(&dir, &feed, SNAP_EVERY, CHUNK).unwrap();
            session.set_crash_after(crash_at);
            assert!(
                drive(cfg, &feed, &mut session).is_none(),
                "crash point {crash_at} did not fire"
            );
            drop(session);
            let (mut session, wal_feed) = CheckpointSession::resume(&dir, SNAP_EVERY).unwrap();
            assert!(session.truncation_report().is_none());
            let rec = drive(cfg, &wal_feed, &mut session).expect("recovered run completes");
            assert_identical(
                &rec,
                &base,
                &format!("{tag}, {shards} shards, crash after block {crash_at}/{total_blocks}"),
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn insertion_offer_recovers_byte_identical_at_every_crash_point() {
    sweep(Cfg::InsertionOffer, "ins-offer");
}

#[test]
fn insertion_skip_recovers_byte_identical_at_every_crash_point() {
    sweep(Cfg::InsertionSkip, "ins-skip");
}

#[test]
fn turnstile_recovers_byte_identical_at_every_crash_point() {
    sweep(Cfg::Turnstile, "tst");
}

/// The checkpointed baseline is not its own universe: it must agree with
/// the plain (non-durable) executors on the estimate itself, so the
/// crash sweep above transitively pins recovery to the ordinary answer.
#[test]
fn checkpointed_baseline_matches_plain_executors() {
    for shards in [1usize, 2, 4] {
        let feed = feed_for(Cfg::InsertionSkip, shards);
        let dir = tmp_dir(&format!("plain-ins-{shards}"));
        let mut session = CheckpointSession::create(&dir, &feed, SNAP_EVERY, CHUNK).unwrap();
        let ckpt = drive(Cfg::InsertionSkip, &feed, &mut session).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let mut arena = RouterArena::new();
        let plain = estimate_insertion_on_feed_with_opts(
            &Pattern::triangle(),
            &feed,
            Cfg::InsertionSkip.trials(),
            SEED,
            &mut arena,
            Cfg::InsertionSkip.opts(),
            SamplerMode::Indexed,
        )
        .unwrap();
        assert_eq!(ckpt.estimate.to_bits(), plain.estimate.to_bits());
        assert_eq!(ckpt.hits, plain.hits);
        assert_eq!(ckpt.m, plain.m);
        assert_eq!(ckpt.trials, plain.trials);

        let feed = feed_for(Cfg::Turnstile, shards);
        let dir = tmp_dir(&format!("plain-tst-{shards}"));
        let mut session = CheckpointSession::create(&dir, &feed, SNAP_EVERY, CHUNK).unwrap();
        let ckpt = drive(Cfg::Turnstile, &feed, &mut session).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let mut arena = RouterArena::new();
        let plain = estimate_turnstile_on_feed_with_block(
            &Pattern::triangle(),
            &feed,
            Cfg::Turnstile.trials(),
            SEED,
            &mut arena,
            Cfg::Turnstile.opts().block,
        )
        .unwrap();
        assert_eq!(ckpt.estimate.to_bits(), plain.estimate.to_bits());
        assert_eq!(ckpt.hits, plain.hits);
        assert_eq!(ckpt.m, plain.m);
    }
}

// ---------------------------------------------------------------------
// Failure edges: damaged directories must error cleanly, never panic,
// never return a wrong answer.
// ---------------------------------------------------------------------

/// Crash a run so the directory holds a sealed WAL plus a snapshot, and
/// hand the paths back for mutilation.
fn crashed_dir(tag: &str) -> (std::path::PathBuf, ShardedFeed) {
    let feed = feed_for(Cfg::InsertionSkip, 2);
    let dir = tmp_dir(tag);
    let mut session = CheckpointSession::create(&dir, &feed, SNAP_EVERY, CHUNK).unwrap();
    session.set_crash_after(3);
    assert!(drive(Cfg::InsertionSkip, &feed, &mut session).is_none());
    assert!(
        session.snapshots_written() >= 1,
        "need a snapshot to damage"
    );
    (dir, feed)
}

fn wal_segments(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut v: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let n = p.file_name().unwrap().to_string_lossy().into_owned();
            n.starts_with("wal-") && n.ends_with(".seg")
        })
        .collect();
    v.sort();
    v
}

fn snapshot_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut v: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let n = p.file_name().unwrap().to_string_lossy().into_owned();
            n.starts_with("snap-") && n.ends_with(".bin")
        })
        .collect();
    v.sort();
    v
}

#[test]
fn damaged_wal_tail_errors_cleanly_never_panics() {
    let (dir, _feed) = crashed_dir("torn-wal");
    let seg = wal_segments(&dir).pop().expect("a WAL segment exists");
    let good = std::fs::read(&seg).unwrap();
    // Torn tails of every severity: losing any suffix loses the seal
    // record, so recovery must refuse — the ingest can no longer be
    // proven complete — with a structured error naming the cause.
    for cut in [1usize, 7, 64, good.len() / 2] {
        std::fs::write(&seg, &good[..good.len() - cut]).unwrap();
        let err = CheckpointSession::resume(&dir, SNAP_EVERY)
            .err()
            .expect("a torn WAL tail must not recover silently");
        let msg = err.to_string();
        assert!(msg.contains("unsealed"), "unexpected error: {msg}");
    }
    // Bit rot anywhere in the segment: the per-record checksum catches
    // every single-bit flip, so resume errors (or truncates to the last
    // good record and then refuses for the missing seal) — and never
    // panics or succeeds with different data.
    for pos in (0..good.len()).step_by(97) {
        let mut b = good.clone();
        b[pos] ^= 0x40;
        std::fs::write(&seg, &b).unwrap();
        assert!(
            CheckpointSession::resume(&dir, SNAP_EVERY).is_err(),
            "bit flip at byte {pos} went undetected"
        );
    }
    // Restoring the original bytes recovers again: the checks above
    // rejected the damage, not the directory.
    std::fs::write(&seg, &good).unwrap();
    CheckpointSession::resume(&dir, SNAP_EVERY).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn version_bumped_or_corrupt_snapshot_is_rejected_cleanly() {
    let (dir, _feed) = crashed_dir("bad-snap");
    let snap = snapshot_files(&dir).pop().expect("a snapshot exists");
    let good = std::fs::read(&snap).unwrap();
    // A snapshot from a future format version: explicit VersionMismatch
    // (checked before the checksum, so the error names the version).
    let mut bumped = good.clone();
    bumped[4] = bumped[4].wrapping_add(1);
    std::fs::write(&snap, &bumped).unwrap();
    let err = CheckpointSession::resume(&dir, SNAP_EVERY)
        .err()
        .expect("a version-bumped snapshot must be rejected");
    match err {
        PersistError::VersionMismatch {
            found, supported, ..
        } => {
            assert_eq!(found, sgs_stream::persist::PERSIST_VERSION + 1);
            assert_eq!(supported, sgs_stream::persist::PERSIST_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other}"),
    }
    // Bit rot inside the snapshot payload: checksum mismatch, clean error.
    for pos in (6..good.len()).step_by(131) {
        let mut b = good.clone();
        b[pos] ^= 0x01;
        std::fs::write(&snap, &b).unwrap();
        assert!(
            CheckpointSession::resume(&dir, SNAP_EVERY).is_err(),
            "snapshot bit flip at byte {pos} went undetected"
        );
    }
    std::fs::write(&snap, &good).unwrap();
    CheckpointSession::resume(&dir, SNAP_EVERY).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Directory-entry loss, benign flavor: the `MANIFEST` vanishes (its
/// rename was never made durable because the directory itself was not
/// fsynced — the failure mode the post-rename `fsync_dir` calls close).
/// Recovery must fall back to full WAL replay and still produce the
/// byte-identical answer: the manifest is an accelerator, not a source
/// of truth.
#[test]
fn lost_manifest_entry_recovers_via_full_wal_replay() {
    let feed = feed_for(Cfg::InsertionSkip, 2);
    let base_dir = tmp_dir("lost-manifest-base");
    let mut session = CheckpointSession::create(&base_dir, &feed, SNAP_EVERY, CHUNK).unwrap();
    let base = drive(Cfg::InsertionSkip, &feed, &mut session).expect("uninterrupted run completes");
    std::fs::remove_dir_all(&base_dir).unwrap();

    let (dir, _feed) = crashed_dir("lost-manifest");
    assert!(
        !snapshot_files(&dir).is_empty(),
        "a snapshot exists for the manifest to have pointed at"
    );
    std::fs::remove_file(dir.join("MANIFEST")).unwrap();
    let (mut session, wal_feed) =
        CheckpointSession::resume(&dir, SNAP_EVERY).expect("resume survives a lost MANIFEST");
    assert_eq!(
        session.blocks_processed(),
        0,
        "without a manifest there is no snapshot to restore; replay starts from block 0"
    );
    let rec = drive(Cfg::InsertionSkip, &wal_feed, &mut session).expect("recovered run completes");
    assert_identical(&rec, &base, "lost MANIFEST, full WAL replay");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Directory-entry loss, fatal flavor: the `MANIFEST` survived but the
/// snapshot file it points at is gone. The manifest is the authority
/// here — recovery must refuse with a structured error naming the
/// missing snapshot, never panic, and never silently replay as if no
/// snapshot had been published (that answer could differ from what a
/// concurrent reader already saw).
#[test]
fn manifest_pointing_at_missing_snapshot_errors_cleanly() {
    let (dir, _feed) = crashed_dir("lost-snap");
    let snap = snapshot_files(&dir).pop().expect("a snapshot exists");
    std::fs::remove_file(&snap).unwrap();
    let err = CheckpointSession::resume(&dir, SNAP_EVERY)
        .err()
        .expect("a dangling MANIFEST pointer must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("missing snapshot") && msg.contains("directory entry lost?"),
        "unexpected error: {msg}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Placement-aware recovery: a feed partitioned under a *non-uniform*
/// [`ShardMap`] (load-balancing overrides) must checkpoint and resume
/// into the **same** placement — the v2 WAL seal carries the override
/// table — and the recovered run must stay byte-identical to the
/// uninterrupted one. Before the map travelled in the seal, resume
/// rebuilt the feed under the uniform hash and rejected every override
/// loudly; the uniform-only constructor still does, which this test
/// pins as the guard against silently mis-homed recoveries.
#[test]
fn placement_overrides_survive_checkpoint_recovery() {
    let g = sgs_graph::gen::gnm(30, 140, 41);
    let s = InsertionStream::from_graph(&g, 42);
    // Derive a skewed-but-real placement from the measured delivery
    // counts, exactly as a load-balancing caller would.
    let probe = ShardedFeed::partition(&s, 4);
    let counts = probe.vertex_delivery_counts();
    let map = ShardMap::balanced(4, &counts, 8);
    assert!(
        !map.is_uniform(),
        "balanced map produced no overrides; workload too flat to test"
    );
    let feed = ShardedFeed::partition_with_map(&s, map.clone());

    let cfg = Cfg::InsertionOffer;
    let dir = tmp_dir("placement-base");
    let mut session = CheckpointSession::create(&dir, &feed, SNAP_EVERY, CHUNK).unwrap();
    let base = drive(cfg, &feed, &mut session).expect("uninterrupted run completes");
    let total_blocks = session.blocks_processed();
    std::fs::remove_dir_all(&dir).unwrap();
    assert!(total_blocks >= 4, "workload too small to crash anywhere");

    for crash_at in [1, total_blocks / 2, total_blocks] {
        let dir = tmp_dir(&format!("placement-{crash_at}"));
        let mut session = CheckpointSession::create(&dir, &feed, SNAP_EVERY, CHUNK).unwrap();
        session.set_crash_after(crash_at);
        assert!(drive(cfg, &feed, &mut session).is_none());
        drop(session);
        let (mut session, wal_feed) = CheckpointSession::resume(&dir, SNAP_EVERY).unwrap();
        assert_eq!(
            wal_feed.shard_map(),
            feed.shard_map(),
            "recovered feed lost its placement overrides"
        );
        let rec = drive(cfg, &wal_feed, &mut session).expect("recovered run completes");
        assert_identical(
            &rec,
            &base,
            &format!("placement-aware recovery, crash after block {crash_at}/{total_blocks}"),
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
