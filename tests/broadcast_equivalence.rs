//! Broadcast-ingest conformance suite: every consumer drawing from the
//! shared ring must answer **byte-identically** to its single-stream
//! counterpart.
//!
//! One `Broadcast` ring fans the routed stream out to the per-shard
//! QueryRouter drivers, the TRIÈST baseline, the exact `CsrGraph`
//! oracle, and raw pass counters. This suite pins, for shard counts
//! 1/2/4, triangle and 5-cycle banks, insertion and turnstile models,
//! blocked and scalar feed paths, and both reservoir acceptance schemes:
//!
//! * **router consumers** — broadcast trial outcomes == the
//!   single-stream executors' (and, in per-offer mode, the frozen
//!   `sgs_query::reference` oracle's);
//! * **TRIÈST** — the ring-fed baseline == a private replay with the
//!   same seed, coin for coin;
//! * **exact oracle** — the ring-materialized CSR count == the
//!   store-everything baseline == the final graph's exact count;
//! * **raw counter** — exactly the stream length, once;
//! * **cached delivery flags** — the owner/other shard ids the ring
//!   carries (computed once at buffer-fill time) == freshly recomputed
//!   shard hashes, at every shard count (the fix that keeps broadcast
//!   cursor reads hash-free);
//! * ring geometry (capacity, transport block) never changes an answer,
//!   including a capacity-1 ring that forces maximal backpressure.

use sgs_core::baselines::exact_stream::count_exact;
use sgs_core::baselines::triest::estimate_triest;
use sgs_core::fgp::{
    estimate_insertion_broadcast_with_opts, estimate_turnstile_broadcast_with_opts, triest_seed,
    ConsumerSet,
};
use sgs_core::{SamplerMode, SamplerPlan, SubgraphSampler};
use sgs_query::broadcast::{
    run_insertion_broadcast_with_opts, run_turnstile_broadcast_with_opts, BroadcastOpts,
};
use sgs_query::exec::run_insertion_with_opts;
use sgs_query::reference::run_insertion_reference;
use sgs_query::sharded::run_turnstile_sharded_with_block;
use sgs_query::{ExecPolicy, Parallel, PassOpts, ReservoirMode, RouterArena};
use sgs_stream::hash::split_seed;
use sgs_stream::sharded::shard_of_vertex;
use sgs_stream::{InsertionStream, ShardMap, ShardedFeed, TurnstileStream};
use subgraph_streams::prelude::*;

const SHARD_SWEEP: [usize; 3] = [1, 2, 4];
/// Feed-path block sizes: scalar, an odd remainder-heavy size, default.
const BLOCK_SWEEP: [usize; 3] = [0, 17, 128];

fn bank(
    pattern: &Pattern,
    mode: SamplerMode,
    trials: usize,
    seed: u64,
) -> Parallel<SubgraphSampler> {
    let plan = SamplerPlan::new(pattern).unwrap();
    Parallel::new(
        (0..trials)
            .map(|i| SubgraphSampler::new(plan.clone(), mode, split_seed(seed, i as u64)))
            .collect(),
    )
}

#[test]
fn cached_delivery_flags_match_recomputed_hashes() {
    // The satellite fix this suite pins: owned-delivery routing is
    // cached at buffer-fill time, and the cache must agree with a fresh
    // hash at every shard count — broadcast consumers trust it blindly.
    let g = sgs_graph::gen::gnm(32, 150, 401);
    let tst = TurnstileStream::from_graph_with_churn(&g, 1.2, 402);
    for &shards in &SHARD_SWEEP {
        let feed = ShardedFeed::partition(&tst, shards);
        for r in feed.routed() {
            let (u, v) = r.update.edge.endpoints();
            assert_eq!(r.owner as usize, shard_of_vertex(u.0, shards), "{r:?}");
            assert_eq!(r.other as usize, shard_of_vertex(v.0, shards), "{r:?}");
        }
    }
}

#[test]
fn broadcast_insertion_matches_single_stream_all_modes_and_blocks() {
    // The full insertion conformance cross: shards × patterns × blocks ×
    // reservoir schemes, against the single-stream executor (which is
    // itself pinned to the frozen reference elsewhere).
    let g = sgs_graph::gen::gnm(26, 120, 411);
    let ins = InsertionStream::from_graph(&g, 412);
    for (pattern, trials) in [(Pattern::triangle(), 250), (Pattern::cycle(5), 150)] {
        for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
            for &block in &BLOCK_SWEEP {
                let opts = PassOpts::with_block(block).reservoir(mode);
                let sampler = SamplerMode::Relaxed; // exercises reservoirs
                let (want, want_rep) =
                    run_insertion_with_opts(bank(&pattern, sampler, trials, 5), &ins, 0xb0, opts);
                for &shards in &SHARD_SWEEP {
                    let feed = ShardedFeed::partition(&ins, shards);
                    let mut arena = RouterArena::new();
                    let (got, got_rep) = run_insertion_broadcast_with_opts(
                        bank(&pattern, sampler, trials, 5),
                        &feed,
                        0xb0,
                        &mut arena,
                        opts,
                        BroadcastOpts::default(),
                        &mut [],
                    );
                    assert_eq!(
                        got, want,
                        "{pattern:?}, {mode:?}, block {block}, {shards} shards"
                    );
                    assert_eq!(got_rep.passes, want_rep.passes);
                    assert_eq!(feed.logical_passes() as usize, got_rep.passes);
                }
            }
        }
    }
}

#[test]
fn broadcast_offer_mode_matches_frozen_reference() {
    // Per-offer reservoirs are byte-identical to the pre-router frozen
    // executors; the broadcast path must inherit that chain end to end.
    let g = sgs_graph::gen::gnm(24, 100, 421);
    let ins = InsertionStream::from_graph(&g, 422);
    let (want, _) = run_insertion_reference(
        bank(&Pattern::triangle(), SamplerMode::Indexed, 300, 7),
        &ins,
        0xf0,
    );
    for &shards in &SHARD_SWEEP {
        let feed = ShardedFeed::partition(&ins, shards);
        let mut arena = RouterArena::new();
        let (got, _) = run_insertion_broadcast_with_opts(
            bank(&Pattern::triangle(), SamplerMode::Indexed, 300, 7),
            &feed,
            0xf0,
            &mut arena,
            PassOpts::oracle(),
            BroadcastOpts::default(),
            &mut [],
        );
        assert_eq!(got, want, "{shards} shards vs frozen reference");
    }
}

#[test]
fn broadcast_turnstile_matches_single_stream_all_blocks() {
    let g = sgs_graph::gen::gnm(22, 90, 431);
    let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 432);
    for (pattern, trials) in [(Pattern::triangle(), 120), (Pattern::cycle(5), 80)] {
        for &block in &BLOCK_SWEEP {
            // Single-stream counterpart: the one-shard sharded driver
            // (== `run_turnstile` at the default block).
            let single_feed = ShardedFeed::partition(&tst, 1);
            let mut single_arena = RouterArena::new();
            let (want, _) = run_turnstile_sharded_with_block(
                bank(&pattern, SamplerMode::Relaxed, trials, 3),
                &single_feed,
                0x71,
                &mut single_arena,
                block,
            );
            for &shards in &SHARD_SWEEP {
                let feed = ShardedFeed::partition(&tst, shards);
                let mut arena = RouterArena::new();
                let (got, _) = run_turnstile_broadcast_with_opts(
                    bank(&pattern, SamplerMode::Relaxed, trials, 3),
                    &feed,
                    0x71,
                    &mut arena,
                    PassOpts::with_block(block),
                    BroadcastOpts::default(),
                    &mut [],
                );
                assert_eq!(got, want, "{pattern:?}, block {block}, {shards} shards");
            }
        }
    }
}

#[test]
fn ring_geometry_never_changes_answers() {
    // Transport knobs (capacity, block length) are pure backpressure /
    // granularity controls: a capacity-1 ring with 3-update blocks must
    // answer exactly like the default 8×256 ring.
    let g = sgs_graph::gen::gnm(20, 80, 441);
    let ins = InsertionStream::from_graph(&g, 442);
    let feed = ShardedFeed::partition(&ins, 3);
    let mut arena = RouterArena::new();
    let mk = || bank(&Pattern::triangle(), SamplerMode::Relaxed, 200, 11);
    let (want, _) = run_insertion_broadcast_with_opts(
        mk(),
        &feed,
        0xaa,
        &mut arena,
        PassOpts::default(),
        BroadcastOpts::default(),
        &mut [],
    );
    for (capacity, block) in [(1usize, 3usize), (2, 1), (4, 1000), (1, 256)] {
        let (got, _) = run_insertion_broadcast_with_opts(
            mk(),
            &feed,
            0xaa,
            &mut arena,
            PassOpts::default(),
            BroadcastOpts {
                ring_capacity: capacity,
                ring_block: block,
                ..BroadcastOpts::default()
            },
            &mut [],
        );
        assert_eq!(got, want, "ring capacity {capacity}, block {block}");
    }
}

#[test]
fn insertion_bundle_consumers_match_their_private_counterparts() {
    // The headline serving-path claim: TRIÈST, the exact CSR oracle, and
    // the raw counter ride the estimator's ingest and still answer
    // byte-identically to private replays — at every shard count, in
    // both reservoir modes, blocked and scalar.
    let g = sgs_graph::gen::gnm(28, 130, 451);
    let ins = InsertionStream::from_graph(&g, 452);
    let exact_direct = sgs_graph::exact::count_pattern_auto(&g, &Pattern::triangle());
    let private_exact = count_exact(&Pattern::triangle(), &ins);
    assert_eq!(private_exact.count, exact_direct);
    let private_triest = estimate_triest(&ins, 64, triest_seed(91));
    for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
        for &block in &[0usize, 128] {
            let opts = PassOpts::with_block(block).reservoir(mode);
            for &shards in &SHARD_SWEEP {
                let feed = ShardedFeed::partition(&ins, shards);
                let mut arena = RouterArena::new();
                let bundle = estimate_insertion_broadcast_with_opts(
                    &Pattern::triangle(),
                    &feed,
                    800,
                    91,
                    &mut arena,
                    opts,
                    SamplerMode::Relaxed,
                    ConsumerSet {
                        triest_capacity: Some(64),
                        exact: true,
                        extra_raw: 2,
                    },
                )
                .unwrap();
                let tag = format!("{mode:?}, block {block}, {shards} shards");
                // TRIÈST: bitwise f64 equality — same coins, same order.
                let t = bundle.triest.as_ref().unwrap();
                assert_eq!(
                    t.estimate.to_bits(),
                    private_triest.estimate.to_bits(),
                    "{tag}"
                );
                assert_eq!(t.reservoir_edges, private_triest.reservoir_edges, "{tag}");
                // Exact CSR oracle: equals the store-everything baseline
                // and the direct count.
                assert_eq!(bundle.exact, Some(exact_direct), "{tag}");
                // Raw counters: the stream, once, each.
                assert_eq!(bundle.raw_updates, ins.len() as u64, "{tag}");
                assert_eq!(bundle.extra_raw, vec![ins.len() as u64; 2], "{tag}");
                // And the estimator itself is unchanged by the riders.
                let single = sgs_core::fgp::estimate_insertion_threaded_with_opts(
                    &Pattern::triangle(),
                    &ins,
                    800,
                    1,
                    91,
                    opts,
                    SamplerMode::Relaxed,
                )
                .unwrap();
                assert_eq!(bundle.estimate.hits, single.hits, "{tag}");
                assert_eq!(bundle.estimate.estimate, single.estimate, "{tag}");
            }
        }
    }
}

#[test]
fn turnstile_bundle_consumers_match_their_private_counterparts() {
    let g = sgs_graph::gen::gnm(24, 100, 461);
    let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 462);
    let exact_direct = sgs_graph::exact::count_pattern_auto(&g, &Pattern::triangle());
    assert_eq!(count_exact(&Pattern::triangle(), &tst).count, exact_direct);
    let single = sgs_core::fgp::estimate_turnstile(&Pattern::triangle(), &tst, 300, 93).unwrap();
    for &block in &[0usize, 128] {
        for &shards in &SHARD_SWEEP {
            let feed = ShardedFeed::partition(&tst, shards);
            let mut arena = RouterArena::new();
            let bundle = estimate_turnstile_broadcast_with_opts(
                &Pattern::triangle(),
                &feed,
                300,
                93,
                &mut arena,
                PassOpts::with_block(block),
                ConsumerSet::default(),
            )
            .unwrap();
            let tag = format!("block {block}, {shards} shards");
            assert!(bundle.triest.is_none(), "{tag}: TRIÈST is insertion-only");
            assert_eq!(bundle.exact, Some(exact_direct), "{tag}");
            assert_eq!(bundle.raw_updates, tst.len() as u64, "{tag}");
            assert_eq!(bundle.estimate.hits, single.hits, "{tag}");
            assert_eq!(bundle.estimate.estimate, single.estimate, "{tag}");
        }
    }
}

#[test]
fn placement_and_policy_never_change_broadcast_answers() {
    // The load-aware ShardMap on the ring path: re-homing hot vertices
    // onto colder shards changes only *which* consumer does the work,
    // never an answer, and the injected ExecPolicy (serial vs persistent
    // threaded workers) is equally invisible. Baseline: the
    // uniform-placement broadcast run, which the rest of this suite pins
    // to the single-stream executors.
    let g = sgs_graph::gen::zipf_hub(100, 700, 1.0, 71);
    let ins = InsertionStream::from_graph(&g, 72);
    let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 73);
    let shards = 3;
    let uniform_ins = ShardedFeed::partition(&ins, shards);
    let uniform_tst = ShardedFeed::partition(&tst, shards);
    let map = ShardMap::balanced(shards, &uniform_ins.vertex_delivery_counts(), 8);
    assert!(!map.is_uniform(), "hub workload must produce overrides");
    let mut arena = RouterArena::new();
    let (want_i, _) = run_insertion_broadcast_with_opts(
        bank(&Pattern::triangle(), SamplerMode::Relaxed, 200, 17),
        &uniform_ins,
        0x71,
        &mut arena,
        PassOpts::default(),
        BroadcastOpts::default(),
        &mut [],
    );
    let (want_t, _) = run_turnstile_broadcast_with_opts(
        bank(&Pattern::triangle(), SamplerMode::Relaxed, 150, 18),
        &uniform_tst,
        0x72,
        &mut arena,
        PassOpts::with_block(64),
        BroadcastOpts::default(),
        &mut [],
    );
    let placed_ins = ShardedFeed::partition_with_map(&ins, map.clone());
    let placed_tst = ShardedFeed::partition_with_map(&tst, map);
    for policy in [ExecPolicy::serial(), ExecPolicy::threaded()] {
        let (got, _) = run_insertion_broadcast_with_opts(
            bank(&Pattern::triangle(), SamplerMode::Relaxed, 200, 17),
            &placed_ins,
            0x71,
            &mut arena,
            PassOpts::default(),
            BroadcastOpts::with_policy(policy),
            &mut [],
        );
        assert_eq!(got, want_i, "insertion, {policy:?}");
        let (got, _) = run_turnstile_broadcast_with_opts(
            bank(&Pattern::triangle(), SamplerMode::Relaxed, 150, 18),
            &placed_tst,
            0x72,
            &mut arena,
            PassOpts::with_block(64),
            BroadcastOpts::with_policy(policy),
            &mut [],
        );
        assert_eq!(got, want_t, "turnstile, {policy:?}");
    }
}
