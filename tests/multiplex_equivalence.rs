//! Multiplexer equivalence: every query in a shared-pass `QuerySet` run
//! must answer **byte-identically** to its solo run.
//!
//! The sweep covers shards 1/2/4 × mixed triangle+5-cycle query sets ×
//! insertion+turnstile models × blocked/scalar feed paths × reservoir
//! offer+skip modes. Solo runs go through the sharded executors, which
//! `tests/sharded_equivalence.rs` pins to the frozen reference chain —
//! so in offer mode the multiplexed answers are transitively pinned to
//! the pre-router reference executors (the frozen-reference chain), and
//! in skip mode to the solo skip-ahead coin sequence.
//!
//! Also asserted: N jobs sharing rounds cost `max_j rounds_j` logical
//! passes (the whole point), per-job `ExecReport` pass/round/query
//! counters match solo exactly, and the ring engine reproduces the
//! sharded engine.

use sgs_core::fgp::{
    estimate_insertion_on_feed_with_exec, estimate_multi_insertion,
    estimate_multi_insertion_broadcast, estimate_multi_turnstile,
    estimate_turnstile_on_feed_with_exec,
};
use sgs_core::{MultiQuerySpec, SamplerMode};
use sgs_query::{BroadcastOpts, ExecPolicy, PassOpts, ReservoirMode, RouterArena};
use sgs_stream::{InsertionStream, ShardedFeed, TurnstileStream};
use subgraph_streams::prelude::*;

const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

/// A mixed admission batch: two patterns, different trial counts, seeds,
/// sampler modes, and both reservoir acceptance schemes.
fn mixed_specs() -> Vec<MultiQuerySpec> {
    vec![
        MultiQuerySpec {
            pattern: Pattern::triangle(),
            trials: 60,
            seed: 101,
            sampler: SamplerMode::Indexed,
            reservoir: ReservoirMode::Offer,
        },
        MultiQuerySpec {
            pattern: Pattern::cycle(5),
            trials: 35,
            seed: 202,
            sampler: SamplerMode::Relaxed,
            reservoir: ReservoirMode::Skip,
        },
        MultiQuerySpec {
            pattern: Pattern::triangle(),
            trials: 20,
            seed: 303,
            sampler: SamplerMode::Relaxed,
            reservoir: ReservoirMode::Offer,
        },
        MultiQuerySpec {
            pattern: Pattern::cycle(5),
            trials: 15,
            seed: 404,
            sampler: SamplerMode::Relaxed,
            reservoir: ReservoirMode::Skip,
        },
    ]
}

fn assert_estimates_equal(a: &sgs_core::CountEstimate, b: &sgs_core::CountEstimate, ctx: &str) {
    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "estimate {ctx}");
    assert_eq!(a.hits, b.hits, "hits {ctx}");
    assert_eq!(a.trials, b.trials, "trials {ctx}");
    assert_eq!(a.m, b.m, "m {ctx}");
}

#[test]
fn insertion_mux_matches_solo_across_shards_and_blocks() {
    let g = sgs_graph::gen::gnm(48, 220, 42);
    let ins = InsertionStream::from_graph(&g, 7);
    let specs = mixed_specs();
    for &shards in &SHARD_SWEEP {
        let feed = ShardedFeed::partition(&ins, shards);
        for &block in &[0usize, 128] {
            let mut arena = RouterArena::new();
            let (ests, admission) = estimate_multi_insertion(
                &specs,
                &feed,
                &mut arena,
                PassOpts::with_block(block),
                ExecPolicy::serial(),
            )
            .unwrap();
            // Every sampler is 3-round: 4 jobs share exactly 3 passes.
            assert_eq!(admission.rounds.len(), 3, "{shards} shards, block {block}");
            assert_eq!(feed.logical_passes() % 3, 0);
            for (j, spec) in specs.iter().enumerate() {
                let mut solo_arena = RouterArena::new();
                let solo = estimate_insertion_on_feed_with_exec(
                    &spec.pattern,
                    &feed,
                    spec.trials,
                    spec.seed,
                    &mut solo_arena,
                    PassOpts::with_block(block).reservoir(spec.reservoir),
                    spec.sampler,
                    ExecPolicy::serial(),
                )
                .unwrap();
                let ctx = format!("job {j}, {shards} shards, block {block}");
                assert_estimates_equal(&ests[j], &solo, &ctx);
                assert_eq!(ests[j].report.passes, solo.report.passes, "{ctx}");
                assert_eq!(ests[j].report.rounds, solo.report.rounds, "{ctx}");
                assert_eq!(ests[j].report.queries, solo.report.queries, "{ctx}");
            }
        }
    }
}

#[test]
fn turnstile_mux_matches_solo_across_shards_and_blocks() {
    let g = sgs_graph::gen::gnm(48, 220, 43);
    let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 44);
    let specs = mixed_specs();
    for &shards in &SHARD_SWEEP {
        let feed = ShardedFeed::partition(&tst, shards);
        for &block in &[0usize, 128] {
            let mut arena = RouterArena::new();
            let (ests, admission) = estimate_multi_turnstile(
                &specs,
                &feed,
                &mut arena,
                PassOpts::with_block(block),
                ExecPolicy::serial(),
            )
            .unwrap();
            assert_eq!(admission.rounds.len(), 3);
            for (j, spec) in specs.iter().enumerate() {
                let mut solo_arena = RouterArena::new();
                let solo = estimate_turnstile_on_feed_with_exec(
                    &spec.pattern,
                    &feed,
                    spec.trials,
                    spec.seed,
                    &mut solo_arena,
                    PassOpts::with_block(block),
                    ExecPolicy::serial(),
                )
                .unwrap();
                let ctx = format!("job {j}, {shards} shards, block {block}");
                assert_estimates_equal(&ests[j], &solo, &ctx);
            }
        }
    }
}

#[test]
fn threaded_policy_is_byte_identical_to_serial() {
    let g = sgs_graph::gen::gnm(48, 220, 45);
    let ins = InsertionStream::from_graph(&g, 46);
    let feed = ShardedFeed::partition(&ins, 4);
    let specs = mixed_specs();
    let mut arena = RouterArena::new();
    let (serial, _) = estimate_multi_insertion(
        &specs,
        &feed,
        &mut arena,
        PassOpts::with_block(128),
        ExecPolicy::serial(),
    )
    .unwrap();
    let mut arena2 = RouterArena::new();
    let (threaded, _) = estimate_multi_insertion(
        &specs,
        &feed,
        &mut arena2,
        PassOpts::with_block(128),
        ExecPolicy::threaded(),
    )
    .unwrap();
    for (j, (a, b)) in serial.iter().zip(&threaded).enumerate() {
        assert_estimates_equal(a, b, &format!("job {j}"));
    }
}

#[test]
fn ring_engine_matches_sharded_engine() {
    let g = sgs_graph::gen::gnm(48, 220, 47);
    let ins = InsertionStream::from_graph(&g, 48);
    let specs = mixed_specs();
    for &shards in &SHARD_SWEEP {
        let feed = ShardedFeed::partition(&ins, shards);
        let mut arena = RouterArena::new();
        let (sharded, _) = estimate_multi_insertion(
            &specs,
            &feed,
            &mut arena,
            PassOpts::with_block(64),
            ExecPolicy::serial(),
        )
        .unwrap();
        for policy in [ExecPolicy::serial(), ExecPolicy::threaded()] {
            let mut ring_arena = RouterArena::new();
            let (ringed, _) = estimate_multi_insertion_broadcast(
                &specs,
                &feed,
                &mut ring_arena,
                PassOpts::with_block(64),
                BroadcastOpts::with_policy(policy),
            )
            .unwrap();
            for (j, (a, b)) in sharded.iter().zip(&ringed).enumerate() {
                assert_estimates_equal(a, b, &format!("job {j}, {shards} shards, {policy:?}"));
            }
        }
    }
}

#[test]
fn arena_reuse_across_mux_runs_is_stable() {
    let g = sgs_graph::gen::gnm(48, 220, 49);
    let ins = InsertionStream::from_graph(&g, 50);
    let feed = ShardedFeed::partition(&ins, 2);
    let specs = mixed_specs();
    let mut arena = RouterArena::new();
    let (first, _) = estimate_multi_insertion(
        &specs,
        &feed,
        &mut arena,
        PassOpts::with_block(64),
        ExecPolicy::serial(),
    )
    .unwrap();
    let (second, _) = estimate_multi_insertion(
        &specs,
        &feed,
        &mut arena,
        PassOpts::with_block(64),
        ExecPolicy::serial(),
    )
    .unwrap();
    for (j, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_estimates_equal(a, b, &format!("warm-arena job {j}"));
    }
    assert_eq!(
        arena.growth_events_after_warmup(),
        0,
        "warm mux runs must not grow the arena"
    );
}
