//! # subgraph-streams
//!
//! A streaming subgraph-counting library reproducing **Fichtenberger &
//! Peng, “Approximately Counting Subgraphs in Data Streams” (PODS 2022,
//! arXiv:2203.14225)**.
//!
//! The crate is a facade over the workspace:
//!
//! * [`graph`] — graphs, patterns, fractional edge covers `ρ(H)`, exact
//!   counters, generators ([`sgs_graph`]),
//! * [`stream`] — insertion-only/turnstile streams, reservoir and
//!   ℓ₀-samplers, space accounting ([`sgs_stream`]),
//! * [`query`] — the augmented general graph model, round-adaptive
//!   algorithms, and the query→streaming transformation of Theorems 9/11
//!   ([`sgs_query`]),
//! * [`core`] — the FGP 3-pass subgraph counter (Theorem 1) and the ERS
//!   `≤5r`-pass low-degeneracy clique counter (Theorem 2)
//!   ([`sgs_core`]).
//!
//! ## Counting triangles in three passes
//!
//! ```
//! use subgraph_streams::prelude::*;
//!
//! let graph = sgs_graph::gen::gnm(100, 600, 7);
//! let stream = InsertionStream::from_graph(&graph, 8);
//! let est = sgs_core::fgp::estimate_insertion(
//!     &Pattern::triangle(), &stream, 20_000, 9,
//! ).unwrap();
//! assert_eq!(est.report.passes, 3);
//! ```

pub use sgs_core as core;
pub use sgs_graph as graph;
pub use sgs_query as query;
pub use sgs_stream as stream;

/// Everything most users need.
pub mod prelude {
    pub use sgs_core::ers::{count_cliques_insertion, ErsParams};
    pub use sgs_core::fgp::{estimate_insertion, estimate_turnstile, practical_trials};
    pub use sgs_core::{CountEstimate, SamplerMode, SamplerPlan};
    pub use sgs_graph::{AdjListGraph, Edge, Pattern, StaticGraph, VertexId};
    pub use sgs_query::{ExecReport, RoundAdaptive};
    pub use sgs_stream::{EdgeStream, InsertionStream, TurnstileStream};
}
