//! `sgs` — command-line streaming subgraph counter.
//!
//! ```text
//! sgs count   --edges FILE --pattern triangle [--trials N] [--eps E] [--seed S] [--turnstile] [--shards N] [--block B] [--reservoir offer|skip] [--relaxed] [--broadcast] [--consumers N]
//! sgs search  --edges FILE --pattern K4 [--eps E] [--seed S]
//! sgs cliques --edges FILE -r 4 [--eps E] [--instances Q] [--seed S]
//! sgs info    --edges FILE
//! sgs rho     --pattern C7
//! ```
//!
//! Patterns: `triangle`, `K<r>`, `C<k>`, `S<k>`, `P<k>`, `paw`, `diamond`,
//! `bull`, `bowtie`, `house`.

use std::process::exit;
use subgraph_streams::prelude::*;

fn parse_pattern(s: &str) -> Option<Pattern> {
    let p = match s {
        "triangle" | "T" | "K3" | "C3" => Pattern::triangle(),
        "paw" => sgs_graph::zoo::paw(),
        "diamond" => sgs_graph::zoo::diamond(),
        "bull" => sgs_graph::zoo::bull(),
        "bowtie" => sgs_graph::zoo::bowtie(),
        "house" => sgs_graph::zoo::house(),
        _ => {
            let (kind, num) = s.split_at(1);
            let k: usize = num.parse().ok()?;
            match kind {
                "K" | "k" => Pattern::clique(k),
                "C" | "c" => Pattern::cycle(k),
                "S" | "s" => Pattern::star(k),
                "P" | "p" => Pattern::path(k),
                _ => return None,
            }
        }
    };
    Some(p)
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == name)
    }
}

fn parse_args(argv: &[String]) -> Args {
    let mut flags = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(name) = a.strip_prefix("--") {
            let value = if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                i += 1;
                argv[i].clone()
            } else {
                String::new()
            };
            flags.push((name.to_string(), value));
        } else if let Some(name) = a.strip_prefix('-') {
            let value = if i + 1 < argv.len() && !argv[i + 1].starts_with('-') {
                i += 1;
                argv[i].clone()
            } else {
                String::new()
            };
            flags.push((name.to_string(), value));
        }
        i += 1;
    }
    Args { flags }
}

fn load_graph(args: &Args) -> AdjListGraph {
    let Some(path) = args.get("edges") else {
        eprintln!("error: --edges FILE is required");
        exit(2);
    };
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot open {path}: {e}");
            exit(2);
        }
    };
    match sgs_graph::io::read_edge_list(std::io::BufReader::new(file)) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            exit(2);
        }
    }
}

fn need_pattern(args: &Args) -> Pattern {
    let Some(ps) = args.get("pattern") else {
        eprintln!("error: --pattern NAME is required");
        exit(2);
    };
    match parse_pattern(ps) {
        Some(p) => p,
        None => {
            eprintln!("error: unknown pattern '{ps}'");
            exit(2);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprintln!("usage: sgs <count|search|cliques|info|rho> [flags]");
        exit(2);
    };
    let args = parse_args(&argv[1..]);
    let seed: u64 = args.num("seed", 1);

    match cmd.as_str() {
        "count" => {
            let pattern = need_pattern(&args);
            let g = load_graph(&args);
            let m = g.num_edges();
            let eps: f64 = args.num("eps", 0.2);
            let plan = match SamplerPlan::new(&pattern) {
                Some(p) => p,
                None => {
                    eprintln!("error: pattern has an isolated vertex (no edge cover)");
                    exit(2);
                }
            };
            let default_trials =
                sgs_core::fgp::practical_trials(m, plan.rho(), eps, 1.0).min(2_000_000);
            let trials: usize = args.num("trials", default_trials);
            // --shards N fans the stream out over N hash-partitioned
            // feed shards (one router + worker per shard); answers are
            // merged exactly, so the estimate is bit-identical to the
            // single-stream run with the same seed.
            let shards: usize = args.num("shards", 1).max(1);
            // --block B feeds each pass in blocks of B updates (batched
            // index probes, ℓ₀ lane loops); 0 forces the scalar
            // per-update path. Bit-identical either way — the knob only
            // changes throughput. Default: sgs_query::exec::DEFAULT_BLOCK.
            let block: usize = args.num("block", sgs_query::exec::DEFAULT_BLOCK);
            // --reservoir {offer,skip} picks the relaxed-f3 reservoir
            // acceptance scheme on insertion passes: `skip` (default)
            // draws one coin per acceptance via the exact skip-ahead
            // inverse transform, `offer` replays the per-offer scalar
            // oracle. Distribution-equivalent, not byte-identical.
            let reservoir = match args.get("reservoir").unwrap_or("skip") {
                "offer" => sgs_query::ReservoirMode::Offer,
                "skip" | "" => sgs_query::ReservoirMode::Skip,
                other => {
                    eprintln!("error: --reservoir must be 'offer' or 'skip', got '{other}'");
                    exit(2);
                }
            };
            // --relaxed runs the insertion trials on the relaxed query
            // mix (RandomNeighbor instead of arrival-order watchers) —
            // the workload whose passes the reservoir knob accelerates.
            let sampler = if args.has("relaxed") {
                SamplerMode::Relaxed
            } else {
                SamplerMode::Indexed
            };
            let opts = sgs_query::PassOpts { block, reservoir };
            // --broadcast runs the serving path: ONE ingest per logical
            // pass fans out over a bounded ring to the shard routers
            // plus side consumers (TRIÈST baseline, exact CSR oracle, a
            // raw pass counter, and --consumers N extra raw counters),
            // all riding the estimator's first pass — no private
            // replays. The estimate stays bit-identical.
            if args.has("broadcast") {
                let extra_raw: usize = args.num("consumers", 0);
                let turnstile = args.has("turnstile");
                if turnstile && (args.has("relaxed") || args.has("reservoir")) {
                    eprintln!(
                        "error: --relaxed/--reservoir only apply to insertion runs \
                         (turnstile trials are always relaxed, on ℓ₀-samplers)"
                    );
                    exit(2);
                }
                let consumers = sgs_core::fgp::ConsumerSet {
                    triest_capacity: if turnstile {
                        None
                    } else {
                        Some(1024.min(m.max(2)))
                    },
                    exact: true,
                    extra_raw,
                };
                let mut arena = sgs_query::RouterArena::new();
                let bundle = if turnstile {
                    let s = TurnstileStream::from_graph_with_churn(&g, 1.0, seed ^ 0x77);
                    let feed = sgs_stream::ShardedFeed::partition(&s, shards);
                    sgs_core::fgp::estimate_turnstile_broadcast_with_opts(
                        &pattern, &feed, trials, seed, &mut arena, block, consumers,
                    )
                } else {
                    let s = InsertionStream::from_graph(&g, seed ^ 0x77);
                    let feed = sgs_stream::ShardedFeed::partition(&s, shards);
                    sgs_core::fgp::estimate_insertion_broadcast_with_opts(
                        &pattern, &feed, trials, seed, &mut arena, opts, sampler, consumers,
                    )
                }
                .expect("plan validated above");
                let est = &bundle.estimate;
                println!(
                    "#{} ≈ {:.1}   (hits {}/{}, rho={}, {} passes, m={}, {} shard{}, broadcast)",
                    pattern.name(),
                    est.estimate,
                    est.hits,
                    est.trials,
                    plan.rho(),
                    est.report.passes,
                    m,
                    shards,
                    if shards == 1 { "" } else { "s" },
                );
                if let Some(t) = &bundle.triest {
                    println!("  triest baseline ≈ {:.1} (same ingest)", t.estimate);
                }
                if let Some(x) = bundle.exact {
                    println!("  exact (CSR oracle, same ingest) = {x}");
                }
                println!(
                    "  raw counter: {} updates; {} extra consumer{} attached",
                    bundle.raw_updates,
                    extra_raw,
                    if extra_raw == 1 { "" } else { "s" },
                );
                return;
            }
            let est = if args.has("turnstile") {
                // Turnstile trials always run the relaxed query mix on
                // ℓ₀-samplers (Definition 10 has no indexed f3 and no
                // reservoirs), so --relaxed and --reservoir would
                // silently change nothing the flags promise: reject
                // them loudly rather than drop them.
                if args.has("relaxed") {
                    eprintln!(
                        "error: --relaxed only applies to insertion runs \
                         (turnstile trials are always relaxed, on ℓ₀-samplers)"
                    );
                    exit(2);
                }
                if args.has("reservoir") {
                    eprintln!(
                        "error: --reservoir only applies to insertion runs \
                         (turnstile f3 is answered by ℓ₀-samplers, not reservoirs)"
                    );
                    exit(2);
                }
                let s = TurnstileStream::from_graph_with_churn(&g, 1.0, seed ^ 0x77);
                sgs_core::fgp::estimate_turnstile_threaded_with_block(
                    &pattern, &s, trials, shards, seed, block,
                )
            } else {
                let s = InsertionStream::from_graph(&g, seed ^ 0x77);
                sgs_core::fgp::estimate_insertion_threaded_with_opts(
                    &pattern, &s, trials, shards, seed, opts, sampler,
                )
            }
            .expect("plan validated above");
            println!(
                "#{} ≈ {:.1}   (hits {}/{}, rho={}, {} passes, m={}, {} shard{}, block {}, reservoir {})",
                pattern.name(),
                est.estimate,
                est.hits,
                est.trials,
                plan.rho(),
                est.report.passes,
                m,
                shards,
                if shards == 1 { "" } else { "s" },
                if block <= 1 {
                    "scalar".to_string()
                } else {
                    block.to_string()
                },
                if args.has("turnstile") {
                    "l0".to_string()
                } else {
                    format!("{reservoir:?}").to_lowercase()
                }
            );
        }
        "search" => {
            let pattern = need_pattern(&args);
            let g = load_graph(&args);
            let eps: f64 = args.num("eps", 0.25);
            let cap: usize = args.num("max-trials", 1_000_000);
            let s = InsertionStream::from_graph(&g, seed ^ 0x77);
            let res = sgs_core::fgp::search_count_insertion(&pattern, &s, eps, seed, cap)
                .expect("coverable pattern");
            println!(
                "#{} ≈ {:.1}   ({} search rounds, {} total passes, {} total trials)",
                pattern.name(),
                res.estimate,
                res.rounds,
                res.total_passes,
                res.total_trials
            );
        }
        "cliques" => {
            let g = load_graph(&args);
            let r: usize = args.num("r", 3);
            let eps: f64 = args.num("eps", 0.3);
            let instances: usize = args.num("instances", 5);
            let lambda = sgs_graph::degeneracy::degeneracy(&g);
            let s = InsertionStream::from_graph(&g, seed ^ 0x77);
            let template = ErsParams::practical(r, lambda.max(1), eps, 1.0);
            let res = sgs_core::ers::search_count_cliques_insertion(&template, &s, instances, seed);
            println!(
                "#K{r} ≈ {:.1}   (lambda={lambda}, {} rounds, {} total passes)",
                res.estimate, res.rounds, res.total_passes
            );
        }
        "info" => {
            let g = load_graph(&args);
            let cd = sgs_graph::degeneracy::CoreDecomposition::compute(&g);
            println!("n = {}", g.num_vertices());
            println!("m = {}", g.num_edges());
            println!("max degree = {}", g.max_degree());
            println!("degeneracy = {}", cd.degeneracy);
            println!(
                "triangles (exact) = {}",
                sgs_graph::exact::triangles::count_triangles(&g)
            );
        }
        "rho" => {
            let pattern = need_pattern(&args);
            match sgs_graph::decompose::decompose(&pattern) {
                Some(d) => {
                    println!("pattern: {}", pattern.name());
                    println!("rho(H) = {}", d.rho);
                    println!("f_T(H) = {}", d.tuple_multiplicity);
                    println!("decomposition pieces: {:?}", d.pieces);
                }
                None => println!("no edge cover (isolated vertex): rho = infinity"),
            }
        }
        other => {
            eprintln!("unknown command '{other}'");
            exit(2);
        }
    }
}
