//! `sgs` — command-line streaming subgraph counter.
//!
//! ```text
//! sgs count   --edges FILE --pattern triangle [--trials N] [--eps E] [--seed S] [--turnstile] [--shards N] [--block B] [--pin] [--reservoir offer|skip] [--relaxed] [--broadcast] [--consumers N] [--checkpoint-dir D [--snapshot-every N] [--wal-block W]]
//! sgs count   --edges FILE --queries FILE [--seed S] [--turnstile] [--shards N] [--block B] [--pin] [--broadcast]
//! sgs recover DIR
//! sgs search  --edges FILE --pattern K4 [--eps E] [--seed S]
//! sgs cliques --edges FILE -r 4 [--eps E] [--instances Q] [--seed S]
//! sgs info    --edges FILE
//! sgs rho     --pattern C7
//! ```
//!
//! Patterns: `triangle`, `K<r>`, `C<k>`, `S<k>`, `P<k>`, `paw`, `diamond`,
//! `bull`, `bowtie`, `house`.

use sgs_stream::persist::{read_config, write_config, Decoder, Encoder, PersistError};
use std::path::{Path, PathBuf};
use std::process::exit;
use subgraph_streams::prelude::*;

fn parse_pattern(s: &str) -> Option<Pattern> {
    let p = match s {
        "triangle" | "T" | "K3" | "C3" => Pattern::triangle(),
        "paw" => sgs_graph::zoo::paw(),
        "diamond" => sgs_graph::zoo::diamond(),
        "bull" => sgs_graph::zoo::bull(),
        "bowtie" => sgs_graph::zoo::bowtie(),
        "house" => sgs_graph::zoo::house(),
        _ => {
            let (kind, num) = s.split_at(1);
            let k: usize = num.parse().ok()?;
            match kind {
                "K" | "k" => Pattern::clique(k),
                "C" | "c" => Pattern::cycle(k),
                "S" | "s" => Pattern::star(k),
                "P" | "p" => Pattern::path(k),
                _ => return None,
            }
        }
    };
    Some(p)
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == name)
    }
}

fn parse_args(argv: &[String]) -> Args {
    let mut flags = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(name) = a.strip_prefix("--") {
            let value = if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                i += 1;
                argv[i].clone()
            } else {
                String::new()
            };
            flags.push((name.to_string(), value));
        } else if let Some(name) = a.strip_prefix('-') {
            let value = if i + 1 < argv.len() && !argv[i + 1].starts_with('-') {
                i += 1;
                argv[i].clone()
            } else {
                String::new()
            };
            flags.push((name.to_string(), value));
        }
        i += 1;
    }
    Args { flags }
}

fn fail_persist(e: PersistError) -> ! {
    eprintln!("error: {e}");
    exit(2);
}

/// Pull the `line N` position out of an edge-list parse message so the
/// structured error can carry it as an offset.
fn parse_error_line(msg: &str) -> u64 {
    msg.split("line ")
        .nth(1)
        .and_then(|rest| {
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

/// Load an edge list, routing open failures and malformed lines through
/// [`PersistError`] so every message carries the file path (and for
/// parse errors the offending line as the offset) instead of an opaque
/// bare string.
fn read_graph_file(path: &Path) -> Result<AdjListGraph, PersistError> {
    let file = std::fs::File::open(path).map_err(|e| PersistError::io(path, e))?;
    sgs_graph::io::read_edge_list(std::io::BufReader::new(file))
        .map_err(|msg| PersistError::corrupt(parse_error_line(&msg), msg).located(path))
}

fn load_graph(args: &Args) -> AdjListGraph {
    let Some(path) = args.get("edges") else {
        eprintln!("error: --edges FILE is required");
        exit(2);
    };
    match read_graph_file(Path::new(path)) {
        Ok(g) => g,
        Err(e) => fail_persist(e),
    }
}

/// Parameters a checkpointed `count` run persists in the directory's
/// CONFIG blob, so `sgs recover` can rebuild the identical run without
/// re-reading the input graph (the WAL already holds the routed stream).
struct CliConfig {
    /// 0 = insertion, 1 = turnstile.
    model: u8,
    pattern: String,
    trials: u64,
    seed: u64,
    shards: u64,
    block: u64,
    /// 0 = offer, 1 = skip.
    reservoir: u8,
    /// 1 when insertion trials run the relaxed query mix.
    relaxed: u8,
    snapshot_every: u64,
}

fn encode_cli_config(c: &CliConfig) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(c.model);
    enc.str(&c.pattern);
    enc.u64(c.trials);
    enc.u64(c.seed);
    enc.u64(c.shards);
    enc.u64(c.block);
    enc.u8(c.reservoir);
    enc.u8(c.relaxed);
    enc.u64(c.snapshot_every);
    enc.into_bytes()
}

fn decode_cli_config(bytes: &[u8]) -> Result<CliConfig, PersistError> {
    let mut dec = Decoder::new(bytes);
    let model = dec.u8("config model")?;
    if model > 1 {
        return Err(dec.corrupt(format!("config model tag {model} is not 0/1")));
    }
    let pattern = dec.str("config pattern")?;
    let trials = dec.u64("config trials")?;
    let seed = dec.u64("config seed")?;
    let shards = dec.u64("config shards")?;
    let block = dec.u64("config block")?;
    let reservoir = dec.u8("config reservoir")?;
    if reservoir > 1 {
        return Err(dec.corrupt(format!("config reservoir tag {reservoir} is not 0/1")));
    }
    let relaxed = dec.u8("config relaxed")?;
    if relaxed > 1 {
        return Err(dec.corrupt(format!("config relaxed flag {relaxed} is not 0/1")));
    }
    let snapshot_every = dec.u64("config snapshot cadence")?;
    dec.finish()?;
    Ok(CliConfig {
        model,
        pattern,
        trials,
        seed,
        shards,
        block,
        reservoir,
        relaxed,
        snapshot_every,
    })
}

/// Parse one `--queries` file line: `PATTERN [trials=N] [seed=S]
/// [reservoir=offer|skip] [relaxed]`. Blank lines and `#` comments are
/// skipped by the caller; `line_no` is 1-based for error messages.
fn parse_query_line(line: &str, line_no: usize, base_seed: u64) -> sgs_core::MultiQuerySpec {
    let mut toks = line.split_whitespace();
    let pat_tok = toks.next().expect("caller skips blank lines");
    let Some(pattern) = parse_pattern(pat_tok) else {
        eprintln!("error: queries line {line_no}: unknown pattern '{pat_tok}'");
        exit(2);
    };
    let mut spec = sgs_core::MultiQuerySpec {
        pattern,
        trials: 0,
        seed: base_seed.wrapping_add(line_no as u64),
        sampler: SamplerMode::Indexed,
        reservoir: sgs_query::ReservoirMode::Skip,
    };
    for tok in toks {
        if tok == "relaxed" {
            spec.sampler = SamplerMode::Relaxed;
        } else if let Some(v) = tok.strip_prefix("trials=") {
            spec.trials = v.parse().unwrap_or_else(|_| {
                eprintln!("error: queries line {line_no}: bad trials '{v}'");
                exit(2);
            });
        } else if let Some(v) = tok.strip_prefix("seed=") {
            spec.seed = v.parse().unwrap_or_else(|_| {
                eprintln!("error: queries line {line_no}: bad seed '{v}'");
                exit(2);
            });
        } else if let Some(v) = tok.strip_prefix("reservoir=") {
            spec.reservoir = match v {
                "offer" => sgs_query::ReservoirMode::Offer,
                "skip" => sgs_query::ReservoirMode::Skip,
                other => {
                    eprintln!(
                        "error: queries line {line_no}: reservoir must be offer|skip, got '{other}'"
                    );
                    exit(2);
                }
            };
        } else {
            eprintln!("error: queries line {line_no}: unknown token '{tok}'");
            exit(2);
        }
    }
    spec
}

/// Parse `--l0 {dispatch,predicated}`: which ℓ₀-bank feed path
/// turnstile passes run. Bit-identical either way — `dispatch` walks
/// only the survivor-level row prefix, `predicated` replays the
/// full-bank masked scan (the original oracle instruction sequence).
fn parse_l0(args: &Args) -> sgs_query::L0Mode {
    let s = args.get("l0").unwrap_or("dispatch");
    match sgs_query::L0Mode::parse(if s.is_empty() { "dispatch" } else { s }) {
        Some(mode) => mode,
        None => {
            eprintln!("error: --l0 must be 'dispatch' or 'predicated', got '{s}'");
            exit(2);
        }
    }
}

/// `sgs count --queries FILE`: serve every query in the list from one
/// shared pass per round, reporting per-query estimates plus aggregate
/// throughput and the admission report's slow-query diagnosis.
fn run_multi_count(args: &Args, queries_path: &str, seed: u64) {
    let g = load_graph(args);
    let m = g.num_edges();
    let eps: f64 = args.num("eps", 0.2);
    let shards: usize = args.num("shards", 1).max(1);
    let block: usize = args.num("block", sgs_query::exec::DEFAULT_BLOCK);
    let opts = sgs_query::PassOpts::with_block(block).l0(parse_l0(args));
    let turnstile = args.has("turnstile");
    let text = std::fs::read_to_string(queries_path)
        .unwrap_or_else(|e| fail_persist(PersistError::io(Path::new(queries_path), e)));
    let mut specs: Vec<sgs_core::MultiQuerySpec> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('#')
        })
        .map(|(i, l)| parse_query_line(l.trim(), i + 1, seed))
        .collect();
    if specs.is_empty() {
        eprintln!("error: {queries_path}: no queries (every line blank or comment)");
        exit(2);
    }
    for spec in &mut specs {
        let Some(plan) = SamplerPlan::new(&spec.pattern) else {
            eprintln!(
                "error: pattern '{}' has an isolated vertex (no edge cover)",
                spec.pattern.name()
            );
            exit(2);
        };
        if spec.trials == 0 {
            spec.trials = sgs_core::fgp::practical_trials(m, plan.rho(), eps, 1.0).min(2_000_000);
        }
    }
    let policy = {
        let p = sgs_query::ExecPolicy::from_env();
        if args.has("pin") {
            p.with_pin()
        } else {
            p
        }
    };
    let mut arena = sgs_query::RouterArena::new();
    let t0 = std::time::Instant::now();
    let (ests, admission) = if turnstile {
        let s = TurnstileStream::from_graph_with_churn(&g, 1.0, seed ^ 0x77);
        let feed = sgs_stream::ShardedFeed::partition(&s, shards);
        if args.has("broadcast") {
            sgs_core::fgp::estimate_multi_turnstile_broadcast(
                &specs,
                &feed,
                &mut arena,
                opts,
                sgs_query::BroadcastOpts::with_policy(policy),
            )
        } else {
            sgs_core::fgp::estimate_multi_turnstile(&specs, &feed, &mut arena, opts, policy)
        }
    } else {
        let s = InsertionStream::from_graph(&g, seed ^ 0x77);
        let feed = sgs_stream::ShardedFeed::partition(&s, shards);
        if args.has("broadcast") {
            sgs_core::fgp::estimate_multi_insertion_broadcast(
                &specs,
                &feed,
                &mut arena,
                opts,
                sgs_query::BroadcastOpts::with_policy(policy),
            )
        } else {
            sgs_core::fgp::estimate_multi_insertion(&specs, &feed, &mut arena, opts, policy)
        }
    }
    .expect("plans validated above");
    let elapsed = t0.elapsed();
    for (spec, est) in specs.iter().zip(&ests) {
        println!(
            "#{} ≈ {:.1}   (hits {}/{}, seed {})",
            spec.pattern.name(),
            est.estimate,
            est.hits,
            est.trials,
            spec.seed,
        );
    }
    let n = specs.len();
    let qps = n as f64 / elapsed.as_secs_f64();
    println!(
        "served {n} quer{} in {:.1} ms over {} shared pass{} ({} shard{}): {qps:.0} answers/sec",
        if n == 1 { "y" } else { "ies" },
        elapsed.as_secs_f64() * 1e3,
        admission.rounds.len(),
        if admission.rounds.len() == 1 {
            ""
        } else {
            "es"
        },
        shards,
        if shards == 1 { "" } else { "s" },
    );
    if let Some(slow) = admission.slowest_job() {
        let js = &admission.jobs[slow as usize];
        println!(
            "  slowest query: #{} ({}, {} rounds, {:.1} ms critical-path share)",
            slow,
            specs[slow as usize].pattern.name(),
            js.rounds,
            js.pass_nanos as f64 / 1e6,
        );
    }
    if !admission.stalls.is_empty() {
        println!(
            "  {} ring stall{} recorded (slowest consumer {})",
            admission.stalls.len(),
            if admission.stalls.len() == 1 { "" } else { "s" },
            admission
                .stalls
                .iter()
                .max_by_key(|s| s.blocked_ns)
                .map(|s| s.consumer)
                .unwrap_or(0),
        );
    }
}

fn need_pattern(args: &Args) -> Pattern {
    let Some(ps) = args.get("pattern") else {
        eprintln!("error: --pattern NAME is required");
        exit(2);
    };
    match parse_pattern(ps) {
        Some(p) => p,
        None => {
            eprintln!("error: unknown pattern '{ps}'");
            exit(2);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprintln!("usage: sgs <count|recover|search|cliques|info|rho> [flags]");
        exit(2);
    };
    let args = parse_args(&argv[1..]);
    let seed: u64 = args.num("seed", 1);

    match cmd.as_str() {
        "count" => {
            // --queries FILE serves a whole query list (one query per
            // line: PATTERN [trials=N] [seed=S] [reservoir=offer|skip]
            // [relaxed]) from ONE shared pass per round — the
            // multiplexed serving path. Each answer is byte-identical
            // to the equivalent solo `sgs count` invocation.
            if let Some(qpath) = args.get("queries") {
                let qpath = qpath.to_string();
                run_multi_count(&args, &qpath, seed);
                return;
            }
            let pattern = need_pattern(&args);
            let g = load_graph(&args);
            let m = g.num_edges();
            let eps: f64 = args.num("eps", 0.2);
            let plan = match SamplerPlan::new(&pattern) {
                Some(p) => p,
                None => {
                    eprintln!("error: pattern has an isolated vertex (no edge cover)");
                    exit(2);
                }
            };
            let default_trials =
                sgs_core::fgp::practical_trials(m, plan.rho(), eps, 1.0).min(2_000_000);
            let trials: usize = args.num("trials", default_trials);
            // --shards N fans the stream out over N hash-partitioned
            // feed shards (one router + worker per shard); answers are
            // merged exactly, so the estimate is bit-identical to the
            // single-stream run with the same seed.
            let shards: usize = args.num("shards", 1).max(1);
            // --block B feeds each pass in blocks of B updates (batched
            // index probes, ℓ₀ lane loops); 0 forces the scalar
            // per-update path. Bit-identical either way — the knob only
            // changes throughput. Default: sgs_query::exec::DEFAULT_BLOCK.
            let block: usize = args.num("block", sgs_query::exec::DEFAULT_BLOCK);
            // --reservoir {offer,skip} picks the relaxed-f3 reservoir
            // acceptance scheme on insertion passes: `skip` (default)
            // draws one coin per acceptance via the exact skip-ahead
            // inverse transform, `offer` replays the per-offer scalar
            // oracle. Distribution-equivalent, not byte-identical.
            let reservoir = match args.get("reservoir").unwrap_or("skip") {
                "offer" => sgs_query::ReservoirMode::Offer,
                "skip" | "" => sgs_query::ReservoirMode::Skip,
                other => {
                    eprintln!("error: --reservoir must be 'offer' or 'skip', got '{other}'");
                    exit(2);
                }
            };
            // --relaxed runs the insertion trials on the relaxed query
            // mix (RandomNeighbor instead of arrival-order watchers) —
            // the workload whose passes the reservoir knob accelerates.
            let sampler = if args.has("relaxed") {
                SamplerMode::Relaxed
            } else {
                SamplerMode::Indexed
            };
            let opts = sgs_query::PassOpts::with_block(block)
                .reservoir(reservoir)
                .l0(parse_l0(&args));
            // SGS_SHARD_THREADS=0|1 forces shard workers serial or
            // threaded (unset = auto: threads when the host has >1
            // core); --pin additionally asks for one-core-per-worker
            // affinity (Linux, best-effort). Neither changes answers —
            // the env var is parsed only here, at the CLI boundary, and
            // handed down as an explicit ExecPolicy.
            let policy = {
                let p = sgs_query::ExecPolicy::from_env();
                if args.has("pin") {
                    p.with_pin()
                } else {
                    p
                }
            };
            // --broadcast runs the serving path: ONE ingest per logical
            // pass fans out over a bounded ring to the shard routers
            // plus side consumers (TRIÈST baseline, exact CSR oracle, a
            // raw pass counter, and --consumers N extra raw counters),
            // all riding the estimator's first pass — no private
            // replays. The estimate stays bit-identical.
            if args.has("broadcast") {
                let extra_raw: usize = args.num("consumers", 0);
                let turnstile = args.has("turnstile");
                if turnstile && (args.has("relaxed") || args.has("reservoir")) {
                    eprintln!(
                        "error: --relaxed/--reservoir only apply to insertion runs \
                         (turnstile trials are always relaxed, on ℓ₀-samplers)"
                    );
                    exit(2);
                }
                let consumers = sgs_core::fgp::ConsumerSet {
                    triest_capacity: if turnstile {
                        None
                    } else {
                        Some(1024.min(m.max(2)))
                    },
                    exact: true,
                    extra_raw,
                };
                let mut arena = sgs_query::RouterArena::new();
                let bcast = sgs_query::BroadcastOpts::with_policy(policy);
                let bundle = if turnstile {
                    let s = TurnstileStream::from_graph_with_churn(&g, 1.0, seed ^ 0x77);
                    let feed = sgs_stream::ShardedFeed::partition(&s, shards);
                    sgs_core::fgp::estimate_turnstile_broadcast_with_exec(
                        &pattern, &feed, trials, seed, &mut arena, opts, consumers, bcast,
                    )
                } else {
                    let s = InsertionStream::from_graph(&g, seed ^ 0x77);
                    let feed = sgs_stream::ShardedFeed::partition(&s, shards);
                    sgs_core::fgp::estimate_insertion_broadcast_with_exec(
                        &pattern, &feed, trials, seed, &mut arena, opts, sampler, consumers, bcast,
                    )
                }
                .expect("plan validated above");
                let est = &bundle.estimate;
                println!(
                    "#{} ≈ {:.1}   (hits {}/{}, rho={}, {} passes, m={}, {} shard{}, broadcast)",
                    pattern.name(),
                    est.estimate,
                    est.hits,
                    est.trials,
                    plan.rho(),
                    est.report.passes,
                    m,
                    shards,
                    if shards == 1 { "" } else { "s" },
                );
                if let Some(t) = &bundle.triest {
                    println!("  triest baseline ≈ {:.1} (same ingest)", t.estimate);
                }
                if let Some(x) = bundle.exact {
                    println!("  exact (CSR oracle, same ingest) = {x}");
                }
                println!(
                    "  raw counter: {} updates; {} extra consumer{} attached",
                    bundle.raw_updates,
                    extra_raw,
                    if extra_raw == 1 { "" } else { "s" },
                );
                return;
            }
            // --checkpoint-dir D makes the run durable: the routed
            // stream is sealed into a write-ahead log in D before
            // estimation starts, and estimator state is snapshotted
            // every --snapshot-every delivery blocks (0 = WAL only).
            // A killed run resumes with `sgs recover D` to the
            // byte-identical estimate the uninterrupted run produces.
            if let Some(dirs) = args.get("checkpoint-dir") {
                if args.has("broadcast") {
                    eprintln!(
                        "error: --checkpoint-dir does not combine with --broadcast \
                         (checkpoint the plain sharded run)"
                    );
                    exit(2);
                }
                let turnstile = args.has("turnstile");
                if turnstile && (args.has("relaxed") || args.has("reservoir")) {
                    eprintln!(
                        "error: --relaxed/--reservoir only apply to insertion runs \
                         (turnstile trials are always relaxed, on ℓ₀-samplers)"
                    );
                    exit(2);
                }
                let dir = PathBuf::from(dirs);
                let snapshot_every: u64 =
                    args.num("snapshot-every", sgs_query::DEFAULT_SNAPSHOT_EVERY);
                // --wal-block W sets the WAL record granularity (updates
                // per delivery block); snapshots land every
                // `snapshot_every` such blocks, so small streams want a
                // small W to see any snapshot at all.
                let wal_block: usize = args.num("wal-block", sgs_query::DEFAULT_CHECKPOINT_CHUNK);
                let feed = if turnstile {
                    let s = TurnstileStream::from_graph_with_churn(&g, 1.0, seed ^ 0x77);
                    sgs_stream::ShardedFeed::partition(&s, shards)
                } else {
                    let s = InsertionStream::from_graph(&g, seed ^ 0x77);
                    sgs_stream::ShardedFeed::partition(&s, shards)
                };
                let cfg = CliConfig {
                    model: turnstile as u8,
                    pattern: args.get("pattern").unwrap_or_default().to_string(),
                    trials: trials as u64,
                    seed,
                    shards: shards as u64,
                    block: block as u64,
                    reservoir: match reservoir {
                        sgs_query::ReservoirMode::Offer => 0,
                        sgs_query::ReservoirMode::Skip => 1,
                    },
                    relaxed: args.has("relaxed") as u8,
                    snapshot_every,
                };
                let run: Result<_, PersistError> = (|| {
                    let mut session = sgs_query::CheckpointSession::create(
                        &dir,
                        &feed,
                        snapshot_every,
                        wal_block,
                    )?;
                    write_config(&dir, &encode_cli_config(&cfg))?;
                    let mut arena = sgs_query::RouterArena::new();
                    let est = if turnstile {
                        sgs_core::fgp::estimate_turnstile_checkpointed(
                            &pattern,
                            &feed,
                            trials,
                            seed,
                            &mut arena,
                            opts,
                            &mut session,
                        )?
                    } else {
                        sgs_core::fgp::estimate_insertion_checkpointed(
                            &pattern,
                            &feed,
                            trials,
                            seed,
                            &mut arena,
                            opts,
                            sampler,
                            &mut session,
                        )?
                    };
                    Ok((est, session.snapshots_written()))
                })();
                let (est, snapshots) = match run {
                    Ok((e, s)) => (e.expect("plan validated above"), s),
                    Err(e) => fail_persist(e),
                };
                println!(
                    "#{} ≈ {:.1}   (hits {}/{}, rho={}, {} passes, m={}, {} shard{})",
                    pattern.name(),
                    est.estimate,
                    est.hits,
                    est.trials,
                    plan.rho(),
                    est.report.passes,
                    m,
                    shards,
                    if shards == 1 { "" } else { "s" },
                );
                println!(
                    "  checkpointed: WAL + {snapshots} snapshot{} in {} \
                     (recover with `sgs recover {}`)",
                    if snapshots == 1 { "" } else { "s" },
                    dir.display(),
                    dir.display(),
                );
                return;
            }
            let est = if args.has("turnstile") {
                // Turnstile trials always run the relaxed query mix on
                // ℓ₀-samplers (Definition 10 has no indexed f3 and no
                // reservoirs), so --relaxed and --reservoir would
                // silently change nothing the flags promise: reject
                // them loudly rather than drop them.
                if args.has("relaxed") {
                    eprintln!(
                        "error: --relaxed only applies to insertion runs \
                         (turnstile trials are always relaxed, on ℓ₀-samplers)"
                    );
                    exit(2);
                }
                if args.has("reservoir") {
                    eprintln!(
                        "error: --reservoir only applies to insertion runs \
                         (turnstile f3 is answered by ℓ₀-samplers, not reservoirs)"
                    );
                    exit(2);
                }
                let s = TurnstileStream::from_graph_with_churn(&g, 1.0, seed ^ 0x77);
                sgs_core::fgp::estimate_turnstile_threaded_with_exec(
                    &pattern, &s, trials, shards, seed, opts, policy,
                )
            } else {
                let s = InsertionStream::from_graph(&g, seed ^ 0x77);
                sgs_core::fgp::estimate_insertion_threaded_with_exec(
                    &pattern, &s, trials, shards, seed, opts, sampler, policy,
                )
            }
            .expect("plan validated above");
            println!(
                "#{} ≈ {:.1}   (hits {}/{}, rho={}, {} passes, m={}, {} shard{}, block {}, reservoir {})",
                pattern.name(),
                est.estimate,
                est.hits,
                est.trials,
                plan.rho(),
                est.report.passes,
                m,
                shards,
                if shards == 1 { "" } else { "s" },
                if block <= 1 {
                    "scalar".to_string()
                } else {
                    block.to_string()
                },
                if args.has("turnstile") {
                    "l0".to_string()
                } else {
                    format!("{reservoir:?}").to_lowercase()
                }
            );
        }
        "recover" => {
            // `sgs recover DIR` — resume a killed checkpointed run.
            // The WAL already holds the routed stream and CONFIG holds
            // the run parameters, so no --edges / --pattern is needed;
            // the answer is byte-identical to the uninterrupted run.
            let Some(dirs) = argv
                .get(1)
                .filter(|a| !a.starts_with('-'))
                .cloned()
                .or_else(|| args.get("dir").map(str::to_string))
            else {
                eprintln!("usage: sgs recover DIR");
                exit(2);
            };
            let dir = PathBuf::from(&dirs);
            let cfg_bytes = match read_config(&dir) {
                Ok(Some(b)) => b,
                Ok(None) => {
                    eprintln!(
                        "error: {}: no CONFIG found (was this directory created by \
                         `sgs count --checkpoint-dir`?)",
                        dir.display()
                    );
                    exit(2);
                }
                Err(e) => fail_persist(e),
            };
            let cfg = decode_cli_config(&cfg_bytes)
                .unwrap_or_else(|e| fail_persist(e.located(dir.join("CONFIG"))));
            let Some(pattern) = parse_pattern(&cfg.pattern) else {
                eprintln!("error: CONFIG names unknown pattern '{}'", cfg.pattern);
                exit(2);
            };
            let plan = match SamplerPlan::new(&pattern) {
                Some(p) => p,
                None => {
                    eprintln!("error: pattern has an isolated vertex (no edge cover)");
                    exit(2);
                }
            };
            let (mut session, feed) =
                sgs_query::CheckpointSession::resume(&dir, cfg.snapshot_every)
                    .unwrap_or_else(|e| fail_persist(e));
            if let Some(t) = session.truncation_report() {
                eprintln!("warning: {t}");
            }
            if session.has_resume_state() {
                println!(
                    "resuming from snapshot: {} delivery blocks already done",
                    session.blocks_processed()
                );
            } else {
                println!("no snapshot found; replaying the run from the sealed WAL");
            }
            let opts = sgs_query::PassOpts::with_block(cfg.block as usize).reservoir(
                if cfg.reservoir == 0 {
                    sgs_query::ReservoirMode::Offer
                } else {
                    sgs_query::ReservoirMode::Skip
                },
            );
            let mut arena = sgs_query::RouterArena::new();
            let est = if cfg.model == 1 {
                sgs_core::fgp::estimate_turnstile_checkpointed(
                    &pattern,
                    &feed,
                    cfg.trials as usize,
                    cfg.seed,
                    &mut arena,
                    opts,
                    &mut session,
                )
            } else {
                let sampler = if cfg.relaxed == 1 {
                    SamplerMode::Relaxed
                } else {
                    SamplerMode::Indexed
                };
                sgs_core::fgp::estimate_insertion_checkpointed(
                    &pattern,
                    &feed,
                    cfg.trials as usize,
                    cfg.seed,
                    &mut arena,
                    opts,
                    sampler,
                    &mut session,
                )
            }
            .unwrap_or_else(|e| fail_persist(e))
            .expect("plan validated above");
            println!(
                "#{} ≈ {:.1}   (hits {}/{}, rho={}, {} passes, m={}, {} shard{}, recovered)",
                pattern.name(),
                est.estimate,
                est.hits,
                est.trials,
                plan.rho(),
                est.report.passes,
                est.m,
                feed.num_shards(),
                if feed.num_shards() == 1 { "" } else { "s" },
            );
        }
        "search" => {
            let pattern = need_pattern(&args);
            let g = load_graph(&args);
            let eps: f64 = args.num("eps", 0.25);
            let cap: usize = args.num("max-trials", 1_000_000);
            let s = InsertionStream::from_graph(&g, seed ^ 0x77);
            let res = sgs_core::fgp::search_count_insertion(&pattern, &s, eps, seed, cap)
                .expect("coverable pattern");
            println!(
                "#{} ≈ {:.1}   ({} search rounds, {} total passes, {} total trials)",
                pattern.name(),
                res.estimate,
                res.rounds,
                res.total_passes,
                res.total_trials
            );
        }
        "cliques" => {
            let g = load_graph(&args);
            let r: usize = args.num("r", 3);
            let eps: f64 = args.num("eps", 0.3);
            let instances: usize = args.num("instances", 5);
            let lambda = sgs_graph::degeneracy::degeneracy(&g);
            let s = InsertionStream::from_graph(&g, seed ^ 0x77);
            let template = ErsParams::practical(r, lambda.max(1), eps, 1.0);
            let res = sgs_core::ers::search_count_cliques_insertion(&template, &s, instances, seed);
            println!(
                "#K{r} ≈ {:.1}   (lambda={lambda}, {} rounds, {} total passes)",
                res.estimate, res.rounds, res.total_passes
            );
        }
        "info" => {
            let g = load_graph(&args);
            let cd = sgs_graph::degeneracy::CoreDecomposition::compute(&g);
            println!("n = {}", g.num_vertices());
            println!("m = {}", g.num_edges());
            println!("max degree = {}", g.max_degree());
            println!("degeneracy = {}", cd.degeneracy);
            println!(
                "triangles (exact) = {}",
                sgs_graph::exact::triangles::count_triangles(&g)
            );
        }
        "rho" => {
            let pattern = need_pattern(&args);
            match sgs_graph::decompose::decompose(&pattern) {
                Some(d) => {
                    println!("pattern: {}", pattern.name());
                    println!("rho(H) = {}", d.rho);
                    println!("f_T(H) = {}", d.tuple_multiplicity);
                    println!("decomposition pieces: {:?}", d.pieces);
                }
                None => println!("no edge cover (isolated vertex): rho = infinity"),
            }
        }
        other => {
            eprintln!("unknown command '{other}'");
            exit(2);
        }
    }
}
