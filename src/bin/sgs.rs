//! `sgs` — command-line streaming subgraph counter.
//!
//! ```text
//! sgs count   --edges FILE --pattern triangle [--trials N] [--eps E] [--seed S] [--turnstile] [--shards N] [--block B] [--pin] [--reservoir offer|skip] [--relaxed] [--broadcast] [--consumers N] [--checkpoint-dir D [--snapshot-every N] [--wal-block W]] [--bits]
//! sgs count   --updates FILE ...      (raw update order instead of a shuffled graph)
//! sgs count   --edges FILE --queries FILE [--seed S] [--turnstile] [--shards N] [--block B] [--pin] [--broadcast] [--bits]
//! sgs serve   DIR [--listen ADDR] [--unix PATH] [--shards N] [--wal-block W] [--snapshot-every N] [--ring-capacity C] [--seed S] [--block B] [--l0 M] [--pin] [--eps E]
//! sgs recover DIR
//! sgs search  --edges FILE --pattern K4 [--eps E] [--seed S]
//! sgs cliques --edges FILE -r 4 [--eps E] [--instances Q] [--seed S]
//! sgs info    --edges FILE
//! sgs rho     --pattern C7
//! ```
//!
//! Patterns: `triangle`, `K<r>`, `C<k>`, `S<k>`, `P<k>`, `paw`, `diamond`,
//! `bull`, `bowtie`, `house`.

use sgs_graph::zoo::parse_pattern;
use sgs_stream::persist::{read_config, read_wal, write_config, Decoder, Encoder, PersistError};
use sgs_stream::EdgeUpdate;
use std::path::{Path, PathBuf};
use std::process::exit;
use subgraph_streams::prelude::*;

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == name)
    }
}

fn parse_args(argv: &[String]) -> Args {
    let mut flags = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(name) = a.strip_prefix("--") {
            let value = if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                i += 1;
                argv[i].clone()
            } else {
                String::new()
            };
            flags.push((name.to_string(), value));
        } else if let Some(name) = a.strip_prefix('-') {
            let value = if i + 1 < argv.len() && !argv[i + 1].starts_with('-') {
                i += 1;
                argv[i].clone()
            } else {
                String::new()
            };
            flags.push((name.to_string(), value));
        }
        i += 1;
    }
    Args { flags }
}

fn fail_persist(e: PersistError) -> ! {
    eprintln!("error: {e}");
    exit(2);
}

/// Pull the 1-based `line N` position out of an edge-list parse message
/// so the structured error can carry it as an offset. `None` when the
/// message names no line — never a fabricated "line 0".
fn parse_error_line(msg: &str) -> Option<u64> {
    msg.split("line ").nth(1).and_then(|rest| {
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().ok()
    })
}

/// Wrap an edge-list parse message as a structured error: the offset is
/// the offending 1-based line when the message names one, otherwise the
/// message is tagged `(unknown line)` instead of claiming line 0.
fn graph_parse_error(path: &Path, msg: String) -> PersistError {
    match parse_error_line(&msg) {
        Some(line) => PersistError::corrupt(line, msg),
        None => PersistError::corrupt(0, format!("{msg} (unknown line)")),
    }
    .located(path)
}

/// Load an edge list, routing open failures and malformed lines through
/// [`PersistError`] so every message carries the file path (and for
/// parse errors the offending line as the offset) instead of an opaque
/// bare string.
fn read_graph_file(path: &Path) -> Result<AdjListGraph, PersistError> {
    let file = std::fs::File::open(path).map_err(|e| PersistError::io(path, e))?;
    sgs_graph::io::read_edge_list(std::io::BufReader::new(file))
        .map_err(|msg| graph_parse_error(path, msg))
}

fn load_graph(args: &Args) -> AdjListGraph {
    let Some(path) = args.get("edges") else {
        eprintln!("error: --edges FILE is required");
        exit(2);
    };
    match read_graph_file(Path::new(path)) {
        Ok(g) => g,
        Err(e) => fail_persist(e),
    }
}

/// Where a `count` run's stream comes from.
///
/// `--edges FILE` shuffles a static graph into a stream (seeded with
/// `seed ^ 0x77`, the historical CLI behavior). `--updates FILE` replays
/// a raw update sequence (`u v ±1` per line) in file order — the exact
/// order a serve node ingests, so a batch run over the same file is
/// byte-comparable to the live node's answers.
enum SourceSpec {
    Graph(AdjListGraph),
    Updates { n: usize, updates: Vec<EdgeUpdate> },
}

impl SourceSpec {
    /// Edge count the default trial budget is sized from: live edges
    /// (inserts minus deletes) for an update log, `m` for a graph.
    fn live_edges(&self) -> usize {
        match self {
            SourceSpec::Graph(g) => g.num_edges(),
            SourceSpec::Updates { updates, .. } => {
                updates.iter().map(|u| u.delta as i64).sum::<i64>().max(0) as usize
            }
        }
    }

    fn has_deletions(&self) -> bool {
        match self {
            SourceSpec::Graph(_) => false,
            SourceSpec::Updates { updates, .. } => updates.iter().any(|u| u.delta < 0),
        }
    }

    fn insertion_stream(&self, seed: u64) -> InsertionStream {
        match self {
            SourceSpec::Graph(g) => InsertionStream::from_graph(g, seed ^ 0x77),
            SourceSpec::Updates { n, updates } => {
                if self.has_deletions() {
                    eprintln!(
                        "error: --updates file contains deletions; insertion-model runs \
                         need --turnstile"
                    );
                    exit(2);
                }
                InsertionStream::from_edge_order(*n, updates.iter().map(|u| u.edge).collect())
            }
        }
    }

    fn turnstile_stream(&self, seed: u64) -> TurnstileStream {
        match self {
            SourceSpec::Graph(g) => TurnstileStream::from_graph_with_churn(g, 1.0, seed ^ 0x77),
            SourceSpec::Updates { n, updates } => {
                TurnstileStream::from_updates(*n, updates.clone())
            }
        }
    }
}

/// Parse a `--updates` file: one `u v delta` triple per line (delta `+1`
/// or `-1`), blank lines and `#` comments skipped. Malformed lines are
/// structured errors carrying the 1-based line number.
fn read_updates_file(path: &Path) -> Result<(usize, Vec<EdgeUpdate>), PersistError> {
    let text = std::fs::read_to_string(path).map_err(|e| PersistError::io(path, e))?;
    let mut updates = Vec::new();
    let mut n = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line_no = (i + 1) as u64;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = |what: &str| {
            PersistError::corrupt(line_no, format!("updates line {line_no}: {what}: '{raw}'"))
                .located(path)
        };
        let mut toks = line.split_whitespace();
        let u: u32 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad vertex id for u"))?;
        let v: u32 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad vertex id for v"))?;
        let delta: i8 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("delta must be +1 or -1"))?;
        if toks.next().is_some() {
            return Err(bad("expected exactly 'u v delta'"));
        }
        if u == v {
            return Err(bad("self-loop"));
        }
        if delta != 1 && delta != -1 {
            return Err(bad("delta must be +1 or -1"));
        }
        n = n.max(u.max(v) as usize + 1);
        updates.push(EdgeUpdate {
            edge: Edge::new(VertexId(u), VertexId(v)),
            delta,
        });
    }
    Ok((n.max(1), updates))
}

/// Resolve `--edges` / `--updates` into a stream source (exactly one of
/// the two is required).
fn load_source(args: &Args) -> SourceSpec {
    match (args.get("updates"), args.get("edges")) {
        (Some(_), Some(_)) => {
            eprintln!("error: --edges and --updates are mutually exclusive");
            exit(2);
        }
        (Some(path), None) => match read_updates_file(Path::new(path)) {
            Ok((n, updates)) => SourceSpec::Updates { n, updates },
            Err(e) => fail_persist(e),
        },
        (None, _) => SourceSpec::Graph(load_graph(args)),
    }
}

/// Parameters a checkpointed `count` run persists in the directory's
/// CONFIG blob, so `sgs recover` can rebuild the identical run without
/// re-reading the input graph (the WAL already holds the routed stream).
struct CliConfig {
    /// 0 = insertion, 1 = turnstile.
    model: u8,
    pattern: String,
    trials: u64,
    seed: u64,
    shards: u64,
    block: u64,
    /// 0 = offer, 1 = skip.
    reservoir: u8,
    /// 1 when insertion trials run the relaxed query mix.
    relaxed: u8,
    snapshot_every: u64,
}

fn encode_cli_config(c: &CliConfig) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(c.model);
    enc.str(&c.pattern);
    enc.u64(c.trials);
    enc.u64(c.seed);
    enc.u64(c.shards);
    enc.u64(c.block);
    enc.u8(c.reservoir);
    enc.u8(c.relaxed);
    enc.u64(c.snapshot_every);
    enc.into_bytes()
}

fn decode_cli_config(bytes: &[u8]) -> Result<CliConfig, PersistError> {
    let mut dec = Decoder::new(bytes);
    let model = dec.u8("config model")?;
    if model > 1 {
        return Err(dec.corrupt(format!("config model tag {model} is not 0/1")));
    }
    let pattern = dec.str("config pattern")?;
    let trials = dec.u64("config trials")?;
    let seed = dec.u64("config seed")?;
    let shards = dec.u64("config shards")?;
    let block = dec.u64("config block")?;
    let reservoir = dec.u8("config reservoir")?;
    if reservoir > 1 {
        return Err(dec.corrupt(format!("config reservoir tag {reservoir} is not 0/1")));
    }
    let relaxed = dec.u8("config relaxed")?;
    if relaxed > 1 {
        return Err(dec.corrupt(format!("config relaxed flag {relaxed} is not 0/1")));
    }
    let snapshot_every = dec.u64("config snapshot cadence")?;
    dec.finish()?;
    Ok(CliConfig {
        model,
        pattern,
        trials,
        seed,
        shards,
        block,
        reservoir,
        relaxed,
        snapshot_every,
    })
}

/// Strip an inline `#` comment and surrounding whitespace from one
/// `--queries` file line. `None` means the line carries no query at all
/// (blank, or whitespace-only once the comment is gone) and must be
/// skipped — it is NOT an error and NOT a panic.
fn effective_query_line(raw: &str) -> Option<&str> {
    let line = raw.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        None
    } else {
        Some(line)
    }
}

/// Parse one effective `--queries` file line: `PATTERN [trials=N]
/// [seed=S] [reservoir=offer|skip] [relaxed]`. `line_no` is 1-based.
/// Malformed lines come back as structured errors (the caller routes
/// them through the exit-2 [`fail_persist`] path with the file path
/// attached) — never a panic, even for key=value-only lines.
fn parse_query_line(
    line: &str,
    line_no: usize,
    base_seed: u64,
) -> Result<sgs_core::MultiQuerySpec, PersistError> {
    let bad = |what: String| PersistError::corrupt(line_no as u64, what);
    let mut toks = line.split_whitespace();
    let Some(pat_tok) = toks.next() else {
        return Err(bad(format!("queries line {line_no}: no pattern name")));
    };
    let Some(pattern) = parse_pattern(pat_tok) else {
        if pat_tok.contains('=') {
            return Err(bad(format!(
                "queries line {line_no}: line starts with '{pat_tok}' — the first token \
                 must be a pattern name, options come after it"
            )));
        }
        return Err(bad(format!(
            "queries line {line_no}: unknown pattern '{pat_tok}'"
        )));
    };
    let mut spec = sgs_core::MultiQuerySpec {
        pattern,
        trials: 0,
        seed: base_seed.wrapping_add(line_no as u64),
        sampler: SamplerMode::Indexed,
        reservoir: sgs_query::ReservoirMode::Skip,
    };
    for tok in toks {
        if tok == "relaxed" {
            spec.sampler = SamplerMode::Relaxed;
        } else if let Some(v) = tok.strip_prefix("trials=") {
            spec.trials = v
                .parse()
                .map_err(|_| bad(format!("queries line {line_no}: bad trials '{v}'")))?;
        } else if let Some(v) = tok.strip_prefix("seed=") {
            spec.seed = v
                .parse()
                .map_err(|_| bad(format!("queries line {line_no}: bad seed '{v}'")))?;
        } else if let Some(v) = tok.strip_prefix("reservoir=") {
            spec.reservoir = match v {
                "offer" => sgs_query::ReservoirMode::Offer,
                "skip" => sgs_query::ReservoirMode::Skip,
                other => {
                    return Err(bad(format!(
                        "queries line {line_no}: reservoir must be offer|skip, got '{other}'"
                    )));
                }
            };
        } else {
            return Err(bad(format!(
                "queries line {line_no}: unknown token '{tok}'"
            )));
        }
    }
    Ok(spec)
}

/// Parse `--l0 {dispatch,predicated}`: which ℓ₀-bank feed path
/// turnstile passes run. Bit-identical either way — `dispatch` walks
/// only the survivor-level row prefix, `predicated` replays the
/// full-bank masked scan (the original oracle instruction sequence).
fn parse_l0(args: &Args) -> sgs_query::L0Mode {
    let s = args.get("l0").unwrap_or("dispatch");
    match sgs_query::L0Mode::parse(if s.is_empty() { "dispatch" } else { s }) {
        Some(mode) => mode,
        None => {
            eprintln!("error: --l0 must be 'dispatch' or 'predicated', got '{s}'");
            exit(2);
        }
    }
}

/// `sgs count --queries FILE`: serve every query in the list from one
/// shared pass per round, reporting per-query estimates plus aggregate
/// throughput and the admission report's slow-query diagnosis.
fn run_multi_count(args: &Args, queries_path: &str, seed: u64) {
    let src = load_source(args);
    let m = src.live_edges();
    let eps: f64 = args.num("eps", 0.2);
    let shards: usize = args.num("shards", 1).max(1);
    let block: usize = args.num("block", sgs_query::exec::DEFAULT_BLOCK);
    let opts = sgs_query::PassOpts::with_block(block).l0(parse_l0(args));
    let turnstile = args.has("turnstile");
    let text = std::fs::read_to_string(queries_path)
        .unwrap_or_else(|e| fail_persist(PersistError::io(Path::new(queries_path), e)));
    let mut specs: Vec<sgs_core::MultiQuerySpec> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let Some(line) = effective_query_line(raw) else {
            continue;
        };
        match parse_query_line(line, i + 1, seed) {
            Ok(spec) => specs.push(spec),
            Err(e) => fail_persist(e.located(Path::new(queries_path))),
        }
    }
    if specs.is_empty() {
        eprintln!("error: {queries_path}: no queries (every line blank or comment)");
        exit(2);
    }
    for spec in &mut specs {
        let Some(plan) = SamplerPlan::new(&spec.pattern) else {
            eprintln!(
                "error: pattern '{}' has an isolated vertex (no edge cover)",
                spec.pattern.name()
            );
            exit(2);
        };
        if spec.trials == 0 {
            spec.trials = sgs_core::fgp::practical_trials(m, plan.rho(), eps, 1.0).min(2_000_000);
        }
    }
    let policy = {
        let p = sgs_query::ExecPolicy::from_env();
        if args.has("pin") {
            p.with_pin()
        } else {
            p
        }
    };
    let mut arena = sgs_query::RouterArena::new();
    let t0 = std::time::Instant::now();
    let (ests, admission) = if turnstile {
        let s = src.turnstile_stream(seed);
        let feed = sgs_stream::ShardedFeed::partition(&s, shards);
        if args.has("broadcast") {
            sgs_core::fgp::estimate_multi_turnstile_broadcast(
                &specs,
                &feed,
                &mut arena,
                opts,
                sgs_query::BroadcastOpts::with_policy(policy),
            )
        } else {
            sgs_core::fgp::estimate_multi_turnstile(&specs, &feed, &mut arena, opts, policy)
        }
    } else {
        let s = src.insertion_stream(seed);
        let feed = sgs_stream::ShardedFeed::partition(&s, shards);
        if args.has("broadcast") {
            sgs_core::fgp::estimate_multi_insertion_broadcast(
                &specs,
                &feed,
                &mut arena,
                opts,
                sgs_query::BroadcastOpts::with_policy(policy),
            )
        } else {
            sgs_core::fgp::estimate_multi_insertion(&specs, &feed, &mut arena, opts, policy)
        }
    }
    .expect("plans validated above");
    let elapsed = t0.elapsed();
    // --bits appends the exact f64 so answers can be compared byte-for-
    // byte against a live `sgs serve` node's COUNT replies.
    let bits = args.has("bits");
    for (spec, est) in specs.iter().zip(&ests) {
        println!(
            "#{} ≈ {:.1}   (hits {}/{}, seed {}){}",
            spec.pattern.name(),
            est.estimate,
            est.hits,
            est.trials,
            spec.seed,
            bits_suffix(bits, est.estimate),
        );
    }
    let n = specs.len();
    let qps = n as f64 / elapsed.as_secs_f64();
    println!(
        "served {n} quer{} in {:.1} ms over {} shared pass{} ({} shard{}): {qps:.0} answers/sec",
        if n == 1 { "y" } else { "ies" },
        elapsed.as_secs_f64() * 1e3,
        admission.rounds.len(),
        if admission.rounds.len() == 1 {
            ""
        } else {
            "es"
        },
        shards,
        if shards == 1 { "" } else { "s" },
    );
    if let Some(slow) = admission.slowest_job() {
        let js = &admission.jobs[slow as usize];
        println!(
            "  slowest query: #{} ({}, {} rounds, {:.1} ms critical-path share)",
            slow,
            specs[slow as usize].pattern.name(),
            js.rounds,
            js.pass_nanos as f64 / 1e6,
        );
    }
    if !admission.stalls.is_empty() {
        println!(
            "  {} ring stall{} recorded (slowest consumer {})",
            admission.stalls.len(),
            if admission.stalls.len() == 1 { "" } else { "s" },
            admission
                .stalls
                .iter()
                .max_by_key(|s| s.blocked_ns)
                .map(|s| s.consumer)
                .unwrap_or(0),
        );
    }
}

/// The ` bits=<hex>` suffix `--bits` appends to estimate lines: the
/// exact IEEE-754 bit pattern, for byte-identity checks against a live
/// `sgs serve` node.
fn bits_suffix(enabled: bool, estimate: f64) -> String {
    if enabled {
        format!(" bits={:016x}", estimate.to_bits())
    } else {
        String::new()
    }
}

fn need_pattern(args: &Args) -> Pattern {
    let Some(ps) = args.get("pattern") else {
        eprintln!("error: --pattern NAME is required");
        exit(2);
    };
    match parse_pattern(ps) {
        Some(p) => p,
        None => {
            eprintln!("error: unknown pattern '{ps}'");
            exit(2);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprintln!("usage: sgs <count|serve|recover|search|cliques|info|rho> [flags]");
        exit(2);
    };
    let args = parse_args(&argv[1..]);
    let seed: u64 = args.num("seed", 1);

    match cmd.as_str() {
        "count" => {
            // --queries FILE serves a whole query list (one query per
            // line: PATTERN [trials=N] [seed=S] [reservoir=offer|skip]
            // [relaxed]) from ONE shared pass per round — the
            // multiplexed serving path. Each answer is byte-identical
            // to the equivalent solo `sgs count` invocation.
            if let Some(qpath) = args.get("queries") {
                let qpath = qpath.to_string();
                run_multi_count(&args, &qpath, seed);
                return;
            }
            let pattern = need_pattern(&args);
            let src = load_source(&args);
            let m = src.live_edges();
            let eps: f64 = args.num("eps", 0.2);
            let plan = match SamplerPlan::new(&pattern) {
                Some(p) => p,
                None => {
                    eprintln!("error: pattern has an isolated vertex (no edge cover)");
                    exit(2);
                }
            };
            let default_trials =
                sgs_core::fgp::practical_trials(m, plan.rho(), eps, 1.0).min(2_000_000);
            let trials: usize = args.num("trials", default_trials);
            // --shards N fans the stream out over N hash-partitioned
            // feed shards (one router + worker per shard); answers are
            // merged exactly, so the estimate is bit-identical to the
            // single-stream run with the same seed.
            let shards: usize = args.num("shards", 1).max(1);
            // --block B feeds each pass in blocks of B updates (batched
            // index probes, ℓ₀ lane loops); 0 forces the scalar
            // per-update path. Bit-identical either way — the knob only
            // changes throughput. Default: sgs_query::exec::DEFAULT_BLOCK.
            let block: usize = args.num("block", sgs_query::exec::DEFAULT_BLOCK);
            // --reservoir {offer,skip} picks the relaxed-f3 reservoir
            // acceptance scheme on insertion passes: `skip` (default)
            // draws one coin per acceptance via the exact skip-ahead
            // inverse transform, `offer` replays the per-offer scalar
            // oracle. Distribution-equivalent, not byte-identical.
            let reservoir = match args.get("reservoir").unwrap_or("skip") {
                "offer" => sgs_query::ReservoirMode::Offer,
                "skip" | "" => sgs_query::ReservoirMode::Skip,
                other => {
                    eprintln!("error: --reservoir must be 'offer' or 'skip', got '{other}'");
                    exit(2);
                }
            };
            // --relaxed runs the insertion trials on the relaxed query
            // mix (RandomNeighbor instead of arrival-order watchers) —
            // the workload whose passes the reservoir knob accelerates.
            let sampler = if args.has("relaxed") {
                SamplerMode::Relaxed
            } else {
                SamplerMode::Indexed
            };
            let opts = sgs_query::PassOpts::with_block(block)
                .reservoir(reservoir)
                .l0(parse_l0(&args));
            // SGS_SHARD_THREADS=0|1 forces shard workers serial or
            // threaded (unset = auto: threads when the host has >1
            // core); --pin additionally asks for one-core-per-worker
            // affinity (Linux, best-effort). Neither changes answers —
            // the env var is parsed only here, at the CLI boundary, and
            // handed down as an explicit ExecPolicy.
            let policy = {
                let p = sgs_query::ExecPolicy::from_env();
                if args.has("pin") {
                    p.with_pin()
                } else {
                    p
                }
            };
            // --broadcast runs the serving path: ONE ingest per logical
            // pass fans out over a bounded ring to the shard routers
            // plus side consumers (TRIÈST baseline, exact CSR oracle, a
            // raw pass counter, and --consumers N extra raw counters),
            // all riding the estimator's first pass — no private
            // replays. The estimate stays bit-identical.
            if args.has("broadcast") {
                let extra_raw: usize = args.num("consumers", 0);
                let turnstile = args.has("turnstile");
                if turnstile && (args.has("relaxed") || args.has("reservoir")) {
                    eprintln!(
                        "error: --relaxed/--reservoir only apply to insertion runs \
                         (turnstile trials are always relaxed, on ℓ₀-samplers)"
                    );
                    exit(2);
                }
                let consumers = sgs_core::fgp::ConsumerSet {
                    triest_capacity: if turnstile {
                        None
                    } else {
                        Some(1024.min(m.max(2)))
                    },
                    exact: true,
                    extra_raw,
                };
                let mut arena = sgs_query::RouterArena::new();
                let bcast = sgs_query::BroadcastOpts::with_policy(policy);
                let bundle = if turnstile {
                    let s = src.turnstile_stream(seed);
                    let feed = sgs_stream::ShardedFeed::partition(&s, shards);
                    sgs_core::fgp::estimate_turnstile_broadcast_with_exec(
                        &pattern, &feed, trials, seed, &mut arena, opts, consumers, bcast,
                    )
                } else {
                    let s = src.insertion_stream(seed);
                    let feed = sgs_stream::ShardedFeed::partition(&s, shards);
                    sgs_core::fgp::estimate_insertion_broadcast_with_exec(
                        &pattern, &feed, trials, seed, &mut arena, opts, sampler, consumers, bcast,
                    )
                }
                .expect("plan validated above");
                let est = &bundle.estimate;
                println!(
                    "#{} ≈ {:.1}   (hits {}/{}, rho={}, {} passes, m={}, {} shard{}, broadcast){}",
                    pattern.name(),
                    est.estimate,
                    est.hits,
                    est.trials,
                    plan.rho(),
                    est.report.passes,
                    m,
                    shards,
                    if shards == 1 { "" } else { "s" },
                    bits_suffix(args.has("bits"), est.estimate),
                );
                if let Some(t) = &bundle.triest {
                    println!("  triest baseline ≈ {:.1} (same ingest)", t.estimate);
                }
                if let Some(x) = bundle.exact {
                    println!("  exact (CSR oracle, same ingest) = {x}");
                }
                println!(
                    "  raw counter: {} updates; {} extra consumer{} attached",
                    bundle.raw_updates,
                    extra_raw,
                    if extra_raw == 1 { "" } else { "s" },
                );
                return;
            }
            // --checkpoint-dir D makes the run durable: the routed
            // stream is sealed into a write-ahead log in D before
            // estimation starts, and estimator state is snapshotted
            // every --snapshot-every delivery blocks (0 = WAL only).
            // A killed run resumes with `sgs recover D` to the
            // byte-identical estimate the uninterrupted run produces.
            if let Some(dirs) = args.get("checkpoint-dir") {
                if args.has("broadcast") {
                    eprintln!(
                        "error: --checkpoint-dir does not combine with --broadcast \
                         (checkpoint the plain sharded run)"
                    );
                    exit(2);
                }
                let turnstile = args.has("turnstile");
                if turnstile && (args.has("relaxed") || args.has("reservoir")) {
                    eprintln!(
                        "error: --relaxed/--reservoir only apply to insertion runs \
                         (turnstile trials are always relaxed, on ℓ₀-samplers)"
                    );
                    exit(2);
                }
                let dir = PathBuf::from(dirs);
                let snapshot_every: u64 =
                    args.num("snapshot-every", sgs_query::DEFAULT_SNAPSHOT_EVERY);
                // --wal-block W sets the WAL record granularity (updates
                // per delivery block); snapshots land every
                // `snapshot_every` such blocks, so small streams want a
                // small W to see any snapshot at all.
                let wal_block: usize = args.num("wal-block", sgs_query::DEFAULT_CHECKPOINT_CHUNK);
                let feed = if turnstile {
                    let s = src.turnstile_stream(seed);
                    sgs_stream::ShardedFeed::partition(&s, shards)
                } else {
                    let s = src.insertion_stream(seed);
                    sgs_stream::ShardedFeed::partition(&s, shards)
                };
                let cfg = CliConfig {
                    model: turnstile as u8,
                    pattern: args.get("pattern").unwrap_or_default().to_string(),
                    trials: trials as u64,
                    seed,
                    shards: shards as u64,
                    block: block as u64,
                    reservoir: match reservoir {
                        sgs_query::ReservoirMode::Offer => 0,
                        sgs_query::ReservoirMode::Skip => 1,
                    },
                    relaxed: args.has("relaxed") as u8,
                    snapshot_every,
                };
                let run: Result<_, PersistError> = (|| {
                    let mut session = sgs_query::CheckpointSession::create(
                        &dir,
                        &feed,
                        snapshot_every,
                        wal_block,
                    )?;
                    write_config(&dir, &encode_cli_config(&cfg))?;
                    let mut arena = sgs_query::RouterArena::new();
                    let est = if turnstile {
                        sgs_core::fgp::estimate_turnstile_checkpointed(
                            &pattern,
                            &feed,
                            trials,
                            seed,
                            &mut arena,
                            opts,
                            &mut session,
                        )?
                    } else {
                        sgs_core::fgp::estimate_insertion_checkpointed(
                            &pattern,
                            &feed,
                            trials,
                            seed,
                            &mut arena,
                            opts,
                            sampler,
                            &mut session,
                        )?
                    };
                    Ok((est, session.snapshots_written()))
                })();
                let (est, snapshots) = match run {
                    Ok((e, s)) => (e.expect("plan validated above"), s),
                    Err(e) => fail_persist(e),
                };
                println!(
                    "#{} ≈ {:.1}   (hits {}/{}, rho={}, {} passes, m={}, {} shard{}){}",
                    pattern.name(),
                    est.estimate,
                    est.hits,
                    est.trials,
                    plan.rho(),
                    est.report.passes,
                    m,
                    shards,
                    if shards == 1 { "" } else { "s" },
                    bits_suffix(args.has("bits"), est.estimate),
                );
                println!(
                    "  checkpointed: WAL + {snapshots} snapshot{} in {} \
                     (recover with `sgs recover {}`)",
                    if snapshots == 1 { "" } else { "s" },
                    dir.display(),
                    dir.display(),
                );
                return;
            }
            let est = if args.has("turnstile") {
                // Turnstile trials always run the relaxed query mix on
                // ℓ₀-samplers (Definition 10 has no indexed f3 and no
                // reservoirs), so --relaxed and --reservoir would
                // silently change nothing the flags promise: reject
                // them loudly rather than drop them.
                if args.has("relaxed") {
                    eprintln!(
                        "error: --relaxed only applies to insertion runs \
                         (turnstile trials are always relaxed, on ℓ₀-samplers)"
                    );
                    exit(2);
                }
                if args.has("reservoir") {
                    eprintln!(
                        "error: --reservoir only applies to insertion runs \
                         (turnstile f3 is answered by ℓ₀-samplers, not reservoirs)"
                    );
                    exit(2);
                }
                let s = src.turnstile_stream(seed);
                sgs_core::fgp::estimate_turnstile_threaded_with_exec(
                    &pattern, &s, trials, shards, seed, opts, policy,
                )
            } else {
                let s = src.insertion_stream(seed);
                sgs_core::fgp::estimate_insertion_threaded_with_exec(
                    &pattern, &s, trials, shards, seed, opts, sampler, policy,
                )
            }
            .expect("plan validated above");
            println!(
                "#{} ≈ {:.1}   (hits {}/{}, rho={}, {} passes, m={}, {} shard{}, block {}, reservoir {}){}",
                pattern.name(),
                est.estimate,
                est.hits,
                est.trials,
                plan.rho(),
                est.report.passes,
                m,
                shards,
                if shards == 1 { "" } else { "s" },
                if block <= 1 {
                    "scalar".to_string()
                } else {
                    block.to_string()
                },
                if args.has("turnstile") {
                    "l0".to_string()
                } else {
                    format!("{reservoir:?}").to_lowercase()
                },
                bits_suffix(args.has("bits"), est.estimate),
            );
        }
        "serve" => {
            // `sgs serve DIR` — a long-lived node: WAL-backed ingest
            // through an open broadcast ring, a persistent shard worker
            // pool, and a line protocol (INGEST/COUNT/SNAPSHOT/STAT/
            // QUIT) over TCP and/or a Unix socket. If DIR already holds
            // a serve log the node resumes from it (its persisted
            // CONFIG wins over flags); QUIT shuts down gracefully and
            // a later `sgs serve DIR` continues where it left off.
            let Some(dirs) = argv
                .get(1)
                .filter(|a| !a.starts_with('-'))
                .cloned()
                .or_else(|| args.get("dir").map(str::to_string))
            else {
                eprintln!("usage: sgs serve DIR [--listen ADDR] [--unix PATH] [flags]");
                exit(2);
            };
            let dir = PathBuf::from(&dirs);
            let defaults = sgs_query::ServeConfig::default();
            let flag_cfg = sgs_query::ServeConfig {
                shards: args.num("shards", 1).max(1),
                wal_block: args.num("wal-block", sgs_query::DEFAULT_SERVE_BLOCK).max(1),
                snapshot_every: args.num("snapshot-every", defaults.snapshot_every),
                ring_capacity: args.num("ring-capacity", defaults.ring_capacity).max(1),
                segment_bytes: defaults.segment_bytes,
                seed,
            };
            let cfg = match read_config(&dir) {
                Ok(Some(bytes)) if bytes.first() == Some(&sgs_query::SERVE_CONFIG_TAG) => {
                    let persisted = sgs_query::decode_serve_config(&bytes)
                        .unwrap_or_else(|e| fail_persist(e.located(dir.join("CONFIG"))));
                    println!(
                        "resuming with persisted config: {} shard{}, wal-block {}",
                        persisted.shards,
                        if persisted.shards == 1 { "" } else { "s" },
                        persisted.wal_block,
                    );
                    persisted
                }
                Ok(Some(_)) => {
                    eprintln!(
                        "error: {} holds a `sgs count --checkpoint-dir` log, not a serve \
                         directory (recover it with `sgs recover {}`)",
                        dir.display(),
                        dir.display(),
                    );
                    exit(2);
                }
                Ok(None) => flag_cfg,
                Err(e) => fail_persist(e),
            };
            let policy = {
                let p = sgs_query::ExecPolicy::from_env();
                if args.has("pin") {
                    p.with_pin()
                } else {
                    p
                }
            };
            let node =
                sgs_query::ServerNode::open(&dir, cfg, policy).unwrap_or_else(|e| fail_persist(e));
            if let Some(t) = node.truncation() {
                eprintln!("warning: {t}");
            }
            if node.recovered_blocks() > 0 {
                println!(
                    "recovered {} update{} in {} block{} from {}",
                    node.ingested(),
                    if node.ingested() == 1 { "" } else { "s" },
                    node.recovered_blocks(),
                    if node.recovered_blocks() == 1 {
                        ""
                    } else {
                        "s"
                    },
                    dir.display(),
                );
            }
            let mut listeners = sgs_core::Listeners::default();
            #[cfg(unix)]
            if let Some(path) = args.get("unix").filter(|p| !p.is_empty()) {
                let path = Path::new(path);
                // A stale socket file (kill -9) would make bind fail.
                let _ = std::fs::remove_file(path);
                let l = std::os::unix::net::UnixListener::bind(path)
                    .unwrap_or_else(|e| fail_persist(PersistError::io(path, e)));
                println!("LISTENING unix:{}", path.display());
                listeners.unix = Some(l);
            }
            #[cfg(unix)]
            let unix_only = listeners.unix.is_some() && !args.has("listen");
            #[cfg(not(unix))]
            let unix_only = false;
            if !unix_only {
                let addr = args
                    .get("listen")
                    .filter(|a| !a.is_empty())
                    .unwrap_or("127.0.0.1:0");
                let l = std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
                    eprintln!("error: cannot listen on {addr}: {e}");
                    exit(2);
                });
                let local = l.local_addr().expect("bound TCP socket has an address");
                println!("LISTENING {local}");
                listeners.tcp = Some(l);
            }
            // Flush so a parent process waiting on the LISTENING line
            // (the protocol tests, the CI smoke) can proceed.
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            let serve_opts = sgs_core::ServeOptions {
                policy,
                pass: sgs_query::PassOpts::with_block(
                    args.num("block", sgs_query::exec::DEFAULT_BLOCK),
                )
                .l0(parse_l0(&args)),
                eps: args.num("eps", 0.2),
            };
            let snap = sgs_core::run_server(node, listeners, serve_opts)
                .unwrap_or_else(|e| fail_persist(e));
            println!(
                "shutdown: {} update{} in {} block{}, {} quer{} served, {} snapshot{} \
                 (resume with `sgs serve {}`)",
                snap.updates,
                if snap.updates == 1 { "" } else { "s" },
                snap.blocks,
                if snap.blocks == 1 { "" } else { "s" },
                snap.served,
                if snap.served == 1 { "y" } else { "ies" },
                snap.snapshots,
                if snap.snapshots == 1 { "" } else { "s" },
                dir.display(),
            );
        }
        "recover" => {
            // `sgs recover DIR` — resume a killed checkpointed run.
            // The WAL already holds the routed stream and CONFIG holds
            // the run parameters, so no --edges / --pattern is needed;
            // the answer is byte-identical to the uninterrupted run.
            let Some(dirs) = argv
                .get(1)
                .filter(|a| !a.starts_with('-'))
                .cloned()
                .or_else(|| args.get("dir").map(str::to_string))
            else {
                eprintln!("usage: sgs recover DIR");
                exit(2);
            };
            let dir = PathBuf::from(&dirs);
            let cfg_bytes = match read_config(&dir) {
                Ok(Some(b)) => b,
                Ok(None) => {
                    eprintln!(
                        "error: {}: no CONFIG found (was this directory created by \
                         `sgs count --checkpoint-dir`?)",
                        dir.display()
                    );
                    exit(2);
                }
                Err(e) => fail_persist(e),
            };
            // A serve directory (CONFIG leads with the serve tag) is
            // inspected, not re-run: report what survives and point at
            // `sgs serve DIR`, which resumes ingest and serving.
            if cfg_bytes.first() == Some(&sgs_query::SERVE_CONFIG_TAG) {
                let scfg = sgs_query::decode_serve_config(&cfg_bytes)
                    .unwrap_or_else(|e| fail_persist(e.located(dir.join("CONFIG"))));
                let recovered = read_wal(&dir).unwrap_or_else(|e| fail_persist(e));
                if let Some(t) = &recovered.truncation {
                    eprintln!("warning: {t}");
                }
                let updates: usize = recovered.blocks.iter().map(Vec::len).sum();
                println!(
                    "serve log: {} update{} in {} block{} ({} shard{}, {})",
                    updates,
                    if updates == 1 { "" } else { "s" },
                    recovered.blocks.len(),
                    if recovered.blocks.len() == 1 { "" } else { "s" },
                    scfg.shards,
                    if scfg.shards == 1 { "" } else { "s" },
                    if recovered.meta.is_some() {
                        "sealed by graceful shutdown"
                    } else {
                        "unsealed: the node was killed mid-ingest"
                    },
                );
                match sgs_query::read_serve_snapshot(&dir) {
                    Ok(Some((seq, snap))) => println!(
                        "latest snapshot at block {seq}: ring cursor {}/{} blocks, \
                         {} quer{} served, {} deletion{}",
                        snap.cursor_blocks,
                        snap.blocks,
                        snap.served,
                        if snap.served == 1 { "y" } else { "ies" },
                        snap.deletions,
                        if snap.deletions == 1 { "" } else { "s" },
                    ),
                    Ok(None) => println!("no snapshot yet (WAL-only recovery)"),
                    Err(e) => fail_persist(e),
                }
                println!(
                    "restart with `sgs serve {}` to resume serving",
                    dir.display()
                );
                return;
            }
            let cfg = decode_cli_config(&cfg_bytes)
                .unwrap_or_else(|e| fail_persist(e.located(dir.join("CONFIG"))));
            let Some(pattern) = parse_pattern(&cfg.pattern) else {
                eprintln!("error: CONFIG names unknown pattern '{}'", cfg.pattern);
                exit(2);
            };
            let plan = match SamplerPlan::new(&pattern) {
                Some(p) => p,
                None => {
                    eprintln!("error: pattern has an isolated vertex (no edge cover)");
                    exit(2);
                }
            };
            let (mut session, feed) =
                sgs_query::CheckpointSession::resume(&dir, cfg.snapshot_every)
                    .unwrap_or_else(|e| fail_persist(e));
            if let Some(t) = session.truncation_report() {
                eprintln!("warning: {t}");
            }
            if session.has_resume_state() {
                println!(
                    "resuming from snapshot: {} delivery blocks already done",
                    session.blocks_processed()
                );
            } else {
                println!("no snapshot found; replaying the run from the sealed WAL");
            }
            let opts = sgs_query::PassOpts::with_block(cfg.block as usize).reservoir(
                if cfg.reservoir == 0 {
                    sgs_query::ReservoirMode::Offer
                } else {
                    sgs_query::ReservoirMode::Skip
                },
            );
            let mut arena = sgs_query::RouterArena::new();
            let est = if cfg.model == 1 {
                sgs_core::fgp::estimate_turnstile_checkpointed(
                    &pattern,
                    &feed,
                    cfg.trials as usize,
                    cfg.seed,
                    &mut arena,
                    opts,
                    &mut session,
                )
            } else {
                let sampler = if cfg.relaxed == 1 {
                    SamplerMode::Relaxed
                } else {
                    SamplerMode::Indexed
                };
                sgs_core::fgp::estimate_insertion_checkpointed(
                    &pattern,
                    &feed,
                    cfg.trials as usize,
                    cfg.seed,
                    &mut arena,
                    opts,
                    sampler,
                    &mut session,
                )
            }
            .unwrap_or_else(|e| fail_persist(e))
            .expect("plan validated above");
            println!(
                "#{} ≈ {:.1}   (hits {}/{}, rho={}, {} passes, m={}, {} shard{}, recovered){}",
                pattern.name(),
                est.estimate,
                est.hits,
                est.trials,
                plan.rho(),
                est.report.passes,
                est.m,
                feed.num_shards(),
                if feed.num_shards() == 1 { "" } else { "s" },
                bits_suffix(args.has("bits"), est.estimate),
            );
        }
        "search" => {
            let pattern = need_pattern(&args);
            let g = load_graph(&args);
            let eps: f64 = args.num("eps", 0.25);
            let cap: usize = args.num("max-trials", 1_000_000);
            let s = InsertionStream::from_graph(&g, seed ^ 0x77);
            let res = sgs_core::fgp::search_count_insertion(&pattern, &s, eps, seed, cap)
                .expect("coverable pattern");
            println!(
                "#{} ≈ {:.1}   ({} search rounds, {} total passes, {} total trials)",
                pattern.name(),
                res.estimate,
                res.rounds,
                res.total_passes,
                res.total_trials
            );
        }
        "cliques" => {
            let g = load_graph(&args);
            let r: usize = args.num("r", 3);
            let eps: f64 = args.num("eps", 0.3);
            let instances: usize = args.num("instances", 5);
            let lambda = sgs_graph::degeneracy::degeneracy(&g);
            let s = InsertionStream::from_graph(&g, seed ^ 0x77);
            let template = ErsParams::practical(r, lambda.max(1), eps, 1.0);
            let res = sgs_core::ers::search_count_cliques_insertion(&template, &s, instances, seed);
            println!(
                "#K{r} ≈ {:.1}   (lambda={lambda}, {} rounds, {} total passes)",
                res.estimate, res.rounds, res.total_passes
            );
        }
        "info" => {
            let g = load_graph(&args);
            let cd = sgs_graph::degeneracy::CoreDecomposition::compute(&g);
            println!("n = {}", g.num_vertices());
            println!("m = {}", g.num_edges());
            println!("max degree = {}", g.max_degree());
            println!("degeneracy = {}", cd.degeneracy);
            println!(
                "triangles (exact) = {}",
                sgs_graph::exact::triangles::count_triangles(&g)
            );
        }
        "rho" => {
            let pattern = need_pattern(&args);
            match sgs_graph::decompose::decompose(&pattern) {
                Some(d) => {
                    println!("pattern: {}", pattern.name());
                    println!("rho(H) = {}", d.rho);
                    println!("f_T(H) = {}", d.tuple_multiplicity);
                    println!("decomposition pieces: {:?}", d.pieces);
                }
                None => println!("no edge cover (isolated vertex): rho = infinity"),
            }
        }
        other => {
            eprintln!("unknown command '{other}'");
            exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_line_reports_one_based_or_none() {
        assert_eq!(parse_error_line("bad token at line 17: 'x'"), Some(17));
        assert_eq!(parse_error_line("line 1: not an integer"), Some(1));
        // A malformed message naming no line must NOT become "line 0".
        assert_eq!(parse_error_line("completely malformed message"), None);
        assert_eq!(parse_error_line("line without digits"), None);
    }

    #[test]
    fn graph_parse_error_marks_unknown_lines_explicitly() {
        let with_line = graph_parse_error(Path::new("edges.txt"), "junk at line 3".into());
        assert!(with_line.to_string().contains('3'), "{with_line}");
        let without = graph_parse_error(Path::new("edges.txt"), "truncated file".into());
        let msg = without.to_string();
        assert!(msg.contains("unknown line"), "{msg}");
        assert!(!msg.contains("line 0"), "{msg}");
    }

    #[test]
    fn effective_query_line_skips_comment_only_lines() {
        // Whitespace-only after an inline comment: skipped, never parsed
        // (this input used to reach the parser's blank-line panic path).
        assert_eq!(effective_query_line("   # just a comment"), None);
        assert_eq!(effective_query_line(""), None);
        assert_eq!(effective_query_line("   \t "), None);
        assert_eq!(
            effective_query_line("triangle # trailing note"),
            Some("triangle")
        );
        assert_eq!(effective_query_line("K4 trials=5#x"), Some("K4 trials=5"));
    }

    #[test]
    fn parse_query_line_returns_structured_errors_not_panics() {
        // Key=value-only line: a structured error pointing at the line.
        let err = parse_query_line("trials=5", 4, 1).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 4"), "{msg}");
        assert!(msg.contains("pattern"), "{msg}");
        // Defensive: an empty effective line is an error, not a panic.
        assert!(parse_query_line("", 2, 1).is_err());
        assert!(parse_query_line("nosuchpattern", 1, 1).is_err());
        assert!(parse_query_line("triangle trials=abc", 1, 1).is_err());
        assert!(parse_query_line("triangle reservoir=bogus", 1, 1).is_err());
        // And the happy path still parses.
        let spec = parse_query_line("K4 trials=7 seed=3 reservoir=offer relaxed", 2, 10).unwrap();
        assert_eq!(spec.trials, 7);
        assert_eq!(spec.seed, 3);
        assert!(matches!(spec.reservoir, sgs_query::ReservoirMode::Offer));
        assert!(matches!(spec.sampler, SamplerMode::Relaxed));
        // Default seed derives from the 1-based line number.
        let spec = parse_query_line("triangle", 5, 100).unwrap();
        assert_eq!(spec.seed, 105);
    }

    #[test]
    fn updates_file_round_trips_and_rejects_malformed_lines() {
        let dir = std::env::temp_dir().join("sgs_cli_updates_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("updates.txt");
        std::fs::write(&path, "# header\n0 1 +1\n1 2 +1  # inline\n0 1 -1\n\n").unwrap();
        let (n, updates) = read_updates_file(&path).unwrap();
        assert_eq!(n, 3);
        assert_eq!(updates.len(), 3);
        assert_eq!(updates[2].delta, -1);
        std::fs::write(&path, "0 1 +1\n0 0 +1\n").unwrap();
        assert!(read_updates_file(&path)
            .unwrap_err()
            .to_string()
            .contains("self-loop"));
        std::fs::write(&path, "0 1 2\n").unwrap();
        assert!(read_updates_file(&path).is_err());
        std::fs::write(&path, "0 1\n").unwrap();
        assert!(read_updates_file(&path).is_err());
    }
}
