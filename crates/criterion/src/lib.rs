//! Offline drop-in subset of the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no crates.io access, so
//! this crate implements the (small) slice of criterion's API the benches
//! under `crates/bench/benches/` use: `Criterion`, `BenchmarkGroup`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is deliberately
//! simple — a fixed warmup, `sample_size` timed samples, median/mean/min
//! reporting — which is plenty for the before/after comparisons recorded
//! in `BENCH_executor.json`.
//!
//! Set `CRITERION_JSON=<path>` to append one JSON line per benchmark
//! (id, sample stats, derived throughput) — the machine-readable record
//! the repo commits alongside human-readable output.
//!
//! If real criterion ever becomes installable, deleting this crate and
//! adding the dependency restores the full harness; the bench sources
//! need no changes.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: converts per-iteration time into rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `name` or `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id (criterion prefixes the group name at print time;
    /// we do the same).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs one benchmark body repeatedly and records samples.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Time `routine`: warm up (≥ 2 calls, up to ~300 ms, like
    /// criterion's warmup phase — first-touch page faults and allocator
    /// growth land here, not in the samples), then one timed call per
    /// sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup_budget = Duration::from_millis(300);
        let start = Instant::now();
        let mut warmups = 0u32;
        while warmups < 2 || (start.elapsed() < warmup_budget && warmups < 50) {
            black_box(routine());
            warmups += 1;
        }
        self.samples.clear();
        self.samples.reserve(self.sample_count);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Stats {
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
}

fn stats(samples: &[Duration]) -> Stats {
    let mut ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
    ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min_ns = ns.first().copied().unwrap_or(0.0);
    let median_ns = if ns.is_empty() { 0.0 } else { ns[ns.len() / 2] };
    let mean_ns = if ns.is_empty() {
        0.0
    } else {
        ns.iter().sum::<f64>() / ns.len() as f64
    };
    Stats {
        median_ns,
        mean_ns,
        min_ns,
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(id: &str, s: Stats, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("{:.3} Melem/s", n as f64 / s.median_ns * 1e3),
        Throughput::Bytes(n) => format!(
            "{:.3} MiB/s",
            n as f64 / s.median_ns * 1e9 / (1 << 20) as f64
        ),
    });
    match &rate {
        Some(r) => println!(
            "{id:<40} median {:>10}  mean {:>10}  thrpt {r}",
            human_time(s.median_ns),
            human_time(s.mean_ns)
        ),
        None => println!(
            "{id:<40} median {:>10}  mean {:>10}",
            human_time(s.median_ns),
            human_time(s.mean_ns)
        ),
    }
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        use std::io::Write;
        let elems = match throughput {
            Some(Throughput::Elements(n)) => n,
            _ => 0,
        };
        let line = format!(
            "{{\"id\":\"{id}\",\"median_ns\":{:.0},\"mean_ns\":{:.0},\"min_ns\":{:.0},\
             \"elements_per_iter\":{elems},\"elements_per_sec\":{:.0}}}\n",
            s.median_ns,
            s.mean_ns,
            s.min_ns,
            if elems > 0 {
                elems as f64 / (s.median_ns / 1e9)
            } else {
                0.0
            },
        );
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    filter: Option<String>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn skipped(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => !full_id.contains(f.as_str()),
            None => false,
        }
    }
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's default is 100;
    /// ours is 20 to keep `cargo bench` quick in CI).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `routine` with an input value.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.id);
        if self.skipped(&full_id) {
            return self;
        }
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
        };
        routine(&mut b, input);
        report(&full_id, stats(&samples), self.throughput);
        self
    }

    /// Benchmark a no-input routine inside the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let full_id = format!("{}/{}", self.name, id.id);
        if self.skipped(&full_id) {
            return self;
        }
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
        };
        routine(&mut b);
        report(&full_id, stats(&samples), self.throughput);
        self
    }

    /// Finish the group (criterion renders summaries here; we print as we
    /// go, so this only ends the scope).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let filter = self.filter.clone();
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            filter,
            _criterion: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, mut routine: R) {
        if let Some(f) = &self.filter {
            if !id.contains(f.as_str()) {
                return;
            }
        }
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_count: 20,
        };
        routine(&mut b);
        report(id, stats(&samples), None);
    }

    /// Honor a `cargo bench -- <filter>` substring filter.
    pub fn with_filter_from_args(mut self) -> Self {
        // `cargo bench` passes `--bench` when harness = false; ignore flags.
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().with_filter_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        let s = stats(&[
            Duration::from_nanos(100),
            Duration::from_nanos(300),
            Duration::from_nanos(200),
        ]);
        assert_eq!(s.min_ns, 100.0);
        assert_eq!(s.median_ns, 200.0);
        assert_eq!(s.mean_ns, 200.0);
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_count: 5,
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(samples.len(), 5);
        assert!(calls >= 7); // >= 2 warmup calls + 5 samples
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("k4").id, "k4");
    }

    #[test]
    fn group_runs_without_panicking() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, &x| {
            b.iter(|| black_box(x + 1));
        });
        g.finish();
    }
}
