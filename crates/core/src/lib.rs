//! # sgs-core — the paper's algorithms
//!
//! Streaming subgraph counting from Fichtenberger & Peng, *Approximately
//! Counting Subgraphs in Data Streams* (PODS 2022):
//!
//! * [`fgp`] — the 3-pass sampler/counter for arbitrary subgraphs
//!   (Theorem 1 for turnstile streams, Theorem 17 for insertion-only),
//! * [`ers`] — the `O(r)`-pass clique counter for low-degeneracy graphs
//!   (Theorem 2, resolving the Bera–Seshadhri conjecture),
//! * [`baselines`] — comparison baselines from the related-work
//!   discussion (exact-from-stream, DOULION-style sparsification).
//!
//! ## Quick start
//!
//! ```
//! use sgs_core::fgp;
//! use sgs_graph::{gen, Pattern};
//! use sgs_stream::InsertionStream;
//!
//! let graph = gen::gnm(100, 600, 7);
//! let stream = InsertionStream::from_graph(&graph, 8);
//! let est = fgp::estimate_insertion(&Pattern::triangle(), &stream, 20_000, 9).unwrap();
//! println!("~{} triangles in 3 passes", est.estimate.round());
//! assert_eq!(est.report.passes, 3);
//! ```

pub mod baselines;
pub mod ers;
pub mod fgp;
pub mod serve;

pub use fgp::{CountEstimate, MultiQuerySpec, SamplerMode, SamplerPlan, SubgraphSampler};
pub use serve::{run_server, Listeners, ServeOptions};
