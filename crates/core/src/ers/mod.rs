//! The ERS low-degeneracy clique counter (§5 of the paper; Theorem 2).
//!
//! Streaming version of Eden–Ron–Seshadhri's sublinear clique counter,
//! simplified for the augmented general graph model (uniform edge samples
//! replace the vertex-sampling stage, §5.1) and organized into `O(r)`
//! query rounds (Theorem 20) so the Theorem 9 transformation yields a
//! `≤ 5r`-pass insertion-only streaming algorithm with
//! `m·λ^{r-2}/#K_r · poly(log n, 1/ε, r^r)` space — resolving the
//! Bera–Seshadhri conjecture.
//!
//! * [`params`] — Algorithm 2's parameters, in `Theory` and `Practical`
//!   regimes (see DESIGN.md for the substitution rationale),
//! * [`chain`] — the `StreamSet` sampling-chain primitive (Algorithm 4),
//! * [`act`] — `StrAct` prefix-activity estimation (Algorithm 18),
//! * [`approx`] — `StreamApproxClique` (Algorithm 3) with the
//!   `StrIsAssigned` phase (Algorithm 17),
//! * [`count`] — `StreamCountClique` median amplification (Algorithm 2).

pub mod act;
pub mod approx;
pub mod chain;
pub mod count;
pub mod params;
pub mod search;

pub use approx::{ErsApproxClique, ErsOutcome};
pub use count::{count_cliques_insertion, count_cliques_oracle, ErsEstimate};
pub use params::{ErsParams, ParamMode};
pub use search::{search_count_cliques_insertion, ErsSearchResult};
