//! `StrAct` (Algorithm 18): estimate how many cliques hang off a prefix.
//!
//! One *run* warm-starts the sampling chain from `R_i = {⃗I}` and grows it
//! to `R_r` through `2(r-i)` rounds, yielding the estimate
//! `ĉ_r(⃗I) = dg(R_i)···dg(R_{r-1}) / (s_{i+1}···s_r) · |R_r|`.
//! A prefix is **active** when the majority of `q` independent runs
//! report `ĉ_r(⃗I) ≤ τ_i/4` (Algorithm 18, lines 14–15); aborted runs
//! (sample-size cap exceeded) vote non-active.

use crate::ers::chain::{
    absorb_verify, draw_queries, set_weight, verify_queries, Candidate, GrowDraw, OrderedClique,
};
use crate::ers::params::ErsParams;
use sgs_graph::VertexId;
use sgs_query::{Answer, Query, RoundAdaptive};
use sgs_stream::hash::FastRng;
use std::collections::HashMap;
use std::sync::Arc;

/// One independent run of the activity estimator for one prefix.
pub struct StrActRun {
    params: Arc<ErsParams>,
    rng: FastRng,
    /// Prefix length `i`.
    i: usize,
    /// Edge count of the graph (from the outer algorithm's pass 1).
    m: usize,
    deg: HashMap<VertexId, usize>,
    r_t: Vec<OrderedClique>,
    t: usize,
    omega: f64,
    prev_dg: u64,
    prev_s: usize,
    factor: f64,
    draws: Vec<GrowDraw>,
    cands: Vec<Candidate>,
    stage: Stage,
    /// `Some(ĉ)` on completion; `None` after a cap abort.
    result: Option<f64>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Stage {
    Draw,
    Verify,
    Done,
}

impl StrActRun {
    /// Start a run for `prefix` (length `>= 2`) whose vertex degrees are
    /// already known.
    pub fn new(
        params: Arc<ErsParams>,
        prefix: OrderedClique,
        prefix_degrees: &HashMap<VertexId, usize>,
        m: usize,
        seed: u64,
    ) -> Self {
        let i = prefix.len();
        debug_assert!(i >= 2 && i < params.r);
        let deg: HashMap<VertexId, usize> =
            prefix.iter().map(|v| (*v, prefix_degrees[v])).collect();
        let omega = (1.0 - params.epsilon / 2.0) * params.tau(i);
        StrActRun {
            params,
            rng: FastRng::seed_from_u64(seed),
            i,
            m,
            deg,
            r_t: vec![prefix],
            t: i,
            omega,
            prev_dg: 0,
            prev_s: 0,
            factor: 1.0,
            draws: Vec::new(),
            cands: Vec::new(),
            stage: Stage::Draw,
            result: None,
        }
    }

    /// `i`: the prefix length this run serves.
    pub fn prefix_len(&self) -> usize {
        self.i
    }

    fn finish(&mut self, c_hat: Option<f64>) -> Vec<Query> {
        self.result = c_hat;
        self.stage = Stage::Done;
        Vec::new()
    }

    /// Begin level `t -> t+1`: compute `s_{t+1}` and emit draw queries.
    fn begin_level(&mut self) -> Vec<Query> {
        let r = self.params.r;
        if self.t >= r {
            let c_hat = self.factor * self.r_t.len() as f64;
            return self.finish(Some(c_hat));
        }
        let dg_rt = set_weight(&self.r_t, &self.deg);
        if dg_rt == 0 {
            // Chain died: no extensions exist; ĉ = 0.
            return self.finish(Some(0.0));
        }
        if self.t > self.i {
            // ω̃_t = (1-γ)·ω̃_{t-1}·s_t / dg(R_{t-1})  (Algorithm 18 l.8)
            self.omega =
                self.params.omega_decay() * self.omega * self.prev_s as f64 / self.prev_dg as f64;
        }
        let tau_next = if self.t + 1 < r {
            self.params.tau(self.t + 1)
        } else {
            1.0 // τ_r = 1 (Algorithm 2)
        };
        let s_next =
            (dg_rt as f64 * tau_next / self.omega * self.params.confidence()).ceil() as usize;
        if let Some(cap) = self.params.sample_cap(self.m, self.t + 1) {
            if s_next as f64 > cap {
                return self.finish(None); // abort: non-active vote
            }
        }
        if s_next == 0 {
            return self.finish(Some(0.0));
        }
        self.factor *= dg_rt as f64 / s_next as f64;
        self.prev_dg = dg_rt;
        self.prev_s = s_next;
        let (draws, queries) = draw_queries(&self.r_t, &self.deg, s_next, &mut self.rng);
        self.draws = draws;
        self.stage = Stage::Verify;
        queries
    }
}

impl RoundAdaptive for StrActRun {
    /// `Some(ĉ_r(⃗I))`, or `None` after a cap abort.
    type Output = Option<f64>;

    fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
        match self.stage {
            Stage::Draw => {
                if self.t > self.i || !answers.is_empty() || !self.cands.is_empty() {
                    // Absorb the previous level's verification answers.
                    let r_next = absorb_verify(&self.cands, answers, &mut self.deg);
                    self.cands.clear();
                    self.r_t = r_next;
                    self.t += 1;
                }
                self.begin_level()
            }
            Stage::Verify => {
                let (cands, queries) = verify_queries(&self.draws, answers);
                self.draws.clear();
                self.cands = cands;
                self.stage = Stage::Draw;
                if queries.is_empty() {
                    // No viable candidates: next level starts with R empty.
                    self.r_t.clear();
                    self.t += 1;
                    return self.begin_level();
                }
                queries
            }
            Stage::Done => Vec::new(),
        }
    }

    fn output(&mut self) -> Option<f64> {
        self.result
    }
}

/// Majority activity vote over `q` run results for a prefix of length `i`
/// (Algorithm 18, lines 14–15).
pub fn majority_active(params: &ErsParams, i: usize, results: &[Option<f64>]) -> bool {
    let threshold = params.activity_threshold(i);
    let votes = results
        .iter()
        .filter(|r| matches!(r, Some(c) if *c <= threshold))
        .count();
    2 * votes >= results.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{gen, StaticGraph};
    use sgs_query::exec::{run_insertion, run_on_oracle};
    use sgs_query::ExactOracle;
    use sgs_stream::InsertionStream;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    fn run_act(
        g: &sgs_graph::AdjListGraph,
        prefix: Vec<VertexId>,
        r: usize,
        seed: u64,
    ) -> (Option<f64>, usize) {
        let params = Arc::new(ErsParams::practical(r, 3, 0.3, 1.0));
        let degs: HashMap<VertexId, usize> = prefix.iter().map(|&p| (p, g.degree(p))).collect();
        let m = g.num_edges();
        let run = StrActRun::new(params, prefix, &degs, m, seed);
        let mut oracle = ExactOracle::new(g, 1000 + seed);
        let (out, rep) = run_on_oracle(run, &mut oracle);
        (out, rep.rounds)
    }

    #[test]
    fn chat_estimates_extension_count_triangles() {
        // K5: prefix (0,1) extends to 3 ordered triangles (w in {2,3,4}).
        let g = gen::complete_graph(5);
        let mut ests = Vec::new();
        for seed in 0..200 {
            if let (Some(c), _) = run_act(&g, vec![v(0), v(1)], 3, seed) {
                ests.push(c);
            }
        }
        let avg: f64 = ests.iter().sum::<f64>() / ests.len() as f64;
        assert!(
            (avg - 3.0).abs() < 0.5,
            "mean ĉ = {avg}, want ~3 (w ∈ {{2,3,4}})"
        );
    }

    #[test]
    fn chat_zero_when_no_extensions() {
        // Path graph: edge (0,1) is in no triangle.
        let g = gen::path_graph(5);
        let (c, _) = run_act(&g, vec![v(0), v(1)], 3, 7);
        assert_eq!(c, Some(0.0));
    }

    #[test]
    fn rounds_bounded_by_2_r_minus_i() {
        let g = gen::complete_graph(6);
        let (_, rounds) = run_act(&g, vec![v(0), v(1)], 4, 3);
        assert!(rounds <= 2 * (4 - 2), "rounds {rounds}");
    }

    #[test]
    fn majority_vote_semantics() {
        let p = ErsParams::practical(3, 2, 0.3, 1.0);
        let thr = p.activity_threshold(2);
        assert!(majority_active(
            &p,
            2,
            &[Some(0.0), Some(thr), Some(thr * 2.0)]
        ));
        assert!(!majority_active(&p, 2, &[None, Some(thr * 2.0), Some(0.0)]));
        // Aborts vote non-active.
        assert!(!majority_active(&p, 2, &[None, None, Some(0.0)]));
    }

    #[test]
    fn works_through_stream_executor() {
        let g = gen::complete_graph(5);
        let params = Arc::new(ErsParams::practical(3, 3, 0.3, 1.0));
        let degs: HashMap<VertexId, usize> = [(v(0), 4), (v(1), 4)].into_iter().collect();
        let run = StrActRun::new(params, vec![v(0), v(1)], &degs, g.num_edges(), 5);
        let ins = InsertionStream::from_graph(&g, 6);
        let (out, rep) = run_insertion(run, &ins, 7);
        assert!(out.is_some());
        assert!(rep.passes <= 2);
    }
}
