//! Parameters of the ERS low-degeneracy clique counter.
//!
//! Algorithm 2 fixes `γ = ε/(8r·r!)`, `β = 1/(6r)`,
//! `τ_t = r^{4r}/(β^r γ²) · λ^{r-t}` and per-level sample sizes
//! `s_{t+1} = ⌈dg(R_t)·τ_{t+1}/ω̃_t · 3ln(2/β)/γ²⌉`. These constants
//! exist to make union bounds over all `n^r` prefixes go through; they are
//! astronomically conservative (for `r = 4`, `τ_2 > 10^{12}`), so the
//! library also provides a **practical** mode with the *same functional
//! form* — sample sizes still scale as `m·λ^{r-2}/#K_r`, which is the
//! content of Theorem 2 and what experiment E7 verifies — but calibrated
//! leading constants. DESIGN.md §1 records this substitution.

/// Leading-constant regime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParamMode {
    /// Verbatim paper constants (feasible only for toy inputs).
    Theory,
    /// Same functional form, calibrated constants.
    Practical {
        /// Replaces `3ln(2/β)/γ²` as the per-level oversampling factor
        /// (divided by `ε²`).
        confidence: f64,
        /// Replaces `r^{4r}/(β^r γ²)` as the activity-budget multiplier.
        tau_scale: f64,
    },
}

impl Default for ParamMode {
    fn default() -> Self {
        ParamMode::Practical {
            confidence: 3.0,
            tau_scale: 16.0,
        }
    }
}

/// Full parameter set for one ERS run.
#[derive(Clone, Debug)]
pub struct ErsParams {
    /// Clique size `r >= 3`.
    pub r: usize,
    /// Degeneracy bound `λ` of the input (a promise, as in Theorem 2).
    pub lambda: usize,
    /// Target accuracy `ε`.
    pub epsilon: f64,
    /// Lower bound `L_r <= #K_r` (the standard parameterization; Lemma 21
    /// lifts it via geometric search).
    pub lower_bound: f64,
    /// Constant regime.
    pub mode: ParamMode,
    /// StrAct repetitions (the paper's `q = 12·ln(n^{r+10})`; small in
    /// practical mode).
    pub q_act: usize,
    /// Abort threshold multiplier for sample sizes (Algorithm 3 line 13);
    /// `None` disables the abort (useful when `λ` is only a guess).
    pub cap_scale: Option<f64>,
}

impl ErsParams {
    /// Practical defaults for a given instance.
    pub fn practical(r: usize, lambda: usize, epsilon: f64, lower_bound: f64) -> Self {
        assert!(r >= 3, "ERS requires r >= 3");
        assert!(epsilon > 0.0 && lower_bound >= 1.0);
        ErsParams {
            r,
            lambda: lambda.max(1),
            epsilon,
            lower_bound,
            mode: ParamMode::default(),
            q_act: 3,
            cap_scale: None,
        }
    }

    /// Verbatim paper constants (Algorithm 2); `n` sizes the StrAct
    /// repetition count.
    pub fn theory(r: usize, lambda: usize, epsilon: f64, lower_bound: f64, n: usize) -> Self {
        assert!(r >= 3);
        ErsParams {
            r,
            lambda: lambda.max(1),
            epsilon,
            lower_bound,
            mode: ParamMode::Theory,
            q_act: (12.0 * ((n.max(2)) as f64).ln() * (r as f64 + 10.0)).ceil() as usize,
            cap_scale: Some(1.0),
        }
    }

    fn gamma(&self) -> f64 {
        match self.mode {
            ParamMode::Theory => self.epsilon / (8.0 * self.r as f64 * factorial(self.r)),
            ParamMode::Practical { .. } => self.epsilon / (2.0 * self.r as f64),
        }
    }

    fn beta(&self) -> f64 {
        1.0 / (6.0 * self.r as f64)
    }

    /// The activity budget `τ_t` for prefix length `t ∈ [2, r-1]`.
    pub fn tau(&self, t: usize) -> f64 {
        debug_assert!(t >= 2 && t < self.r);
        let lam_pow = (self.lambda as f64).powi((self.r - t) as i32);
        match self.mode {
            ParamMode::Theory => {
                let g = self.gamma();
                let b = self.beta();
                (self.r as f64).powi(4 * self.r as i32) / (b.powi(self.r as i32) * g * g) * lam_pow
            }
            ParamMode::Practical { tau_scale, .. } => tau_scale * factorial(self.r - t) * lam_pow,
        }
    }

    /// The per-level oversampling factor (`3ln(2/β)/γ²` in theory mode).
    pub fn confidence(&self) -> f64 {
        match self.mode {
            ParamMode::Theory => {
                let g = self.gamma();
                3.0 * (2.0 / self.beta()).ln() / (g * g)
            }
            ParamMode::Practical { confidence, .. } => confidence / (self.epsilon * self.epsilon),
        }
    }

    /// Initial weight guess `ω̃ = (1 - ε/2)·L_r` (Algorithm 3, line 2).
    pub fn omega_init(&self) -> f64 {
        (1.0 - self.epsilon / 2.0) * self.lower_bound
    }

    /// The `(1-γ)` decay of the weight recurrence (Algorithm 3, line 12).
    pub fn omega_decay(&self) -> f64 {
        1.0 - self.gamma()
    }

    /// Sample-size abort cap for level `t+1` (Algorithm 3, line 13):
    /// `4m·λ^{t-1}·τ_{t+1}/L_r · (r!)²·3ln(2/β)/(β^t γ²)`, scaled.
    pub fn sample_cap(&self, m: usize, t_next: usize) -> Option<f64> {
        let scale = self.cap_scale?;
        let lam_pow = (self.lambda as f64).powi((t_next - 2) as i32);
        let tau = if t_next < self.r {
            self.tau(t_next)
        } else {
            1.0
        };
        Some(scale * 4.0 * m as f64 * lam_pow * tau / self.lower_bound * self.confidence())
    }

    /// Activity threshold for prefix length `t`: active iff `ĉ <= τ_t/4`.
    pub fn activity_threshold(&self, t: usize) -> f64 {
        self.tau(t) / 4.0
    }
}

/// `x!` as f64 (x small).
pub fn factorial(x: usize) -> f64 {
    (1..=x).map(|i| i as f64).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn practical_tau_scales_with_lambda_power() {
        let a = ErsParams::practical(4, 2, 0.2, 10.0);
        let b = ErsParams::practical(4, 4, 0.2, 10.0);
        // tau_2 ~ lambda^{r-2}: doubling lambda multiplies by 4 for r=4.
        let ratio = b.tau(2) / a.tau(2);
        assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn theory_constants_dominate_practical() {
        let t = ErsParams::theory(3, 2, 0.2, 10.0, 100);
        let p = ErsParams::practical(3, 2, 0.2, 10.0);
        assert!(t.tau(2) > p.tau(2) * 1e3);
        assert!(t.confidence() > p.confidence());
        assert!(t.q_act > p.q_act);
    }

    #[test]
    fn confidence_scales_inverse_epsilon_squared() {
        let a = ErsParams::practical(3, 2, 0.1, 10.0);
        let b = ErsParams::practical(3, 2, 0.2, 10.0);
        let ratio = a.confidence() / b.confidence();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn factorial_small_values() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(1), 1.0);
        assert_eq!(factorial(5), 120.0);
    }

    #[test]
    fn omega_init_below_lower_bound() {
        let p = ErsParams::practical(3, 2, 0.5, 100.0);
        assert!(p.omega_init() < 100.0);
        assert!(p.omega_init() > 0.0);
    }
}
