//! `StreamApproxClique` (Algorithm 3) as a round-adaptive algorithm.
//!
//! Phases (each grow level costs 2 rounds = 2 passes, exactly Algorithm 4):
//!
//! 1. count `m` (pass 1);
//! 2. sample `s₂` uniformly random *oriented* edges → `R₂` (pass 2);
//! 3. collect `d[R₂]` (pass 3);
//! 4. for `t = 2 … r-1`: grow `R_t → R_{t+1}` via `StreamSet`
//!    (passes `2t` to `2t+1`);
//! 5. assignment: for every sampled ordered `r`-clique, decide
//!    `StrIsAssigned` by running `q` activity estimators for every
//!    distinct prefix (length `2 … r-1`) of every ordering of its vertex
//!    set — all in parallel, sharing rounds (Algorithms 17/18);
//! 6. output `n̂_r = (2m)/s₂ · Π_t dg(R_t)/s_{t+1} · Σ_{⃗C} IsAssigned(⃗C)`.
//!
//! Total passes: `3 + 2(r-2) + 2(r-2) = 4r - 5 ≤ 5r`, within Theorem 2's
//! budget (Theorem 20).
//!
//! `IsAssigned(⃗C)` is true iff `⃗C` is *fully active* (every prefix of
//! length `2 … r-1` is active) and no lexicographically smaller ordering
//! of the same vertex set is fully active — so each unordered clique has
//! at most one assigned ordering, and exactly one when at least one
//! ordering is fully active (the analysis' high-probability case).

use crate::ers::act::{majority_active, StrActRun};
use crate::ers::chain::{
    absorb_verify, draw_queries, set_weight, verify_queries, Candidate, GrowDraw, OrderedClique,
};
use crate::ers::params::ErsParams;
use sgs_graph::VertexId;
use sgs_query::{Answer, Parallel, Query, RoundAdaptive};
use sgs_stream::hash::split_seed;
use sgs_stream::hash::FastRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Result of one `StreamApproxClique` run.
#[derive(Clone, Debug, Default)]
pub struct ErsOutcome {
    /// The estimate `n̂_r`.
    pub estimate: f64,
    /// Edge count observed in pass 1.
    pub m: usize,
    /// Whether a sample-size cap aborted the run (estimate forced to 0).
    pub aborted: bool,
    /// Sample-set sizes `s₂, s₃, …, s_r` actually used (the measured
    /// counterpart of the `m·λ^{r-2}/#K_r` space claim).
    pub sample_sizes: Vec<usize>,
    /// `|R_r|` (sampled ordered r-cliques) and how many were assigned.
    pub sampled_cliques: usize,
    /// Number of sampled cliques with `IsAssigned = 1`.
    pub assigned: usize,
}

enum Phase {
    Init,
    GotM,
    GotEdges,
    Grow,
    GrowVerify,
    Assign,
    Done,
}

/// The basic subroutine of Theorem 2 (median-amplified by
/// [`crate::ers::count_cliques_insertion`]).
pub struct ErsApproxClique {
    params: Arc<ErsParams>,
    rng: FastRng,
    seed: u64,
    phase: Phase,
    m: usize,
    s2: usize,
    deg: HashMap<VertexId, usize>,
    r_t: Vec<OrderedClique>,
    t: usize,
    omega: f64,
    prev_dg: u64,
    prev_s: usize,
    factor: f64,
    draws: Vec<GrowDraw>,
    cands: Vec<Candidate>,
    // Assignment state.
    acts: Option<Parallel<StrActRun>>,
    /// prefix -> (id, length); runs for prefix `id` occupy output slots
    /// `id*q .. (id+1)*q`.
    prefix_ids: HashMap<OrderedClique, usize>,
    prefix_lens: Vec<usize>,
    outcome: ErsOutcome,
}

impl ErsApproxClique {
    /// New run; `seed` drives all of its sampling decisions.
    pub fn new(params: Arc<ErsParams>, seed: u64) -> Self {
        ErsApproxClique {
            params,
            rng: FastRng::seed_from_u64(seed),
            seed,
            phase: Phase::Init,
            m: 0,
            s2: 0,
            deg: HashMap::new(),
            r_t: Vec::new(),
            t: 2,
            omega: 0.0,
            prev_dg: 0,
            prev_s: 0,
            factor: 0.0,
            draws: Vec::new(),
            cands: Vec::new(),
            acts: None,
            prefix_ids: HashMap::new(),
            prefix_lens: Vec::new(),
            outcome: ErsOutcome::default(),
        }
    }

    fn finish(&mut self, estimate: f64) -> Vec<Query> {
        self.outcome.estimate = estimate;
        self.phase = Phase::Done;
        Vec::new()
    }

    fn abort(&mut self) -> Vec<Query> {
        self.outcome.aborted = true;
        self.finish(0.0)
    }

    /// Start the grow level `t -> t+1`, or transition to assignment when
    /// `R_r` is complete.
    fn begin_grow(&mut self) -> Vec<Query> {
        let r = self.params.r;
        if self.t >= r {
            return self.begin_assignment();
        }
        let dg_rt = set_weight(&self.r_t, &self.deg);
        if dg_rt == 0 {
            return self.finish(0.0);
        }
        // ω̃_t = (1-γ)·ω̃_{t-1}·s_t/dg(R_{t-1})   (Algorithm 3, line 12)
        self.omega =
            self.params.omega_decay() * self.omega * self.prev_s as f64 / self.prev_dg as f64;
        let tau_next = if self.t + 1 < r {
            self.params.tau(self.t + 1)
        } else {
            1.0
        };
        let s_next =
            (dg_rt as f64 * tau_next / self.omega * self.params.confidence()).ceil() as usize;
        if let Some(cap) = self.params.sample_cap(self.m, self.t + 1) {
            if s_next as f64 > cap {
                return self.abort();
            }
        }
        if s_next == 0 {
            return self.finish(0.0);
        }
        self.outcome.sample_sizes.push(s_next);
        self.factor *= dg_rt as f64 / s_next as f64;
        self.prev_dg = dg_rt;
        self.prev_s = s_next;
        let (draws, queries) = draw_queries(&self.r_t, &self.deg, s_next, &mut self.rng);
        self.draws = draws;
        self.phase = Phase::GrowVerify;
        queries
    }

    /// Register the activity estimators for every distinct prefix of
    /// every ordering of every sampled clique.
    fn begin_assignment(&mut self) -> Vec<Query> {
        self.outcome.sampled_cliques = self.r_t.len();
        if self.r_t.is_empty() {
            return self.finish(0.0);
        }
        let r = self.params.r;
        let q = self.params.q_act;
        let mut runs: Vec<StrActRun> = Vec::new();
        for cq in &self.r_t {
            let mut sorted = cq.clone();
            sorted.sort_unstable();
            for perm in permutations(&sorted) {
                for t in 2..r {
                    let prefix: OrderedClique = perm[..t].to_vec();
                    if self.prefix_ids.contains_key(&prefix) {
                        continue;
                    }
                    let id = self.prefix_lens.len();
                    self.prefix_ids.insert(prefix.clone(), id);
                    self.prefix_lens.push(t);
                    for ell in 0..q {
                        runs.push(StrActRun::new(
                            self.params.clone(),
                            prefix.clone(),
                            &self.deg,
                            self.m,
                            split_seed(self.seed, (id * q + ell) as u64 + 1_000_000),
                        ));
                    }
                }
            }
        }
        let mut acts = Parallel::new(runs);
        let first = acts.next_round(&[]);
        self.acts = Some(acts);
        self.phase = Phase::Assign;
        if first.is_empty() {
            return self.finalize_assignment();
        }
        first
    }

    /// All activity runs finished: evaluate `IsAssigned` per sampled
    /// clique and produce the estimate.
    fn finalize_assignment(&mut self) -> Vec<Query> {
        let q = self.params.q_act;
        let results = self.acts.as_mut().expect("assignment running").output();
        let active: Vec<bool> = self
            .prefix_lens
            .iter()
            .enumerate()
            .map(|(id, &len)| majority_active(&self.params, len, &results[id * q..(id + 1) * q]))
            .collect();
        let fully_active = |ordering: &[VertexId]| -> bool {
            (2..self.params.r).all(|t| {
                let prefix: OrderedClique = ordering[..t].to_vec();
                active[self.prefix_ids[&prefix]]
            })
        };
        let mut assigned = 0usize;
        for cq in &self.r_t {
            if !fully_active(cq) {
                continue;
            }
            let mut sorted = cq.clone();
            sorted.sort_unstable();
            let mut is_min = true;
            for perm in permutations(&sorted) {
                if perm.as_slice() < cq.as_slice() && fully_active(&perm) {
                    is_min = false;
                    break;
                }
            }
            if is_min {
                assigned += 1;
            }
        }
        self.outcome.assigned = assigned;
        let estimate = self.factor * assigned as f64;
        self.finish(estimate)
    }
}

/// All permutations of a slice (r! of them; `r` is a small constant).
fn permutations(items: &[VertexId]) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(items.len());
    let mut used = vec![false; items.len()];
    fn rec(
        items: &[VertexId],
        cur: &mut Vec<VertexId>,
        used: &mut [bool],
        out: &mut Vec<Vec<VertexId>>,
    ) {
        if cur.len() == items.len() {
            out.push(cur.clone());
            return;
        }
        for j in 0..items.len() {
            if !used[j] {
                used[j] = true;
                cur.push(items[j]);
                rec(items, cur, used, out);
                cur.pop();
                used[j] = false;
            }
        }
    }
    rec(items, &mut cur, &mut used, &mut out);
    out
}

impl RoundAdaptive for ErsApproxClique {
    type Output = ErsOutcome;

    fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
        match self.phase {
            Phase::Init => {
                self.phase = Phase::GotM;
                vec![Query::EdgeCount]
            }
            Phase::GotM => {
                self.m = answers[0].expect_edge_count();
                self.outcome.m = self.m;
                if self.m == 0 {
                    return self.finish(0.0);
                }
                self.omega = self.params.omega_init();
                self.s2 = ((self.m as f64) * self.params.tau(2) / self.omega
                    * self.params.confidence())
                .ceil()
                .max(1.0) as usize;
                self.outcome.sample_sizes.push(self.s2);
                self.phase = Phase::GotEdges;
                vec![Query::RandomEdge; self.s2]
            }
            Phase::GotEdges => {
                for a in answers {
                    if let Some(e) = a.expect_edge() {
                        // Uniformly random orientation (own coin): each
                        // ordered edge is drawn w.p. 1/(2m).
                        let (x, y) = if self.rng.gen_bool(0.5) {
                            (e.u(), e.v())
                        } else {
                            (e.v(), e.u())
                        };
                        self.r_t.push(vec![x, y]);
                    }
                }
                if self.r_t.is_empty() {
                    return self.finish(0.0);
                }
                // Pass 3: degrees of all R2 vertices.
                let mut distinct: Vec<VertexId> = self.r_t.iter().flatten().copied().collect();
                distinct.sort_unstable();
                distinct.dedup();
                self.deg = distinct.iter().map(|&v| (v, 0)).collect();
                self.phase = Phase::Grow;
                distinct.into_iter().map(Query::Degree).collect()
            }
            Phase::Grow => {
                if self.t == 2 && self.prev_s == 0 {
                    // Absorb the R2 degree answers.
                    let mut keys: Vec<VertexId> = self.deg.keys().copied().collect();
                    keys.sort_unstable();
                    for (k, a) in keys.into_iter().zip(answers) {
                        self.deg.insert(k, a.expect_degree());
                    }
                    self.prev_dg = self.m as u64; // dg(R_1) := m (Alg. 3 l.5)
                    self.prev_s = self.s2;
                    self.factor = 2.0 * self.m as f64 / self.s2 as f64;
                } else {
                    // Absorb a verification round: R_{t+1} complete.
                    let r_next = absorb_verify(&self.cands, answers, &mut self.deg);
                    self.cands.clear();
                    self.r_t = r_next;
                    self.t += 1;
                }
                self.begin_grow()
            }
            Phase::GrowVerify => {
                let (cands, queries) = verify_queries(&self.draws, answers);
                self.draws.clear();
                self.cands = cands;
                self.phase = Phase::Grow;
                if queries.is_empty() {
                    self.r_t.clear();
                    self.t += 1;
                    return self.begin_grow();
                }
                queries
            }
            Phase::Assign => {
                let acts = self.acts.as_mut().expect("assignment running");
                let batch = acts.next_round(answers);
                if batch.is_empty() {
                    return self.finalize_assignment();
                }
                batch
            }
            Phase::Done => Vec::new(),
        }
    }

    fn output(&mut self) -> ErsOutcome {
        std::mem::take(&mut self.outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::exact::cliques::count_cliques;
    use sgs_graph::{degeneracy::degeneracy, gen};
    use sgs_query::exec::{run_insertion, run_on_oracle};
    use sgs_query::ExactOracle;
    use sgs_stream::InsertionStream;

    fn mean_estimate(g: &sgs_graph::AdjListGraph, r: usize, runs: u64, lower_bound: f64) -> f64 {
        let lam = degeneracy(g);
        let params = Arc::new(ErsParams::practical(r, lam.max(1), 0.3, lower_bound));
        let mut sum = 0.0;
        for seed in 0..runs {
            let alg = ErsApproxClique::new(params.clone(), seed);
            let mut oracle = ExactOracle::new(g, 50_000 + seed);
            let (out, _) = run_on_oracle(alg, &mut oracle);
            assert!(!out.aborted);
            sum += out.estimate;
        }
        sum / runs as f64
    }

    #[test]
    fn triangle_estimate_on_ba_graph() {
        let g = gen::barabasi_albert(120, 4, 3);
        let exact = count_cliques(&g, 3) as f64;
        assert!(exact > 30.0);
        let mean = mean_estimate(&g, 3, 30, exact * 0.5);
        let rel = (mean - exact).abs() / exact;
        assert!(rel < 0.25, "mean {mean} vs exact {exact} (rel {rel:.3})");
    }

    #[test]
    fn k4_estimate_on_dense_seed_graph() {
        // BA with larger attachment so K4s exist.
        let g = gen::barabasi_albert(60, 6, 9);
        let exact = count_cliques(&g, 4) as f64;
        assert!(exact > 10.0, "exact {exact}");
        let mean = mean_estimate(&g, 4, 25, exact * 0.5);
        let rel = (mean - exact).abs() / exact;
        assert!(rel < 0.35, "mean {mean} vs exact {exact} (rel {rel:.3})");
    }

    #[test]
    fn pass_count_within_theorem_budget() {
        let g = gen::barabasi_albert(80, 4, 5);
        let exact = count_cliques(&g, 3) as f64;
        let params = Arc::new(ErsParams::practical(3, degeneracy(&g), 0.3, exact.max(1.0)));
        let ins = InsertionStream::from_graph(&g, 6);
        let alg = ErsApproxClique::new(params, 7);
        let (out, rep) = run_insertion(alg, &ins, 8);
        assert!(rep.passes <= 5 * 3, "passes {} > 5r", rep.passes);
        assert!(out.estimate >= 0.0);
    }

    #[test]
    fn no_cliques_means_zero() {
        let g = gen::complete_bipartite(6, 6); // triangle-free
        let params = Arc::new(ErsParams::practical(3, 2, 0.3, 1.0));
        let ins = InsertionStream::from_graph(&g, 1);
        let alg = ErsApproxClique::new(params, 2);
        let (out, _) = run_insertion(alg, &ins, 3);
        assert_eq!(out.estimate, 0.0);
        assert_eq!(out.assigned, 0);
    }

    #[test]
    fn empty_graph() {
        let g = sgs_graph::AdjListGraph::new(4);
        let params = Arc::new(ErsParams::practical(3, 1, 0.3, 1.0));
        let ins = InsertionStream::from_graph(&g, 1);
        let alg = ErsApproxClique::new(params, 2);
        let (out, _) = run_insertion(alg, &ins, 3);
        assert_eq!(out.estimate, 0.0);
        assert_eq!(out.m, 0);
    }

    #[test]
    fn sample_sizes_scale_with_m_over_lowerbound() {
        // Halving the lower bound should roughly double s2.
        let g = gen::barabasi_albert(100, 4, 11);
        let lam = degeneracy(&g);
        let run_s2 = |lb: f64| {
            let params = Arc::new(ErsParams::practical(3, lam, 0.3, lb));
            let mut oracle = ExactOracle::new(&g, 1);
            let alg = ErsApproxClique::new(params, 2);
            let (out, _) = run_on_oracle(alg, &mut oracle);
            out.sample_sizes[0]
        };
        let s_hi = run_s2(400.0);
        let s_lo = run_s2(200.0);
        let ratio = s_lo as f64 / s_hi as f64;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }
}
