//! The shared sampling-chain primitive of the ERS algorithm.
//!
//! `StreamSet` (Algorithm 4) grows a multiset `R_t` of ordered `t`-cliques
//! into `R_{t+1}` in two rounds/passes:
//!
//! 1. draw `s_{t+1}` cliques `⃗T ∝ dg(⃗T)` (offline, from the collected
//!    degree dictionary), pick the minimum-degree vertex `u` of each, and
//!    query a uniformly random neighbor `w` of `u` (`f3` with a
//!    self-sampled index);
//! 2. query the adjacency of `w` against the rest of `⃗T` plus the degree
//!    of `w`; extensions that complete a clique join `R_{t+1}`.
//!
//! Each specific ordered `(t+1)`-clique extension is drawn with
//! probability `dg(⃗T)/dg(R_t) · 1/dg(⃗T) = 1/dg(R_t)` per draw — the
//! invariant behind the estimator's unbiasedness (§5.1).

use sgs_graph::order::precedes_with_degrees;
use sgs_graph::VertexId;
use sgs_query::{Answer, Query};
use sgs_stream::hash::FastRng;
use std::collections::HashMap;

/// An ordered clique: vertices in their sampling order.
pub type OrderedClique = Vec<VertexId>;

/// `dg(⃗T)` = degree of the minimum-degree vertex (ties by id, matching
/// the vertex order `≺_G`), together with that vertex.
pub fn clique_weight(cq: &OrderedClique, deg: &HashMap<VertexId, usize>) -> (usize, VertexId) {
    let mut best = cq[0];
    let mut best_d = deg[&cq[0]];
    for &v in &cq[1..] {
        let d = deg[&v];
        if precedes_with_degrees(v, d, best, best_d) {
            best = v;
            best_d = d;
        }
    }
    (best_d, best)
}

/// `dg(R_t)` = sum of clique weights.
pub fn set_weight(r_t: &[OrderedClique], deg: &HashMap<VertexId, usize>) -> u64 {
    r_t.iter().map(|c| clique_weight(c, deg).0 as u64).sum()
}

/// One pending draw: the chosen base clique and its minimum-degree vertex.
#[derive(Clone, Debug)]
pub struct GrowDraw {
    /// Chosen base clique.
    pub base: OrderedClique,
    /// Its minimum-degree vertex (the extension point).
    pub u: VertexId,
}

/// Emit the round-A queries: `s` weighted draws, each asking for one
/// random neighbor of the extension point via a self-sampled index.
pub fn draw_queries(
    r_t: &[OrderedClique],
    deg: &HashMap<VertexId, usize>,
    s: usize,
    rng: &mut FastRng,
) -> (Vec<GrowDraw>, Vec<Query>) {
    let mut draws = Vec::with_capacity(s);
    let mut queries = Vec::with_capacity(s);
    if r_t.is_empty() || s == 0 {
        return (draws, queries);
    }
    // Cumulative weights for proportional sampling.
    let mut cum: Vec<u64> = Vec::with_capacity(r_t.len());
    let mut acc = 0u64;
    for c in r_t {
        acc += clique_weight(c, deg).0 as u64;
        cum.push(acc);
    }
    if acc == 0 {
        return (draws, queries);
    }
    for _ in 0..s {
        let x = rng.gen_range(0..acc);
        let idx = cum.partition_point(|&c| c <= x);
        let base = r_t[idx].clone();
        let (du, u) = clique_weight(&base, deg);
        debug_assert!(du > 0);
        let i = rng.gen_range(1..=du as u64);
        queries.push(Query::IthNeighbor(u, i));
        draws.push(GrowDraw { base, u });
    }
    (draws, queries)
}

/// A candidate extension awaiting verification.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The base clique.
    pub base: OrderedClique,
    /// The proposed new vertex.
    pub w: VertexId,
    /// Number of adjacency queries issued (base minus the extension
    /// point, which is adjacent by construction).
    pub adj_queries: usize,
}

/// Absorb round-A answers and emit round-B verification queries.
pub fn verify_queries(draws: &[GrowDraw], answers: &[Answer]) -> (Vec<Candidate>, Vec<Query>) {
    debug_assert_eq!(draws.len(), answers.len());
    let mut cands = Vec::new();
    let mut queries = Vec::new();
    for (d, a) in draws.iter().zip(answers) {
        let Some(w) = a.expect_neighbor() else {
            continue;
        };
        if d.base.contains(&w) {
            continue;
        }
        let others: Vec<VertexId> = d.base.iter().copied().filter(|&x| x != d.u).collect();
        for &x in &others {
            queries.push(Query::Adjacent(w, x));
        }
        queries.push(Query::Degree(w));
        cands.push(Candidate {
            base: d.base.clone(),
            w,
            adj_queries: others.len(),
        });
    }
    (cands, queries)
}

/// Absorb round-B answers: candidates whose adjacency checks all pass
/// become ordered `(t+1)`-cliques; their degrees extend the dictionary.
pub fn absorb_verify(
    cands: &[Candidate],
    answers: &[Answer],
    deg: &mut HashMap<VertexId, usize>,
) -> Vec<OrderedClique> {
    let mut out = Vec::new();
    let mut cursor = 0usize;
    for c in cands {
        let ok = (0..c.adj_queries).all(|k| answers[cursor + k].expect_adjacent());
        let d_w = answers[cursor + c.adj_queries].expect_degree();
        cursor += c.adj_queries + 1;
        if ok {
            deg.insert(c.w, d_w);
            let mut cq = c.base.clone();
            cq.push(c.w);
            out.push(cq);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    fn degmap(pairs: &[(u32, usize)]) -> HashMap<VertexId, usize> {
        pairs.iter().map(|&(a, d)| (v(a), d)).collect()
    }

    #[test]
    fn weight_is_min_degree() {
        let deg = degmap(&[(0, 5), (1, 2), (2, 7)]);
        let (w, u) = clique_weight(&vec![v(0), v(1), v(2)], &deg);
        assert_eq!(w, 2);
        assert_eq!(u, v(1));
    }

    #[test]
    fn weight_ties_broken_by_id() {
        let deg = degmap(&[(3, 4), (1, 4)]);
        let (_, u) = clique_weight(&vec![v(3), v(1)], &deg);
        assert_eq!(u, v(1));
    }

    #[test]
    fn set_weight_sums() {
        let deg = degmap(&[(0, 5), (1, 2), (2, 7), (3, 1)]);
        let r = vec![vec![v(0), v(1)], vec![v(2), v(3)]];
        assert_eq!(set_weight(&r, &deg), 2 + 1);
    }

    #[test]
    fn draws_are_weight_proportional() {
        let deg = degmap(&[(0, 90), (1, 90), (2, 10), (3, 10)]);
        let r = vec![vec![v(0), v(1)], vec![v(2), v(3)]];
        let mut rng = FastRng::seed_from_u64(5);
        let (draws, queries) = draw_queries(&r, &deg, 5000, &mut rng);
        assert_eq!(draws.len(), 5000);
        assert_eq!(queries.len(), 5000);
        let heavy = draws.iter().filter(|d| d.base[0] == v(0)).count();
        let frac = heavy as f64 / 5000.0;
        assert!((frac - 0.9).abs() < 0.03, "heavy fraction {frac}");
    }

    #[test]
    fn verify_skips_failures_and_members() {
        let draws = vec![
            GrowDraw {
                base: vec![v(0), v(1)],
                u: v(1),
            },
            GrowDraw {
                base: vec![v(0), v(1)],
                u: v(1),
            },
            GrowDraw {
                base: vec![v(0), v(1)],
                u: v(1),
            },
        ];
        let answers = vec![
            Answer::Neighbor(Some(v(2))), // fine
            Answer::Neighbor(None),       // failed query
            Answer::Neighbor(Some(v(0))), // already a member
        ];
        let (cands, queries) = verify_queries(&draws, &answers);
        assert_eq!(cands.len(), 1);
        // 1 adjacency (w vs v0) + 1 degree
        assert_eq!(queries.len(), 2);
    }

    #[test]
    fn absorb_accepts_only_full_cliques() {
        let cands = vec![
            Candidate {
                base: vec![v(0), v(1)],
                w: v(2),
                adj_queries: 1,
            },
            Candidate {
                base: vec![v(0), v(1)],
                w: v(3),
                adj_queries: 1,
            },
        ];
        let answers = vec![
            Answer::Adjacent(true),
            Answer::Degree(4),
            Answer::Adjacent(false),
            Answer::Degree(2),
        ];
        let mut deg = degmap(&[(0, 3), (1, 2)]);
        let r_next = absorb_verify(&cands, &answers, &mut deg);
        assert_eq!(r_next, vec![vec![v(0), v(1), v(2)]]);
        assert_eq!(deg[&v(2)], 4);
        // Rejected candidate's degree still recorded? No: only accepted.
        assert!(deg.contains_key(&v(2)));
    }

    #[test]
    fn empty_inputs() {
        let deg = HashMap::new();
        let mut rng = FastRng::seed_from_u64(1);
        let (d, q) = draw_queries(&[], &deg, 10, &mut rng);
        assert!(d.is_empty() && q.is_empty());
    }
}
