//! `StreamCountClique` (Algorithm 2): median amplification of the basic
//! subroutine, and the public entry points for Theorem 2.

use crate::ers::approx::{ErsApproxClique, ErsOutcome};
use crate::ers::params::ErsParams;
use sgs_query::exec::{run_insertion, run_on_oracle};
use sgs_query::{ExactOracle, ExecReport, Parallel};
use sgs_stream::hash::split_seed;
use sgs_stream::EdgeStream;
use std::sync::Arc;

/// Result of a full ERS counting run.
#[derive(Clone, Debug)]
pub struct ErsEstimate {
    /// Median estimate `n̂_r`.
    pub estimate: f64,
    /// Per-run outcomes (diagnostics: sample sizes, abort flags).
    pub runs: Vec<ErsOutcome>,
    /// Rounds/passes/queries/space of the whole (parallel) execution.
    pub report: ExecReport,
}

impl ErsEstimate {
    fn from_runs(runs: Vec<ErsOutcome>, report: ExecReport) -> Self {
        let mut vals: Vec<f64> = runs.iter().map(|o| o.estimate).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let estimate = if vals.is_empty() {
            0.0
        } else {
            vals[vals.len() / 2]
        };
        ErsEstimate {
            estimate,
            runs,
            report,
        }
    }

    /// Relative error against a known ground truth.
    pub fn relative_error(&self, exact: u64) -> f64 {
        if exact == 0 {
            return if self.estimate == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (self.estimate - exact as f64).abs() / exact as f64
    }

    /// Largest `s_{t+1}` any run used — the measured space driver.
    pub fn max_sample_size(&self) -> usize {
        self.runs
            .iter()
            .flat_map(|r| r.sample_sizes.iter().copied())
            .max()
            .unwrap_or(0)
    }
}

/// Estimate `#K_r` from an insertion-only stream with `instances`
/// median-amplified copies of the basic subroutine sharing every pass
/// (Theorem 2; the paper's `q = Θ(log n)`).
pub fn count_cliques_insertion(
    params: &ErsParams,
    stream: &impl EdgeStream,
    instances: usize,
    seed: u64,
) -> ErsEstimate {
    let shared = Arc::new(params.clone());
    let par = Parallel::new(
        (0..instances)
            .map(|i| ErsApproxClique::new(shared.clone(), split_seed(seed, i as u64)))
            .collect(),
    );
    let (runs, report) = run_insertion(par, stream, split_seed(seed, u64::MAX));
    ErsEstimate::from_runs(runs, report)
}

/// Estimate `#K_r` via direct query access (the ERS sublinear-time mode).
pub fn count_cliques_oracle(
    params: &ErsParams,
    g: &sgs_graph::AdjListGraph,
    instances: usize,
    seed: u64,
) -> ErsEstimate {
    let shared = Arc::new(params.clone());
    let par = Parallel::new(
        (0..instances)
            .map(|i| ErsApproxClique::new(shared.clone(), split_seed(seed, i as u64)))
            .collect(),
    );
    let mut oracle = ExactOracle::new(g, split_seed(seed, u64::MAX));
    let (runs, report) = run_on_oracle(par, &mut oracle);
    ErsEstimate::from_runs(runs, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::degeneracy::degeneracy;
    use sgs_graph::exact::cliques::count_cliques;
    use sgs_graph::gen;
    use sgs_stream::InsertionStream;

    #[test]
    fn median_estimate_triangles_ba() {
        let g = gen::barabasi_albert(150, 4, 17);
        let exact = count_cliques(&g, 3);
        assert!(exact > 50);
        let params = ErsParams::practical(3, degeneracy(&g), 0.3, exact as f64 * 0.4);
        let ins = InsertionStream::from_graph(&g, 18);
        let est = count_cliques_insertion(&params, &ins, 9, 19);
        assert!(est.report.passes <= 15, "passes {}", est.report.passes);
        assert!(
            est.relative_error(exact) < 0.3,
            "estimate {} vs exact {exact}",
            est.estimate
        );
    }

    #[test]
    fn parallel_instances_share_passes() {
        let g = gen::barabasi_albert(60, 3, 5);
        let exact = count_cliques(&g, 3).max(1);
        let params = ErsParams::practical(3, 3, 0.4, exact as f64);
        let ins = InsertionStream::from_graph(&g, 6);
        let one = count_cliques_insertion(&params, &ins, 1, 7);
        let many = count_cliques_insertion(&params, &ins, 7, 8);
        assert!(many.report.passes <= one.report.passes + 2);
        assert_eq!(many.runs.len(), 7);
    }

    #[test]
    fn zero_on_triangle_free() {
        let g = gen::complete_bipartite(7, 7);
        let params = ErsParams::practical(3, 2, 0.3, 1.0);
        let ins = InsertionStream::from_graph(&g, 1);
        let est = count_cliques_insertion(&params, &ins, 5, 2);
        assert_eq!(est.estimate, 0.0);
    }

    #[test]
    fn max_sample_size_reported() {
        let g = gen::barabasi_albert(80, 3, 9);
        let exact = count_cliques(&g, 3).max(1);
        let params = ErsParams::practical(3, 3, 0.3, exact as f64);
        let ins = InsertionStream::from_graph(&g, 10);
        let est = count_cliques_insertion(&params, &ins, 3, 11);
        assert!(est.max_sample_size() > 0);
    }
}
