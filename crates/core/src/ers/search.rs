//! Lemma 21: geometric search over the clique-count lower bound.
//!
//! `CountClique` is parameterized by `L_r ≤ #K_r`; Lemma 21 shows that
//! (i) when `L_r ∈ [#K_r/4, #K_r]` the output is a `(1±ε)`-approximation
//! w.h.p., and (ii) when `L_r > #K_r` the output is below `L_r` w.h.p.
//! Property (ii) is exactly the acceptance test of a geometric search:
//! start from the trivial ceiling `#K_r ≤ C(n, r)`-ish (we use the
//! degeneracy bound `#K_r ≤ m·λ^{r-2}`-flavored `m·λ^{r-2}`), run the
//! counter, and halve `L_r` until the estimate validates the guess.

use crate::ers::count::{count_cliques_insertion, ErsEstimate};
use crate::ers::params::ErsParams;
use sgs_graph::StaticGraph;
use sgs_stream::hash::split_seed;
use sgs_stream::EdgeStream;

/// Outcome of the search.
#[derive(Clone, Debug)]
pub struct ErsSearchResult {
    /// Final estimate of `#K_r`.
    pub estimate: f64,
    /// Lower-bound guess the search accepted.
    pub accepted_lower_bound: f64,
    /// Search rounds (each runs the full `≤ 5r`-pass counter).
    pub rounds: usize,
    /// Total passes over the stream.
    pub total_passes: usize,
    /// Per-round estimates.
    pub trace: Vec<ErsEstimate>,
}

/// Estimate `#K_r` with no prior lower bound, by geometric search over
/// `L_r` (Lemma 21). `instances` is the per-round median amplification.
pub fn search_count_cliques_insertion(
    template: &ErsParams,
    stream: &impl EdgeStream,
    instances: usize,
    seed: u64,
) -> ErsSearchResult {
    let r = template.r;
    let m = stream.final_graph().num_edges().max(1);
    // Ceiling: every edge closes at most lambda^{r-2}·r! ordered cliques
    // in a lambda-degenerate graph; m·lambda^{r-2} dominates #K_r.
    let mut guess = (m as f64) * (template.lambda.max(1) as f64).powi(r as i32 - 2);
    let mut rounds = 0usize;
    let mut total_passes = 0usize;
    let mut trace = Vec::new();
    loop {
        rounds += 1;
        let mut params = template.clone();
        params.lower_bound = guess.max(1.0);
        let est =
            count_cliques_insertion(&params, stream, instances, split_seed(seed, rounds as u64));
        total_passes += est.report.passes;
        let accept = est.estimate >= guess;
        trace.push(est.clone());
        if accept || guess < 1.0 {
            return ErsSearchResult {
                estimate: est.estimate,
                accepted_lower_bound: guess,
                rounds,
                total_passes,
                trace,
            };
        }
        guess /= 2.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::degeneracy::degeneracy;
    use sgs_graph::exact::cliques::count_cliques;
    use sgs_graph::gen;
    use sgs_stream::InsertionStream;

    #[test]
    fn search_converges_without_prior() {
        let g = gen::barabasi_albert(120, 4, 31);
        let exact = count_cliques(&g, 3);
        assert!(exact > 30);
        let stream = InsertionStream::from_graph(&g, 32);
        let template = ErsParams::practical(3, degeneracy(&g), 0.3, 1.0);
        let res = search_count_cliques_insertion(&template, &stream, 5, 33);
        let rel = (res.estimate - exact as f64).abs() / exact as f64;
        assert!(rel < 0.4, "estimate {} vs exact {exact}", res.estimate);
        assert!(res.rounds >= 1);
        assert!(res.accepted_lower_bound <= exact as f64 * 2.0);
    }

    #[test]
    fn search_terminates_on_clique_free_input() {
        let g = gen::complete_bipartite(6, 6);
        let stream = InsertionStream::from_graph(&g, 34);
        let template = ErsParams::practical(3, 2, 0.4, 1.0);
        let res = search_count_cliques_insertion(&template, &stream, 3, 35);
        assert_eq!(res.estimate, 0.0);
        assert!(res.accepted_lower_bound < 1.0);
    }
}
