//! The exact 1-pass baseline: store everything, count exactly.

use sgs_graph::{exact, AdjListGraph, Pattern, StaticGraph};
use sgs_stream::EdgeStream;

/// Result of the exact baseline.
#[derive(Clone, Debug)]
pub struct ExactStreamCount {
    /// The exact `#H`.
    pub count: u64,
    /// Passes used (always 1).
    pub passes: usize,
    /// Bytes of stored state (the whole graph): 8 bytes per edge plus
    /// per-vertex list headers — the `O(m)` the paper's algorithms beat.
    pub space_bytes: usize,
}

/// Count `#H` exactly from one pass by materializing the final graph.
/// Works for insertion-only and turnstile streams alike.
pub fn count_exact(pattern: &Pattern, stream: &impl EdgeStream) -> ExactStreamCount {
    let mut g = AdjListGraph::new(stream.num_vertices());
    stream.replay(&mut |u| {
        if u.is_insert() {
            g.add_edge(u.edge);
        } else {
            g.remove_edge(u.edge);
        }
    });
    let space_bytes = g.num_edges() * 8 + g.num_vertices() * 8;
    ExactStreamCount {
        count: exact::count_pattern_auto(&g, pattern),
        passes: 1,
        space_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::gen;
    use sgs_stream::{InsertionStream, TurnstileStream};

    #[test]
    fn matches_direct_counting() {
        let g = gen::gnm(30, 120, 5);
        let exact = sgs_graph::exact::triangles::count_triangles(&g);
        let ins = InsertionStream::from_graph(&g, 6);
        let res = count_exact(&Pattern::triangle(), &ins);
        assert_eq!(res.count, exact);
        assert_eq!(res.passes, 1);
        assert!(res.space_bytes >= 120 * 8);
    }

    #[test]
    fn handles_turnstile_deletions() {
        let g = gen::gnm(25, 90, 7);
        let exact = sgs_graph::exact::triangles::count_triangles(&g);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.5, 8);
        let res = count_exact(&Pattern::triangle(), &tst);
        assert_eq!(res.count, exact);
    }
}
