//! DOULION-style sparsified counting ([Tso+09] in the paper's
//! bibliography).
//!
//! Keep each edge independently with probability `p` — implemented with a
//! deterministic hash coin per edge so a turnstile deletion removes the
//! edge from the sample iff its insertion added it — then count `#H` in
//! the sparsified graph and scale by `p^{-|E(H)|}`. One pass and `O(pm)`
//! expected space, but unbiasedness comes with variance that explodes as
//! `#H` shrinks: the baseline whose failure mode motivates
//! `m^ρ/(ε²·#H)`-space algorithms (experiment E9).

use sgs_graph::{exact, AdjListGraph, Pattern, StaticGraph};
use sgs_stream::hash::SeededHash;
use sgs_stream::EdgeStream;

/// Result of a DOULION run.
#[derive(Clone, Debug)]
pub struct DoulionEstimate {
    /// The `p^{-|E(H)|}`-scaled estimate of `#H`.
    pub estimate: f64,
    /// Exact count inside the sparsified graph.
    pub sampled_count: u64,
    /// Edges retained.
    pub kept_edges: usize,
    /// Passes used (always 1).
    pub passes: usize,
    /// Bytes of stored state.
    pub space_bytes: usize,
}

/// Run the baseline with retention probability `p`.
pub fn estimate_doulion(
    pattern: &Pattern,
    stream: &impl EdgeStream,
    p: f64,
    seed: u64,
) -> DoulionEstimate {
    assert!((0.0..=1.0).contains(&p) && p > 0.0);
    let coin = SeededHash::new(seed);
    let threshold = (p * u64::MAX as f64) as u64;
    let mut g = AdjListGraph::new(stream.num_vertices());
    stream.replay(&mut |u| {
        // Deterministic coin: consistent across insert/delete of the same
        // edge, which is what makes this correct under turnstile churn.
        if coin.hash64(u.edge.key()) <= threshold {
            if u.is_insert() {
                g.add_edge(u.edge);
            } else {
                g.remove_edge(u.edge);
            }
        }
    });
    let sampled_count = exact::count_pattern_auto(&g, pattern);
    let scale = p.powi(-(pattern.num_edges() as i32));
    DoulionEstimate {
        estimate: sampled_count as f64 * scale,
        sampled_count,
        kept_edges: g.num_edges(),
        passes: 1,
        space_bytes: g.num_edges() * 8 + g.num_vertices() * 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::gen;
    use sgs_stream::hash::split_seed;
    use sgs_stream::{InsertionStream, TurnstileStream};

    #[test]
    fn p_one_is_exact() {
        let g = gen::gnm(30, 120, 5);
        let exact = sgs_graph::exact::triangles::count_triangles(&g);
        let ins = InsertionStream::from_graph(&g, 6);
        let res = estimate_doulion(&Pattern::triangle(), &ins, 1.0, 7);
        assert_eq!(res.estimate, exact as f64);
        assert_eq!(res.kept_edges, 120);
    }

    #[test]
    fn roughly_unbiased_on_triangle_rich_graph() {
        let g = gen::gnm(40, 400, 9);
        let exact = sgs_graph::exact::triangles::count_triangles(&g) as f64;
        assert!(exact > 300.0);
        let ins = InsertionStream::from_graph(&g, 10);
        let mut sum = 0.0;
        let runs = 60;
        for s in 0..runs {
            sum += estimate_doulion(&Pattern::triangle(), &ins, 0.5, split_seed(11, s)).estimate;
        }
        let mean = sum / runs as f64;
        let rel = (mean - exact).abs() / exact;
        assert!(rel < 0.2, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn sample_size_tracks_p() {
        let g = gen::gnm(60, 600, 12);
        let ins = InsertionStream::from_graph(&g, 13);
        let res = estimate_doulion(&Pattern::triangle(), &ins, 0.25, 14);
        let frac = res.kept_edges as f64 / 600.0;
        assert!((0.15..0.35).contains(&frac), "kept fraction {frac}");
        assert!(res.space_bytes < 600 * 8);
    }

    #[test]
    fn turnstile_consistent() {
        let g = gen::gnm(30, 150, 15);
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 16);
        let ins = InsertionStream::from_graph(&g, 17);
        // The hash coin makes the sparsified final graph identical
        // whether churn happened or not.
        let a = estimate_doulion(&Pattern::triangle(), &tst, 0.5, 18);
        let b = estimate_doulion(&Pattern::triangle(), &ins, 0.5, 18);
        assert_eq!(a.sampled_count, b.sampled_count);
        assert_eq!(a.kept_edges, b.kept_edges);
    }
}
