//! TRIÈST-style one-pass triangle estimation with a fixed-size adaptive
//! reservoir (De Stefani et al., KDD 2016 — the modern representative of
//! the single-pass line of work the paper's §1 surveys).
//!
//! Maintain a uniform reservoir of at most `capacity` edges. When the
//! `t`-th edge arrives, every triangle it closes with two reservoir
//! edges is counted with weight
//! `η(t) = max(1, (t-1)(t-2) / (capacity·(capacity-1)))` — the inverse
//! probability that both partner edges are in the reservoir — yielding an
//! unbiased running estimate within a *fixed* memory budget, unknown
//! stream length, and one pass. Its accuracy collapses when triangles
//! are rare relative to `m²/capacity²`, which is the regime comparison
//! E9 probes against Theorem 1's `m^{3/2}/#T` trade-off.

use sgs_graph::{Edge, VertexId};
use sgs_stream::hash::FastRng;
use sgs_stream::EdgeStream;
use std::collections::{HashMap, HashSet};

/// Result of a TRIÈST run.
#[derive(Clone, Debug)]
pub struct TriestEstimate {
    /// Unbiased estimate of the number of triangles.
    pub estimate: f64,
    /// Edges held at the end (= min(capacity, m)).
    pub reservoir_edges: usize,
    /// Passes used (always 1).
    pub passes: usize,
    /// Bytes of stored state.
    pub space_bytes: usize,
}

/// Reservoir state with adjacency index for fast triangle closing.
struct Reservoir {
    capacity: usize,
    edges: Vec<Edge>,
    adj: HashMap<VertexId, HashSet<VertexId>>,
}

impl Reservoir {
    fn new(capacity: usize) -> Self {
        Reservoir {
            capacity,
            edges: Vec::with_capacity(capacity),
            adj: HashMap::new(),
        }
    }

    fn link(&mut self, e: Edge) {
        self.adj.entry(e.u()).or_default().insert(e.v());
        self.adj.entry(e.v()).or_default().insert(e.u());
    }

    fn unlink(&mut self, e: Edge) {
        if let Some(s) = self.adj.get_mut(&e.u()) {
            s.remove(&e.v());
        }
        if let Some(s) = self.adj.get_mut(&e.v()) {
            s.remove(&e.u());
        }
    }

    /// Common reservoir-neighbors of the endpoints of `e`.
    fn closing_count(&self, e: Edge) -> usize {
        let (Some(nu), Some(nv)) = (self.adj.get(&e.u()), self.adj.get(&e.v())) else {
            return 0;
        };
        let (small, large) = if nu.len() <= nv.len() {
            (nu, nv)
        } else {
            (nv, nu)
        };
        small.iter().filter(|w| large.contains(w)).count()
    }

    /// Standard reservoir insertion of the `t`-th element (1-based).
    fn offer(&mut self, e: Edge, t: u64, rng: &mut FastRng) {
        if self.edges.len() < self.capacity {
            self.edges.push(e);
            self.link(e);
        } else if rng.gen_range(0..t) < self.capacity as u64 {
            let victim = rng.gen_range(0..self.edges.len());
            let old = self.edges[victim];
            self.unlink(old);
            self.edges[victim] = e;
            self.link(e);
        }
    }
}

/// Run the estimator over an insertion-only stream with the given edge
/// budget.
pub fn estimate_triest(stream: &impl EdgeStream, capacity: usize, seed: u64) -> TriestEstimate {
    assert!(capacity >= 2, "need at least two reservoir slots");
    let mut rng = FastRng::seed_from_u64(seed);
    let mut res = Reservoir::new(capacity);
    let mut t: u64 = 0;
    let mut estimate = 0.0f64;
    let cap = capacity as f64;
    stream.replay(&mut |u| {
        assert!(u.is_insert(), "TRIÈST-base is insertion-only");
        t += 1;
        let eta = ((t.saturating_sub(1) as f64 * t.saturating_sub(2) as f64) / (cap * (cap - 1.0)))
            .max(1.0);
        estimate += eta * res.closing_count(u.edge) as f64;
        res.offer(u.edge, t, &mut rng);
    });
    let space_bytes = res.edges.len() * 8 + res.adj.len() * 16;
    TriestEstimate {
        estimate,
        reservoir_edges: res.edges.len(),
        passes: 1,
        space_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{exact, gen, StaticGraph};
    use sgs_stream::hash::split_seed;
    use sgs_stream::InsertionStream;

    #[test]
    fn exact_when_capacity_covers_stream() {
        let g = gen::gnm(30, 120, 1);
        let exact_t = exact::triangles::count_triangles(&g);
        let stream = InsertionStream::from_graph(&g, 2);
        // eta = max(1, ...) stays 1 while t <= capacity: full storage.
        let res = estimate_triest(&stream, 200, 3);
        assert_eq!(res.estimate, exact_t as f64);
        assert_eq!(res.reservoir_edges, 120);
    }

    #[test]
    fn unbiased_at_reduced_capacity() {
        let g = gen::gnm(50, 500, 4);
        let exact_t = exact::triangles::count_triangles(&g) as f64;
        assert!(exact_t > 300.0);
        let stream = InsertionStream::from_graph(&g, 5);
        let runs = 80;
        let mean: f64 = (0..runs)
            .map(|s| estimate_triest(&stream, 150, split_seed(6, s)).estimate)
            .sum::<f64>()
            / runs as f64;
        let rel = (mean - exact_t).abs() / exact_t;
        assert!(rel < 0.2, "mean {mean} vs exact {exact_t}");
    }

    #[test]
    fn space_bounded_by_capacity() {
        let g = gen::gnm(60, 900, 7);
        let stream = InsertionStream::from_graph(&g, 8);
        let res = estimate_triest(&stream, 100, 9);
        assert_eq!(res.reservoir_edges, 100);
        assert!(res.space_bytes < 100 * 8 + 200 * 16 + 1);
        assert_eq!(res.passes, 1);
        let _ = g.num_edges();
    }

    #[test]
    fn triangle_free_estimates_zero() {
        let g = gen::complete_bipartite(8, 8);
        let stream = InsertionStream::from_graph(&g, 10);
        let res = estimate_triest(&stream, 30, 11);
        assert_eq!(res.estimate, 0.0);
    }
}
