//! TRIÈST-style one-pass triangle estimation with a fixed-size adaptive
//! reservoir (De Stefani et al., KDD 2016 — the modern representative of
//! the single-pass line of work the paper's §1 surveys).
//!
//! Maintain a uniform reservoir of at most `capacity` edges. When the
//! `t`-th edge arrives, every triangle it closes with two reservoir
//! edges is counted with weight
//! `η(t) = max(1, (t-1)(t-2) / (capacity·(capacity-1)))` — the inverse
//! probability that both partner edges are in the reservoir — yielding an
//! unbiased running estimate within a *fixed* memory budget, unknown
//! stream length, and one pass. Its accuracy collapses when triangles
//! are rare relative to `m²/capacity²`, which is the regime comparison
//! E9 probes against Theorem 1's `m^{3/2}/#T` trade-off.
//!
//! Like the executors' relaxed-`f3` reservoirs, the offer loop supports
//! two acceptance schemes ([`ReservoirMode`]): the textbook per-offer
//! test (`gen_range(0..t) < capacity`, one draw per edge — the
//! statistical oracle) and a skip-ahead scheme in the style of Li's
//! **Algorithm L** — the next accepted arrival index is precomputed from
//! the running key-threshold `W` (`W ← W·u^{1/capacity}` per acceptance,
//! geometric jump `floor(ln u' / ln(1-W))`), so the per-edge cost drops
//! to a counter compare and RNG draws scale with *acceptances*
//! (`O(capacity · log(m/capacity))`), not edges. Both schemes maintain
//! the same reservoir process law (a uniform `capacity`-subset of every
//! prefix, uniform victim on acceptance), so the estimator stays
//! unbiased; the default is skip-ahead, and the distribution test below
//! pins the two modes' means against each other and the exact count.
//! Triangle *counting* (`closing_count`) still touches every edge —
//! inherent to the estimator, not the sampler.

use sgs_graph::{Edge, VertexId};
use sgs_stream::hash::FastRng;
use sgs_stream::reservoir::ReservoirMode;
use sgs_stream::reservoir_c::SizeCReservoir;
use sgs_stream::EdgeStream;
use std::collections::{HashMap, HashSet};

/// Which edge bank backs the reservoir. `Frozen` is the hand-rolled
/// bank whose coin chains the byte-identity suites pin; `SizeC` is the
/// shared [`SizeCReservoir`] primitive (its first real consumer), with
/// an adjacency index kept consistent through
/// [`SizeCReservoir::offer_report`]'s eviction reporting. Both banks
/// realize the same uniform-`capacity`-subset process law, so the
/// estimator is unbiased under either; the chi-square test below pins
/// the SizeC bank's membership marginal against the Algorithm-R oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriestScheme {
    /// The frozen in-module bank under the given acceptance mode.
    Frozen(ReservoirMode),
    /// The shared `SizeCReservoir` bank under the given acceptance mode.
    SizeC(ReservoirMode),
}

/// Result of a TRIÈST run.
#[derive(Clone, Debug)]
pub struct TriestEstimate {
    /// Unbiased estimate of the number of triangles.
    pub estimate: f64,
    /// Edges held at the end (= min(capacity, m)).
    pub reservoir_edges: usize,
    /// Passes used (always 1).
    pub passes: usize,
    /// Bytes of stored state.
    pub space_bytes: usize,
}

/// Reservoir state with adjacency index for fast triangle closing.
struct Reservoir {
    capacity: usize,
    mode: ReservoirMode,
    /// Skip mode: Algorithm L's running key threshold `W ∈ (0, 1)`.
    w: f64,
    /// Skip mode: 1-based arrival index of the next acceptance.
    next_accept: u64,
    edges: Vec<Edge>,
    adj: HashMap<VertexId, HashSet<VertexId>>,
}

/// Algorithm L's geometric jump: losing arrivals before the next
/// acceptance, `floor(ln u / ln(1-W))`. Guards: `u ∈ (0,1)` structurally,
/// and `1-W` is clamped to the smallest positive normal so a threshold
/// rounding to 1.0 degrades to per-arrival acceptance instead of a NaN.
fn algorithm_l_jump(rng: &mut FastRng, w: f64) -> u64 {
    let denom = (1.0 - w).max(f64::MIN_POSITIVE).ln();
    let g = (rng.gen_unit_f64().ln() / denom).floor();
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

type Adjacency = HashMap<VertexId, HashSet<VertexId>>;

fn adj_link(adj: &mut Adjacency, e: Edge) {
    adj.entry(e.u()).or_default().insert(e.v());
    adj.entry(e.v()).or_default().insert(e.u());
}

fn adj_unlink(adj: &mut Adjacency, e: Edge) {
    if let Some(s) = adj.get_mut(&e.u()) {
        s.remove(&e.v());
    }
    if let Some(s) = adj.get_mut(&e.v()) {
        s.remove(&e.u());
    }
}

/// Common reservoir-neighbors of the endpoints of `e`.
fn adj_closing_count(adj: &Adjacency, e: Edge) -> usize {
    let (Some(nu), Some(nv)) = (adj.get(&e.u()), adj.get(&e.v())) else {
        return 0;
    };
    let (small, large) = if nu.len() <= nv.len() {
        (nu, nv)
    } else {
        (nv, nu)
    };
    small.iter().filter(|w| large.contains(w)).count()
}

impl Reservoir {
    fn new(capacity: usize, mode: ReservoirMode) -> Self {
        Reservoir {
            capacity,
            mode,
            w: 0.0,
            next_accept: u64::MAX,
            edges: Vec::with_capacity(capacity),
            adj: HashMap::new(),
        }
    }

    fn link(&mut self, e: Edge) {
        adj_link(&mut self.adj, e);
    }

    fn unlink(&mut self, e: Edge) {
        adj_unlink(&mut self.adj, e);
    }

    fn closing_count(&self, e: Edge) -> usize {
        adj_closing_count(&self.adj, e)
    }

    /// Advance the skip-ahead schedule after an acceptance (or the fill)
    /// at arrival `t`: tighten the threshold and jump to the next winner.
    fn reschedule(&mut self, t: u64, rng: &mut FastRng) {
        self.w *= rng.gen_unit_f64().powf(1.0 / self.capacity as f64);
        self.next_accept = t
            .saturating_add(algorithm_l_jump(rng, self.w))
            .saturating_add(1);
    }

    /// Replace a uniformly random slot with `e`.
    fn replace(&mut self, e: Edge, rng: &mut FastRng) {
        let victim = rng.gen_range(0..self.edges.len());
        let old = self.edges[victim];
        self.unlink(old);
        self.edges[victim] = e;
        self.link(e);
    }

    /// Standard reservoir insertion of the `t`-th element (1-based).
    fn offer(&mut self, e: Edge, t: u64, rng: &mut FastRng) {
        if self.edges.len() < self.capacity {
            self.edges.push(e);
            self.link(e);
            if self.mode == ReservoirMode::Skip && self.edges.len() == self.capacity {
                // Reservoir just filled: start Algorithm L's schedule
                // (W = u^{1/capacity}, then the first geometric jump).
                self.w = 1.0;
                self.reschedule(t, rng);
            }
            return;
        }
        match self.mode {
            ReservoirMode::Offer => {
                if rng.gen_range(0..t) < self.capacity as u64 {
                    self.replace(e, rng);
                }
            }
            ReservoirMode::Skip => {
                if t == self.next_accept {
                    self.replace(e, rng);
                    self.reschedule(t, rng);
                }
            }
        }
    }
}

/// The shared-primitive edge bank: a [`SizeCReservoir`] over edges with
/// an adjacency index maintained from its eviction reports. The inner
/// reservoir owns its coin chain, so the stream-level RNG is never
/// drawn on this path.
struct SizeCEdgeBank {
    res: SizeCReservoir<Edge>,
    adj: Adjacency,
}

impl SizeCEdgeBank {
    fn new(capacity: usize, seed: u64, mode: ReservoirMode) -> Self {
        SizeCEdgeBank {
            res: SizeCReservoir::with_mode(capacity, seed, mode),
            adj: HashMap::new(),
        }
    }

    fn offer(&mut self, e: Edge) {
        if let Some((_, evicted)) = self.res.offer_report(e) {
            if let Some(old) = evicted {
                adj_unlink(&mut self.adj, old);
            }
            adj_link(&mut self.adj, e);
        }
    }

    fn held(&self) -> usize {
        self.res.samples().iter().flatten().count()
    }
}

/// Edge bank dispatch: both variants present the same offer/closing
/// interface to the estimator loop.
enum Bank {
    Frozen(Reservoir),
    SizeC(SizeCEdgeBank),
}

impl Bank {
    fn capacity(&self) -> usize {
        match self {
            Bank::Frozen(r) => r.capacity,
            Bank::SizeC(b) => b.res.capacity(),
        }
    }

    fn closing_count(&self, e: Edge) -> usize {
        match self {
            Bank::Frozen(r) => r.closing_count(e),
            Bank::SizeC(b) => adj_closing_count(&b.adj, e),
        }
    }

    fn offer(&mut self, e: Edge, t: u64, rng: &mut FastRng) {
        match self {
            Bank::Frozen(r) => r.offer(e, t, rng),
            Bank::SizeC(b) => b.offer(e),
        }
    }
}

/// Incremental TRIÈST run: push edges as they arrive, then
/// [`TriestStream::finish`]. [`estimate_triest_with_mode`] is exactly
/// `new` + one `push` per update + `finish`, so a broadcast consumer
/// built on this is **byte-identical** to the private-replay run with
/// the same seed — which is how the fan-out conformance suite pins the
/// baseline's answers under broadcast ingest.
pub struct TriestStream {
    rng: FastRng,
    res: Bank,
    t: u64,
    estimate: f64,
}

impl TriestStream {
    /// Start a run with the default (skip-ahead) reservoir scheme.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self::with_mode(capacity, seed, ReservoirMode::default())
    }

    /// Start a run with an explicit reservoir acceptance scheme on the
    /// frozen bank (the chains the byte-identity suites pin).
    pub fn with_mode(capacity: usize, seed: u64, mode: ReservoirMode) -> Self {
        Self::with_scheme(capacity, seed, TriestScheme::Frozen(mode))
    }

    /// Start a run with an explicit edge-bank scheme. `Frozen(mode)` is
    /// byte-identical to [`TriestStream::with_mode`]; `SizeC(mode)`
    /// routes every offer through the shared [`SizeCReservoir`].
    pub fn with_scheme(capacity: usize, seed: u64, scheme: TriestScheme) -> Self {
        assert!(capacity >= 2, "need at least two reservoir slots");
        let res = match scheme {
            TriestScheme::Frozen(mode) => Bank::Frozen(Reservoir::new(capacity, mode)),
            TriestScheme::SizeC(mode) => Bank::SizeC(SizeCEdgeBank::new(capacity, seed, mode)),
        };
        TriestStream {
            rng: FastRng::seed_from_u64(seed),
            res,
            t: 0,
            estimate: 0.0,
        }
    }

    /// Absorb the next edge insertion of the stream.
    pub fn push(&mut self, edge: Edge) {
        self.t += 1;
        let cap = self.res.capacity() as f64;
        let eta = ((self.t.saturating_sub(1) as f64 * self.t.saturating_sub(2) as f64)
            / (cap * (cap - 1.0)))
            .max(1.0);
        self.estimate += eta * self.res.closing_count(edge) as f64;
        self.res.offer(edge, self.t, &mut self.rng);
    }

    /// Edges seen so far.
    pub fn edges_seen(&self) -> u64 {
        self.t
    }

    /// End of stream: the estimate and its measured footprint.
    pub fn finish(self) -> TriestEstimate {
        let (held, adj_len, slot_bytes) = match &self.res {
            Bank::Frozen(r) => (r.edges.len(), r.adj.len(), r.edges.len() * 8),
            Bank::SizeC(b) => (
                b.held(),
                b.adj.len(),
                std::mem::size_of_val(b.res.samples()),
            ),
        };
        TriestEstimate {
            estimate: self.estimate,
            reservoir_edges: held,
            passes: 1,
            space_bytes: slot_bytes + adj_len * 16,
        }
    }
}

/// Run the estimator over an insertion-only stream with the given edge
/// budget (skip-ahead reservoir; see [`estimate_triest_with_mode`]).
pub fn estimate_triest(stream: &impl EdgeStream, capacity: usize, seed: u64) -> TriestEstimate {
    estimate_triest_with_mode(stream, capacity, seed, ReservoirMode::default())
}

/// [`estimate_triest`] with an explicit reservoir acceptance scheme on
/// the frozen edge bank — [`ReservoirMode::Offer`] is the per-edge-draw
/// statistical oracle. Exactly [`estimate_triest_with_scheme`] under
/// [`TriestScheme::Frozen`].
pub fn estimate_triest_with_mode(
    stream: &impl EdgeStream,
    capacity: usize,
    seed: u64,
    mode: ReservoirMode,
) -> TriestEstimate {
    estimate_triest_with_scheme(stream, capacity, seed, TriestScheme::Frozen(mode))
}

/// [`estimate_triest`] with an explicit edge-bank scheme.
/// [`TriestScheme::SizeC`] backs the reservoir with the shared
/// [`SizeCReservoir`] primitive instead of the frozen in-module bank.
pub fn estimate_triest_with_scheme(
    stream: &impl EdgeStream,
    capacity: usize,
    seed: u64,
    scheme: TriestScheme,
) -> TriestEstimate {
    let mut ts = TriestStream::with_scheme(capacity, seed, scheme);
    stream.replay(&mut |u| {
        assert!(u.is_insert(), "TRIÈST-base is insertion-only");
        ts.push(u.edge);
    });
    ts.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{exact, gen, StaticGraph};
    use sgs_stream::hash::split_seed;
    use sgs_stream::InsertionStream;

    #[test]
    fn exact_when_capacity_covers_stream() {
        let g = gen::gnm(30, 120, 1);
        let exact_t = exact::triangles::count_triangles(&g);
        let stream = InsertionStream::from_graph(&g, 2);
        // eta = max(1, ...) stays 1 while t <= capacity: full storage.
        let res = estimate_triest(&stream, 200, 3);
        assert_eq!(res.estimate, exact_t as f64);
        assert_eq!(res.reservoir_edges, 120);
    }

    #[test]
    fn unbiased_at_reduced_capacity() {
        let g = gen::gnm(50, 500, 4);
        let exact_t = exact::triangles::count_triangles(&g) as f64;
        assert!(exact_t > 300.0);
        let stream = InsertionStream::from_graph(&g, 5);
        let runs = 80;
        let mean: f64 = (0..runs)
            .map(|s| estimate_triest(&stream, 150, split_seed(6, s)).estimate)
            .sum::<f64>()
            / runs as f64;
        let rel = (mean - exact_t).abs() / exact_t;
        assert!(rel < 0.2, "mean {mean} vs exact {exact_t}");
    }

    #[test]
    fn space_bounded_by_capacity() {
        let g = gen::gnm(60, 900, 7);
        let stream = InsertionStream::from_graph(&g, 8);
        let res = estimate_triest(&stream, 100, 9);
        assert_eq!(res.reservoir_edges, 100);
        assert!(res.space_bytes < 100 * 8 + 200 * 16 + 1);
        assert_eq!(res.passes, 1);
        let _ = g.num_edges();
    }

    #[test]
    fn triangle_free_estimates_zero() {
        let g = gen::complete_bipartite(8, 8);
        let stream = InsertionStream::from_graph(&g, 10);
        let res = estimate_triest(&stream, 30, 11);
        assert_eq!(res.estimate, 0.0);
    }

    #[test]
    fn skip_and_offer_modes_agree_in_distribution() {
        // The two acceptance schemes draw different coins but drive the
        // same reservoir process law, so their estimate distributions
        // must match; compare both means against the exact count.
        let g = gen::gnm(50, 500, 14);
        let exact_t = exact::triangles::count_triangles(&g) as f64;
        let stream = InsertionStream::from_graph(&g, 15);
        let runs = 80;
        let mean = |mode| {
            (0..runs)
                .map(|s| estimate_triest_with_mode(&stream, 150, split_seed(16, s), mode).estimate)
                .sum::<f64>()
                / runs as f64
        };
        let offer = mean(ReservoirMode::Offer);
        let skip = mean(ReservoirMode::Skip);
        assert!((offer - exact_t).abs() / exact_t < 0.2, "offer {offer}");
        assert!((skip - exact_t).abs() / exact_t < 0.2, "skip {skip}");
        assert!(
            (offer - skip).abs() / exact_t < 0.25,
            "modes diverged: offer {offer} vs skip {skip}"
        );
    }

    #[test]
    fn sizec_bank_matches_the_frozen_estimates_in_distribution() {
        // The SizeC bank draws a different coin chain but realizes the
        // same uniform-subset process law, so its estimate mean must
        // land on the exact count alongside the frozen bank's.
        let g = gen::gnm(50, 500, 20);
        let exact_t = exact::triangles::count_triangles(&g) as f64;
        let stream = InsertionStream::from_graph(&g, 21);
        let runs = 80;
        let mean = |scheme| {
            (0..runs)
                .map(|s| {
                    estimate_triest_with_scheme(&stream, 150, split_seed(22, s), scheme).estimate
                })
                .sum::<f64>()
                / runs as f64
        };
        let frozen = mean(TriestScheme::Frozen(ReservoirMode::Offer));
        for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
            let sizec = mean(TriestScheme::SizeC(mode));
            assert!((sizec - exact_t).abs() / exact_t < 0.2, "{mode:?}: {sizec}");
            assert!(
                (frozen - sizec).abs() / exact_t < 0.25,
                "banks diverged: frozen {frozen} vs sizec({mode:?}) {sizec}"
            );
        }
    }

    #[test]
    fn sizec_bank_membership_matches_algorithm_r_oracle_chi_square() {
        // Every edge must end in the final reservoir with the same
        // marginal under the SizeC bank as under the frozen per-offer
        // Algorithm-R oracle. Two-sample chi-square over per-edge
        // retention counts; df = m-1 = 39, gate 73 ≈ the 0.999 quantile
        // plus slack for the fixed-size (non-multinomial) coupling.
        let g = gen::gnm(20, 40, 23);
        let stream = InsertionStream::from_graph(&g, 24);
        let mut order: Vec<Edge> = Vec::new();
        stream.replay(&mut |u| order.push(u.edge));
        let index: HashMap<Edge, usize> = order.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        let m = order.len();
        let cap = 8;
        let runs = 4_000u64;
        let tally = |scheme: TriestScheme| {
            let mut counts = vec![0u64; m];
            for s in 0..runs {
                let mut ts = TriestStream::with_scheme(cap, split_seed(25, s), scheme);
                for &e in &order {
                    ts.push(e);
                }
                match &ts.res {
                    Bank::Frozen(r) => {
                        for e in &r.edges {
                            counts[index[e]] += 1;
                        }
                    }
                    Bank::SizeC(b) => {
                        for e in b.res.samples().iter().flatten() {
                            counts[index[e]] += 1;
                        }
                    }
                }
            }
            counts
        };
        let oracle = tally(TriestScheme::Frozen(ReservoirMode::Offer));
        for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
            let sizec = tally(TriestScheme::SizeC(mode));
            let chi2: f64 = oracle
                .iter()
                .zip(&sizec)
                .filter(|(&a, &b)| a + b > 0)
                .map(|(&a, &b)| {
                    let d = a as f64 - b as f64;
                    d * d / (a + b) as f64
                })
                .sum();
            assert!(chi2 < 73.0, "sizec({mode:?}) vs oracle: chi2 {chi2}");
            let total: u64 = sizec.iter().sum();
            assert_eq!(total, runs * cap as u64, "every run retains cap edges");
        }
    }

    #[test]
    fn skip_mode_exact_when_capacity_covers_stream() {
        // Capacity ≥ m: the schedule never fires, every edge is stored,
        // the estimate is exact — the fill path must be mode-agnostic.
        let g = gen::gnm(30, 120, 17);
        let exact_t = exact::triangles::count_triangles(&g);
        let stream = InsertionStream::from_graph(&g, 18);
        let res = estimate_triest_with_mode(&stream, 200, 19, ReservoirMode::Skip);
        assert_eq!(res.estimate, exact_t as f64);
        assert_eq!(res.reservoir_edges, 120);
    }
}
