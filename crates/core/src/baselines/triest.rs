//! TRIÈST-style one-pass triangle estimation with a fixed-size adaptive
//! reservoir (De Stefani et al., KDD 2016 — the modern representative of
//! the single-pass line of work the paper's §1 surveys).
//!
//! Maintain a uniform reservoir of at most `capacity` edges. When the
//! `t`-th edge arrives, every triangle it closes with two reservoir
//! edges is counted with weight
//! `η(t) = max(1, (t-1)(t-2) / (capacity·(capacity-1)))` — the inverse
//! probability that both partner edges are in the reservoir — yielding an
//! unbiased running estimate within a *fixed* memory budget, unknown
//! stream length, and one pass. Its accuracy collapses when triangles
//! are rare relative to `m²/capacity²`, which is the regime comparison
//! E9 probes against Theorem 1's `m^{3/2}/#T` trade-off.
//!
//! Like the executors' relaxed-`f3` reservoirs, the offer loop supports
//! two acceptance schemes ([`ReservoirMode`]): the textbook per-offer
//! test (`gen_range(0..t) < capacity`, one draw per edge — the
//! statistical oracle) and a skip-ahead scheme in the style of Li's
//! **Algorithm L** — the next accepted arrival index is precomputed from
//! the running key-threshold `W` (`W ← W·u^{1/capacity}` per acceptance,
//! geometric jump `floor(ln u' / ln(1-W))`), so the per-edge cost drops
//! to a counter compare and RNG draws scale with *acceptances*
//! (`O(capacity · log(m/capacity))`), not edges. Both schemes maintain
//! the same reservoir process law (a uniform `capacity`-subset of every
//! prefix, uniform victim on acceptance), so the estimator stays
//! unbiased; the default is skip-ahead, and the distribution test below
//! pins the two modes' means against each other and the exact count.
//! Triangle *counting* (`closing_count`) still touches every edge —
//! inherent to the estimator, not the sampler.

use sgs_graph::{Edge, VertexId};
use sgs_stream::hash::FastRng;
use sgs_stream::reservoir::ReservoirMode;
use sgs_stream::EdgeStream;
use std::collections::{HashMap, HashSet};

/// Result of a TRIÈST run.
#[derive(Clone, Debug)]
pub struct TriestEstimate {
    /// Unbiased estimate of the number of triangles.
    pub estimate: f64,
    /// Edges held at the end (= min(capacity, m)).
    pub reservoir_edges: usize,
    /// Passes used (always 1).
    pub passes: usize,
    /// Bytes of stored state.
    pub space_bytes: usize,
}

/// Reservoir state with adjacency index for fast triangle closing.
struct Reservoir {
    capacity: usize,
    mode: ReservoirMode,
    /// Skip mode: Algorithm L's running key threshold `W ∈ (0, 1)`.
    w: f64,
    /// Skip mode: 1-based arrival index of the next acceptance.
    next_accept: u64,
    edges: Vec<Edge>,
    adj: HashMap<VertexId, HashSet<VertexId>>,
}

/// Algorithm L's geometric jump: losing arrivals before the next
/// acceptance, `floor(ln u / ln(1-W))`. Guards: `u ∈ (0,1)` structurally,
/// and `1-W` is clamped to the smallest positive normal so a threshold
/// rounding to 1.0 degrades to per-arrival acceptance instead of a NaN.
fn algorithm_l_jump(rng: &mut FastRng, w: f64) -> u64 {
    let denom = (1.0 - w).max(f64::MIN_POSITIVE).ln();
    let g = (rng.gen_unit_f64().ln() / denom).floor();
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

impl Reservoir {
    fn new(capacity: usize, mode: ReservoirMode) -> Self {
        Reservoir {
            capacity,
            mode,
            w: 0.0,
            next_accept: u64::MAX,
            edges: Vec::with_capacity(capacity),
            adj: HashMap::new(),
        }
    }

    fn link(&mut self, e: Edge) {
        self.adj.entry(e.u()).or_default().insert(e.v());
        self.adj.entry(e.v()).or_default().insert(e.u());
    }

    fn unlink(&mut self, e: Edge) {
        if let Some(s) = self.adj.get_mut(&e.u()) {
            s.remove(&e.v());
        }
        if let Some(s) = self.adj.get_mut(&e.v()) {
            s.remove(&e.u());
        }
    }

    /// Common reservoir-neighbors of the endpoints of `e`.
    fn closing_count(&self, e: Edge) -> usize {
        let (Some(nu), Some(nv)) = (self.adj.get(&e.u()), self.adj.get(&e.v())) else {
            return 0;
        };
        let (small, large) = if nu.len() <= nv.len() {
            (nu, nv)
        } else {
            (nv, nu)
        };
        small.iter().filter(|w| large.contains(w)).count()
    }

    /// Advance the skip-ahead schedule after an acceptance (or the fill)
    /// at arrival `t`: tighten the threshold and jump to the next winner.
    fn reschedule(&mut self, t: u64, rng: &mut FastRng) {
        self.w *= rng.gen_unit_f64().powf(1.0 / self.capacity as f64);
        self.next_accept = t
            .saturating_add(algorithm_l_jump(rng, self.w))
            .saturating_add(1);
    }

    /// Replace a uniformly random slot with `e`.
    fn replace(&mut self, e: Edge, rng: &mut FastRng) {
        let victim = rng.gen_range(0..self.edges.len());
        let old = self.edges[victim];
        self.unlink(old);
        self.edges[victim] = e;
        self.link(e);
    }

    /// Standard reservoir insertion of the `t`-th element (1-based).
    fn offer(&mut self, e: Edge, t: u64, rng: &mut FastRng) {
        if self.edges.len() < self.capacity {
            self.edges.push(e);
            self.link(e);
            if self.mode == ReservoirMode::Skip && self.edges.len() == self.capacity {
                // Reservoir just filled: start Algorithm L's schedule
                // (W = u^{1/capacity}, then the first geometric jump).
                self.w = 1.0;
                self.reschedule(t, rng);
            }
            return;
        }
        match self.mode {
            ReservoirMode::Offer => {
                if rng.gen_range(0..t) < self.capacity as u64 {
                    self.replace(e, rng);
                }
            }
            ReservoirMode::Skip => {
                if t == self.next_accept {
                    self.replace(e, rng);
                    self.reschedule(t, rng);
                }
            }
        }
    }
}

/// Incremental TRIÈST run: push edges as they arrive, then
/// [`TriestStream::finish`]. [`estimate_triest_with_mode`] is exactly
/// `new` + one `push` per update + `finish`, so a broadcast consumer
/// built on this is **byte-identical** to the private-replay run with
/// the same seed — which is how the fan-out conformance suite pins the
/// baseline's answers under broadcast ingest.
pub struct TriestStream {
    rng: FastRng,
    res: Reservoir,
    t: u64,
    estimate: f64,
}

impl TriestStream {
    /// Start a run with the default (skip-ahead) reservoir scheme.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self::with_mode(capacity, seed, ReservoirMode::default())
    }

    /// Start a run with an explicit reservoir acceptance scheme.
    pub fn with_mode(capacity: usize, seed: u64, mode: ReservoirMode) -> Self {
        assert!(capacity >= 2, "need at least two reservoir slots");
        TriestStream {
            rng: FastRng::seed_from_u64(seed),
            res: Reservoir::new(capacity, mode),
            t: 0,
            estimate: 0.0,
        }
    }

    /// Absorb the next edge insertion of the stream.
    pub fn push(&mut self, edge: Edge) {
        self.t += 1;
        let cap = self.res.capacity as f64;
        let eta = ((self.t.saturating_sub(1) as f64 * self.t.saturating_sub(2) as f64)
            / (cap * (cap - 1.0)))
            .max(1.0);
        self.estimate += eta * self.res.closing_count(edge) as f64;
        self.res.offer(edge, self.t, &mut self.rng);
    }

    /// Edges seen so far.
    pub fn edges_seen(&self) -> u64 {
        self.t
    }

    /// End of stream: the estimate and its measured footprint.
    pub fn finish(self) -> TriestEstimate {
        let space_bytes = self.res.edges.len() * 8 + self.res.adj.len() * 16;
        TriestEstimate {
            estimate: self.estimate,
            reservoir_edges: self.res.edges.len(),
            passes: 1,
            space_bytes,
        }
    }
}

/// Run the estimator over an insertion-only stream with the given edge
/// budget (skip-ahead reservoir; see [`estimate_triest_with_mode`]).
pub fn estimate_triest(stream: &impl EdgeStream, capacity: usize, seed: u64) -> TriestEstimate {
    estimate_triest_with_mode(stream, capacity, seed, ReservoirMode::default())
}

/// [`estimate_triest`] with an explicit reservoir acceptance scheme —
/// [`ReservoirMode::Offer`] is the per-edge-draw statistical oracle.
pub fn estimate_triest_with_mode(
    stream: &impl EdgeStream,
    capacity: usize,
    seed: u64,
    mode: ReservoirMode,
) -> TriestEstimate {
    let mut ts = TriestStream::with_mode(capacity, seed, mode);
    stream.replay(&mut |u| {
        assert!(u.is_insert(), "TRIÈST-base is insertion-only");
        ts.push(u.edge);
    });
    ts.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{exact, gen, StaticGraph};
    use sgs_stream::hash::split_seed;
    use sgs_stream::InsertionStream;

    #[test]
    fn exact_when_capacity_covers_stream() {
        let g = gen::gnm(30, 120, 1);
        let exact_t = exact::triangles::count_triangles(&g);
        let stream = InsertionStream::from_graph(&g, 2);
        // eta = max(1, ...) stays 1 while t <= capacity: full storage.
        let res = estimate_triest(&stream, 200, 3);
        assert_eq!(res.estimate, exact_t as f64);
        assert_eq!(res.reservoir_edges, 120);
    }

    #[test]
    fn unbiased_at_reduced_capacity() {
        let g = gen::gnm(50, 500, 4);
        let exact_t = exact::triangles::count_triangles(&g) as f64;
        assert!(exact_t > 300.0);
        let stream = InsertionStream::from_graph(&g, 5);
        let runs = 80;
        let mean: f64 = (0..runs)
            .map(|s| estimate_triest(&stream, 150, split_seed(6, s)).estimate)
            .sum::<f64>()
            / runs as f64;
        let rel = (mean - exact_t).abs() / exact_t;
        assert!(rel < 0.2, "mean {mean} vs exact {exact_t}");
    }

    #[test]
    fn space_bounded_by_capacity() {
        let g = gen::gnm(60, 900, 7);
        let stream = InsertionStream::from_graph(&g, 8);
        let res = estimate_triest(&stream, 100, 9);
        assert_eq!(res.reservoir_edges, 100);
        assert!(res.space_bytes < 100 * 8 + 200 * 16 + 1);
        assert_eq!(res.passes, 1);
        let _ = g.num_edges();
    }

    #[test]
    fn triangle_free_estimates_zero() {
        let g = gen::complete_bipartite(8, 8);
        let stream = InsertionStream::from_graph(&g, 10);
        let res = estimate_triest(&stream, 30, 11);
        assert_eq!(res.estimate, 0.0);
    }

    #[test]
    fn skip_and_offer_modes_agree_in_distribution() {
        // The two acceptance schemes draw different coins but drive the
        // same reservoir process law, so their estimate distributions
        // must match; compare both means against the exact count.
        let g = gen::gnm(50, 500, 14);
        let exact_t = exact::triangles::count_triangles(&g) as f64;
        let stream = InsertionStream::from_graph(&g, 15);
        let runs = 80;
        let mean = |mode| {
            (0..runs)
                .map(|s| estimate_triest_with_mode(&stream, 150, split_seed(16, s), mode).estimate)
                .sum::<f64>()
                / runs as f64
        };
        let offer = mean(ReservoirMode::Offer);
        let skip = mean(ReservoirMode::Skip);
        assert!((offer - exact_t).abs() / exact_t < 0.2, "offer {offer}");
        assert!((skip - exact_t).abs() / exact_t < 0.2, "skip {skip}");
        assert!(
            (offer - skip).abs() / exact_t < 0.25,
            "modes diverged: offer {offer} vs skip {skip}"
        );
    }

    #[test]
    fn skip_mode_exact_when_capacity_covers_stream() {
        // Capacity ≥ m: the schedule never fires, every edge is stored,
        // the estimate is exact — the fill path must be mode-agnostic.
        let g = gen::gnm(30, 120, 17);
        let exact_t = exact::triangles::count_triangles(&g);
        let stream = InsertionStream::from_graph(&g, 18);
        let res = estimate_triest_with_mode(&stream, 200, 19, ReservoirMode::Skip);
        assert_eq!(res.estimate, exact_t as f64);
        assert_eq!(res.reservoir_edges, 120);
    }
}
