//! Comparison baselines from the paper's related-work discussion (§1).
//!
//! * [`exact_stream`] — the trivial 1-pass algorithm: store the whole
//!   graph, count exactly. `O(m)` space, zero error; the yardstick every
//!   sublinear-space algorithm is judged against.
//! * [`doulion`] — DOULION-style sparsification (Tsourakakis et al.,
//!   cited as [Tso+09]): keep each edge with probability `p` via a
//!   deterministic hash coin (hence deletion-consistent), count in the
//!   sparsified graph, scale by `p^{-|E(H)|}`. 1 pass, `O(pm)` space,
//!   but the variance blows up exactly when `#H` is small — the regime
//!   Theorem 1's `m^ρ/#H` bound is designed for (experiment E9).

pub mod doulion;
pub mod exact_stream;
pub mod triest;

pub use doulion::DoulionEstimate;
pub use exact_stream::ExactStreamCount;
pub use triest::{TriestEstimate, TriestStream};
