//! The `sgs serve` line protocol: a long-lived node behind a socket.
//!
//! One [`ServerNode`] (WAL-backed ingest, open broadcast ring, persistent
//! shard worker pool) serves many concurrent client sessions over TCP
//! and/or a Unix socket. Each connection speaks a line protocol:
//!
//! ```text
//! INGEST u v delta          -> OK <position> | ERR <reason>
//! COUNT <pattern> [trials=N] [seed=S] [reservoir=offer|skip]
//!       [relaxed] [turnstile]
//!                           -> OK #<name> ≈ <est> (hits H/T, seed S)
//!                                prefix=<updates> bits=<hex f64>
//! SNAPSHOT                  -> OK snapshot seq=<blocks>
//! STAT                      -> OK updates=... blocks=... ...
//! QUIT                      -> BYE  (graceful node shutdown)
//! ```
//!
//! Client threads parse lines into [`Request`]s and forward them with a
//! private reply channel to the single node loop, which drains the queue
//! in arrival order. Consecutive COUNTs in one drained batch share one
//! feed cut: a lone query runs on the node's persistent runtime
//! ([`crate::fgp::estimate_insertion_on_runtime`]), a batch is
//! admission-multiplexed through one shared pass per round
//! ([`crate::fgp::estimate_multi_insertion`]). Both paths are
//! byte-identical to the equivalent solo batch `sgs count` over the same
//! ingested prefix — the reply's `bits=` field is the exact `f64` so
//! clients can check.
//!
//! `QUIT` shuts the node down gracefully: remaining queued requests are
//! refused, the ring drains, the WAL seals, and a final snapshot lands,
//! so a later `sgs serve` (or `sgs recover`) resumes from the directory.

use crate::fgp::{
    estimate_insertion_on_runtime, estimate_multi_insertion, estimate_multi_turnstile,
    estimate_turnstile_on_runtime, practical_trials, CountEstimate, MultiQuerySpec, SamplerPlan,
};
use crate::SamplerMode;
use sgs_graph::zoo::parse_pattern;
use sgs_graph::Pattern;
use sgs_query::{
    BroadcastOpts, ExecPolicy, PassOpts, ReservoirMode, RouterArena, ServeError, ServeSnapshot,
    ServerNode,
};
use sgs_stream::persist::PersistResult;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};
use std::thread;

/// Execution knobs shared by every query the node answers.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Worker policy for the persistent pool and multiplexed passes.
    pub policy: ExecPolicy,
    /// Pass feeding options (block size, ℓ₀ path); the per-query
    /// reservoir choice overrides the reservoir field per COUNT.
    pub pass: PassOpts,
    /// Accuracy target for defaulted trial counts
    /// (`practical_trials(live_edges, rho, eps, 1.0)`).
    pub eps: f64,
}

impl ServeOptions {
    /// Defaults: the given policy, the executor's default block size,
    /// `eps = 0.2` (the CLI's count default).
    pub fn new(policy: ExecPolicy) -> Self {
        ServeOptions {
            policy,
            pass: PassOpts::with_block(sgs_query::exec::DEFAULT_BLOCK),
            eps: 0.2,
        }
    }
}

/// The sockets a node accepts sessions on. Either may be absent; a node
/// with neither exits immediately (nothing can ever reach it).
#[derive(Default)]
pub struct Listeners {
    pub tcp: Option<TcpListener>,
    #[cfg(unix)]
    pub unix: Option<UnixListener>,
}

/// One COUNT request, parsed but not yet resolved against node state
/// (default trials and seed depend on the live edge count and config).
#[derive(Clone, Debug)]
struct CountSpec {
    pattern: Pattern,
    /// 0 = derive from `practical_trials` at answer time.
    trials: usize,
    /// `None` = the node config's seed.
    seed: Option<u64>,
    reservoir: ReservoirMode,
    /// True when `reservoir=` was given explicitly (rejected with
    /// `turnstile`, where reservoirs don't exist).
    reservoir_set: bool,
    relaxed: bool,
    turnstile: bool,
}

/// A parsed protocol line.
#[derive(Clone, Debug)]
enum Request {
    Ingest { u: u32, v: u32, delta: i8 },
    Count(Box<CountSpec>),
    Snapshot,
    Stat,
    Quit,
}

type Job = (Request, Sender<String>);

fn parse_count(mut toks: std::str::SplitWhitespace<'_>) -> Result<Request, String> {
    let pat_tok = toks.next().ok_or("COUNT needs a pattern name")?;
    let pattern = parse_pattern(pat_tok).ok_or_else(|| format!("unknown pattern '{pat_tok}'"))?;
    let mut spec = CountSpec {
        pattern,
        trials: 0,
        seed: None,
        reservoir: ReservoirMode::Skip,
        reservoir_set: false,
        relaxed: false,
        turnstile: false,
    };
    for tok in toks {
        if tok == "relaxed" {
            spec.relaxed = true;
        } else if tok == "turnstile" {
            spec.turnstile = true;
        } else if let Some(v) = tok.strip_prefix("trials=") {
            spec.trials = v.parse().map_err(|_| format!("bad trials '{v}'"))?;
        } else if let Some(v) = tok.strip_prefix("seed=") {
            spec.seed = Some(v.parse().map_err(|_| format!("bad seed '{v}'"))?);
        } else if let Some(v) = tok.strip_prefix("reservoir=") {
            spec.reservoir = match v {
                "offer" => ReservoirMode::Offer,
                "skip" => ReservoirMode::Skip,
                other => return Err(format!("reservoir must be offer|skip, got '{other}'")),
            };
            spec.reservoir_set = true;
        } else {
            return Err(format!("unknown COUNT token '{tok}'"));
        }
    }
    if spec.turnstile && (spec.relaxed || spec.reservoir_set) {
        return Err(
            "relaxed/reservoir only apply to insertion COUNTs (turnstile trials are always \
             relaxed, on ℓ₀-samplers)"
                .to_string(),
        );
    }
    Ok(Request::Count(Box::new(spec)))
}

/// Parse one protocol line (already known non-blank). `Err` is the text
/// after `ERR ` in the refusal; the connection continues either way.
fn parse_request(line: &str) -> Result<Request, String> {
    let mut toks = line.split_whitespace();
    let verb = toks.next().expect("caller skips blank lines");
    match verb.to_ascii_uppercase().as_str() {
        "INGEST" => {
            let mut field = |name: &str| {
                toks.next()
                    .ok_or_else(|| format!("INGEST needs u v delta (missing {name})"))
            };
            let u: u32 = field("u")?
                .parse()
                .map_err(|_| "bad vertex id for u".to_string())?;
            let v: u32 = field("v")?
                .parse()
                .map_err(|_| "bad vertex id for v".to_string())?;
            let delta: i8 = field("delta")?
                .parse()
                .map_err(|_| "delta must be +1 or -1".to_string())?;
            if toks.next().is_some() {
                return Err("INGEST takes exactly u v delta".to_string());
            }
            Ok(Request::Ingest { u, v, delta })
        }
        "COUNT" => parse_count(toks),
        "SNAPSHOT" => Ok(Request::Snapshot),
        "STAT" => Ok(Request::Stat),
        "QUIT" => Ok(Request::Quit),
        other => Err(format!(
            "unknown command '{other}' (INGEST|COUNT|SNAPSHOT|STAT|QUIT)"
        )),
    }
}

/// One client session: read lines, forward parsed requests to the node
/// loop, relay replies. Returns on EOF, after QUIT, or when the node is
/// gone.
fn session<R: BufRead, W: Write>(mut lines: R, mut out: W, jobs: Sender<Job>) {
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let mut line = String::new();
    loop {
        line.clear();
        match lines.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let req = match parse_request(trimmed) {
            Ok(r) => r,
            Err(msg) => {
                if writeln!(out, "ERR {msg}").is_err() || out.flush().is_err() {
                    return;
                }
                continue;
            }
        };
        let quitting = matches!(req, Request::Quit);
        if jobs.send((req, reply_tx.clone())).is_err() {
            let _ = writeln!(out, "ERR node is shutting down");
            let _ = out.flush();
            return;
        }
        match reply_rx.recv() {
            Ok(reply) => {
                if writeln!(out, "{reply}").is_err() || out.flush().is_err() {
                    return;
                }
            }
            Err(_) => {
                // The node loop dropped this job (shutdown raced us).
                let _ = writeln!(out, "ERR node is shutting down");
                let _ = out.flush();
                return;
            }
        }
        if quitting {
            return;
        }
    }
}

fn count_reply(spec: &MultiQuerySpec, est: &CountEstimate, prefix: u64) -> String {
    format!(
        "OK #{} ≈ {:.1} (hits {}/{}, seed {}) prefix={} bits={:016x}",
        spec.pattern.name(),
        est.estimate,
        est.hits,
        est.trials,
        spec.seed,
        prefix,
        est.estimate.to_bits(),
    )
}

/// Answer one model's share of a consecutive COUNT run over one cut.
#[allow(clippy::too_many_arguments)]
fn answer_group(
    node: &mut ServerNode,
    arena: &mut RouterArena,
    jobs: &[Job],
    group: &[usize],
    turnstile: bool,
    feed: &sgs_stream::ShardedFeed,
    prefix: u64,
    opts: &ServeOptions,
) {
    if group.is_empty() {
        return;
    }
    if !turnstile && node.has_deletions() {
        for &k in group {
            let _ = jobs[k].1.send(
                "ERR stream has deletions; insertion-model COUNT is unavailable (add 'turnstile')"
                    .to_string(),
            );
        }
        return;
    }
    let m = node.live_edges();
    let base_seed = node.config().seed;
    // Resolve defaults; refuse uncoverable patterns without touching the
    // rest of the group.
    let mut resolved: Vec<(usize, MultiQuerySpec)> = Vec::with_capacity(group.len());
    for &k in group {
        let Request::Count(spec) = &jobs[k].0 else {
            unreachable!("answer_group is only handed COUNT jobs");
        };
        let Some(plan) = SamplerPlan::new(&spec.pattern) else {
            let _ = jobs[k].1.send(format!(
                "ERR pattern '{}' has an isolated vertex (no edge cover)",
                spec.pattern.name()
            ));
            continue;
        };
        let trials = if spec.trials == 0 {
            practical_trials(m, plan.rho(), opts.eps, 1.0).clamp(1, 2_000_000)
        } else {
            spec.trials
        };
        let sampler = if turnstile || spec.relaxed {
            SamplerMode::Relaxed
        } else {
            SamplerMode::Indexed
        };
        resolved.push((
            k,
            MultiQuerySpec {
                pattern: spec.pattern.clone(),
                trials,
                seed: spec.seed.unwrap_or(base_seed),
                sampler,
                reservoir: spec.reservoir,
            },
        ));
    }
    if resolved.is_empty() {
        return;
    }
    if resolved.len() == 1 {
        // A lone query runs on the node's persistent worker pool.
        let (k, spec) = &resolved[0];
        let pass = opts.pass.reservoir(spec.reservoir);
        let bcast = BroadcastOpts::with_policy(opts.policy);
        let est = if turnstile {
            estimate_turnstile_on_runtime(
                &spec.pattern,
                feed,
                spec.trials,
                spec.seed,
                arena,
                pass,
                bcast,
                node.runtime_mut(),
            )
        } else {
            estimate_insertion_on_runtime(
                &spec.pattern,
                feed,
                spec.trials,
                spec.seed,
                arena,
                pass,
                spec.sampler,
                bcast,
                node.runtime_mut(),
            )
        }
        .expect("plan validated above");
        let _ = jobs[*k].1.send(count_reply(spec, &est, prefix));
        node.note_served();
        return;
    }
    // A batch is admission-multiplexed: one shared pass per round serves
    // every query, each answer byte-identical to its solo run.
    let specs: Vec<MultiQuerySpec> = resolved.iter().map(|(_, s)| s.clone()).collect();
    let (ests, _admission) = if turnstile {
        estimate_multi_turnstile(&specs, feed, arena, opts.pass, opts.policy)
    } else {
        estimate_multi_insertion(&specs, feed, arena, opts.pass, opts.policy)
    }
    .expect("plans validated above");
    for ((k, spec), est) in resolved.iter().zip(&ests) {
        let _ = jobs[*k].1.send(count_reply(spec, est, prefix));
        node.note_served();
    }
}

/// Answer a maximal run of consecutive COUNT jobs over ONE feed cut.
fn answer_counts(
    node: &mut ServerNode,
    arena: &mut RouterArena,
    jobs: &[Job],
    opts: &ServeOptions,
) -> PersistResult<()> {
    let feed = match node.cut() {
        Ok(f) => f,
        Err(e) => {
            for (_, reply) in jobs {
                let _ = reply.send(format!("ERR fatal: {e}"));
            }
            return Err(e);
        }
    };
    let prefix = node.ingested();
    let mut insertion: Vec<usize> = Vec::new();
    let mut turnstile: Vec<usize> = Vec::new();
    for (k, (req, _)) in jobs.iter().enumerate() {
        let Request::Count(spec) = req else {
            unreachable!("answer_counts is only handed COUNT jobs");
        };
        if spec.turnstile {
            turnstile.push(k);
        } else {
            insertion.push(k);
        }
    }
    answer_group(node, arena, jobs, &insertion, false, &feed, prefix, opts);
    answer_group(node, arena, jobs, &turnstile, true, &feed, prefix, opts);
    Ok(())
}

fn stat_reply(node: &ServerNode) -> String {
    let s = node.stats();
    format!(
        "OK updates={} blocks={} pending={} vertices={} edges={} deletions={} ring_produced={} \
         ring_consumed={} served={} snapshots={} shards={}",
        s.updates,
        s.blocks,
        s.pending,
        s.num_vertices,
        s.edges,
        s.deletions,
        s.ring_produced,
        s.ring_consumed,
        s.served,
        s.snapshots,
        s.shards,
    )
}

/// The single-threaded node loop: drain requests in arrival order,
/// batching consecutive COUNTs onto one cut. Returns after QUIT (graceful
/// shutdown: seal + final snapshot) or on a durability failure.
fn node_loop(
    mut node: ServerNode,
    rx: Receiver<Job>,
    opts: &ServeOptions,
) -> PersistResult<ServeSnapshot> {
    let mut arena = RouterArena::new();
    'serve: loop {
        let Ok(first) = rx.recv() else {
            // Every listener and client is gone; nothing can reach the
            // node any more, so shut down as if QUIT had arrived.
            break;
        };
        let mut batch = vec![first];
        while let Ok(job) = rx.try_recv() {
            batch.push(job);
        }
        let mut i = 0;
        while i < batch.len() {
            if matches!(batch[i].0, Request::Count(_)) {
                let mut j = i;
                while j < batch.len() && matches!(batch[j].0, Request::Count(_)) {
                    j += 1;
                }
                answer_counts(&mut node, &mut arena, &batch[i..j], opts)?;
                i = j;
                continue;
            }
            let (req, reply) = &batch[i];
            i += 1;
            match req {
                Request::Ingest { u, v, delta } => match node.ingest(*u, *v, *delta) {
                    Ok(pos) => {
                        let _ = reply.send(format!("OK {pos}"));
                    }
                    Err(ServeError::Reject(msg)) => {
                        let _ = reply.send(format!("ERR {msg}"));
                    }
                    Err(ServeError::Persist(e)) => {
                        let _ = reply.send(format!("ERR fatal: {e}"));
                        return Err(e);
                    }
                },
                Request::Stat => {
                    let _ = reply.send(stat_reply(&node));
                }
                Request::Snapshot => match node.snapshot() {
                    Ok(snap) => {
                        let _ = reply.send(format!("OK snapshot seq={}", snap.blocks));
                    }
                    Err(e) => {
                        let _ = reply.send(format!("ERR fatal: {e}"));
                        return Err(e);
                    }
                },
                Request::Quit => {
                    let _ = reply.send("BYE".to_string());
                    // Jobs still queued behind QUIT are dropped; their
                    // sessions observe the hung-up reply channel.
                    break 'serve;
                }
                Request::Count(_) => unreachable!("handled by the batch scan above"),
            }
        }
    }
    node.shutdown()
}

/// Run the node behind the given sockets until a client sends QUIT (or
/// every listener is gone). Consumes the node; on success the WAL is
/// sealed, a final snapshot is published, and the returned
/// [`ServeSnapshot`] describes the durable state a restart resumes from.
pub fn run_server(
    node: ServerNode,
    listeners: Listeners,
    opts: ServeOptions,
) -> PersistResult<ServeSnapshot> {
    let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
    let stop = Arc::new(AtomicBool::new(false));
    let mut acceptors = Vec::new();
    let tcp_wake = listeners.tcp.as_ref().and_then(|l| l.local_addr().ok());
    if let Some(listener) = listeners.tcp {
        let jobs = jobs_tx.clone();
        let stop = Arc::clone(&stop);
        acceptors.push(thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let jobs = jobs.clone();
                thread::spawn(move || {
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    session(BufReader::new(read_half), stream, jobs);
                });
            }
        }));
    }
    #[cfg(unix)]
    let unix_wake: Option<PathBuf> = listeners
        .unix
        .as_ref()
        .and_then(|l| l.local_addr().ok())
        .and_then(|a| a.as_pathname().map(PathBuf::from));
    #[cfg(unix)]
    if let Some(listener) = listeners.unix {
        let jobs = jobs_tx.clone();
        let stop = Arc::clone(&stop);
        acceptors.push(thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let jobs = jobs.clone();
                thread::spawn(move || {
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    session(BufReader::new(read_half), stream, jobs);
                });
            }
        }));
    }
    // The node loop holds the only other sender clone sites; dropping
    // ours means `recv` hangs up once the acceptors are gone too.
    drop(jobs_tx);
    let outcome = node_loop(node, jobs_rx, &opts);
    // Wake each acceptor out of its blocking accept so it observes stop.
    stop.store(true, Ordering::Release);
    if let Some(addr) = tcp_wake {
        let _ = TcpStream::connect(addr);
    }
    #[cfg(unix)]
    if let Some(path) = unix_wake {
        let _ = UnixStream::connect(path);
    }
    for acceptor in acceptors {
        let _ = acceptor.join();
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgp::estimate_insertion_on_feed_with_exec;
    use sgs_query::{ServeConfig, ServerNode};
    use sgs_stream::{ShardedFeed, TurnstileStream};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sgs_core_serve_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_request_grammar() {
        assert!(matches!(
            parse_request("INGEST 3 7 +1"),
            Ok(Request::Ingest {
                u: 3,
                v: 7,
                delta: 1
            })
        ));
        assert!(matches!(
            parse_request("ingest 3 7 -1"),
            Ok(Request::Ingest { delta: -1, .. })
        ));
        assert!(parse_request("INGEST 3 7").is_err());
        assert!(parse_request("INGEST 3 7 1 junk").is_err());
        assert!(parse_request("INGEST a b 1").is_err());
        assert!(matches!(parse_request("STAT"), Ok(Request::Stat)));
        assert!(matches!(parse_request("SNAPSHOT"), Ok(Request::Snapshot)));
        assert!(matches!(parse_request("QUIT"), Ok(Request::Quit)));
        assert!(parse_request("NONSENSE").is_err());

        let Ok(Request::Count(spec)) =
            parse_request("COUNT triangle trials=60 seed=9 reservoir=offer relaxed")
        else {
            panic!("COUNT should parse");
        };
        assert_eq!(spec.trials, 60);
        assert_eq!(spec.seed, Some(9));
        assert!(matches!(spec.reservoir, ReservoirMode::Offer));
        assert!(spec.relaxed && !spec.turnstile);

        assert!(parse_request("COUNT").is_err());
        assert!(parse_request("COUNT nosuch").is_err());
        assert!(parse_request("COUNT triangle trials=x").is_err());
        // Reservoirs and relaxed make no sense under turnstile.
        assert!(parse_request("COUNT triangle turnstile relaxed").is_err());
        assert!(parse_request("COUNT triangle turnstile reservoir=skip").is_err());
        assert!(parse_request("COUNT triangle turnstile trials=5").is_ok());
    }

    fn send(r: &mut BufReader<TcpStream>, w: &mut TcpStream, line: &str) -> String {
        writeln!(w, "{line}").unwrap();
        w.flush().unwrap();
        let mut reply = String::new();
        r.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }

    #[test]
    fn tcp_session_answers_match_batch_bits() {
        let dir = tmp("tcp_session");
        let cfg = ServeConfig {
            shards: 2,
            wal_block: 8,
            ..ServeConfig::default()
        };
        let node = ServerNode::create(&dir, cfg, ExecPolicy::serial()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            run_server(
                node,
                Listeners {
                    tcp: Some(listener),
                    #[cfg(unix)]
                    unix: None,
                },
                ServeOptions::new(ExecPolicy::serial()),
            )
        });

        let mut w = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(w.try_clone().unwrap());
        // A deterministic little turnstile script over 12 vertices.
        let mut updates: Vec<(u32, u32, i8)> = Vec::new();
        let mut x = 5u64;
        let mut live = std::collections::HashSet::new();
        while updates.len() < 40 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 33) as u32 % 12;
            let v = (x >> 17) as u32 % 12;
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if live.insert(key) {
                updates.push((u, v, 1));
            }
        }
        for (k, &(u, v, d)) in updates.iter().enumerate() {
            let reply = send(&mut r, &mut w, &format!("INGEST {u} {v} {d:+}"));
            assert_eq!(reply, format!("OK {k}"), "position echo for update {k}");
        }
        assert_eq!(
            send(&mut r, &mut w, "INGEST 0 0 +1"),
            "ERR self-loop on vertex 0"
        );
        let stat = send(&mut r, &mut w, "STAT");
        assert!(stat.starts_with("OK updates="), "{stat}");
        assert!(stat.contains("edges=40"), "{stat}");
        assert!(stat.contains("shards=2"), "{stat}");

        let reply = send(&mut r, &mut w, "COUNT triangle trials=50 seed=9");
        assert!(reply.starts_with("OK #triangle ≈ "), "{reply}");
        let bits_hex = reply.split("bits=").nth(1).expect("bits field");
        let live_bits = u64::from_str_radix(bits_hex.trim(), 16).unwrap();
        assert!(reply.contains("prefix=40"), "{reply}");

        // The same estimate computed batch-side over the same prefix.
        // The node's vertex bound is max endpoint + 1; match it exactly.
        let n = updates.iter().map(|&(u, v, _)| u.max(v) + 1).max().unwrap() as usize;
        let stream = TurnstileStream::from_updates(
            n,
            updates
                .iter()
                .map(|&(u, v, d)| sgs_stream::EdgeUpdate {
                    edge: sgs_graph::Edge::new(sgs_graph::VertexId(u), sgs_graph::VertexId(v)),
                    delta: d,
                })
                .collect::<Vec<_>>(),
        );
        let feed = ShardedFeed::partition(&stream, 2);
        let mut arena = RouterArena::new();
        let batch = estimate_insertion_on_feed_with_exec(
            &Pattern::triangle(),
            &feed,
            50,
            9,
            &mut arena,
            ServeOptions::new(ExecPolicy::serial()).pass,
            SamplerMode::Indexed,
            ExecPolicy::serial(),
        )
        .unwrap();
        assert_eq!(live_bits, batch.estimate.to_bits());

        // A turnstile COUNT over the same prefix also answers.
        let t = send(&mut r, &mut w, "COUNT triangle trials=30 seed=4 turnstile");
        assert!(t.starts_with("OK #triangle ≈ "), "{t}");

        let snap = send(&mut r, &mut w, "SNAPSHOT");
        assert!(snap.starts_with("OK snapshot seq="), "{snap}");
        assert_eq!(send(&mut r, &mut w, "QUIT"), "BYE");
        let summary = server.join().unwrap().unwrap();
        assert_eq!(summary.updates, 40);
        assert_eq!(summary.served, 2);
    }

    #[test]
    fn concurrent_counts_multiplex_and_still_match_solo() {
        let dir = tmp("mux");
        let cfg = ServeConfig {
            shards: 1,
            wal_block: 8,
            ..ServeConfig::default()
        };
        let node = ServerNode::create(&dir, cfg, ExecPolicy::serial()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            run_server(
                node,
                Listeners {
                    tcp: Some(listener),
                    #[cfg(unix)]
                    unix: None,
                },
                ServeOptions::new(ExecPolicy::serial()),
            )
        });

        let mut w = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(w.try_clone().unwrap());
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                let reply = send(&mut r, &mut w, &format!("INGEST {i} {j} +1"));
                assert!(reply.starts_with("OK "), "{reply}");
            }
        }
        // Several clients COUNT concurrently; every answer must match the
        // byte-exact solo estimate regardless of how the node batched.
        let clients: Vec<_> = (0..4u64)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut w = TcpStream::connect(addr).unwrap();
                    let mut r = BufReader::new(w.try_clone().unwrap());
                    send(
                        &mut r,
                        &mut w,
                        &format!("COUNT triangle trials=40 seed={}", 100 + c),
                    )
                })
            })
            .collect();
        let replies: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();

        let edges: Vec<sgs_graph::Edge> = (0..10u32)
            .flat_map(|i| {
                ((i + 1)..10).map(move |j| {
                    sgs_graph::Edge::new(sgs_graph::VertexId(i), sgs_graph::VertexId(j))
                })
            })
            .collect();
        let ins = sgs_stream::InsertionStream::from_edge_order(10, edges);
        let feed = ShardedFeed::partition(&ins, 1);
        for (c, reply) in replies.iter().enumerate() {
            let bits_hex = reply.split("bits=").nth(1).unwrap_or_else(|| {
                panic!("client {c} got no bits field: {reply}");
            });
            let live_bits = u64::from_str_radix(bits_hex.trim(), 16).unwrap();
            let mut arena = RouterArena::new();
            let solo = estimate_insertion_on_feed_with_exec(
                &Pattern::triangle(),
                &feed,
                40,
                100 + c as u64,
                &mut arena,
                ServeOptions::new(ExecPolicy::serial()).pass,
                SamplerMode::Indexed,
                ExecPolicy::serial(),
            )
            .unwrap();
            assert_eq!(live_bits, solo.estimate.to_bits(), "client {c}");
        }

        let mut w = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(w.try_clone().unwrap());
        assert_eq!(send(&mut r, &mut w, "QUIT"), "BYE");
        server.join().unwrap().unwrap();
    }
}
