//! Multi-query estimator serving: many concurrent `#H` estimates from
//! ONE shared pass per round.
//!
//! [`crate::fgp::parallel_exec`] made one estimate cheap per pass;
//! serving-side traffic asks a different question — N estimates
//! (different patterns, trial counts, seeds, reservoir modes) arriving
//! together. Solo they cost `3·N` passes (every sampler is 3-round);
//! through [`sgs_query::QuerySet`] they cost exactly **3 shared
//! passes** total, because every trial bank rides the same merged
//! router. Each estimate is **byte-identical** to its solo
//! [`crate::fgp::parallel_exec::estimate_insertion_on_feed_with_exec`]
//! run with the same spec, for any shard count, block size, and engine
//! — the multiplexer replays each job's private coin chain exactly.

use crate::fgp::counter::{build_parallel, CountEstimate};
use crate::fgp::plan::SamplerPlan;
use crate::fgp::sampler::SamplerMode;
use sgs_graph::Pattern;
use sgs_query::multiplex::{AdmissionReport, QuerySet};
use sgs_query::{BroadcastOpts, ExecPolicy, PassOpts, RouterArena};
use sgs_stream::hash::split_seed;
use sgs_stream::reservoir::ReservoirMode;
use sgs_stream::ShardedFeed;

/// One query in a multi-query batch: everything a solo
/// `estimate_*_on_feed_with_*` call would have taken per estimate.
#[derive(Clone, Debug)]
pub struct MultiQuerySpec {
    /// The pattern `H` to count.
    pub pattern: Pattern,
    /// Parallel sampler trials `k` for this query.
    pub trials: usize,
    /// The query's private seed — the same value a solo run would take.
    pub seed: u64,
    /// Which Theorem-9 query mix the trials ask (insertion model only;
    /// turnstile always runs relaxed).
    pub sampler: SamplerMode,
    /// Relaxed-`f3` reservoir acceptance scheme for this query.
    pub reservoir: ReservoirMode,
}

impl MultiQuerySpec {
    /// A spec with the library defaults: indexed sampler, default
    /// reservoir mode.
    pub fn new(pattern: Pattern, trials: usize, seed: u64) -> Self {
        MultiQuerySpec {
            pattern,
            trials,
            seed,
            sampler: SamplerMode::Indexed,
            reservoir: ReservoirMode::default(),
        }
    }
}

fn admit_all(
    specs: &[MultiQuerySpec],
    force_relaxed: bool,
) -> Option<(
    QuerySet<sgs_query::Parallel<crate::fgp::sampler::SubgraphSampler>>,
    Vec<sgs_graph::Rho>,
)> {
    let mut set = QuerySet::new();
    let mut rhos = Vec::with_capacity(specs.len());
    for spec in specs {
        let plan = SamplerPlan::new(&spec.pattern)?;
        let sampler = if force_relaxed {
            SamplerMode::Relaxed
        } else {
            spec.sampler
        };
        let par = build_parallel(&plan, sampler, spec.trials, spec.seed);
        set.admit(par, split_seed(spec.seed, u64::MAX), spec.reservoir);
        rhos.push(plan.rho());
    }
    Some((set, rhos))
}

fn collect(
    outputs: Vec<Vec<crate::fgp::sampler::SamplerOutcome>>,
    reports: Vec<sgs_query::ExecReport>,
    rhos: Vec<sgs_graph::Rho>,
) -> Vec<CountEstimate> {
    outputs
        .into_iter()
        .zip(reports)
        .zip(rhos)
        .map(|((outcomes, report), rho)| CountEstimate::from_outcomes(outcomes, rho, report))
        .collect()
}

/// Estimate every spec's `#H` from one shared insertion-model pass per
/// round on the sharded engine. Returns per-spec estimates (spec order)
/// plus the multiplexer's admission report; `None` if any pattern has no
/// sampler plan. Each estimate is byte-identical to its solo run.
pub fn estimate_multi_insertion(
    specs: &[MultiQuerySpec],
    feed: &ShardedFeed,
    arena: &mut RouterArena,
    opts: PassOpts,
    policy: ExecPolicy,
) -> Option<(Vec<CountEstimate>, AdmissionReport)> {
    let (set, rhos) = admit_all(specs, false)?;
    let out = set.run_insertion(feed, arena, opts, policy);
    Some((collect(out.outputs, out.reports, rhos), out.admission))
}

/// Turnstile sibling of [`estimate_multi_insertion`]; every query runs
/// the relaxed sampler (Definition 10 has no arrival-order watchers).
pub fn estimate_multi_turnstile(
    specs: &[MultiQuerySpec],
    feed: &ShardedFeed,
    arena: &mut RouterArena,
    opts: PassOpts,
    policy: ExecPolicy,
) -> Option<(Vec<CountEstimate>, AdmissionReport)> {
    let (set, rhos) = admit_all(specs, true)?;
    let out = set.run_turnstile(feed, arena, opts, policy);
    Some((collect(out.outputs, out.reports, rhos), out.admission))
}

/// [`estimate_multi_insertion`] riding the broadcast ring: one producer
/// pushes each shared round's routed stream once. Producer stalls land
/// in the admission report. Estimates identical to the sharded engine.
pub fn estimate_multi_insertion_broadcast(
    specs: &[MultiQuerySpec],
    feed: &ShardedFeed,
    arena: &mut RouterArena,
    opts: PassOpts,
    bcast: BroadcastOpts,
) -> Option<(Vec<CountEstimate>, AdmissionReport)> {
    let (set, rhos) = admit_all(specs, false)?;
    let out = set.run_insertion_broadcast(feed, arena, opts, bcast);
    Some((collect(out.outputs, out.reports, rhos), out.admission))
}

/// Turnstile sibling of [`estimate_multi_insertion_broadcast`].
pub fn estimate_multi_turnstile_broadcast(
    specs: &[MultiQuerySpec],
    feed: &ShardedFeed,
    arena: &mut RouterArena,
    opts: PassOpts,
    bcast: BroadcastOpts,
) -> Option<(Vec<CountEstimate>, AdmissionReport)> {
    let (set, rhos) = admit_all(specs, true)?;
    let out = set.run_turnstile_broadcast(feed, arena, opts, bcast);
    Some((collect(out.outputs, out.reports, rhos), out.admission))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgp::parallel_exec::{
        estimate_insertion_on_feed_with_exec, estimate_turnstile_on_feed_with_exec,
    };
    use sgs_graph::gen;
    use sgs_query::PassOpts;
    use sgs_stream::{InsertionStream, TurnstileStream};

    fn specs() -> Vec<MultiQuerySpec> {
        vec![
            MultiQuerySpec::new(Pattern::clique(3), 40, 11),
            MultiQuerySpec {
                pattern: Pattern::cycle(5),
                trials: 25,
                seed: 22,
                sampler: SamplerMode::Relaxed,
                reservoir: ReservoirMode::Skip,
            },
            MultiQuerySpec {
                pattern: Pattern::clique(3),
                trials: 10,
                seed: 33,
                sampler: SamplerMode::Relaxed,
                reservoir: ReservoirMode::Offer,
            },
        ]
    }

    #[test]
    fn multi_insertion_matches_solo_estimates() {
        let g = gen::gnm(40, 160, 7);
        let ins = InsertionStream::from_graph(&g, 8);
        let feed = ShardedFeed::partition(&ins, 2);
        let mut arena = RouterArena::new();
        let (ests, admission) = estimate_multi_insertion(
            &specs(),
            &feed,
            &mut arena,
            PassOpts::with_block(64),
            ExecPolicy::serial(),
        )
        .unwrap();
        assert_eq!(ests.len(), 3);
        assert_eq!(admission.rounds.len(), 3, "3-round samplers share 3 passes");
        for (spec, est) in specs().iter().zip(&ests) {
            let mut solo_arena = RouterArena::new();
            let solo = estimate_insertion_on_feed_with_exec(
                &spec.pattern,
                &feed,
                spec.trials,
                spec.seed,
                &mut solo_arena,
                PassOpts::with_block(64).reservoir(spec.reservoir),
                spec.sampler,
                ExecPolicy::serial(),
            )
            .unwrap();
            assert_eq!(est.estimate.to_bits(), solo.estimate.to_bits());
            assert_eq!(est.hits, solo.hits);
            assert_eq!(est.trials, solo.trials);
            assert_eq!(est.report.passes, solo.report.passes);
        }
    }

    #[test]
    fn multi_turnstile_matches_solo_estimates() {
        let g = gen::gnm(40, 160, 9);
        let tst = TurnstileStream::from_graph_with_churn(&g, 0.4, 10);
        let feed = ShardedFeed::partition(&tst, 2);
        let mut arena = RouterArena::new();
        let (ests, _) = estimate_multi_turnstile(
            &specs(),
            &feed,
            &mut arena,
            PassOpts::with_block(64),
            ExecPolicy::serial(),
        )
        .unwrap();
        for (spec, est) in specs().iter().zip(&ests) {
            let mut solo_arena = RouterArena::new();
            let solo = estimate_turnstile_on_feed_with_exec(
                &spec.pattern,
                &feed,
                spec.trials,
                spec.seed,
                &mut solo_arena,
                PassOpts::with_block(64),
                ExecPolicy::serial(),
            )
            .unwrap();
            assert_eq!(est.estimate.to_bits(), solo.estimate.to_bits());
            assert_eq!(est.hits, solo.hits);
        }
    }

    #[test]
    fn multi_broadcast_matches_sharded_engine() {
        let g = gen::gnm(40, 160, 12);
        let ins = InsertionStream::from_graph(&g, 13);
        let feed = ShardedFeed::partition(&ins, 3);
        let mut arena = RouterArena::new();
        let (sharded, _) = estimate_multi_insertion(
            &specs(),
            &feed,
            &mut arena,
            PassOpts::with_block(64),
            ExecPolicy::serial(),
        )
        .unwrap();
        let mut ring_arena = RouterArena::new();
        let (ringed, _) = estimate_multi_insertion_broadcast(
            &specs(),
            &feed,
            &mut ring_arena,
            PassOpts::with_block(64),
            BroadcastOpts::with_policy(ExecPolicy::serial()),
        )
        .unwrap();
        for (a, b) in sharded.iter().zip(&ringed) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            assert_eq!(a.hits, b.hits);
        }
    }

    #[test]
    fn bad_pattern_returns_none() {
        let ins = InsertionStream::from_edge_order(4, vec![]);
        let feed = ShardedFeed::partition(&ins, 1);
        let mut arena = RouterArena::new();
        // An isolated vertex has no cycle-star decomposition.
        let bad = vec![MultiQuerySpec::new(Pattern::from_edges(3, [(0, 1)]), 4, 1)];
        assert!(estimate_multi_insertion(
            &bad,
            &feed,
            &mut arena,
            PassOpts::with_block(0),
            ExecPolicy::serial()
        )
        .is_none());
    }
}
