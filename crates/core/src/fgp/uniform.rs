//! `SampleSubgraphUniformly` (Algorithm 10): an exactly-uniform copy
//! sampler.
//!
//! Because every copy of `H` is returned by one sampler trial with the
//! *same* probability `1/(2m)^ρ(H)` (Lemma 15), the first successful
//! trial among many is a uniformly random copy. The paper prescribes
//! `q = 10·(2m)^ρ(H)/T` trials for success probability `≈ 1 - e^{-10}`
//! given `T ≤ #H`; all trials share the same 3 passes via
//! [`sgs_query::Parallel`].

use crate::fgp::assemble::FoundCopy;
use crate::fgp::plan::SamplerPlan;
use crate::fgp::sampler::{SamplerMode, SubgraphSampler};
use sgs_graph::Pattern;
use sgs_query::exec::{run_insertion, run_on_oracle, run_turnstile};
use sgs_query::{ExactOracle, ExecReport, Parallel};
use sgs_stream::hash::split_seed;
use sgs_stream::EdgeStream;

/// Result of a uniform-sampling run.
#[derive(Clone, Debug)]
pub struct UniformSample {
    /// The sampled copy — uniform over all copies of `H` — or `None`
    /// when every trial failed.
    pub copy: Option<FoundCopy>,
    /// Trials executed.
    pub trials: usize,
    /// Execution report (3 passes for streaming runs).
    pub report: ExecReport,
}

/// The paper's trial budget: `q = 10·(2m)^ρ(H)/T` with `T ≤ #H`.
pub fn uniform_trials(m: usize, pattern: &Pattern, count_lower_bound: f64) -> Option<usize> {
    let plan = SamplerPlan::new(pattern)?;
    let q = 10.0 * plan.rho().pow(2.0 * m as f64) / count_lower_bound.max(1.0);
    Some((q.ceil() as usize).max(1))
}

fn first_success(
    outcomes: Vec<crate::fgp::sampler::SamplerOutcome>,
    report: ExecReport,
) -> UniformSample {
    let trials = outcomes.len();
    // Trials are i.i.d., so taking the first success preserves
    // uniformity over copies.
    let copy = outcomes.into_iter().find_map(|o| o.copy);
    UniformSample {
        copy,
        trials,
        report,
    }
}

/// Sample a uniformly random copy of `H` from an insertion-only stream
/// in 3 passes. `None` if the pattern has an isolated vertex.
pub fn sample_uniform_insertion(
    pattern: &Pattern,
    stream: &impl EdgeStream,
    trials: usize,
    seed: u64,
) -> Option<UniformSample> {
    let plan = SamplerPlan::new(pattern)?;
    let par = Parallel::new(
        (0..trials)
            .map(|i| {
                SubgraphSampler::new(
                    plan.clone(),
                    SamplerMode::Indexed,
                    split_seed(seed, i as u64),
                )
            })
            .collect(),
    );
    let (outcomes, report) = run_insertion(par, stream, split_seed(seed, u64::MAX));
    Some(first_success(outcomes, report))
}

/// Sample a uniformly random copy from a turnstile stream.
pub fn sample_uniform_turnstile(
    pattern: &Pattern,
    stream: &impl EdgeStream,
    trials: usize,
    seed: u64,
) -> Option<UniformSample> {
    let plan = SamplerPlan::new(pattern)?;
    let par = Parallel::new(
        (0..trials)
            .map(|i| {
                SubgraphSampler::new(
                    plan.clone(),
                    SamplerMode::Relaxed,
                    split_seed(seed, i as u64),
                )
            })
            .collect(),
    );
    let (outcomes, report) = run_turnstile(par, stream, split_seed(seed, u64::MAX));
    Some(first_success(outcomes, report))
}

/// Sample via direct query access.
pub fn sample_uniform_oracle(
    pattern: &Pattern,
    g: &sgs_graph::AdjListGraph,
    trials: usize,
    seed: u64,
) -> Option<UniformSample> {
    let plan = SamplerPlan::new(pattern)?;
    let par = Parallel::new(
        (0..trials)
            .map(|i| {
                SubgraphSampler::new(
                    plan.clone(),
                    SamplerMode::Indexed,
                    split_seed(seed, i as u64),
                )
            })
            .collect(),
    );
    let mut oracle = ExactOracle::new(g, split_seed(seed, u64::MAX));
    let (outcomes, report) = run_on_oracle(par, &mut oracle);
    Some(first_success(outcomes, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{gen, StaticGraph};
    use sgs_stream::InsertionStream;
    use std::collections::HashMap;

    #[test]
    fn finds_a_copy_with_prescribed_budget() {
        let g = gen::gnm(25, 120, 1);
        let exact = sgs_graph::exact::triangles::count_triangles(&g);
        assert!(exact > 10);
        let trials = uniform_trials(120, &Pattern::triangle(), exact as f64).unwrap();
        let stream = InsertionStream::from_graph(&g, 2);
        let s = sample_uniform_insertion(&Pattern::triangle(), &stream, trials, 3).unwrap();
        assert!(s.copy.is_some(), "budget {trials} should almost surely hit");
        assert_eq!(s.report.passes, 3);
    }

    #[test]
    fn copies_are_roughly_uniform() {
        // Small graph with few triangles: check each copy is sampled at
        // a comparable rate.
        let g: sgs_graph::AdjListGraph = "0 1\n1 2\n2 0\n2 3\n3 4\n4 2\n4 5\n5 0\n0 4"
            .parse()
            .unwrap();
        let exact = sgs_graph::exact::triangles::count_triangles(&g);
        assert!(exact >= 3);
        let mut counts: HashMap<Vec<u32>, u32> = HashMap::new();
        let runs = 3000;
        for seed in 0..runs {
            let s = sample_uniform_oracle(&Pattern::triangle(), &g, 40, seed).unwrap();
            if let Some(c) = s.copy {
                let key: Vec<u32> = c.vertices.iter().map(|v| v.0).collect();
                *counts.entry(key).or_default() += 1;
            }
        }
        assert_eq!(counts.len() as u64, exact, "all copies eventually seen");
        let total: u32 = counts.values().sum();
        let expect = total as f64 / exact as f64;
        for (k, &c) in &counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.2, "copy {k:?} sampled {c} times vs {expect:.0}");
        }
    }

    #[test]
    fn returns_none_on_pattern_free_graph() {
        let g = gen::complete_bipartite(5, 5);
        let stream = InsertionStream::from_graph(&g, 4);
        let s = sample_uniform_insertion(&Pattern::triangle(), &stream, 500, 5).unwrap();
        assert!(s.copy.is_none());
    }

    #[test]
    fn turnstile_uniform_sampling_works() {
        use sgs_stream::TurnstileStream;
        let g = gen::gnm(20, 90, 6);
        assert!(sgs_graph::exact::triangles::count_triangles(&g) > 5);
        let stream = TurnstileStream::from_graph_with_churn(&g, 1.0, 7);
        let trials = uniform_trials(90, &Pattern::triangle(), 5.0).unwrap();
        let s =
            sample_uniform_turnstile(&Pattern::triangle(), &stream, trials.min(20_000), 8).unwrap();
        if let Some(c) = &s.copy {
            for e in &c.edges {
                assert!(g.has_edge(e.u(), e.v()));
            }
        }
    }

    #[test]
    fn budget_formula() {
        let t = uniform_trials(100, &Pattern::triangle(), 10.0).unwrap();
        // 10 * (200)^1.5 / 10 = 2828.
        assert!((2700..2900).contains(&t), "{t}");
        assert!(uniform_trials(100, &Pattern::from_edges(3, [(0, 1)]), 1.0).is_none());
    }
}
