//! The FGP subgraph sampler as a 3-round adaptive algorithm.
//!
//! This is Algorithm 9 (`SampleSubgraph`) organized into the three query
//! rounds of Lemma 16, so that Theorem 9 / Theorem 11 turn it into the
//! 3-pass streaming Algorithms 1 and 5:
//!
//! * **Round 1** — learn `m` and sample the piece edges: for every odd
//!   cycle of length `2k+1`, one auxiliary edge (the heavy-case wedge
//!   source) plus the `k` path edges; for every `k`-petal star, `k` edges.
//! * **Round 2** — for every cycle, sample the wedge closer: in
//!   [`SamplerMode::Indexed`] the `j`-th neighbor of the path's first
//!   vertex with `j = ⌊t·√(2m)⌋ + 1`, `t ~ U[0,1)` (each specific
//!   neighbor is hit with probability exactly `1/√(2m)` — the paper's
//!   `j ∈ [√2m]` idealization made exact); in [`SamplerMode::Relaxed`]
//!   (turnstile) a uniformly random neighbor, later thinned by the
//!   `t ≤ dg(u)` acceptance test of Algorithm 5.
//! * **Round 3** — query all pairwise adjacencies and all degrees on the
//!   sampled vertex set.
//!
//! Postprocessing (no queries) checks each piece is canonical
//! (Definitions 13/14), applies the light/heavy wedge case split, and runs
//! the assembly/acceptance step so that every copy of `H` is returned with
//! probability exactly `1/(2m)^ρ(H)`.

use crate::fgp::assemble::{compatible_copies, ConcretePiece, FoundCopy};
use crate::fgp::plan::SamplerPlan;
use sgs_graph::decompose::Piece;
use sgs_graph::order::precedes_with_degrees;
use sgs_graph::{canonical, VertexId};
use sgs_query::{Answer, Query, RoundAdaptive};
use sgs_stream::hash::FastRng;
use std::sync::Arc;

/// How the round-2 wedge query is issued (which streaming model the
/// sampler is destined for).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SamplerMode {
    /// `f3(v, i)` with self-sampled index — augmented general model /
    /// insertion-only streams (Algorithm 1).
    Indexed,
    /// Relaxed `f3(v)` — turnstile streams (Algorithm 5).
    Relaxed,
}

/// Result of one sampler run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SamplerOutcome {
    /// The edge count observed in round 1.
    pub m: usize,
    /// The sampled copy, if the trial succeeded.
    pub copy: Option<FoundCopy>,
}

/// Per-cycle-piece draw state.
#[derive(Clone, Debug)]
struct CycleDraw {
    piece_idx: usize,
    /// Oriented auxiliary edge (heavy-case candidate = first endpoint).
    aux: Option<(VertexId, VertexId)>,
    /// Oriented path edges `(u_i, v_i)`.
    path: Vec<(VertexId, VertexId)>,
    /// Round-2 wedge answer.
    w: Option<VertexId>,
}

/// Per-star-piece draw state.
#[derive(Clone, Debug)]
struct StarDraw {
    piece_idx: usize,
    /// Oriented sampled edges `(x_t, y_t)`.
    edges: Vec<(VertexId, VertexId)>,
}

/// The FGP sampler (one trial). Run many in [`sgs_query::Parallel`] to
/// estimate `#H` (Theorem 17 / Theorem 1).
pub struct SubgraphSampler {
    plan: Arc<SamplerPlan>,
    mode: SamplerMode,
    rng: FastRng,
    stage: u8,
    m: usize,
    sqrt2m: f64,
    cycles: Vec<CycleDraw>,
    stars: Vec<StarDraw>,
    verts: Vec<VertexId>,
    pairs: Vec<(VertexId, VertexId)>,
    outcome: SamplerOutcome,
    ft_correction: bool,
}

impl SubgraphSampler {
    /// New sampler over a shared plan.
    pub fn new(plan: Arc<SamplerPlan>, mode: SamplerMode, seed: u64) -> Self {
        SubgraphSampler {
            plan,
            mode,
            rng: FastRng::seed_from_u64(seed),
            stage: 0,
            m: 0,
            sqrt2m: 0.0,
            cycles: Vec::new(),
            stars: Vec::new(),
            verts: Vec::new(),
            pairs: Vec::new(),
            outcome: SamplerOutcome::default(),
            ft_correction: true,
        }
    }

    /// **Ablation only**: disable the `1/f_T(H)` acceptance coin of
    /// Algorithm 9 line 15. Without it the per-copy probability becomes
    /// `f_T(H)/(2m)^ρ(H)` and the estimator overcounts by exactly
    /// `f_T(H)` — the ablation experiment demonstrates why the
    /// correction exists. Never use for real estimates.
    pub fn ablation_disable_acceptance(mut self) -> Self {
        self.ft_correction = false;
        self
    }

    fn die(&mut self) -> Vec<Query> {
        self.stage = 99;
        Vec::new()
    }

    /// Round-1 batch: edge count plus all piece edges.
    fn round1(&mut self) -> Vec<Query> {
        let mut qs = vec![Query::EdgeCount];
        for p in self.plan.pieces() {
            match p {
                Piece::OddCycle(vs) => {
                    let k = (vs.len() - 1) / 2;
                    // aux + k path edges
                    for _ in 0..=k {
                        qs.push(Query::RandomEdge);
                    }
                }
                Piece::Star { petals, .. } => {
                    for _ in 0..petals.len() {
                        qs.push(Query::RandomEdge);
                    }
                }
            }
        }
        qs
    }

    /// Parse round-1 answers; returns false if the trial is dead.
    fn absorb_round1(&mut self, answers: &[Answer]) -> bool {
        self.m = answers[0].expect_edge_count();
        self.outcome.m = self.m;
        if self.m == 0 {
            return false;
        }
        self.sqrt2m = (2.0 * self.m as f64).sqrt();
        let mut cursor = 1usize;
        let orient = |rng: &mut FastRng, a: Answer| -> Option<(VertexId, VertexId)> {
            let e = a.expect_edge()?;
            // Uniformly random orientation: the algorithm's own coin.
            if rng.gen_bool(0.5) {
                Some((e.u(), e.v()))
            } else {
                Some((e.v(), e.u()))
            }
        };
        // Arc clone instead of cloning the piece list: `orient` needs
        // `&mut self.rng` while we iterate the plan, and this runs once
        // per trial (thousands of times per estimate).
        let plan = self.plan.clone();
        for (piece_idx, p) in plan.pieces().iter().enumerate() {
            match p {
                Piece::OddCycle(vs) => {
                    let k = (vs.len() - 1) / 2;
                    let aux = orient(&mut self.rng, answers[cursor]);
                    cursor += 1;
                    let mut path = Vec::with_capacity(k);
                    let mut ok = aux.is_some();
                    for _ in 0..k {
                        match orient(&mut self.rng, answers[cursor]) {
                            Some(e) => path.push(e),
                            None => ok = false,
                        }
                        cursor += 1;
                    }
                    if !ok {
                        return false;
                    }
                    self.cycles.push(CycleDraw {
                        piece_idx,
                        aux,
                        path,
                        w: None,
                    });
                }
                Piece::Star { petals, .. } => {
                    let mut edges = Vec::with_capacity(petals.len());
                    for _ in 0..petals.len() {
                        match orient(&mut self.rng, answers[cursor]) {
                            Some(e) => edges.push(e),
                            None => {
                                return false;
                            }
                        }
                        cursor += 1;
                    }
                    self.stars.push(StarDraw { piece_idx, edges });
                }
            }
        }
        true
    }

    /// Round-2 batch: one wedge query per cycle piece.
    fn round2(&mut self) -> Vec<Query> {
        let mut qs = Vec::with_capacity(self.cycles.len());
        for c in &self.cycles {
            let u1 = c.path[0].0;
            match self.mode {
                SamplerMode::Indexed => {
                    // j = floor(t * sqrt(2m)) + 1: each j <= dg hit with
                    // probability exactly 1/sqrt(2m).
                    let t = self.rng.gen_f64();
                    let j = (t * self.sqrt2m).floor() as u64 + 1;
                    qs.push(Query::IthNeighbor(u1, j));
                }
                SamplerMode::Relaxed => qs.push(Query::RandomNeighbor(u1)),
            }
        }
        qs
    }

    fn absorb_round2(&mut self, answers: &[Answer]) {
        for (c, a) in self.cycles.iter_mut().zip(answers) {
            c.w = a.expect_neighbor();
        }
    }

    /// Round-3 batch: all degrees and pairwise adjacencies on `V'`.
    fn round3(&mut self) -> Vec<Query> {
        // `V'` holds at most a handful of vertices (pattern-sized), so a
        // linear dedup over a flat vec beats any hashed set.
        let mut verts: Vec<VertexId> = Vec::new();
        let push = |v: VertexId, verts: &mut Vec<VertexId>| {
            if !verts.contains(&v) {
                verts.push(v);
            }
        };
        for c in &self.cycles {
            for &(a, b) in &c.path {
                push(a, &mut verts);
                push(b, &mut verts);
            }
            if let Some((a, _)) = c.aux {
                push(a, &mut verts);
            }
            if let Some(w) = c.w {
                push(w, &mut verts);
            }
        }
        for s in &self.stars {
            for &(a, b) in &s.edges {
                push(a, &mut verts);
                push(b, &mut verts);
            }
        }
        let n_pairs = verts.len() * verts.len().saturating_sub(1) / 2;
        let mut qs: Vec<Query> = Vec::with_capacity(verts.len() + n_pairs);
        qs.extend(verts.iter().map(|&v| Query::Degree(v)));
        let mut pairs = Vec::with_capacity(n_pairs);
        for i in 0..verts.len() {
            for j in (i + 1)..verts.len() {
                pairs.push((verts[i], verts[j]));
                qs.push(Query::Adjacent(verts[i], verts[j]));
            }
        }
        self.verts = verts;
        self.pairs = pairs;
        qs
    }

    /// Postprocessing: canonicality, light/heavy split, assembly,
    /// acceptance.
    fn postprocess(&mut self, answers: &[Answer]) {
        // `V'` is pattern-sized (a handful of vertices, tens of pairs),
        // so the scratch is flat sorted vecs: linear degree lookup and a
        // binary-searched adjacency list beat hashed containers at this
        // scale — this runs once per trial, thousands of times per
        // estimate.
        let nv = self.verts.len();
        let verts = &self.verts;
        let deg_of = |v: VertexId| -> Option<usize> {
            verts
                .iter()
                .position(|&x| x == v)
                .map(|i| answers[i].expect_degree())
        };
        let mut adj: Vec<u64> = Vec::with_capacity(self.pairs.len());
        for (k, &(a, b)) in self.pairs.iter().enumerate() {
            if answers[nv + k].expect_adjacent() {
                adj.push(sgs_graph::Edge::new(a, b).key());
            }
        }
        adj.sort_unstable();
        let has_edge = |a: VertexId, b: VertexId| -> bool {
            a != b && adj.binary_search(&sgs_graph::Edge::new(a, b).key()).is_ok()
        };
        let precedes = |a: VertexId, b: VertexId| -> bool {
            let da = deg_of(a).expect("round-3 vertex");
            let db = deg_of(b).expect("round-3 vertex");
            precedes_with_degrees(a, da, b, db)
        };

        // Cycles: light/heavy case split and canonical check.
        let mut concrete: Vec<(usize, ConcretePiece)> = Vec::new();
        for c in &self.cycles {
            let u1 = c.path[0].0;
            let du1 = deg_of(u1).expect("round-3 vertex") as f64;
            let mut seq: Vec<VertexId> = Vec::with_capacity(2 * c.path.len() + 1);
            for &(a, b) in &c.path {
                seq.push(a);
                seq.push(b);
            }
            if du1 <= self.sqrt2m {
                // Light case: the wedge answer closes the cycle.
                let Some(w) = c.w else { return };
                if self.mode == SamplerMode::Relaxed {
                    // Thin 1/dg(u1) down to exactly 1/sqrt(2m)
                    // (Algorithm 5, lines 21-22).
                    let t: f64 = self.rng.gen_f64() * self.sqrt2m;
                    if t > du1 {
                        return;
                    }
                }
                seq.push(w);
            } else {
                // Heavy case: the auxiliary edge's first endpoint is a
                // degree-proportional vertex sample; accept with
                // probability sqrt(2m)/dg (Algorithm 5, lines 26-27).
                let (u0, _) = c.aux.expect("aux edge present for live cycle");
                let Some(du0) = deg_of(u0) else { return };
                let t = self.rng.gen_f64();
                if t > (self.sqrt2m / du0 as f64).min(1.0) {
                    return;
                }
                seq.push(u0);
            }
            if !canonical::is_canonical_cycle(&seq, has_edge, precedes) {
                return;
            }
            concrete.push((c.piece_idx, ConcretePiece::Cycle(seq)));
        }

        // Stars: shared center and canonical petal order.
        for s in &self.stars {
            let x0 = s.edges[0].0;
            if !s.edges.iter().all(|&(x, _)| x == x0) {
                return;
            }
            let mut seq = vec![x0];
            seq.extend(s.edges.iter().map(|&(_, y)| y));
            if !canonical::is_canonical_star(&seq, has_edge, precedes) {
                return;
            }
            concrete.push((
                s.piece_idx,
                ConcretePiece::Star {
                    center: x0,
                    petals: s.edges.iter().map(|&(_, y)| y).collect(),
                },
            ));
        }

        // Restore plan piece order.
        concrete.sort_by_key(|&(idx, _)| idx);
        let pieces: Vec<ConcretePiece> = concrete.into_iter().map(|(_, p)| p).collect();

        let copies = compatible_copies(&self.plan.pattern, self.plan.pieces(), &pieces, &has_edge);
        if copies.is_empty() {
            return;
        }
        let f_t = self.plan.tuple_multiplicity() as f64;
        debug_assert!(
            copies.len() as f64 <= f_t,
            "|C(S)| = {} exceeds f_T = {}",
            copies.len(),
            f_t
        );
        // Accept with probability |C(S)|/f_T, then pick uniformly: each
        // compatible copy is returned with probability exactly 1/f_T.
        if !self.ft_correction {
            let idx = self.rng.gen_range(0..copies.len());
            self.outcome.copy = Some(copies[idx].clone());
            return;
        }
        let t = self.rng.gen_f64();
        if t < copies.len() as f64 / f_t {
            let idx = self.rng.gen_range(0..copies.len());
            self.outcome.copy = Some(copies[idx].clone());
        }
    }
}

impl RoundAdaptive for SubgraphSampler {
    type Output = SamplerOutcome;

    fn next_round(&mut self, answers: &[Answer]) -> Vec<Query> {
        match self.stage {
            0 => {
                self.stage = 1;
                self.round1()
            }
            1 => {
                if !self.absorb_round1(answers) {
                    return self.die();
                }
                if self.cycles.is_empty() {
                    // Star-only patterns skip the wedge round.
                    self.stage = 3;
                    self.round3()
                } else {
                    self.stage = 2;
                    self.round2()
                }
            }
            2 => {
                self.absorb_round2(answers);
                self.stage = 3;
                self.round3()
            }
            3 => {
                self.postprocess(answers);
                self.stage = 99;
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn output(&mut self) -> SamplerOutcome {
        std::mem::take(&mut self.outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{gen, Pattern, StaticGraph};
    use sgs_query::exec::{run_insertion, run_on_oracle, run_turnstile};
    use sgs_query::ExactOracle;
    use sgs_stream::{InsertionStream, TurnstileStream};

    fn hit_rate_oracle(pattern: &Pattern, g: &sgs_graph::AdjListGraph, trials: u64) -> f64 {
        let plan = SamplerPlan::new(pattern).unwrap();
        let mut hits = 0u64;
        for t in 0..trials {
            let mut oracle = ExactOracle::new(g, 7_000_000 + t);
            let s = SubgraphSampler::new(plan.clone(), SamplerMode::Indexed, t);
            let (out, _) = run_on_oracle(s, &mut oracle);
            if out.copy.is_some() {
                hits += 1;
            }
        }
        hits as f64 / trials as f64
    }

    /// Lemma 15 check: hit rate x (2m)^rho should equal #H.
    fn check_unbiased(pattern: &Pattern, g: &sgs_graph::AdjListGraph, trials: u64, tol: f64) {
        let exact = sgs_graph::exact::count_pattern_auto(g, pattern) as f64;
        assert!(exact > 0.0, "workload must contain the pattern");
        let plan = SamplerPlan::new(pattern).unwrap();
        let p = hit_rate_oracle(pattern, g, trials);
        let est = p * plan.rho().pow(2.0 * g.num_edges() as f64);
        let rel = (est - exact).abs() / exact;
        assert!(
            rel < tol,
            "{pattern:?}: estimate {est:.1} vs exact {exact}, rel err {rel:.3}"
        );
    }

    #[test]
    fn triangle_sampler_unbiased() {
        let g = gen::gnm(30, 140, 42);
        check_unbiased(&Pattern::triangle(), &g, 60_000, 0.15);
    }

    #[test]
    fn star_sampler_unbiased() {
        let g = gen::gnm(25, 70, 7);
        check_unbiased(&Pattern::star(2), &g, 60_000, 0.15);
    }

    #[test]
    fn k4_sampler_unbiased() {
        // Dense small graph so #K4 is large relative to (2m)^2.
        let g = gen::gnm(12, 50, 9);
        check_unbiased(&Pattern::clique(4), &g, 80_000, 0.2);
    }

    #[test]
    fn returned_copies_are_real() {
        let g = gen::gnm(25, 100, 3);
        let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
        let ins = InsertionStream::from_graph(&g, 5);
        let mut found = 0;
        for t in 0..4000u64 {
            let s = SubgraphSampler::new(plan.clone(), SamplerMode::Indexed, t);
            let (out, rep) = run_insertion(s, &ins, 1_000_000 + t);
            assert!(rep.passes <= 3, "triangle sampler must use <= 3 passes");
            if let Some(c) = out.copy {
                found += 1;
                assert_eq!(c.vertices.len(), 3);
                for e in &c.edges {
                    assert!(g.has_edge(e.u(), e.v()), "fake edge {e:?}");
                }
            }
        }
        assert!(found > 0);
    }

    #[test]
    fn star_only_pattern_uses_two_passes() {
        let g = gen::gnm(20, 60, 4);
        let plan = SamplerPlan::new(&Pattern::star(2)).unwrap();
        let ins = InsertionStream::from_graph(&g, 6);
        let s = SubgraphSampler::new(plan, SamplerMode::Indexed, 1);
        let (_, rep) = run_insertion(s, &ins, 2);
        assert_eq!(rep.passes, 2);
    }

    #[test]
    fn turnstile_sampler_finds_real_copies() {
        let g = gen::gnm(20, 80, 11);
        let exact = sgs_graph::exact::triangles::count_triangles(&g);
        assert!(exact > 0);
        let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
        let tst = TurnstileStream::from_graph_with_churn(&g, 1.0, 12);
        let mut found = 0;
        for t in 0..3000u64 {
            let s = SubgraphSampler::new(plan.clone(), SamplerMode::Relaxed, t);
            let (out, rep) = run_turnstile(s, &tst, 2_000_000 + t);
            assert!(rep.passes <= 3);
            if let Some(c) = out.copy {
                found += 1;
                for e in &c.edges {
                    assert!(g.has_edge(e.u(), e.v()), "sampled deleted edge");
                }
            }
        }
        assert!(found > 0, "turnstile sampler should find triangles");
    }

    #[test]
    fn m_is_reported() {
        let g = gen::gnm(15, 30, 1);
        let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
        let ins = InsertionStream::from_graph(&g, 2);
        let s = SubgraphSampler::new(plan, SamplerMode::Indexed, 3);
        let (out, _) = run_insertion(s, &ins, 4);
        assert_eq!(out.m, 30);
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let g = sgs_graph::AdjListGraph::new(5);
        let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
        let ins = InsertionStream::from_graph(&g, 1);
        let s = SubgraphSampler::new(plan, SamplerMode::Indexed, 2);
        let (out, _) = run_insertion(s, &ins, 3);
        assert!(out.copy.is_none());
        assert_eq!(out.m, 0);
    }
}
