//! Removing the known-`#H` assumption: geometric search and the gap
//! distinguisher.
//!
//! The paper parameterizes its algorithms by a promised lower bound
//! `L ≤ #H` and notes (§1.1) that one can instead (a) phrase the problem
//! as *distinguishing* `#H ≤ L` from `#H ≥ (1+ε)L`, or (b) run a
//! geometric search over `L` (as Lemma 21 does for the ERS counter).
//! Both are implemented here for the FGP estimator:
//!
//! * [`distinguish_insertion`] — one 3-pass run sized for gap `ε` at
//!   threshold `L`;
//! * [`search_count_insertion`] — start from the AGM-bound-backed guess
//!   `L₀ = (2m)^ρ(H)` (no graph has more copies, §1 [AGM08]) and halve
//!   until the estimate validates the guess. Each halving doubles the
//!   trial budget, so the total work is within 2× of the final round's,
//!   and each round costs 3 passes.

use crate::fgp::counter::{estimate_insertion, practical_trials, CountEstimate};
use crate::fgp::parallel_exec::estimate_insertion_on_feed;
use sgs_graph::Pattern;
use sgs_query::RouterArena;
use sgs_stream::hash::split_seed;
use sgs_stream::{EdgeStream, ShardedFeed};

/// Outcome of the gap distinguisher.
#[derive(Clone, Debug)]
pub struct GapDecision {
    /// `true` means "at least (1+ε)·L", `false` means "at most L".
    pub above: bool,
    /// The underlying estimate.
    pub estimate: CountEstimate,
}

/// Decide `#H ≤ L` vs `#H ≥ (1+ε)L` in 3 passes (correct with
/// probability controlled by the trial constant when the truth is
/// outside the gap).
pub fn distinguish_insertion(
    pattern: &Pattern,
    stream: &impl EdgeStream,
    threshold: f64,
    epsilon: f64,
    seed: u64,
) -> Option<GapDecision> {
    assert!(threshold >= 1.0 && epsilon > 0.0);
    let plan = crate::fgp::plan::SamplerPlan::new(pattern)?;
    // Size for the gap: need relative error < eps/2 at count ~ L.
    let m_guess = stream.len(); // upper bound on m (exact for insertion-only)
    let trials = practical_trials(m_guess, plan.rho(), epsilon / 2.0, threshold);
    let estimate = estimate_insertion(pattern, stream, trials, seed)?;
    let above = estimate.estimate >= (1.0 + epsilon / 2.0) * threshold;
    Some(GapDecision { above, estimate })
}

/// Outcome of the geometric search.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The final estimate of `#H`.
    pub estimate: f64,
    /// The lower-bound guess the search stopped at.
    pub accepted_lower_bound: f64,
    /// Search rounds executed (each costs 3 passes).
    pub rounds: usize,
    /// Total passes over the stream (3 per round).
    pub total_passes: usize,
    /// Total sampler trials across all rounds.
    pub total_trials: usize,
    /// Per-round estimates (diagnostics).
    pub trace: Vec<CountEstimate>,
}

/// Estimate `#H` with *no prior knowledge of a lower bound*, by geometric
/// search over `L` (cf. Lemma 21). `max_trials_per_round` caps the cost
/// of the final rounds (reached only when `#H` is tiny).
pub fn search_count_insertion(
    pattern: &Pattern,
    stream: &impl EdgeStream,
    epsilon: f64,
    seed: u64,
    max_trials_per_round: usize,
) -> Option<SearchResult> {
    assert!(epsilon > 0.0);
    let plan = crate::fgp::plan::SamplerPlan::new(pattern)?;
    let m = stream.len(); // insertion-only: stream length = m
    if m == 0 {
        return Some(SearchResult {
            estimate: 0.0,
            accepted_lower_bound: 0.0,
            rounds: 0,
            total_passes: 0,
            total_trials: 0,
            trace: Vec::new(),
        });
    }
    // AGM bound: #H <= m^rho(H); (2m)^rho is a comfortable ceiling.
    let mut guess = plan.rho().pow(2.0 * m as f64);
    let mut rounds = 0usize;
    let mut total_trials = 0usize;
    let mut trace = Vec::new();
    // Partition once and keep one arena across all search rounds: every
    // per-round estimate reuses the warmed routers instead of paying the
    // partition copy and the router build allocations again. Answers are
    // unchanged (the sharded path is byte-identical to estimate_insertion
    // at any shard count, including 1).
    let feed = ShardedFeed::partition(stream, 1);
    let mut arena = RouterArena::new();
    loop {
        rounds += 1;
        let trials = practical_trials(m, plan.rho(), epsilon, guess).min(max_trials_per_round);
        total_trials += trials;
        let est = estimate_insertion_on_feed(
            pattern,
            &feed,
            trials,
            split_seed(seed, rounds as u64),
            &mut arena,
        )?;
        let accept = est.estimate >= guess;
        trace.push(est.clone());
        if accept || guess < 1.0 || trials >= max_trials_per_round {
            return Some(SearchResult {
                estimate: est.estimate,
                accepted_lower_bound: guess,
                rounds,
                total_passes: rounds * est.report.passes,
                total_trials,
                trace,
            });
        }
        guess /= 2.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{exact, gen};
    use sgs_stream::InsertionStream;

    #[test]
    fn search_finds_count_without_prior() {
        let g = gen::gnm(40, 220, 1);
        let exact_t = exact::triangles::count_triangles(&g);
        assert!(exact_t > 50);
        let stream = InsertionStream::from_graph(&g, 2);
        let res = search_count_insertion(&Pattern::triangle(), &stream, 0.25, 3, 200_000).unwrap();
        let rel = (res.estimate - exact_t as f64).abs() / exact_t as f64;
        assert!(rel < 0.3, "estimate {} vs exact {exact_t}", res.estimate);
        assert!(res.rounds >= 2, "search should need several halvings");
        assert_eq!(res.total_passes, 3 * res.rounds);
    }

    #[test]
    fn search_on_empty_graph() {
        let g = sgs_graph::AdjListGraph::new(5);
        let stream = InsertionStream::from_graph(&g, 1);
        let res = search_count_insertion(&Pattern::triangle(), &stream, 0.3, 2, 1000).unwrap();
        assert_eq!(res.estimate, 0.0);
        assert_eq!(res.total_passes, 0);
    }

    #[test]
    fn search_total_work_dominated_by_last_round() {
        let g = gen::gnm(30, 150, 4);
        let stream = InsertionStream::from_graph(&g, 5);
        let res = search_count_insertion(&Pattern::triangle(), &stream, 0.3, 6, 300_000).unwrap();
        let last = res.trace.last().unwrap().trials;
        assert!(
            res.total_trials <= 3 * last,
            "geometric sum: total {} vs last {last}",
            res.total_trials
        );
    }

    #[test]
    fn distinguisher_separates_clear_cases() {
        let g = gen::gnm(40, 220, 7);
        let exact_t = exact::triangles::count_triangles(&g) as f64;
        assert!(exact_t > 50.0);
        let stream = InsertionStream::from_graph(&g, 8);
        // Threshold far below the truth: must say "above".
        let d =
            distinguish_insertion(&Pattern::triangle(), &stream, exact_t / 4.0, 0.5, 9).unwrap();
        assert!(d.above);
        // Threshold far above the truth: must say "below".
        let d =
            distinguish_insertion(&Pattern::triangle(), &stream, exact_t * 4.0, 0.5, 10).unwrap();
        assert!(!d.above);
    }

    #[test]
    fn distinguisher_on_pattern_free_graph() {
        let g = gen::complete_bipartite(6, 6);
        let stream = InsertionStream::from_graph(&g, 11);
        let d = distinguish_insertion(&Pattern::triangle(), &stream, 10.0, 0.5, 12).unwrap();
        assert!(!d.above);
        assert_eq!(d.estimate.hits, 0);
    }
}
