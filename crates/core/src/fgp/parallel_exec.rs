//! Multi-threaded estimator driver: sharded *streams*, not just sharded
//! trial banks.
//!
//! The pre-sharding version of this module split the `k` sampler trials
//! of Theorem 17 across threads, each replaying the whole stream — the
//! feed path stayed one hot loop per thread and the per-thread runs drew
//! different coins than a single-threaded run. Since the sharded-pipeline
//! refactor the split happens one layer down: **one** `Parallel` bank of
//! all `k` trials drives `run_insertion_sharded`/`run_turnstile_sharded`,
//! which hash-partition the *stream* across a [`ShardedFeed`], run one
//! private `QueryRouter` per shard (pooled in a [`RouterArena`]), and
//! merge per-shard answers back into the exact single-stream batch
//! answers.
//!
//! Because the merge is exact, the sharded estimate is **byte-identical**
//! to [`crate::fgp::counter::estimate_insertion`] /
//! [`crate::fgp::counter::estimate_turnstile`] with the same seed, for
//! any shard count — the logical pass count (3) and the estimate
//! distribution are unchanged by construction, not just in expectation.
//! Shard workers run on scoped threads (one per shard) when the host has
//! the cores; wall-clock time is the only thing that changes.

use crate::fgp::counter::{build_parallel, CountEstimate};
use crate::fgp::plan::SamplerPlan;
use crate::fgp::sampler::SamplerMode;
use sgs_graph::Pattern;
use sgs_query::exec::{PassOpts, DEFAULT_BLOCK};
use sgs_query::sharded::{run_insertion_sharded_with_exec, run_turnstile_sharded_with_exec};
use sgs_query::{ExecPolicy, RouterArena};
use sgs_stream::hash::split_seed;
use sgs_stream::{EdgeStream, ShardedFeed};

/// Estimate `#H` from an already-partitioned insertion-only feed,
/// reusing a caller-owned arena: the serving-loop entry point (partition
/// once, estimate many times, zero router allocations after warm-up).
pub fn estimate_insertion_on_feed(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
) -> Option<CountEstimate> {
    estimate_insertion_on_feed_with_block(pattern, feed, trials, seed, arena, DEFAULT_BLOCK)
}

/// [`estimate_insertion_on_feed`] with an explicit feed block size:
/// `block <= 1` replays every pass through the scalar per-update path,
/// larger values feed the routers in blocks of `block` updates (batched
/// index probes, ℓ₀ lane loops). The estimate is bit-identical for any
/// value — `sgs count --block N` threads the knob through here.
pub fn estimate_insertion_on_feed_with_block(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    block: usize,
) -> Option<CountEstimate> {
    estimate_insertion_on_feed_with_opts(
        pattern,
        feed,
        trials,
        seed,
        arena,
        PassOpts::with_block(block),
        SamplerMode::Indexed,
    )
}

/// [`estimate_insertion_on_feed`] with full feed-path options plus an
/// explicit sampler mode. `opts.reservoir` picks the relaxed-`f3`
/// reservoir acceptance scheme (skip-ahead default vs the per-offer
/// statistical oracle; `sgs count --reservoir {offer,skip}` threads the
/// knob through here), and `sampler` picks which Theorem-9 query mix the
/// trials ask: [`SamplerMode::Indexed`] uses arrival-order watchers
/// (reservoir-free), [`SamplerMode::Relaxed`] asks `RandomNeighbor` and
/// exercises the reservoir bank on every pass — the workload the
/// skip-ahead rework accelerates.
#[allow(clippy::too_many_arguments)]
pub fn estimate_insertion_on_feed_with_opts(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    sampler: SamplerMode,
) -> Option<CountEstimate> {
    estimate_insertion_on_feed_with_exec(
        pattern,
        feed,
        trials,
        seed,
        arena,
        opts,
        sampler,
        ExecPolicy::default(),
    )
}

/// [`estimate_insertion_on_feed_with_opts`] with an explicit execution
/// policy for the shard workers (serial / threaded / auto, core
/// pinning). The estimate is byte-identical for every policy — only
/// wall-clock scheduling changes.
#[allow(clippy::too_many_arguments)]
pub fn estimate_insertion_on_feed_with_exec(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    sampler: SamplerMode,
    policy: ExecPolicy,
) -> Option<CountEstimate> {
    let plan = SamplerPlan::new(pattern)?;
    let par = build_parallel(&plan, sampler, trials, seed);
    let (outcomes, report) =
        run_insertion_sharded_with_exec(par, feed, split_seed(seed, u64::MAX), arena, opts, policy);
    Some(CountEstimate::from_outcomes(outcomes, plan.rho(), report))
}

/// Turnstile sibling of [`estimate_insertion_on_feed`].
pub fn estimate_turnstile_on_feed(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
) -> Option<CountEstimate> {
    estimate_turnstile_on_feed_with_block(pattern, feed, trials, seed, arena, DEFAULT_BLOCK)
}

/// Turnstile sibling of [`estimate_insertion_on_feed_with_block`].
pub fn estimate_turnstile_on_feed_with_block(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    block: usize,
) -> Option<CountEstimate> {
    estimate_turnstile_on_feed_with_opts(
        pattern,
        feed,
        trials,
        seed,
        arena,
        PassOpts::with_block(block),
    )
}

/// Turnstile sibling of [`estimate_insertion_on_feed_with_opts`]:
/// `opts.l0` selects the ℓ₀-bank feed path (survivor-level dispatch by
/// default, predicated full-bank scan as the statistical oracle);
/// `opts.reservoir` is ignored — turnstile `f3` runs on ℓ₀-samplers.
/// The estimate is bit-identical for every option combination.
pub fn estimate_turnstile_on_feed_with_opts(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
) -> Option<CountEstimate> {
    estimate_turnstile_on_feed_with_exec(
        pattern,
        feed,
        trials,
        seed,
        arena,
        opts,
        ExecPolicy::default(),
    )
}

/// Turnstile sibling of [`estimate_insertion_on_feed_with_exec`].
pub fn estimate_turnstile_on_feed_with_exec(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    policy: ExecPolicy,
) -> Option<CountEstimate> {
    let plan = SamplerPlan::new(pattern)?;
    let par = build_parallel(&plan, SamplerMode::Relaxed, trials, seed);
    let (outcomes, report) =
        run_turnstile_sharded_with_exec(par, feed, split_seed(seed, u64::MAX), arena, opts, policy);
    Some(CountEstimate::from_outcomes(outcomes, plan.rho(), report))
}

/// Estimate `#H` from an insertion-only stream sharded `threads` ways:
/// the stream is hash-partitioned, one worker drives each shard, and the
/// merged answers reproduce the single-stream run coin for coin.
pub fn estimate_insertion_threaded<S: EdgeStream + Sync>(
    pattern: &Pattern,
    stream: &S,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Option<CountEstimate> {
    estimate_insertion_threaded_with_block(pattern, stream, trials, threads, seed, DEFAULT_BLOCK)
}

/// [`estimate_insertion_threaded`] with an explicit feed block size —
/// the one-shot partition/estimate entry `sgs count --shards N --block B`
/// routes through.
pub fn estimate_insertion_threaded_with_block<S: EdgeStream + Sync>(
    pattern: &Pattern,
    stream: &S,
    trials: usize,
    threads: usize,
    seed: u64,
    block: usize,
) -> Option<CountEstimate> {
    estimate_insertion_threaded_with_opts(
        pattern,
        stream,
        trials,
        threads,
        seed,
        PassOpts::with_block(block),
        SamplerMode::Indexed,
    )
}

/// [`estimate_insertion_threaded`] with full feed-path options and an
/// explicit sampler mode — the one-shot entry
/// `sgs count --shards N --block B --reservoir M [--relaxed]` routes
/// through; see [`estimate_insertion_on_feed_with_opts`].
pub fn estimate_insertion_threaded_with_opts<S: EdgeStream + Sync>(
    pattern: &Pattern,
    stream: &S,
    trials: usize,
    threads: usize,
    seed: u64,
    opts: PassOpts,
    sampler: SamplerMode,
) -> Option<CountEstimate> {
    estimate_insertion_threaded_with_exec(
        pattern,
        stream,
        trials,
        threads,
        seed,
        opts,
        sampler,
        ExecPolicy::default(),
    )
}

/// [`estimate_insertion_threaded_with_opts`] with an explicit execution
/// policy — `sgs count` threads `SGS_SHARD_THREADS` / `--pin` through
/// here.
#[allow(clippy::too_many_arguments)]
pub fn estimate_insertion_threaded_with_exec<S: EdgeStream + Sync>(
    pattern: &Pattern,
    stream: &S,
    trials: usize,
    threads: usize,
    seed: u64,
    opts: PassOpts,
    sampler: SamplerMode,
    policy: ExecPolicy,
) -> Option<CountEstimate> {
    assert!(threads >= 1);
    let feed = ShardedFeed::partition(stream, threads);
    let mut arena = RouterArena::new();
    estimate_insertion_on_feed_with_exec(
        pattern, &feed, trials, seed, &mut arena, opts, sampler, policy,
    )
}

/// Turnstile sibling of [`estimate_insertion_threaded`]: sharded
/// turnstile estimation with per-shard ℓ₀-banks merged exactly
/// (Theorem 1's 3-pass structure, fanned out over `threads` shards).
pub fn estimate_turnstile_threaded<S: EdgeStream + Sync>(
    pattern: &Pattern,
    stream: &S,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Option<CountEstimate> {
    estimate_turnstile_threaded_with_block(pattern, stream, trials, threads, seed, DEFAULT_BLOCK)
}

/// Turnstile sibling of [`estimate_insertion_threaded_with_block`].
pub fn estimate_turnstile_threaded_with_block<S: EdgeStream + Sync>(
    pattern: &Pattern,
    stream: &S,
    trials: usize,
    threads: usize,
    seed: u64,
    block: usize,
) -> Option<CountEstimate> {
    estimate_turnstile_threaded_with_opts(
        pattern,
        stream,
        trials,
        threads,
        seed,
        PassOpts::with_block(block),
    )
}

/// Turnstile sibling of [`estimate_insertion_threaded_with_opts`]; see
/// [`estimate_turnstile_on_feed_with_opts`] for what `opts` selects.
pub fn estimate_turnstile_threaded_with_opts<S: EdgeStream + Sync>(
    pattern: &Pattern,
    stream: &S,
    trials: usize,
    threads: usize,
    seed: u64,
    opts: PassOpts,
) -> Option<CountEstimate> {
    estimate_turnstile_threaded_with_exec(
        pattern,
        stream,
        trials,
        threads,
        seed,
        opts,
        ExecPolicy::default(),
    )
}

/// Turnstile sibling of [`estimate_insertion_threaded_with_exec`].
pub fn estimate_turnstile_threaded_with_exec<S: EdgeStream + Sync>(
    pattern: &Pattern,
    stream: &S,
    trials: usize,
    threads: usize,
    seed: u64,
    opts: PassOpts,
    policy: ExecPolicy,
) -> Option<CountEstimate> {
    assert!(threads >= 1);
    let feed = ShardedFeed::partition(stream, threads);
    let mut arena = RouterArena::new();
    estimate_turnstile_on_feed_with_exec(pattern, &feed, trials, seed, &mut arena, opts, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgp::counter::{estimate_insertion, estimate_turnstile};
    use sgs_graph::{exact, gen};
    use sgs_stream::{InsertionStream, TurnstileStream};

    #[test]
    fn threaded_is_byte_identical_to_single_stream() {
        // Stronger than the old statistical check: sharding the stream
        // merges back to the exact single-stream answers, so the whole
        // estimate must match bit for bit at every shard count.
        let g = gen::gnm(40, 220, 1);
        let stream = InsertionStream::from_graph(&g, 2);
        let single = estimate_insertion(&Pattern::triangle(), &stream, 4_000, 4).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let multi =
                estimate_insertion_threaded(&Pattern::triangle(), &stream, 4_000, threads, 4)
                    .unwrap();
            assert_eq!(multi.hits, single.hits, "{threads} shards");
            assert_eq!(multi.estimate, single.estimate, "{threads} shards");
            assert_eq!(multi.m, single.m);
            assert_eq!(multi.trials, 4_000);
            assert_eq!(multi.report.passes, 3, "logical passes, not per-shard");
        }
    }

    #[test]
    fn turnstile_threaded_is_byte_identical_to_single_stream() {
        let g = gen::gnm(24, 100, 31);
        let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 32);
        let single = estimate_turnstile(&Pattern::triangle(), &tst, 800, 33).unwrap();
        for threads in [1usize, 2, 4] {
            let multi =
                estimate_turnstile_threaded(&Pattern::triangle(), &tst, 800, threads, 33).unwrap();
            assert_eq!(multi.hits, single.hits, "{threads} shards");
            assert_eq!(multi.estimate, single.estimate, "{threads} shards");
            assert!(multi.report.passes <= 3);
        }
    }

    #[test]
    fn threaded_matches_single_threaded_statistically() {
        let g = gen::gnm(40, 220, 1);
        let exact_t = exact::triangles::count_triangles(&g);
        let stream = InsertionStream::from_graph(&g, 2);
        let multi =
            estimate_insertion_threaded(&Pattern::triangle(), &stream, 24_000, 4, 4).unwrap();
        assert_eq!(multi.trials, 24_000);
        assert_eq!(multi.report.passes, 3);
        let err = multi.relative_error(exact_t);
        assert!(err < 0.25, "error {err:.3}");
    }

    #[test]
    fn one_thread_is_fine() {
        let g = gen::gnm(20, 80, 4);
        let stream = InsertionStream::from_graph(&g, 5);
        let est = estimate_insertion_threaded(&Pattern::triangle(), &stream, 2_000, 1, 6).unwrap();
        assert_eq!(est.trials, 2_000);
    }

    #[test]
    fn more_threads_than_trials() {
        let g = gen::gnm(20, 80, 7);
        let stream = InsertionStream::from_graph(&g, 8);
        let est = estimate_insertion_threaded(&Pattern::triangle(), &stream, 3, 8, 9).unwrap();
        assert_eq!(est.trials, 3);
    }

    #[test]
    fn feed_and_arena_reuse_across_estimates() {
        // The serving-loop shape: partition once, estimate repeatedly on
        // a warm arena; results stay identical run over run and the
        // arena stops allocating after the first.
        let g = gen::gnm(30, 140, 11);
        let stream = InsertionStream::from_graph(&g, 12);
        let feed = ShardedFeed::partition(&stream, 4);
        let mut arena = RouterArena::new();
        let first =
            estimate_insertion_on_feed(&Pattern::triangle(), &feed, 2_000, 13, &mut arena).unwrap();
        assert!(arena.is_warm());
        for _ in 0..2 {
            let again =
                estimate_insertion_on_feed(&Pattern::triangle(), &feed, 2_000, 13, &mut arena)
                    .unwrap();
            assert_eq!(again.hits, first.hits);
            assert_eq!(again.estimate, first.estimate);
        }
        assert_eq!(
            arena.growth_events_after_warmup(),
            0,
            "warm arena must not allocate per round"
        );
        assert_eq!(feed.logical_passes(), 9, "3 estimates × 3 logical passes");
    }
}
