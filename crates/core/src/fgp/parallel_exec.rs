//! Multi-threaded estimator driver.
//!
//! The `k` sampler trials of Theorem 17 are mutually independent, so they
//! shard perfectly across OS threads: each thread drives its own
//! `Parallel` bank of samplers over the same replayable stream and the
//! hit counts add up. The *logical* pass count is unchanged (every thread
//! reads the same 3 passes; a deployment would fan the feed out to
//! shards), and the estimate distribution is identical to the
//! single-threaded run with the same total trial count — only wall-clock
//! time changes.

use crate::fgp::counter::CountEstimate;
use crate::fgp::plan::SamplerPlan;
use crate::fgp::sampler::{SamplerMode, SubgraphSampler};
use sgs_graph::Pattern;
use sgs_query::exec::run_insertion;
use sgs_query::{ExecReport, Parallel};
use sgs_stream::hash::split_seed;
use sgs_stream::EdgeStream;

/// Estimate `#H` from an insertion-only stream using `threads` worker
/// threads sharing `trials` total sampler copies.
pub fn estimate_insertion_threaded<S: EdgeStream + Sync>(
    pattern: &Pattern,
    stream: &S,
    trials: usize,
    threads: usize,
    seed: u64,
) -> Option<CountEstimate> {
    assert!(threads >= 1);
    let plan = SamplerPlan::new(pattern)?;
    let chunk = trials.div_ceil(threads);
    let results: Vec<(u64, usize, usize, ExecReport)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tid in 0..threads {
            let plan = plan.clone();
            let lo = tid * chunk;
            let hi = ((tid + 1) * chunk).min(trials);
            if lo >= hi {
                continue;
            }
            handles.push(scope.spawn(move || {
                let par = Parallel::new(
                    (lo..hi)
                        .map(|i| {
                            SubgraphSampler::new(
                                plan.clone(),
                                SamplerMode::Indexed,
                                split_seed(seed, i as u64),
                            )
                        })
                        .collect(),
                );
                let (outcomes, report) =
                    run_insertion(par, stream, split_seed(seed ^ 0xabcd, tid as u64));
                let hits = outcomes.iter().filter(|o| o.copy.is_some()).count() as u64;
                let m = outcomes.iter().map(|o| o.m).max().unwrap_or(0);
                (hits, hi - lo, m, report)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let hits: u64 = results.iter().map(|r| r.0).sum();
    let total: usize = results.iter().map(|r| r.1).sum();
    let m = results.iter().map(|r| r.2).max().unwrap_or(0);
    // Passes are logical (every shard reads the same 3 passes); space and
    // queries add across shards.
    let report = results
        .iter()
        .map(|r| r.3)
        .fold(ExecReport::default(), |acc, r| acc.merged_with(&r));
    let estimate = if total == 0 {
        0.0
    } else {
        plan.rho().pow(2.0 * m as f64) * hits as f64 / total as f64
    };
    Some(CountEstimate {
        estimate,
        hits,
        trials: total,
        m,
        rho: plan.rho(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgp::counter::estimate_insertion;
    use sgs_graph::{exact, gen};
    use sgs_stream::InsertionStream;

    #[test]
    fn threaded_matches_single_threaded_statistically() {
        let g = gen::gnm(40, 220, 1);
        let exact_t = exact::triangles::count_triangles(&g);
        let stream = InsertionStream::from_graph(&g, 2);
        let single = estimate_insertion(&Pattern::triangle(), &stream, 24_000, 3).unwrap();
        let multi =
            estimate_insertion_threaded(&Pattern::triangle(), &stream, 24_000, 4, 4).unwrap();
        assert_eq!(multi.trials, 24_000);
        assert_eq!(multi.report.passes, 3);
        let a = single.relative_error(exact_t);
        let b = multi.relative_error(exact_t);
        assert!(a < 0.25 && b < 0.25, "errors {a:.3} / {b:.3}");
    }

    #[test]
    fn one_thread_is_fine() {
        let g = gen::gnm(20, 80, 4);
        let stream = InsertionStream::from_graph(&g, 5);
        let est = estimate_insertion_threaded(&Pattern::triangle(), &stream, 2_000, 1, 6).unwrap();
        assert_eq!(est.trials, 2_000);
    }

    #[test]
    fn more_threads_than_trials() {
        let g = gen::gnm(20, 80, 7);
        let stream = InsertionStream::from_graph(&g, 8);
        let est = estimate_insertion_threaded(&Pattern::triangle(), &stream, 3, 8, 9).unwrap();
        assert_eq!(est.trials, 3);
    }
}
