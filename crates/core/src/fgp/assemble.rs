//! Assembling sampled pieces into copies of `H`.
//!
//! After the FGP sampler has drawn canonical pieces (cycles/stars on
//! concrete vertices of `G`) and collected the induced subgraph on the
//! sampled vertex set, the final step of Algorithm 9 decides whether the
//! pieces "form a copy of H" and, if so, returns the copy with probability
//! `1/f_T(H)` so that every copy of `H` in `G` is output with probability
//! exactly `1/(2m)^ρ(H)` (Lemma 15).
//!
//! Concretely, a sampled piece tuple `S` is *compatible* with a copy `H₀`
//! iff some isomorphism `H → H₀` maps the plan's `i`-th decomposition
//! piece onto the `i`-th sampled piece (as subgraphs — the two
//! orientations of a single-edge star are interchangeable). This module
//! enumerates all compatible copies by composing piece-level alignments
//! (dihedral maps for cycles, petal permutations for stars) and checking
//! the remaining pattern edges against the collected adjacency
//! information. The caller then accepts with probability `|C(S)|/f_T(H)`
//! and picks a compatible copy uniformly — each copy is thus selected with
//! probability exactly `1/f_T(H)` per compatible tuple.

use sgs_graph::decompose::Piece;
use sgs_graph::{Edge, Pattern, VertexId};
use std::collections::HashSet;

/// A sampled piece on concrete vertices of `G`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConcretePiece {
    /// Cycle as its sampled cyclic vertex sequence.
    Cycle(Vec<VertexId>),
    /// Star with sampled center and petals.
    Star {
        /// The center vertex.
        center: VertexId,
        /// The petal vertices.
        petals: Vec<VertexId>,
    },
}

impl ConcretePiece {
    /// All vertices of the piece.
    pub fn vertices(&self) -> Vec<VertexId> {
        match self {
            ConcretePiece::Cycle(vs) => vs.clone(),
            ConcretePiece::Star { center, petals } => {
                let mut v = vec![*center];
                v.extend_from_slice(petals);
                v
            }
        }
    }
}

/// A returned copy of `H` in `G`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FoundCopy {
    /// The copy's vertices, sorted.
    pub vertices: Vec<VertexId>,
    /// The copy's edges, sorted (the image of `E(H)`).
    pub edges: Vec<Edge>,
}

/// Enumerate the distinct copies of `H` compatible with the sampled
/// pieces, given adjacency over the sampled vertex set.
pub fn compatible_copies(
    pattern: &Pattern,
    plan_pieces: &[Piece],
    concrete: &[ConcretePiece],
    has_edge: &dyn Fn(VertexId, VertexId) -> bool,
) -> Vec<FoundCopy> {
    debug_assert_eq!(plan_pieces.len(), concrete.len());
    let n = pattern.num_vertices();
    // Vertex-disjointness across pieces is a precondition for any
    // compatible copy (pieces partition V(H)).
    let mut all: Vec<VertexId> = Vec::with_capacity(n);
    for c in concrete {
        all.extend(c.vertices());
    }
    if all.len() != n {
        return Vec::new();
    }
    {
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != n {
            return Vec::new();
        }
    }

    // Per-piece alignment candidates: maps pattern-vertex -> G-vertex.
    let per_piece: Vec<Vec<Vec<(u8, VertexId)>>> = plan_pieces
        .iter()
        .zip(concrete)
        .map(|(pp, cp)| piece_alignments(pp, cp))
        .collect();
    if per_piece.iter().any(|a| a.is_empty()) {
        return Vec::new();
    }

    let mut copies: HashSet<Vec<Edge>> = HashSet::new();
    let mut phi: Vec<Option<VertexId>> = vec![None; n];
    compose(pattern, &per_piece, 0, &mut phi, has_edge, &mut copies);

    let mut out: Vec<FoundCopy> = copies
        .into_iter()
        .map(|edges| {
            let mut vertices: Vec<VertexId> = edges.iter().flat_map(|e| [e.u(), e.v()]).collect();
            vertices.sort_unstable();
            vertices.dedup();
            FoundCopy { vertices, edges }
        })
        .collect();
    out.sort_by(|a, b| a.edges.cmp(&b.edges));
    out
}

/// All ways to map one pattern piece onto one concrete piece.
fn piece_alignments(pp: &Piece, cp: &ConcretePiece) -> Vec<Vec<(u8, VertexId)>> {
    let mut out = Vec::new();
    match (pp, cp) {
        (Piece::OddCycle(pv), ConcretePiece::Cycle(cv)) => {
            if pv.len() != cv.len() {
                return out;
            }
            let c = pv.len();
            for shift in 0..c {
                for dir in [1isize, -1] {
                    let mapping: Vec<(u8, VertexId)> = (0..c)
                        .map(|i| {
                            let j = (shift as isize + dir * i as isize).rem_euclid(c as isize);
                            (pv[i], cv[j as usize])
                        })
                        .collect();
                    out.push(mapping);
                }
            }
        }
        (
            Piece::Star {
                center: pc,
                petals: pp,
            },
            ConcretePiece::Star {
                center: cc,
                petals: cp,
            },
        ) => {
            if pp.len() != cp.len() {
                return out;
            }
            if pp.len() == 1 {
                // S_1: center ambiguous — both orientations compatible.
                out.push(vec![(*pc, *cc), (pp[0], cp[0])]);
                out.push(vec![(*pc, cp[0]), (pp[0], *cc)]);
            } else {
                // Center forced; petals permute.
                for perm in permutations(cp.len()) {
                    let mut mapping = vec![(*pc, *cc)];
                    for (i, &j) in perm.iter().enumerate() {
                        mapping.push((pp[i], cp[j]));
                    }
                    out.push(mapping);
                }
            }
        }
        _ => {}
    }
    out
}

fn permutations(k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = Vec::with_capacity(k);
    let mut used = vec![false; k];
    fn rec(k: usize, cur: &mut Vec<usize>, used: &mut [bool], out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for j in 0..k {
            if !used[j] {
                used[j] = true;
                cur.push(j);
                rec(k, cur, used, out);
                cur.pop();
                used[j] = false;
            }
        }
    }
    rec(k, &mut cur, &mut used, &mut out);
    out
}

fn compose(
    pattern: &Pattern,
    per_piece: &[Vec<Vec<(u8, VertexId)>>],
    idx: usize,
    phi: &mut Vec<Option<VertexId>>,
    has_edge: &dyn Fn(VertexId, VertexId) -> bool,
    copies: &mut HashSet<Vec<Edge>>,
) {
    if idx == per_piece.len() {
        // phi is total; verify every pattern edge.
        let mut edges: Vec<Edge> = Vec::with_capacity(pattern.num_edges());
        for &(a, b) in pattern.edges() {
            let (ga, gb) = (phi[a as usize].unwrap(), phi[b as usize].unwrap());
            if !has_edge(ga, gb) {
                return;
            }
            edges.push(Edge::new(ga, gb));
        }
        edges.sort_unstable();
        copies.insert(edges);
        return;
    }
    for alignment in &per_piece[idx] {
        for &(pv, gv) in alignment {
            phi[pv as usize] = Some(gv);
        }
        compose(pattern, per_piece, idx + 1, phi, has_edge, copies);
        for &(pv, _) in alignment {
            phi[pv as usize] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::decompose::decompose;
    use sgs_graph::{gen, AdjListGraph, StaticGraph};

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn triangle_assembly() {
        let p = Pattern::triangle();
        let d = decompose(&p).unwrap();
        let g = gen::complete_graph(3);
        let concrete = vec![ConcretePiece::Cycle(vec![v(0), v(1), v(2)])];
        let copies = compatible_copies(&p, &d.pieces, &concrete, &|a, b| g.has_edge(a, b));
        assert_eq!(copies.len(), 1);
        assert_eq!(copies[0].vertices, vec![v(0), v(1), v(2)]);
        assert_eq!(copies[0].edges.len(), 3);
    }

    #[test]
    fn k4_from_two_disjoint_edges() {
        let p = Pattern::clique(4);
        let d = decompose(&p).unwrap();
        let g = gen::complete_graph(4);
        let concrete = vec![
            ConcretePiece::Star {
                center: v(0),
                petals: vec![v(1)],
            },
            ConcretePiece::Star {
                center: v(2),
                petals: vec![v(3)],
            },
        ];
        let copies = compatible_copies(&p, &d.pieces, &concrete, &|a, b| g.has_edge(a, b));
        // Only one K4 on these four vertices.
        assert_eq!(copies.len(), 1);
        assert_eq!(copies[0].edges.len(), 6);
    }

    #[test]
    fn c4_can_match_multiple_copies() {
        // In K4, two disjoint edges sit inside two different C4 copies.
        let p = Pattern::cycle(4);
        let d = decompose(&p).unwrap();
        assert_eq!(d.pieces.len(), 2); // two S_1
        let g = gen::complete_graph(4);
        let concrete = vec![
            ConcretePiece::Star {
                center: v(0),
                petals: vec![v(1)],
            },
            ConcretePiece::Star {
                center: v(2),
                petals: vec![v(3)],
            },
        ];
        let copies = compatible_copies(&p, &d.pieces, &concrete, &|a, b| g.has_edge(a, b));
        assert_eq!(copies.len(), 2);
        // |C(S)| must never exceed f_T (acceptance probability <= 1).
        assert!(copies.len() as u64 <= d.tuple_multiplicity);
    }

    #[test]
    fn missing_edge_blocks_assembly() {
        let p = Pattern::clique(4);
        let d = decompose(&p).unwrap();
        // K4 minus one edge.
        let g = AdjListGraph::from_pairs(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
        let concrete = vec![
            ConcretePiece::Star {
                center: v(0),
                petals: vec![v(1)],
            },
            ConcretePiece::Star {
                center: v(2),
                petals: vec![v(3)],
            },
        ];
        let copies = compatible_copies(&p, &d.pieces, &concrete, &|a, b| g.has_edge(a, b));
        assert!(copies.is_empty());
    }

    #[test]
    fn overlapping_pieces_rejected() {
        let p = Pattern::clique(4);
        let d = decompose(&p).unwrap();
        let g = gen::complete_graph(4);
        let concrete = vec![
            ConcretePiece::Star {
                center: v(0),
                petals: vec![v(1)],
            },
            ConcretePiece::Star {
                center: v(1),
                petals: vec![v(2)],
            },
        ];
        let copies = compatible_copies(&p, &d.pieces, &concrete, &|a, b| g.has_edge(a, b));
        assert!(copies.is_empty());
    }

    #[test]
    fn star_assembly_respects_center() {
        let p = Pattern::star(2);
        let d = decompose(&p).unwrap();
        let g: AdjListGraph = "0 1\n0 2".parse().unwrap();
        let concrete = vec![ConcretePiece::Star {
            center: v(0),
            petals: vec![v(1), v(2)],
        }];
        let copies = compatible_copies(&p, &d.pieces, &concrete, &|a, b| g.has_edge(a, b));
        assert_eq!(copies.len(), 1);
        // Swapped center would need edge (1,2), absent.
        let wrong = vec![ConcretePiece::Star {
            center: v(1),
            petals: vec![v(0), v(2)],
        }];
        let copies = compatible_copies(&p, &d.pieces, &wrong, &|a, b| g.has_edge(a, b));
        assert!(copies.is_empty());
    }

    #[test]
    fn cycle_size_mismatch_rejected() {
        let p = Pattern::cycle(5);
        let d = decompose(&p).unwrap();
        let g = gen::complete_graph(5);
        let concrete = vec![ConcretePiece::Cycle(vec![v(0), v(1), v(2)])];
        let copies = compatible_copies(&p, &d.pieces, &concrete, &|a, b| g.has_edge(a, b));
        assert!(copies.is_empty());
    }

    #[test]
    fn compatible_count_bounded_by_multiplicity_random() {
        // Invariant check on random graphs: |C(S)| <= f_T(H) for every
        // sampled-piece configuration we can build from actual copies.
        let g = gen::gnm(12, 40, 3);
        for p in [Pattern::clique(4), Pattern::cycle(4), Pattern::path(3)] {
            let d = decompose(&p).unwrap();
            // Construct concrete pieces by embedding the pattern randomly:
            // use vertices 0..n(H) if they form the needed edges; else skip.
            let concrete: Vec<ConcretePiece> = d
                .pieces
                .iter()
                .map(|pc| match pc {
                    Piece::OddCycle(vs) => {
                        ConcretePiece::Cycle(vs.iter().map(|&x| v(x as u32)).collect())
                    }
                    Piece::Star { center, petals } => ConcretePiece::Star {
                        center: v(*center as u32),
                        petals: petals.iter().map(|&x| v(x as u32)).collect(),
                    },
                })
                .collect();
            let copies = compatible_copies(&p, &d.pieces, &concrete, &|a, b| g.has_edge(a, b));
            assert!(
                copies.len() as u64 <= d.tuple_multiplicity,
                "{p:?}: {} > {}",
                copies.len(),
                d.tuple_multiplicity
            );
        }
    }
}
