//! Broadcast estimator bundles: estimator + baseline + exact oracle +
//! raw counters from **one** ingest.
//!
//! `estimate_*_threaded` shards the stream but still dedicates every
//! logical pass to the FGP estimator; any baseline or ground-truth
//! consumer had to replay the stream privately on top. The broadcast
//! entry points here attach those consumers to the **first pass's
//! broadcast ring** instead:
//!
//! * the FGP trial bank (the paper's 3-round estimator) drives the
//!   per-shard routers exactly as before — its estimate is
//!   **byte-identical** to [`super::parallel_exec::estimate_insertion_on_feed_with_opts`]
//!   / the single-stream executors with the same seed;
//! * the TRIÈST baseline ([`TriestStream`], insertion-only) consumes the
//!   same ring, byte-identical to [`crate::baselines::triest::estimate_triest`]
//!   on a private replay with seed [`triest_seed`]`(seed)`;
//! * the exact oracle materializes the final graph from the ring and
//!   counts `#H` through a [`CsrGraph`] — identical to
//!   [`crate::baselines::exact_stream::count_exact`];
//! * raw pass counters tally updates (`--consumers N` on the CLI adds
//!   more, to demonstrate that fan-out width costs no extra passes).
//!
//! Total pass bill: the estimator's 3 logical passes — not 3 + 1 per
//! extra consumer. That is the serving-path claim this module exists to
//! make concrete, and `tests/broadcast_equivalence.rs` holds every
//! consumer to its single-stream answers.

use crate::baselines::triest::{TriestEstimate, TriestStream};
use crate::fgp::counter::{build_parallel, CountEstimate};
use crate::fgp::plan::SamplerPlan;
use crate::fgp::sampler::SamplerMode;
use sgs_graph::{exact, AdjListGraph, CsrGraph, Pattern};
use sgs_query::broadcast::{
    run_insertion_broadcast_with_opts, run_turnstile_broadcast_with_opts, BroadcastOpts, SideSink,
};
use sgs_query::exec::PassOpts;
use sgs_query::RouterArena;
use sgs_stream::hash::split_seed;
use sgs_stream::sharded::RoutedUpdate;
use sgs_stream::ShardedFeed;

/// Which consumers to attach to the estimator's first-pass ring.
#[derive(Clone, Copy, Debug)]
pub struct ConsumerSet {
    /// TRIÈST edge budget; `None` skips the baseline. Ignored (forced
    /// off) on turnstile runs — TRIÈST is insertion-only.
    pub triest_capacity: Option<usize>,
    /// Materialize the final graph and count `#H` exactly via CSR.
    pub exact: bool,
    /// Additional raw pass-counter consumers beyond the standard one.
    pub extra_raw: usize,
}

impl Default for ConsumerSet {
    fn default() -> Self {
        ConsumerSet {
            triest_capacity: Some(1024),
            exact: true,
            extra_raw: 0,
        }
    }
}

/// Everything one broadcast ingest produced.
#[derive(Clone, Debug)]
pub struct BroadcastEstimate {
    /// The FGP estimate — byte-identical to the non-broadcast run.
    pub estimate: CountEstimate,
    /// TRIÈST baseline (insertion runs with a configured capacity only).
    pub triest: Option<TriestEstimate>,
    /// Exact `#H` of the final graph, from the CSR oracle consumer.
    pub exact: Option<u64>,
    /// Updates tallied by the standard raw pass-counter consumer
    /// (= stream length: the raw consumer sees the whole stream once).
    pub raw_updates: u64,
    /// Tallies of the extra raw consumers (each equals `raw_updates`).
    pub extra_raw: Vec<u64>,
}

/// The seed the bundled TRIÈST consumer runs with — exposed so a
/// private-replay counterpart can be run with the very same coins (the
/// conformance suite's byte-identity check).
pub fn triest_seed(seed: u64) -> u64 {
    split_seed(seed, 0x7215_e57a)
}

/// Build the side-sink set over caller-owned consumer state. Every sink
/// sees the whole routed stream, in order, exactly once (pass 1).
fn build_sinks<'a>(
    triest: &'a mut Option<TriestStream>,
    graph: &'a mut Option<AdjListGraph>,
    raw: &'a mut u64,
    extra: &'a mut [u64],
    insertion: bool,
) -> Vec<SideSink<'a>> {
    let mut sinks: Vec<SideSink<'a>> = Vec::new();
    if let Some(ts) = triest.as_mut() {
        sinks.push(Box::new(move |b: &[RoutedUpdate]| {
            for r in b {
                debug_assert!(r.update.is_insert(), "TRIÈST consumer on a turnstile ring");
                ts.push(r.update.edge);
            }
        }));
    }
    if let Some(g) = graph.as_mut() {
        sinks.push(Box::new(move |b: &[RoutedUpdate]| {
            for r in b {
                if r.update.is_insert() {
                    g.add_edge(r.update.edge);
                } else {
                    debug_assert!(!insertion, "deletion on an insertion ring");
                    g.remove_edge(r.update.edge);
                }
            }
        }));
    }
    sinks.push(Box::new(move |b: &[RoutedUpdate]| *raw += b.len() as u64));
    for slot in extra.iter_mut() {
        sinks.push(Box::new(move |b: &[RoutedUpdate]| *slot += b.len() as u64));
    }
    sinks
}

/// Count `#H` in the materialized final graph through the CSR oracle.
fn csr_count(pattern: &Pattern, g: &AdjListGraph) -> u64 {
    let csr = CsrGraph::from_graph(g);
    exact::count_pattern_auto(&csr, pattern)
}

/// Estimate `#H` from an insertion-only feed with the default consumer
/// bundle riding the first pass (see [`ConsumerSet::default`]).
pub fn estimate_insertion_broadcast(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
) -> Option<BroadcastEstimate> {
    estimate_insertion_broadcast_with_opts(
        pattern,
        feed,
        trials,
        seed,
        arena,
        PassOpts::default(),
        SamplerMode::Indexed,
        ConsumerSet::default(),
    )
}

/// [`estimate_insertion_broadcast`] with explicit feed-path options,
/// sampler mode, and consumer set.
#[allow(clippy::too_many_arguments)]
pub fn estimate_insertion_broadcast_with_opts(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    sampler: SamplerMode,
    consumers: ConsumerSet,
) -> Option<BroadcastEstimate> {
    estimate_insertion_broadcast_with_exec(
        pattern,
        feed,
        trials,
        seed,
        arena,
        opts,
        sampler,
        consumers,
        BroadcastOpts::default(),
    )
}

/// [`estimate_insertion_broadcast_with_opts`] with explicit broadcast
/// ring options — capacity, stall threshold, and the execution policy
/// (`BroadcastOpts::with_policy`) the shard workers and side sinks run
/// under. Every consumer's answer is byte-identical for any setting.
#[allow(clippy::too_many_arguments)]
pub fn estimate_insertion_broadcast_with_exec(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    sampler: SamplerMode,
    consumers: ConsumerSet,
    bcast: BroadcastOpts,
) -> Option<BroadcastEstimate> {
    let plan = SamplerPlan::new(pattern)?;
    let par = build_parallel(&plan, sampler, trials, seed);
    let mut triest = consumers
        .triest_capacity
        .map(|cap| TriestStream::new(cap, triest_seed(seed)));
    let mut graph = consumers
        .exact
        .then(|| AdjListGraph::new(feed.num_vertices()));
    let mut raw = 0u64;
    let mut extra = vec![0u64; consumers.extra_raw];
    let (outcomes, report) = {
        let mut sinks = build_sinks(&mut triest, &mut graph, &mut raw, &mut extra, true);
        let (outcomes, report) = run_insertion_broadcast_with_opts(
            par,
            feed,
            split_seed(seed, u64::MAX),
            arena,
            opts,
            bcast,
            &mut sinks,
        );
        if report.passes == 0 {
            // Zero-round estimator (e.g. zero trials): the side
            // consumers still deserve their one stream view — a
            // dedicated side-only logical pass.
            feed.begin_pass();
            for sink in sinks.iter_mut() {
                sink(feed.routed());
            }
        }
        (outcomes, report)
    };
    Some(BroadcastEstimate {
        estimate: CountEstimate::from_outcomes(outcomes, plan.rho(), report),
        triest: triest.map(TriestStream::finish),
        exact: graph.map(|g| csr_count(pattern, &g)),
        raw_updates: raw,
        extra_raw: extra,
    })
}

/// Turnstile sibling of [`estimate_insertion_broadcast`] (TRIÈST is
/// forced off — it is insertion-only).
pub fn estimate_turnstile_broadcast(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
) -> Option<BroadcastEstimate> {
    estimate_turnstile_broadcast_with_opts(
        pattern,
        feed,
        trials,
        seed,
        arena,
        PassOpts::default(),
        ConsumerSet::default(),
    )
}

/// [`estimate_turnstile_broadcast`] with explicit feed-path options
/// (block size + ℓ₀ feed path) and consumer set.
pub fn estimate_turnstile_broadcast_with_opts(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    consumers: ConsumerSet,
) -> Option<BroadcastEstimate> {
    estimate_turnstile_broadcast_with_exec(
        pattern,
        feed,
        trials,
        seed,
        arena,
        opts,
        consumers,
        BroadcastOpts::default(),
    )
}

/// Turnstile sibling of [`estimate_insertion_broadcast_with_exec`].
#[allow(clippy::too_many_arguments)]
pub fn estimate_turnstile_broadcast_with_exec(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    consumers: ConsumerSet,
    bcast: BroadcastOpts,
) -> Option<BroadcastEstimate> {
    let plan = SamplerPlan::new(pattern)?;
    let par = build_parallel(&plan, SamplerMode::Relaxed, trials, seed);
    let mut triest: Option<TriestStream> = None;
    let mut graph = consumers
        .exact
        .then(|| AdjListGraph::new(feed.num_vertices()));
    let mut raw = 0u64;
    let mut extra = vec![0u64; consumers.extra_raw];
    let (outcomes, report) = {
        let mut sinks = build_sinks(&mut triest, &mut graph, &mut raw, &mut extra, false);
        let (outcomes, report) = run_turnstile_broadcast_with_opts(
            par,
            feed,
            split_seed(seed, u64::MAX),
            arena,
            opts,
            bcast,
            &mut sinks,
        );
        if report.passes == 0 {
            feed.begin_pass();
            for sink in sinks.iter_mut() {
                sink(feed.routed());
            }
        }
        (outcomes, report)
    };
    Some(BroadcastEstimate {
        estimate: CountEstimate::from_outcomes(outcomes, plan.rho(), report),
        triest: None,
        exact: graph.map(|g| csr_count(pattern, &g)),
        raw_updates: raw,
        extra_raw: extra,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::exact_stream::count_exact;
    use crate::baselines::triest::estimate_triest;
    use crate::fgp::parallel_exec::{estimate_insertion_on_feed, estimate_turnstile_on_feed};
    use sgs_graph::gen;
    use sgs_stream::{EdgeStream, InsertionStream, TurnstileStream};

    #[test]
    fn bundle_estimator_is_byte_identical_and_consumers_match_private_runs() {
        let g = gen::gnm(30, 140, 51);
        let stream = InsertionStream::from_graph(&g, 52);
        for shards in [1usize, 2, 4] {
            let feed = ShardedFeed::partition(&stream, shards);
            let mut arena = RouterArena::new();
            let single =
                estimate_insertion_on_feed(&Pattern::triangle(), &feed, 2_000, 53, &mut arena)
                    .unwrap();
            let bundle =
                estimate_insertion_broadcast(&Pattern::triangle(), &feed, 2_000, 53, &mut arena)
                    .unwrap();
            assert_eq!(bundle.estimate.hits, single.hits, "{shards} shards");
            assert_eq!(bundle.estimate.estimate, single.estimate);
            assert_eq!(bundle.estimate.report.passes, 3);
            // Consumers vs their private-replay counterparts.
            let private_triest = estimate_triest(&stream, 1024, triest_seed(53));
            assert_eq!(
                bundle.triest.as_ref().unwrap().estimate,
                private_triest.estimate
            );
            let private_exact = count_exact(&Pattern::triangle(), &stream);
            assert_eq!(bundle.exact, Some(private_exact.count));
            assert_eq!(bundle.raw_updates, stream.len() as u64);
        }
    }

    #[test]
    fn turnstile_bundle_matches_and_skips_triest() {
        let g = gen::gnm(24, 100, 61);
        let tst = TurnstileStream::from_graph_with_churn(&g, 0.6, 62);
        let feed = ShardedFeed::partition(&tst, 3);
        let mut arena = RouterArena::new();
        let single =
            estimate_turnstile_on_feed(&Pattern::triangle(), &feed, 600, 63, &mut arena).unwrap();
        let bundle =
            estimate_turnstile_broadcast(&Pattern::triangle(), &feed, 600, 63, &mut arena).unwrap();
        assert_eq!(bundle.estimate.hits, single.hits);
        assert_eq!(bundle.estimate.estimate, single.estimate);
        assert!(bundle.triest.is_none(), "TRIÈST is insertion-only");
        let private_exact = count_exact(&Pattern::triangle(), &tst);
        assert_eq!(bundle.exact, Some(private_exact.count));
        assert_eq!(bundle.raw_updates, tst.len() as u64);
    }

    #[test]
    fn extra_raw_consumers_each_see_the_stream_once() {
        let g = gen::gnm(20, 80, 71);
        let stream = InsertionStream::from_graph(&g, 72);
        let feed = ShardedFeed::partition(&stream, 2);
        let mut arena = RouterArena::new();
        let bundle = estimate_insertion_broadcast_with_opts(
            &Pattern::triangle(),
            &feed,
            500,
            73,
            &mut arena,
            PassOpts::default(),
            SamplerMode::Indexed,
            ConsumerSet {
                extra_raw: 3,
                ..ConsumerSet::default()
            },
        )
        .unwrap();
        assert_eq!(bundle.extra_raw, vec![80u64; 3]);
        assert_eq!(
            feed.logical_passes(),
            3,
            "fan-out width adds zero logical passes"
        );
    }

    #[test]
    fn zero_trials_still_feeds_side_consumers_in_one_pass() {
        let g = gen::gnm(16, 50, 81);
        let stream = InsertionStream::from_graph(&g, 82);
        let feed = ShardedFeed::partition(&stream, 2);
        let mut arena = RouterArena::new();
        let bundle =
            estimate_insertion_broadcast(&Pattern::triangle(), &feed, 0, 83, &mut arena).unwrap();
        assert_eq!(bundle.estimate.trials, 0);
        assert_eq!(bundle.raw_updates, 50);
        assert_eq!(
            bundle.exact,
            Some(count_exact(&Pattern::triangle(), &stream).count)
        );
        assert_eq!(feed.logical_passes(), 1, "the dedicated side-only pass");
    }
}
