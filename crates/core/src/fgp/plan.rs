//! The shared, immutable sampling plan for one target pattern.
//!
//! A plan bundles everything the FGP sampler precomputes *before* touching
//! the input: the Lemma 4 decomposition of `H` into odd cycles and stars,
//! `ρ(H)`, and the tuple multiplicity `f_T(H)` used by the acceptance coin
//! (Algorithm 9, line 15). Thousands of parallel sampler instances
//! (Theorem 17) share one plan through an [`std::sync::Arc`].

use sgs_graph::decompose::{decompose, CycleStarDecomposition, Piece};
use sgs_graph::{Pattern, Rho};
use std::sync::Arc;

/// Precomputed sampling plan for a pattern.
#[derive(Clone, Debug)]
pub struct SamplerPlan {
    /// The target pattern `H`.
    pub pattern: Pattern,
    /// Its optimal odd-cycle/star decomposition.
    pub decomp: CycleStarDecomposition,
}

impl SamplerPlan {
    /// Build a plan. Fails (returns `None`) only for patterns with
    /// isolated vertices, which admit no edge cover.
    pub fn new(pattern: &Pattern) -> Option<Arc<SamplerPlan>> {
        let decomp = decompose(pattern)?;
        Some(Arc::new(SamplerPlan {
            pattern: pattern.clone(),
            decomp,
        }))
    }

    /// `ρ(H)`.
    pub fn rho(&self) -> Rho {
        self.decomp.rho
    }

    /// `f_T(H)`: the number of ordered canonical piece-tuples per copy.
    pub fn tuple_multiplicity(&self) -> u64 {
        self.decomp.tuple_multiplicity
    }

    /// The pieces in tuple order.
    pub fn pieces(&self) -> &[Piece] {
        &self.decomp.pieces
    }

    /// Number of `f1` queries the sampler issues in round 1 (one per star
    /// petal edge, plus path edges and one auxiliary edge per cycle).
    pub fn round1_edge_queries(&self) -> usize {
        self.pieces()
            .iter()
            .map(|p| match p {
                // length 2k+1 cycle: k path edges + 1 auxiliary edge
                Piece::OddCycle(vs) => (vs.len() - 1) / 2 + 1,
                Piece::Star { petals, .. } => petals.len(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_plan() {
        let plan = SamplerPlan::new(&Pattern::triangle()).unwrap();
        assert_eq!(plan.rho().as_f64(), 1.5);
        assert_eq!(plan.tuple_multiplicity(), 1);
        // 3-cycle: k=1 path edge + 1 aux = 2 edge queries.
        assert_eq!(plan.round1_edge_queries(), 2);
    }

    #[test]
    fn k4_plan() {
        let plan = SamplerPlan::new(&Pattern::clique(4)).unwrap();
        assert_eq!(plan.rho().as_f64(), 2.0);
        assert_eq!(plan.tuple_multiplicity(), 24);
        assert_eq!(plan.round1_edge_queries(), 2); // two S_1 pieces
    }

    #[test]
    fn c5_plan() {
        let plan = SamplerPlan::new(&Pattern::cycle(5)).unwrap();
        assert_eq!(plan.rho().as_f64(), 2.5);
        assert_eq!(plan.round1_edge_queries(), 3); // 2 path + 1 aux
    }

    #[test]
    fn star_plan() {
        let plan = SamplerPlan::new(&Pattern::star(3)).unwrap();
        assert_eq!(plan.rho().as_f64(), 3.0);
        assert_eq!(plan.round1_edge_queries(), 3);
    }

    #[test]
    fn isolated_vertex_pattern_rejected() {
        let p = Pattern::from_edges(3, [(0, 1)]);
        assert!(SamplerPlan::new(&p).is_none());
    }
}
