//! The FGP subgraph sampler and counter (§4 of the paper).
//!
//! * [`plan`] — per-pattern precomputation (decomposition, `ρ`, `f_T`),
//! * [`sampler`] — the 3-round-adaptive `SampleSubgraph` (Algorithms 1, 5,
//!   and 9),
//! * [`assemble`] — the piece-to-copy assembly and acceptance machinery,
//! * [`counter`] — the parallel-trials estimator (Theorems 1 and 17).

pub mod assemble;
pub mod broadcast_exec;
pub mod checkpoint_exec;
pub mod counter;
pub mod multi_exec;
pub mod parallel_exec;
pub mod plan;
pub mod sampler;
pub mod search;
pub mod serve_exec;
pub mod uniform;

pub use assemble::FoundCopy;
pub use broadcast_exec::{
    estimate_insertion_broadcast, estimate_insertion_broadcast_with_exec,
    estimate_insertion_broadcast_with_opts, estimate_turnstile_broadcast,
    estimate_turnstile_broadcast_with_exec, estimate_turnstile_broadcast_with_opts, triest_seed,
    BroadcastEstimate, ConsumerSet,
};
pub use checkpoint_exec::{estimate_insertion_checkpointed, estimate_turnstile_checkpointed};
pub use counter::{
    estimate_insertion, estimate_oracle, estimate_turnstile, practical_trials, theory_trials,
    CountEstimate,
};
pub use multi_exec::{
    estimate_multi_insertion, estimate_multi_insertion_broadcast, estimate_multi_turnstile,
    estimate_multi_turnstile_broadcast, MultiQuerySpec,
};
pub use parallel_exec::{
    estimate_insertion_on_feed, estimate_insertion_on_feed_with_block,
    estimate_insertion_on_feed_with_exec, estimate_insertion_on_feed_with_opts,
    estimate_insertion_threaded, estimate_insertion_threaded_with_block,
    estimate_insertion_threaded_with_exec, estimate_insertion_threaded_with_opts,
    estimate_turnstile_on_feed, estimate_turnstile_on_feed_with_block,
    estimate_turnstile_on_feed_with_exec, estimate_turnstile_on_feed_with_opts,
    estimate_turnstile_threaded, estimate_turnstile_threaded_with_block,
    estimate_turnstile_threaded_with_exec, estimate_turnstile_threaded_with_opts,
};
pub use plan::SamplerPlan;
pub use sampler::{SamplerMode, SamplerOutcome, SubgraphSampler};
pub use search::{distinguish_insertion, search_count_insertion, GapDecision, SearchResult};
pub use serve_exec::{estimate_insertion_on_runtime, estimate_turnstile_on_runtime};
pub use uniform::{sample_uniform_insertion, sample_uniform_turnstile, uniform_trials};
