//! Checkpointed estimator drivers: durable `estimate_*` entry points.
//!
//! These wrap the FGP trial bank (the same [`Parallel`] bank every other
//! executor drives) in `sgs-query`'s checkpointed drivers: the input
//! stream is made durable in a write-ahead log before estimation starts,
//! estimator state is snapshotted at delivery-block boundaries, and a
//! crashed run resumes from the latest snapshot to the **byte-identical**
//! estimate the uninterrupted run produces — same estimate bits, hits,
//! `m`, and report, at any shard count, in both stream models.
//! `tests/crash_recovery.rs` sweeps every crash point.
//!
//! The sibling of [`crate::fgp::parallel_exec`]: same plan/bank/seed
//! plumbing, with a [`CheckpointSession`] threaded through.

use crate::fgp::counter::{build_parallel, CountEstimate};
use crate::fgp::plan::SamplerPlan;
use crate::fgp::sampler::SamplerMode;
use sgs_graph::Pattern;
use sgs_query::checkpoint::{run_insertion_checkpointed, run_turnstile_checkpointed};
use sgs_query::exec::PassOpts;
use sgs_query::CheckpointSession;
use sgs_query::RouterArena;
use sgs_stream::hash::split_seed;
use sgs_stream::persist::PersistResult;
use sgs_stream::ShardedFeed;

/// Estimate `#H` from an insertion-only feed under a checkpoint
/// session. Returns `Ok(None)` when the pattern has no sampler plan or
/// when the session's simulated crash point fires; otherwise the same
/// [`CountEstimate`] the uninterrupted executors produce. Resumes
/// transparently when the session carries snapshot state.
#[allow(clippy::too_many_arguments)]
pub fn estimate_insertion_checkpointed(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    sampler: SamplerMode,
    session: &mut CheckpointSession,
) -> PersistResult<Option<CountEstimate>> {
    let Some(plan) = SamplerPlan::new(pattern) else {
        return Ok(None);
    };
    let par = build_parallel(&plan, sampler, trials, seed);
    let run =
        run_insertion_checkpointed(par, feed, split_seed(seed, u64::MAX), arena, opts, session)?;
    Ok(run.map(|(outcomes, report)| CountEstimate::from_outcomes(outcomes, plan.rho(), report)))
}

/// Turnstile sibling of [`estimate_insertion_checkpointed`] (relaxed
/// sampler mode, as in every turnstile executor).
pub fn estimate_turnstile_checkpointed(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    session: &mut CheckpointSession,
) -> PersistResult<Option<CountEstimate>> {
    let Some(plan) = SamplerPlan::new(pattern) else {
        return Ok(None);
    };
    let par = build_parallel(&plan, SamplerMode::Relaxed, trials, seed);
    let run =
        run_turnstile_checkpointed(par, feed, split_seed(seed, u64::MAX), arena, opts, session)?;
    Ok(run.map(|(outcomes, report)| CountEstimate::from_outcomes(outcomes, plan.rho(), report)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgp::parallel_exec::{
        estimate_insertion_on_feed_with_opts, estimate_turnstile_on_feed_with_block,
    };
    use sgs_graph::gen;
    use sgs_stream::{InsertionStream, TurnstileStream};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("sgs-core-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpointed_estimate_matches_plain_insertion() {
        let g = gen::gnm(30, 140, 51);
        let stream = InsertionStream::from_graph(&g, 52);
        for shards in [1usize, 2] {
            let feed = ShardedFeed::partition(&stream, shards);
            let dir = tmp_dir(&format!("ins-{shards}"));
            let mut session = CheckpointSession::create(&dir, &feed, 4, 32).unwrap();
            let mut arena = RouterArena::new();
            let ckpt = estimate_insertion_checkpointed(
                &Pattern::triangle(),
                &feed,
                300,
                53,
                &mut arena,
                PassOpts::default(),
                SamplerMode::Indexed,
                &mut session,
            )
            .unwrap()
            .unwrap();
            let mut arena2 = RouterArena::new();
            let plain = estimate_insertion_on_feed_with_opts(
                &Pattern::triangle(),
                &feed,
                300,
                53,
                &mut arena2,
                PassOpts::default(),
                SamplerMode::Indexed,
            )
            .unwrap();
            assert_eq!(ckpt.estimate.to_bits(), plain.estimate.to_bits());
            assert_eq!(ckpt.hits, plain.hits);
            assert_eq!(ckpt.m, plain.m);
            assert_eq!(ckpt.trials, plain.trials);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn checkpointed_estimate_matches_plain_turnstile() {
        let g = gen::gnm(24, 100, 55);
        let tst = TurnstileStream::from_graph_with_churn(&g, 0.7, 56);
        let feed = ShardedFeed::partition(&tst, 2);
        let dir = tmp_dir("tst");
        let mut session = CheckpointSession::create(&dir, &feed, 4, 32).unwrap();
        let mut arena = RouterArena::new();
        let ckpt = estimate_turnstile_checkpointed(
            &Pattern::triangle(),
            &feed,
            200,
            57,
            &mut arena,
            PassOpts::default(),
            &mut session,
        )
        .unwrap()
        .unwrap();
        let mut arena2 = RouterArena::new();
        let plain = estimate_turnstile_on_feed_with_block(
            &Pattern::triangle(),
            &feed,
            200,
            57,
            &mut arena2,
            PassOpts::default().block,
        )
        .unwrap();
        assert_eq!(ckpt.estimate.to_bits(), plain.estimate.to_bits());
        assert_eq!(ckpt.hits, plain.hits);
        assert_eq!(ckpt.m, plain.m);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
