//! Serving-side estimator entry points: solo `#H` estimates on a
//! caller-owned persistent [`sgs_query::ShardRuntime`].
//!
//! A long-lived node ([`sgs_query::ServerNode`]) keeps one worker pool
//! alive across every query; these drivers run one COUNT on it through
//! the broadcast ring ([`sgs_query::run_insertion_broadcast_on_runtime`])
//! instead of standing up threads per estimate. Each estimate is
//! **byte-identical** to the batch
//! [`crate::fgp::parallel_exec::estimate_insertion_on_feed_with_exec`]
//! run with the same spec over the same feed — the broadcast engine's
//! equivalence to the sharded engine is the load-bearing invariant
//! (`tests/broadcast_equivalence.rs`), and the runtime dispatch is the
//! same `insertion_pass`/`turnstile_pass` the internally-pooled path
//! takes.

use crate::fgp::counter::{build_parallel, CountEstimate};
use crate::fgp::plan::SamplerPlan;
use crate::fgp::sampler::SamplerMode;
use sgs_graph::Pattern;
use sgs_query::{
    run_insertion_broadcast_on_runtime, run_turnstile_broadcast_on_runtime, BroadcastOpts,
    PassOpts, RouterArena, ShardRuntime,
};
use sgs_stream::hash::split_seed;
use sgs_stream::ShardedFeed;

/// Estimate `#H` from an insertion-only feed on a persistent runtime.
/// Byte-identical to
/// [`crate::fgp::parallel_exec::estimate_insertion_on_feed_with_exec`]
/// with the same spec. `None` if the pattern has no sampler plan.
#[allow(clippy::too_many_arguments)]
pub fn estimate_insertion_on_runtime(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    sampler: SamplerMode,
    bcast: BroadcastOpts,
    runtime: &mut ShardRuntime,
) -> Option<CountEstimate> {
    let plan = SamplerPlan::new(pattern)?;
    let par = build_parallel(&plan, sampler, trials, seed);
    let (outcomes, report) = run_insertion_broadcast_on_runtime(
        par,
        feed,
        split_seed(seed, u64::MAX),
        arena,
        opts,
        bcast,
        &mut [],
        runtime,
    );
    Some(CountEstimate::from_outcomes(outcomes, plan.rho(), report))
}

/// Turnstile sibling of [`estimate_insertion_on_runtime`]; the sampler
/// always runs relaxed (Definition 10 has no arrival-order watchers).
#[allow(clippy::too_many_arguments)]
pub fn estimate_turnstile_on_runtime(
    pattern: &Pattern,
    feed: &ShardedFeed,
    trials: usize,
    seed: u64,
    arena: &mut RouterArena,
    opts: PassOpts,
    bcast: BroadcastOpts,
    runtime: &mut ShardRuntime,
) -> Option<CountEstimate> {
    let plan = SamplerPlan::new(pattern)?;
    let par = build_parallel(&plan, SamplerMode::Relaxed, trials, seed);
    let (outcomes, report) = run_turnstile_broadcast_on_runtime(
        par,
        feed,
        split_seed(seed, u64::MAX),
        arena,
        opts,
        bcast,
        &mut [],
        runtime,
    );
    Some(CountEstimate::from_outcomes(outcomes, plan.rho(), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgp::parallel_exec::{
        estimate_insertion_on_feed_with_exec, estimate_turnstile_on_feed_with_exec,
    };
    use sgs_graph::gen;
    use sgs_query::ExecPolicy;
    use sgs_stream::reservoir::ReservoirMode;
    use sgs_stream::{InsertionStream, TurnstileStream};

    #[test]
    fn runtime_insertion_estimate_matches_batch_bits() {
        let g = gen::gnm(40, 160, 21);
        let ins = InsertionStream::from_graph(&g, 22);
        for shards in [1usize, 2, 4] {
            let feed = ShardedFeed::partition(&ins, shards);
            let policy = ExecPolicy::serial();
            let mut rt = ShardRuntime::new(shards, policy);
            for (mode, reservoir) in [
                (SamplerMode::Indexed, ReservoirMode::Skip),
                (SamplerMode::Relaxed, ReservoirMode::Offer),
            ] {
                let opts = PassOpts::with_block(64).reservoir(reservoir);
                let mut arena = RouterArena::new();
                let live = estimate_insertion_on_runtime(
                    &Pattern::clique(3),
                    &feed,
                    60,
                    9,
                    &mut arena,
                    opts,
                    mode,
                    BroadcastOpts::with_policy(policy),
                    &mut rt,
                )
                .unwrap();
                let mut batch_arena = RouterArena::new();
                let batch = estimate_insertion_on_feed_with_exec(
                    &Pattern::clique(3),
                    &feed,
                    60,
                    9,
                    &mut batch_arena,
                    opts,
                    mode,
                    policy,
                )
                .unwrap();
                assert_eq!(live.estimate.to_bits(), batch.estimate.to_bits());
                assert_eq!(live.hits, batch.hits);
                assert_eq!(live.report.passes, batch.report.passes);
            }
        }
    }

    #[test]
    fn runtime_turnstile_estimate_matches_batch_bits() {
        let g = gen::gnm(40, 160, 23);
        let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 24);
        for shards in [1usize, 2, 4] {
            let feed = ShardedFeed::partition(&tst, shards);
            let policy = ExecPolicy::serial();
            let mut rt = ShardRuntime::new(shards, policy);
            let mut arena = RouterArena::new();
            let live = estimate_turnstile_on_runtime(
                &Pattern::clique(3),
                &feed,
                40,
                11,
                &mut arena,
                PassOpts::with_block(64),
                BroadcastOpts::with_policy(policy),
                &mut rt,
            )
            .unwrap();
            let mut batch_arena = RouterArena::new();
            let batch = estimate_turnstile_on_feed_with_exec(
                &Pattern::clique(3),
                &feed,
                40,
                11,
                &mut batch_arena,
                PassOpts::with_block(64),
                policy,
            )
            .unwrap();
            assert_eq!(live.estimate.to_bits(), batch.estimate.to_bits());
            assert_eq!(live.hits, batch.hits);
        }
    }

    #[test]
    fn one_runtime_serves_many_estimates() {
        // The serving shape: one pool, many sequential queries — each
        // still byte-identical to its solo batch run.
        let g = gen::gnm(30, 120, 31);
        let ins = InsertionStream::from_graph(&g, 32);
        let feed = ShardedFeed::partition(&ins, 2);
        let policy = ExecPolicy::serial();
        let mut rt = ShardRuntime::new(2, policy);
        let mut arena = RouterArena::new();
        for seed in [1u64, 2, 3] {
            let live = estimate_insertion_on_runtime(
                &Pattern::clique(3),
                &feed,
                30,
                seed,
                &mut arena,
                PassOpts::with_block(32),
                SamplerMode::Indexed,
                BroadcastOpts::with_policy(policy),
                &mut rt,
            )
            .unwrap();
            let mut batch_arena = RouterArena::new();
            let batch = estimate_insertion_on_feed_with_exec(
                &Pattern::clique(3),
                &feed,
                30,
                seed,
                &mut batch_arena,
                PassOpts::with_block(32),
                SamplerMode::Indexed,
                policy,
            )
            .unwrap();
            assert_eq!(live.estimate.to_bits(), batch.estimate.to_bits());
        }
    }
}
