//! The `(1 ± ε)` subgraph-count estimator (Theorems 1 and 17).
//!
//! The FGP sampler returns any fixed copy of `H` with probability
//! `1/(2m)^ρ(H)`, so the total success probability of one trial is
//! `p = #H/(2m)^ρ(H)`. Running `k` independent trials **in parallel**
//! (they share the same 3 rounds, hence the same 3 passes) and counting
//! successes `X` gives the estimator `#Ĥ = (2m)^ρ(H) · X/k`, concentrated
//! by Chernoff bounds once `k ≳ (2m)^ρ/(ε²·#H)`.

use crate::fgp::plan::SamplerPlan;
use crate::fgp::sampler::{SamplerMode, SamplerOutcome, SubgraphSampler};
use sgs_graph::{AdjListGraph, Pattern, Rho};
use sgs_query::exec::{run_insertion, run_on_oracle, run_turnstile};
use sgs_query::{ExactOracle, ExecReport, Parallel};
use sgs_stream::hash::split_seed;
use sgs_stream::EdgeStream;
use std::sync::Arc;

/// The result of a counting run.
#[derive(Clone, Debug)]
pub struct CountEstimate {
    /// The `(2m)^ρ · X/k` estimate of `#H`.
    pub estimate: f64,
    /// Successful trials `X`.
    pub hits: u64,
    /// Total trials `k`.
    pub trials: usize,
    /// Edge count observed in pass/round 1.
    pub m: usize,
    /// `ρ(H)`.
    pub rho: Rho,
    /// Rounds/passes/queries/space actually used.
    pub report: ExecReport,
}

impl CountEstimate {
    pub(crate) fn from_outcomes(
        outcomes: Vec<SamplerOutcome>,
        rho: Rho,
        report: ExecReport,
    ) -> Self {
        let trials = outcomes.len();
        let m = outcomes.iter().map(|o| o.m).max().unwrap_or(0);
        let hits = outcomes.iter().filter(|o| o.copy.is_some()).count() as u64;
        let estimate = if trials == 0 {
            0.0
        } else {
            rho.pow(2.0 * m as f64) * hits as f64 / trials as f64
        };
        CountEstimate {
            estimate,
            hits,
            trials,
            m,
            rho,
            report,
        }
    }

    /// Relative error against a known ground truth.
    pub fn relative_error(&self, exact: u64) -> f64 {
        if exact == 0 {
            return if self.estimate == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (self.estimate - exact as f64).abs() / exact as f64
    }
}

pub(crate) fn build_parallel(
    plan: &Arc<SamplerPlan>,
    mode: SamplerMode,
    trials: usize,
    seed: u64,
) -> Parallel<SubgraphSampler> {
    Parallel::new(
        (0..trials)
            .map(|i| SubgraphSampler::new(plan.clone(), mode, split_seed(seed, i as u64)))
            .collect(),
    )
}

/// Estimate `#H` from an insertion-only stream with `trials` parallel
/// sampler copies (3 passes total; Theorem 17). Returns `None` for
/// patterns with isolated vertices.
pub fn estimate_insertion(
    pattern: &Pattern,
    stream: &impl EdgeStream,
    trials: usize,
    seed: u64,
) -> Option<CountEstimate> {
    let plan = SamplerPlan::new(pattern)?;
    let par = build_parallel(&plan, SamplerMode::Indexed, trials, seed);
    let (outcomes, report) = run_insertion(par, stream, split_seed(seed, u64::MAX));
    Some(CountEstimate::from_outcomes(outcomes, plan.rho(), report))
}

/// Estimate `#H` from a turnstile stream (3 passes; Theorem 1).
pub fn estimate_turnstile(
    pattern: &Pattern,
    stream: &impl EdgeStream,
    trials: usize,
    seed: u64,
) -> Option<CountEstimate> {
    let plan = SamplerPlan::new(pattern)?;
    let par = build_parallel(&plan, SamplerMode::Relaxed, trials, seed);
    let (outcomes, report) = run_turnstile(par, stream, split_seed(seed, u64::MAX));
    Some(CountEstimate::from_outcomes(outcomes, plan.rho(), report))
}

/// Estimate `#H` via direct query access (the sublinear-time mode).
pub fn estimate_oracle(
    pattern: &Pattern,
    g: &AdjListGraph,
    trials: usize,
    seed: u64,
) -> Option<CountEstimate> {
    let plan = SamplerPlan::new(pattern)?;
    let par = build_parallel(&plan, SamplerMode::Indexed, trials, seed);
    let mut oracle = ExactOracle::new(g, split_seed(seed, u64::MAX));
    let (outcomes, report) = run_on_oracle(par, &mut oracle);
    Some(CountEstimate::from_outcomes(outcomes, plan.rho(), report))
}

/// The paper's trial count (proof of Theorem 17):
/// `k = 30·(2m)^ρ·ln(n) / (ε²·L)`, where `L ≤ #H` is the promised lower
/// bound. Astronomically conservative; use [`practical_trials`] for
/// experiments and keep this for the record.
pub fn theory_trials(n: usize, m: usize, rho: Rho, epsilon: f64, lower_bound: f64) -> usize {
    assert!(epsilon > 0.0 && lower_bound > 0.0);
    let k =
        30.0 * rho.pow(2.0 * m as f64) * (n.max(2) as f64).ln() / (epsilon * epsilon * lower_bound);
    k.ceil() as usize
}

/// A calibrated trial count with the same functional form,
/// `k = c·(2m)^ρ / (ε²·L)` with `c = 8`: enough for the success-count
/// concentration at the confidence levels the experiments report.
pub fn practical_trials(m: usize, rho: Rho, epsilon: f64, lower_bound: f64) -> usize {
    assert!(epsilon > 0.0 && lower_bound > 0.0);
    let k = 8.0 * rho.pow(2.0 * m as f64) / (epsilon * epsilon * lower_bound);
    (k.ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::exact;
    use sgs_graph::gen;
    use sgs_stream::{InsertionStream, TurnstileStream};

    #[test]
    fn insertion_estimate_converges_triangle() {
        let g = gen::gnm(30, 150, 21);
        let exact = exact::triangles::count_triangles(&g);
        assert!(exact > 50);
        let ins = InsertionStream::from_graph(&g, 22);
        let est = estimate_insertion(&Pattern::triangle(), &ins, 40_000, 23).unwrap();
        assert_eq!(est.report.passes, 3);
        assert!(
            est.relative_error(exact) < 0.2,
            "estimate {} vs exact {exact}",
            est.estimate
        );
    }

    #[test]
    fn turnstile_estimate_converges_triangle() {
        let g = gen::gnm(24, 100, 31);
        let exact = exact::triangles::count_triangles(&g);
        assert!(exact > 20);
        let tst = TurnstileStream::from_graph_with_churn(&g, 0.5, 32);
        let est = estimate_turnstile(&Pattern::triangle(), &tst, 20_000, 33).unwrap();
        assert!(est.report.passes <= 3);
        assert!(
            est.relative_error(exact) < 0.3,
            "estimate {} vs exact {exact}",
            est.estimate
        );
    }

    #[test]
    fn oracle_estimate_wedges() {
        let g = gen::gnm(25, 80, 41);
        let exact = exact::stars::count_wedges(&g);
        let est = estimate_oracle(&Pattern::star(2), &g, 30_000, 42).unwrap();
        assert!(
            est.relative_error(exact) < 0.2,
            "estimate {} vs exact {exact}",
            est.estimate
        );
        assert_eq!(est.m, 80);
    }

    #[test]
    fn zero_copies_estimates_zero_ish() {
        // Bipartite graph: no triangles; the estimator should say ~0.
        let g = gen::complete_bipartite(8, 8);
        let ins = InsertionStream::from_graph(&g, 1);
        let est = estimate_insertion(&Pattern::triangle(), &ins, 5_000, 2).unwrap();
        assert_eq!(est.hits, 0);
        assert_eq!(est.estimate, 0.0);
    }

    #[test]
    fn trial_formulas() {
        let rho = Rho::from_halves(3); // 3/2
        let t = theory_trials(1000, 500, rho, 0.1, 100.0);
        let p = practical_trials(500, rho, 0.1, 100.0);
        assert!(t > p, "theory constant should dominate: {t} vs {p}");
        assert!(p >= 1);
        // Scaling: doubling m multiplies trials by ~2^1.5.
        let p2 = practical_trials(1000, rho, 0.1, 100.0);
        let ratio = p2 as f64 / p as f64;
        assert!((2.6..3.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn isolated_vertex_pattern_returns_none() {
        let p = Pattern::from_edges(3, [(0, 1)]);
        let g = gen::gnm(10, 20, 1);
        let ins = InsertionStream::from_graph(&g, 2);
        assert!(estimate_insertion(&p, &ins, 10, 3).is_none());
    }
}
