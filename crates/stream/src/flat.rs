//! Flat open-addressed hash indexes for the per-pass routing structures.
//!
//! The pass-emulation layer tracks *fixed, known* key sets (the vertices,
//! pairs, and positions named by one round's query batch) and probes them
//! once or twice per stream update. `std::collections::HashMap` pays
//! SipHash plus a heap of per-entry overhead for DoS resistance we do not
//! need — the keys come from our own query batches, not an adversary.
//! [`FlatIndex`] replaces it on this hot path: open addressing with linear
//! probing over a power-of-two table, SplitMix64 as the hash, `u32` dense
//! group ids as values. One cache line typically serves a probe.
//!
//! The index maps each distinct key to a dense id `0..len` in first-insert
//! order, which is exactly what the router needs: per-key state lives in
//! plain `Vec`s indexed by group id, and answer distribution walks those
//! `Vec`s without touching the table again.

use crate::persist::{
    frame, read_frame_of, Decoder, Encoder, PersistError, PersistResult, KIND_FLAT,
};
use crate::space::SpaceUsage;
use sgs_prng::splitmix64;

const EMPTY: u32 = u32::MAX;

/// Sentinel returned by [`FlatIndex::probe_batch`] for keys that were
/// never inserted. Dense ids are assigned from 0 upward, so `u32::MAX`
/// can never collide with a real id.
pub const ABSENT: u32 = u32::MAX;

/// One table slot: key plus dense id, interleaved so a probe touches a
/// single cache line (the dominant cost of bulk index construction is
/// memory traffic, not hashing).
#[derive(Clone, Copy, Debug)]
struct Slot {
    key: u64,
    id: u32,
}

const VACANT: Slot = Slot { key: 0, id: EMPTY };

/// An insert-then-probe hash index from `u64` keys to dense `u32` ids.
#[derive(Clone, Debug)]
pub struct FlatIndex {
    /// Power-of-two probe table.
    slots: Vec<Slot>,
    mask: usize,
    len: u32,
}

impl Default for FlatIndex {
    fn default() -> Self {
        FlatIndex::with_capacity(0)
    }
}

impl FlatIndex {
    /// An index expecting about `expected` distinct keys (load factor
    /// ≤ 2/3 if the estimate holds; the table grows past it regardless).
    ///
    /// The sizing uses the same ceiling division as [`FlatIndex::reserve`]:
    /// the earlier truncating `expected * 3 / 2` under-sized the table at
    /// exact load-factor boundaries (e.g. `with_capacity(11)` produced a
    /// 16-slot table that holds only 10 keys before `insert_or_get`'s 2/3
    /// check forces a rebuild mid-fill — precisely the mid-pass rehash
    /// this constructor exists to avoid).
    pub fn with_capacity(expected: usize) -> Self {
        let cap = ((expected.max(4) + 1) * 3).div_ceil(2).next_power_of_two();
        FlatIndex {
            slots: vec![VACANT; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Number of distinct keys inserted.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no keys were inserted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dense id for `key`, inserting a fresh one (`len`) if absent.
    pub fn insert_or_get(&mut self, key: u64) -> u32 {
        if (self.len as usize + 1) * 3 > self.slots.len() * 2 {
            self.grow();
        }
        let mut slot = splitmix64(key) as usize & self.mask;
        loop {
            let s = self.slots[slot];
            if s.id == EMPTY {
                self.slots[slot] = Slot { key, id: self.len };
                self.len += 1;
                return self.len - 1;
            }
            if s.key == key {
                return s.id;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Grow the probe table (preserving entries) until `expected` keys
    /// fit under the 2/3 load factor. Called by arena-pooled users right
    /// after [`FlatIndex::clear`], when the key count of the incoming
    /// batch is known: one resize instead of log-many grow-rehashes.
    pub fn reserve(&mut self, expected: usize) {
        let need = expected.max(self.len as usize) + 1;
        if need * 3 <= self.slots.len() * 2 {
            return;
        }
        let new_cap = (need * 3).div_ceil(2).next_power_of_two();
        let old = std::mem::replace(&mut self.slots, vec![VACANT; new_cap]);
        self.mask = new_cap - 1;
        for s in old {
            if s.id == EMPTY {
                continue;
            }
            let mut slot = splitmix64(s.key) as usize & self.mask;
            while self.slots[slot].id != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = s;
        }
    }

    /// Remove every key but keep the probe table's capacity: the reset
    /// half of the arena contract (build once, reset per pass). O(table
    /// capacity), but allocation-free — after warm-up an arena-pooled
    /// index never touches the heap again.
    pub fn clear(&mut self) {
        self.slots.fill(VACANT);
        self.len = 0;
    }

    /// Bytes of backing storage actually allocated (table capacity, not
    /// semantic payload — see [`SpaceUsage`] for the latter). The arena's
    /// no-growth-after-warm-up counter watches this.
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot>()
    }

    /// Dense id for `key`, or `None` if never inserted.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        let slot = splitmix64(key) as usize & self.mask;
        let s = self.slots[slot];
        if s.id == EMPTY {
            return None;
        }
        if s.key == key {
            return Some(s.id);
        }
        match self.probe_from(slot, key) {
            ABSENT => None,
            id => Some(id),
        }
    }

    /// Continue a linear probe past an occupied non-matching `slot`.
    fn probe_from(&self, mut slot: usize, key: u64) -> u32 {
        loop {
            slot = (slot + 1) & self.mask;
            let s = self.slots[slot];
            if s.id == EMPTY {
                return ABSENT;
            }
            if s.key == key {
                return s.id;
            }
        }
    }

    /// Probe a whole block of keys, pushing one id (or [`ABSENT`]) per
    /// key onto `out` in input order.
    ///
    /// Same answers as [`FlatIndex::get`] per key; the difference is
    /// instruction scheduling. The scalar probe is a serial
    /// hash→load→compare chain per key, so the load latency is fully
    /// exposed. Here each 8-lane chunk is software-pipelined: all eight
    /// hashes are computed first (an autovectorizable lane loop), then
    /// the eight first-slot loads issue back to back — by the time a
    /// lane's compare runs, its cache line is already in flight. Only
    /// colliding lanes (rare at ≤ 2/3 load) fall back to the serial walk.
    pub fn probe_batch(&self, keys: &[u64], out: &mut Vec<u32>) {
        const LANES: usize = 8;
        out.clear();
        out.reserve(keys.len());
        let mut chunks = keys.chunks_exact(LANES);
        let mut ids = [0u32; LANES];
        for chunk in &mut chunks {
            let lanes: &[u64; LANES] = chunk.try_into().expect("chunks_exact yields full chunks");
            self.probe_array(lanes, &mut ids);
            out.extend_from_slice(&ids);
        }
        for &k in chunks.remainder() {
            out.push(self.get(k).unwrap_or(ABSENT));
        }
    }

    /// Stack-resident sibling of [`FlatIndex::probe_batch`]: probe `N`
    /// keys with the same hash-ahead pipeline, writing ids (or
    /// [`ABSENT`]) into `out`. For fused hot loops that stage a fixed
    /// chunk of keys in registers instead of round-tripping block-sized
    /// heap scratch.
    #[inline]
    pub fn probe_array<const N: usize>(&self, keys: &[u64; N], out: &mut [u32; N]) {
        let mut idx = [0usize; N];
        for (s, &k) in idx.iter_mut().zip(keys) {
            *s = splitmix64(k) as usize & self.mask;
        }
        let mut first = [VACANT; N];
        for (f, &s) in first.iter_mut().zip(&idx) {
            *f = self.slots[s];
        }
        for (o, ((&k, &s), f)) in out.iter_mut().zip(keys.iter().zip(&idx).zip(first)) {
            *o = if f.id == EMPTY {
                ABSENT
            } else if f.key == k {
                f.id
            } else {
                self.probe_from(s, k)
            };
        }
    }

    /// Serialize the table as one framed, checksummed record: capacity,
    /// entry count, and the raw slot plane (layout-exact, so a decoded
    /// index probes identically — same collisions, same walk order).
    pub fn to_persist_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u64(self.slots.len() as u64);
        enc.u64(self.len as u64);
        for s in &self.slots {
            enc.u64(s.key);
            enc.u32(s.id);
        }
        frame(KIND_FLAT, &enc.into_bytes())
    }

    /// Deserialize a record written by [`FlatIndex::to_persist_bytes`],
    /// validating the table invariants (power-of-two capacity, occupied
    /// slot count matching `len`, dense ids `0..len` each appearing
    /// once). Corrupt input errors; it never panics.
    pub fn from_persist_bytes(bytes: &[u8]) -> PersistResult<FlatIndex> {
        let f = read_frame_of(bytes, 0, KIND_FLAT)?;
        let mut dec = Decoder::new(f.payload);
        let cap = dec.u64("table capacity")?;
        let len = dec.u64("entry count")?;
        if cap == 0 || !cap.is_power_of_two() || cap as usize * 12 > dec.remaining() {
            return Err(dec.corrupt(format!("implausible table capacity {cap}")));
        }
        if len > cap {
            return Err(dec.corrupt(format!("{len} entries exceed capacity {cap}")));
        }
        let (cap, len) = (cap as usize, len as u32);
        let mut slots = Vec::with_capacity(cap);
        let mut id_seen = vec![false; len as usize];
        for i in 0..cap {
            let key = dec.u64("slot key")?;
            let id = dec.u32("slot id")?;
            if id != EMPTY {
                if id >= len {
                    return Err(dec.corrupt(format!("slot {i}: id {id} out of range {len}")));
                }
                if std::mem::replace(&mut id_seen[id as usize], true) {
                    return Err(dec.corrupt(format!("slot {i}: duplicate id {id}")));
                }
            }
            slots.push(Slot { key, id });
        }
        dec.finish()?;
        if id_seen.iter().any(|&s| !s) {
            return Err(PersistError::corrupt(
                0,
                format!("occupied slots do not cover ids 0..{len}"),
            ));
        }
        Ok(FlatIndex {
            slots,
            mask: cap - 1,
            len,
        })
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(&mut self.slots, vec![VACANT; new_cap]);
        self.mask = new_cap - 1;
        for s in old {
            if s.id == EMPTY {
                continue;
            }
            let mut slot = splitmix64(s.key) as usize & self.mask;
            while self.slots[slot].id != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = s;
        }
    }
}

impl SpaceUsage for FlatIndex {
    fn space_bytes(&self) -> usize {
        // Semantic payload: one key + one id per distinct entry (the
        // table's empty slack is an engineering constant factor, like a
        // HashMap's load-factor headroom, and is excluded by the
        // space-accounting convention in `crate::space`).
        self.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_in_first_insert_order() {
        let mut ix = FlatIndex::with_capacity(4);
        assert_eq!(ix.insert_or_get(100), 0);
        assert_eq!(ix.insert_or_get(7), 1);
        assert_eq!(ix.insert_or_get(100), 0);
        assert_eq!(ix.insert_or_get(u64::MAX), 2);
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.get(7), Some(1));
        assert_eq!(ix.get(8), None);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut ix = FlatIndex::with_capacity(2);
        for k in 0..1000u64 {
            assert_eq!(ix.insert_or_get(k * 31 + 5), k as u32);
        }
        assert_eq!(ix.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(ix.get(k * 31 + 5), Some(k as u32), "key {k}");
        }
        assert_eq!(ix.get(4), None);
    }

    #[test]
    fn zero_key_is_a_valid_key() {
        let mut ix = FlatIndex::with_capacity(2);
        assert_eq!(ix.get(0), None);
        assert_eq!(ix.insert_or_get(0), 0);
        assert_eq!(ix.get(0), Some(0));
    }

    #[test]
    fn empty_index_probes_cleanly() {
        let ix = FlatIndex::with_capacity(0);
        assert!(ix.is_empty());
        assert_eq!(ix.get(42), None);
        assert_eq!(ix.space_bytes(), 0);
    }

    #[test]
    fn reserve_satisfies_its_own_load_factor() {
        // Boundary sizes: the reserved table must accept `expected` keys
        // without a second grow-rehash (ceiling division matters:
        // reserve(10) needs 32 slots, not 16).
        for expected in 1..200usize {
            let mut ix = FlatIndex::with_capacity(0);
            ix.reserve(expected);
            let cap = ix.heap_bytes();
            for k in 0..expected as u64 {
                ix.insert_or_get(k * 7 + 1);
            }
            assert_eq!(ix.heap_bytes(), cap, "reserve({expected}) regrew");
        }
    }

    #[test]
    fn clear_keeps_capacity_and_resets_ids() {
        let mut ix = FlatIndex::with_capacity(4);
        for k in 0..100u64 {
            ix.insert_or_get(k);
        }
        let cap = ix.heap_bytes();
        ix.clear();
        assert!(ix.is_empty());
        assert_eq!(ix.get(5), None);
        assert_eq!(ix.heap_bytes(), cap, "clear must not shrink the table");
        // Dense ids restart from 0 and reuse is allocation-stable.
        assert_eq!(ix.insert_or_get(77), 0);
        for k in 0..100u64 {
            ix.insert_or_get(k);
        }
        assert_eq!(ix.heap_bytes(), cap, "same key count must not regrow");
    }

    #[test]
    fn with_capacity_satisfies_its_own_load_factor() {
        // Regression for the truncating-division boundary: a table built
        // for exactly `expected` keys must absorb all of them without a
        // mid-fill rebuild, including at exact power-of-two load-factor
        // boundaries (expected = 11 → 32 slots, not 16).
        for expected in 1..200usize {
            let ix = FlatIndex::with_capacity(expected);
            let cap = ix.heap_bytes();
            let mut ix = ix;
            for k in 0..expected as u64 {
                ix.insert_or_get(k * 11 + 3);
            }
            assert_eq!(ix.heap_bytes(), cap, "with_capacity({expected}) regrew");
        }
    }

    #[test]
    fn probe_batch_matches_scalar_gets() {
        // Mixed hit/miss workloads at every remainder length, against an
        // index with plenty of collisions.
        let mut ix = FlatIndex::with_capacity(64);
        for k in 0..500u64 {
            ix.insert_or_get(k * 3 + 1);
        }
        let mut out = Vec::new();
        for len in [0usize, 1, 5, 7, 8, 9, 16, 33, 100] {
            let keys: Vec<u64> = (0..len as u64).map(|i| i * 2 + 1).collect();
            ix.probe_batch(&keys, &mut out);
            assert_eq!(out.len(), len);
            for (&k, &id) in keys.iter().zip(&out) {
                match ix.get(k) {
                    Some(want) => assert_eq!(id, want, "key {k}"),
                    None => assert_eq!(id, ABSENT, "key {k}"),
                }
            }
        }
    }

    #[test]
    fn probe_batch_on_empty_index_is_all_absent() {
        let ix = FlatIndex::with_capacity(0);
        let keys: Vec<u64> = (0..20).collect();
        let mut out = vec![123; 3]; // stale contents must be cleared
        ix.probe_batch(&keys, &mut out);
        assert_eq!(out, vec![ABSENT; 20]);
    }

    #[test]
    fn probe_batch_resolves_adversarial_collisions() {
        // Keys congruent mod the table size pile into one neighborhood;
        // the batched fallback walk must resolve them like the scalar one.
        let mut ix = FlatIndex::with_capacity(8);
        let cap = 16u64;
        let keys: Vec<u64> = (0..12).map(|i| i * cap).collect();
        for &k in &keys {
            ix.insert_or_get(k);
        }
        let mut probe: Vec<u64> = keys.clone();
        probe.push(13 * cap); // absent, same neighborhood
        let mut out = Vec::new();
        ix.probe_batch(&probe, &mut out);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(out[i], ix.get(k).unwrap());
        }
        assert_eq!(*out.last().unwrap(), ABSENT);
    }

    #[test]
    fn adversarially_colliding_keys_still_resolve() {
        // Keys congruent mod the table size collide in the same slot
        // neighborhood; linear probing must keep them distinct.
        let mut ix = FlatIndex::with_capacity(8);
        let cap = 16u64;
        for i in 0..12 {
            ix.insert_or_get(i * cap);
        }
        for i in 0..12 {
            assert_eq!(ix.get(i * cap), Some(i as u32));
        }
    }
}
