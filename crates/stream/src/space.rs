//! Measured space accounting.
//!
//! The paper's headline claims are *space* bounds. Rather than trusting
//! asymptotics, every sketch in this repository reports its concrete
//! footprint through [`SpaceUsage`], and the experiment harness sums these
//! to produce the measured-space columns of the E6/E9 tables.

/// Types that can report the bytes of working state they hold.
///
/// The convention is to count the *semantic* payload (counters, samples,
/// hash seeds) rather than allocator overhead: that is the quantity the
/// paper's `O(·)` bounds describe.
pub trait SpaceUsage {
    /// Bytes of working state.
    fn space_bytes(&self) -> usize;

    /// Convenience: space in 64-bit words, rounded up.
    fn space_words(&self) -> usize {
        self.space_bytes().div_ceil(8)
    }
}

impl<T: SpaceUsage> SpaceUsage for Vec<T> {
    fn space_bytes(&self) -> usize {
        self.iter().map(|x| x.space_bytes()).sum()
    }
}

impl<T: SpaceUsage> SpaceUsage for Option<T> {
    fn space_bytes(&self) -> usize {
        self.as_ref().map_or(0, |x| x.space_bytes())
    }
}

impl<A: SpaceUsage, B: SpaceUsage> SpaceUsage for (A, B) {
    fn space_bytes(&self) -> usize {
        self.0.space_bytes() + self.1.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(usize);
    impl SpaceUsage for Fixed {
        fn space_bytes(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn words_round_up() {
        assert_eq!(Fixed(1).space_words(), 1);
        assert_eq!(Fixed(8).space_words(), 1);
        assert_eq!(Fixed(9).space_words(), 2);
        assert_eq!(Fixed(0).space_words(), 0);
    }

    #[test]
    fn containers_sum() {
        let v = vec![Fixed(3), Fixed(5)];
        assert_eq!(v.space_bytes(), 8);
        let o: Option<Fixed> = None;
        assert_eq!(o.space_bytes(), 0);
        assert_eq!((Fixed(2), Fixed(4)).space_bytes(), 6);
    }
}
