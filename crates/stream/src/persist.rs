//! Durable estimator state: versioned, checksummed binary codecs plus a
//! segment-based write-ahead log and snapshot manifest.
//!
//! Everything here is hand-rolled on `std` only (like `sgs-prng`): a
//! little-endian [`Encoder`]/[`Decoder`] pair, an FNV-1a-64 checksum, and
//! a fixed frame format shared by every on-disk record:
//!
//! ```text
//! +-------+---------+------+----------+-------------+----------+----------+
//! | magic | version | kind | reserved | payload len |  payload | checksum |
//! | SGSP  |   u16   |  u8  |    u8    |     u64     |  (bytes) | FNV-1a64 |
//! +-------+---------+------+----------+-------------+----------+----------+
//! ```
//!
//! The checksum covers every byte before it, so a torn write or a flipped
//! bit anywhere in a record is detected before one field is interpreted.
//! Decoders validate semantic invariants, too (edge endpoints ordered,
//! RNG state non-zero, table sizes powers of two), so corrupt input
//! *errors* — it never panics and never builds an inconsistent sketch.
//!
//! ## WAL + snapshot layout of a checkpoint directory
//!
//! ```text
//! D/
//!   CONFIG            caller-owned run configuration (one framed record)
//!   wal-000000.seg    framed RoutedUpdate blocks, then one seal record
//!   wal-000001.seg    ... (segments roll at a size threshold)
//!   snap-00000007.bin the snapshot with sequence number 7
//!   MANIFEST          points at the latest *complete* snapshot
//! ```
//!
//! The WAL is written during the ingest phase (the feed is durable before
//! estimation starts); snapshots are published with write-to-temp +
//! atomic rename, and `MANIFEST` is only swung after the snapshot file is
//! on disk — a crash mid-publish leaves the previous snapshot authoritative.
//!
//! **fsync points** (documented contract): the current WAL segment is
//! synced when it rolls and again at seal; a snapshot file is synced
//! before its rename; `MANIFEST` is synced before its rename; and the
//! checkpoint *directory* is synced after every entry change (segment
//! create, seal, atomic rename) — file-level fsync alone leaves the
//! directory entry itself volatile. Everything else is replayable from
//! those.
//!
//! Recovery of a torn WAL tail: [`read_wal`] scans records in order and,
//! at the first bad checksum or short record, truncates that segment at
//! the last good record boundary and drops any later segments (record
//! boundaries after a corrupt record cannot be trusted). A WAL without
//! its seal record is reported as unsealed — the ingest phase never
//! completed, so there is nothing consistent to resume.

use crate::sharded::{RoutedUpdate, ShardMap};
use crate::update::EdgeUpdate;
use sgs_graph::{Edge, VertexId};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// On-disk format version. Bumped on any layout change; decoders reject
/// other versions with [`PersistError::VersionMismatch`].
///
/// v2: the WAL seal record carries the [`crate::ShardMap`] placement
/// overrides, so a load-balanced deployment recovers into its placement.
/// v1 logs (pre-placement) are rejected at the frame level — the loud
/// rejection for version-mismatched maps.
pub const PERSIST_VERSION: u16 = 2;

/// Frame magic: every persisted record starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"SGSP";

/// Frame kinds (one per record type; a decoder checks the kind it expects).
pub const KIND_WAL_BLOCK: u8 = 1;
/// WAL seal record: ingest completed, totals recorded.
pub const KIND_WAL_SEAL: u8 = 2;
/// A full run snapshot (payload owned by `sgs-query`).
pub const KIND_SNAPSHOT: u8 = 3;
/// The manifest record naming the latest complete snapshot.
pub const KIND_MANIFEST: u8 = 4;
/// An [`crate::L0Sampler`] state record.
pub const KIND_L0: u8 = 5;
/// A [`crate::ReservoirBank`] state record.
pub const KIND_RESERVOIR: u8 = 6;
/// A [`crate::FlatIndex`] state record.
pub const KIND_FLAT: u8 = 7;
/// Caller-owned run configuration (the CLI's pattern/trials/seed blob).
pub const KIND_CONFIG: u8 = 8;
/// A shard-pass state record (payload owned by `sgs-query`).
pub const KIND_PASS_STATE: u8 = 9;

const FRAME_HEADER: usize = 4 + 2 + 1 + 1 + 8;
const CHECKSUM_LEN: usize = 8;

/// Errors from every durability path — and from the CLI's input loading,
/// which shares this type so file/offset context is reported uniformly.
#[derive(Debug)]
pub enum PersistError {
    /// An OS-level I/O failure, with the path that failed.
    Io {
        /// Path of the file or directory the operation touched.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Bytes were read but fail validation (checksum, magic, semantic
    /// invariants, malformed text input).
    Corrupt {
        /// Path of the offending file (empty until located).
        path: String,
        /// Byte offset (or line number for text input) of the failure.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// A record ends before its declared extent — the torn-write shape.
    Truncated {
        /// Path of the offending file (empty until located).
        path: String,
        /// Byte offset where the record started or broke off.
        offset: u64,
        /// What was being read.
        detail: String,
    },
    /// The record was written by a different format version.
    VersionMismatch {
        /// Path of the offending file (empty until located).
        path: String,
        /// Version found in the record header.
        found: u16,
        /// The version this build reads.
        supported: u16,
    },
}

impl PersistError {
    /// An I/O error tagged with its path.
    pub fn io(path: impl AsRef<Path>, source: std::io::Error) -> Self {
        PersistError::Io {
            path: path.as_ref().display().to_string(),
            source,
        }
    }

    /// A corruption error (path filled in by the file layer).
    pub fn corrupt(offset: u64, detail: impl Into<String>) -> Self {
        PersistError::Corrupt {
            path: String::new(),
            offset,
            detail: detail.into(),
        }
    }

    /// Attach a file path to a buffer-level error that lacks one.
    pub fn located(mut self, at: impl AsRef<Path>) -> Self {
        let p = at.as_ref().display().to_string();
        match &mut self {
            PersistError::Io { path, .. }
            | PersistError::Corrupt { path, .. }
            | PersistError::Truncated { path, .. }
            | PersistError::VersionMismatch { path, .. } => {
                if path.is_empty() {
                    *path = p;
                }
            }
        }
        self
    }

    /// Whether this is the torn-tail shape ([`PersistError::Truncated`]
    /// or [`PersistError::Corrupt`]) that WAL recovery handles by
    /// truncation, as opposed to a hard error.
    pub fn is_tail_damage(&self) -> bool {
        matches!(
            self,
            PersistError::Corrupt { .. } | PersistError::Truncated { .. }
        )
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let loc = |p: &str| {
            if p.is_empty() {
                "<memory>".to_string()
            } else {
                p.to_string()
            }
        };
        match self {
            PersistError::Io { path, source } => write!(f, "{}: {source}", loc(path)),
            PersistError::Corrupt {
                path,
                offset,
                detail,
            } => write!(f, "{}: corrupt at byte {offset}: {detail}", loc(path)),
            PersistError::Truncated {
                path,
                offset,
                detail,
            } => write!(f, "{}: truncated at byte {offset}: {detail}", loc(path)),
            PersistError::VersionMismatch {
                path,
                found,
                supported,
            } => write!(
                f,
                "{}: format version {found} not supported (this build reads version {supported})",
                loc(path)
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Result alias for every durability path.
pub type PersistResult<T> = Result<T, PersistError>;

/// FNV-1a 64-bit checksum over `bytes` — small, dependency-free, and
/// plenty for torn-write detection (this is an integrity check against
/// accidents, not an adversary).
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian append-only byte sink for record payloads.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64` (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes (no length prefix).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append a length-prefixed byte string.
    pub fn blob(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.bytes(b);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.blob(s.as_bytes());
    }

    /// Append a normalized edge as its packed key.
    pub fn edge(&mut self, e: Edge) {
        self.u64(e.key());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The accumulated payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Offset-tracked reader over a payload; every read is bounds-checked and
/// failures carry the byte offset. Corrupt input errors — it never
/// panics and never over-allocates (collection lengths are validated
/// against the bytes actually present before any allocation).
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn short(&self, what: &str) -> PersistError {
        PersistError::Truncated {
            path: String::new(),
            offset: self.pos as u64,
            detail: format!("payload ends inside {what}"),
        }
    }

    /// A [`PersistError::Corrupt`] anchored at the current offset.
    pub fn corrupt(&self, detail: impl Into<String>) -> PersistError {
        PersistError::corrupt(self.pos as u64, detail)
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &str) -> PersistResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.short(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &str) -> PersistResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self, what: &str) -> PersistResult<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes(b.try_into().expect("len checked")))
    }

    /// Read a `u32`.
    pub fn u32(&mut self, what: &str) -> PersistResult<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("len checked")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self, what: &str) -> PersistResult<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("len checked")))
    }

    /// Read an `i64`.
    pub fn i64(&mut self, what: &str) -> PersistResult<i64> {
        let b = self.take(8, what)?;
        Ok(i64::from_le_bytes(b.try_into().expect("len checked")))
    }

    /// Read a `u64` and validate it fits a `usize` count of `elem_bytes`
    /// items within the remaining payload — the guard that keeps a
    /// bit-flipped length from driving a huge allocation.
    pub fn count(&mut self, elem_bytes: usize, what: &str) -> PersistResult<usize> {
        let n = self.u64(what)?;
        let fits = usize::try_from(n)
            .ok()
            .and_then(|n| n.checked_mul(elem_bytes.max(1)))
            .is_some_and(|total| total <= self.remaining());
        if !fits {
            return Err(self.corrupt(format!("{what} count {n} exceeds payload")));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed byte string.
    pub fn blob(&mut self, what: &str) -> PersistResult<&'a [u8]> {
        let n = self.count(1, what)?;
        self.take(n, what)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> PersistResult<String> {
        let b = self.blob(what)?;
        String::from_utf8(b.to_vec()).map_err(|_| self.corrupt(format!("{what} is not UTF-8")))
    }

    /// Read a normalized edge, validating the endpoint order invariant.
    pub fn edge(&mut self, what: &str) -> PersistResult<Edge> {
        let key = self.u64(what)?;
        let (lo, hi) = ((key >> 32) as u32, key as u32);
        if lo >= hi {
            return Err(self.corrupt(format!("{what}: edge key {key:#x} is not normalized")));
        }
        Ok(Edge::new(VertexId(lo), VertexId(hi)))
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(self) -> PersistResult<()> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt(format!("{} trailing bytes", self.buf.len() - self.pos)));
        }
        Ok(())
    }
}

/// Items a [`crate::ReservoirBank`] can persist.
pub trait PersistItem: Copy {
    /// Append this item to `enc`.
    fn encode_item(&self, enc: &mut Encoder);
    /// Read one item, validating invariants.
    fn decode_item(dec: &mut Decoder) -> PersistResult<Self>;
}

impl PersistItem for Edge {
    fn encode_item(&self, enc: &mut Encoder) {
        enc.edge(*self);
    }
    fn decode_item(dec: &mut Decoder) -> PersistResult<Self> {
        dec.edge("reservoir item")
    }
}

impl PersistItem for u64 {
    fn encode_item(&self, enc: &mut Encoder) {
        enc.u64(*self);
    }
    fn decode_item(dec: &mut Decoder) -> PersistResult<Self> {
        dec.u64("reservoir item")
    }
}

/// Wrap `payload` in the standard frame: magic, version, kind, length,
/// payload, FNV-1a-64 checksum over everything before the checksum.
pub fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&PERSIST_VERSION.to_le_bytes());
    out.push(kind);
    out.push(0); // reserved
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = checksum64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// One decoded frame: its kind, payload, and total on-disk length.
#[derive(Debug)]
pub struct Frame<'a> {
    /// Record kind byte.
    pub kind: u8,
    /// Validated payload bytes.
    pub payload: &'a [u8],
    /// Total frame length including header and checksum.
    pub len: usize,
}

/// Decode the frame starting at `buf[at..]`. `at` is only used to report
/// absolute offsets in errors. Checks, in order: header present, magic,
/// version, declared extent within `buf`, checksum.
pub fn read_frame(buf: &[u8], at: u64) -> PersistResult<Frame<'_>> {
    if buf.len() < FRAME_HEADER {
        return Err(PersistError::Truncated {
            path: String::new(),
            offset: at,
            detail: format!(
                "frame header needs {FRAME_HEADER} bytes, {} left",
                buf.len()
            ),
        });
    }
    if buf[..4] != MAGIC {
        return Err(PersistError::corrupt(at, "bad frame magic"));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != PERSIST_VERSION {
        return Err(PersistError::VersionMismatch {
            path: String::new(),
            found: version,
            supported: PERSIST_VERSION,
        });
    }
    let kind = buf[6];
    let payload_len = u64::from_le_bytes(buf[8..16].try_into().expect("len checked"));
    let total = (payload_len as u128) + (FRAME_HEADER + CHECKSUM_LEN) as u128;
    if total > buf.len() as u128 {
        return Err(PersistError::Truncated {
            path: String::new(),
            offset: at,
            detail: format!(
                "frame declares {payload_len}-byte payload, {} bytes left",
                buf.len()
            ),
        });
    }
    let total = total as usize;
    let body = &buf[..total - CHECKSUM_LEN];
    let stored = u64::from_le_bytes(buf[total - CHECKSUM_LEN..total].try_into().expect("len ok"));
    if checksum64(body) != stored {
        return Err(PersistError::corrupt(at, "frame checksum mismatch"));
    }
    Ok(Frame {
        kind,
        payload: &buf[FRAME_HEADER..total - CHECKSUM_LEN],
        len: total,
    })
}

/// Decode a frame and require a specific kind.
pub fn read_frame_of(buf: &[u8], at: u64, kind: u8) -> PersistResult<Frame<'_>> {
    let f = read_frame(buf, at)?;
    if f.kind != kind {
        return Err(PersistError::corrupt(
            at,
            format!("expected record kind {kind}, found {}", f.kind),
        ));
    }
    Ok(f)
}

fn read_file(path: &Path) -> PersistResult<Vec<u8>> {
    let mut f = File::open(path).map_err(|e| PersistError::io(path, e))?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)
        .map_err(|e| PersistError::io(path, e))?;
    Ok(buf)
}

/// Fsync a directory so creates/renames/removals of its entries are
/// durable — the complement of the file-level fsync points. A file's
/// `sync_all` makes its *contents* durable, but the directory entry
/// naming it lives in the parent directory's data: a crash after an
/// atomic rename can lose the rename itself unless the directory is
/// synced too.
pub fn fsync_dir(dir: &Path) -> PersistResult<()> {
    let d = File::open(dir).map_err(|e| PersistError::io(dir, e))?;
    d.sync_all().map_err(|e| PersistError::io(dir, e))
}

fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Write `bytes` to `path` via a temporary file + atomic rename, syncing
/// the temporary before the rename and the parent directory after it
/// (two of the documented fsync points — without the latter, a crash
/// after the rename can lose the directory-entry swing entirely).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> PersistResult<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| PersistError::io(&tmp, e))?;
    f.write_all(bytes).map_err(|e| PersistError::io(&tmp, e))?;
    f.sync_all().map_err(|e| PersistError::io(&tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| PersistError::io(path, e))?;
    fsync_dir(parent_dir(path))
}

// ---------------------------------------------------------------------------
// RoutedUpdate block codec (the WAL's record payload)
// ---------------------------------------------------------------------------

const ROUTED_BYTES: usize = 4 + 2 + 2 + 8 + 1;

/// Encode one WAL block of routed updates.
pub fn encode_routed_block(block: &[RoutedUpdate]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u64(block.len() as u64);
    for r in block {
        enc.u32(r.position);
        enc.u16(r.owner);
        enc.u16(r.other);
        enc.edge(r.update.edge);
        enc.u8(r.update.delta as u8);
    }
    enc.into_bytes()
}

/// Decode one WAL block, validating every update (normalized edge,
/// strict ±1 delta).
pub fn decode_routed_block(payload: &[u8]) -> PersistResult<Vec<RoutedUpdate>> {
    let mut dec = Decoder::new(payload);
    let n = dec.count(ROUTED_BYTES, "routed block")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let position = dec.u32("update position")?;
        let owner = dec.u16("owner shard")?;
        let other = dec.u16("other shard")?;
        let edge = dec.edge("update edge")?;
        let delta = dec.u8("update delta")? as i8;
        if delta != 1 && delta != -1 {
            return Err(dec.corrupt(format!("update delta {delta} outside strict turnstile")));
        }
        out.push(RoutedUpdate {
            position,
            owner,
            other,
            update: EdgeUpdate { edge, delta },
        });
    }
    dec.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------------

/// Totals recorded by the WAL seal record — the proof that the ingest
/// phase completed and the log holds the whole stream. Since format v2
/// the seal also records the placement the stream was routed with
/// (uniform hash + [`ShardMap`] overrides), so recovery rebuilds a
/// load-balanced deployment into its placement instead of assuming
/// uniform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalMeta {
    /// Vertex count `n` of the underlying graph.
    pub num_vertices: u64,
    /// Source stream length (positions are `0..stream_len`).
    pub stream_len: u64,
    /// Shard count the stream was routed for.
    pub num_shards: u64,
    /// WAL blocks written before the seal.
    pub total_blocks: u64,
    /// Updates across all blocks (== `stream_len`).
    pub total_updates: u64,
    /// Nominal updates per block (the last block may be short).
    pub block_len: u64,
    /// Per-vertex placement overrides on top of the uniform hash
    /// (empty = uniform placement).
    pub overrides: Vec<(u32, u16)>,
}

impl WalMeta {
    /// The placement the log's routed buffer was produced under —
    /// thread this through [`crate::ShardedFeed::from_routed_with_map`]
    /// on recovery.
    pub fn shard_map(&self) -> ShardMap {
        ShardMap::with_overrides(self.num_shards as usize, self.overrides.clone())
    }

    fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u64(self.num_vertices);
        enc.u64(self.stream_len);
        enc.u64(self.num_shards);
        enc.u64(self.total_blocks);
        enc.u64(self.total_updates);
        enc.u64(self.block_len);
        enc.u64(self.overrides.len() as u64);
        for &(v, s) in &self.overrides {
            enc.u32(v);
            enc.u16(s);
        }
        enc.into_bytes()
    }

    fn decode(payload: &[u8]) -> PersistResult<Self> {
        let mut dec = Decoder::new(payload);
        let mut meta = WalMeta {
            num_vertices: dec.u64("num_vertices")?,
            stream_len: dec.u64("stream_len")?,
            num_shards: dec.u64("num_shards")?,
            total_blocks: dec.u64("total_blocks")?,
            total_updates: dec.u64("total_updates")?,
            block_len: dec.u64("block_len")?,
            overrides: Vec::new(),
        };
        let n_over = dec.count(6, "override count")?;
        for _ in 0..n_over {
            let v = dec.u32("override vertex")?;
            let s = dec.u16("override shard")?;
            if (s as u64) >= meta.num_shards {
                return Err(dec.corrupt(format!(
                    "override sends vertex {v} to shard {s}, only {} shards",
                    meta.num_shards
                )));
            }
            meta.overrides.push((v, s));
        }
        dec.finish()?;
        Ok(meta)
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.seg"))
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:08}.bin"))
}

/// Default WAL segment roll threshold (bytes).
pub const DEFAULT_SEGMENT_BYTES: usize = 1 << 20;

/// Appends framed [`RoutedUpdate`] blocks to rolling segment files and
/// finishes with a seal record. Created fresh per run — any files from a
/// previous run in the directory (`wal-*.seg`, `snap-*.bin`, `MANIFEST`,
/// `CONFIG`) are removed first.
pub struct WalWriter {
    dir: PathBuf,
    segment_bytes: usize,
    seg_index: u64,
    file: File,
    path: PathBuf,
    written: usize,
    blocks: u64,
    updates: u64,
}

impl WalWriter {
    /// Start a fresh WAL in `dir` (created if absent), rolling segments
    /// at roughly `segment_bytes`.
    pub fn create(dir: &Path, segment_bytes: usize) -> PersistResult<Self> {
        fs::create_dir_all(dir).map_err(|e| PersistError::io(dir, e))?;
        clear_run_files(dir)?;
        let path = segment_path(dir, 0);
        let file = File::create(&path).map_err(|e| PersistError::io(&path, e))?;
        // Make the removals above and the new segment's entry durable.
        fsync_dir(dir)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            segment_bytes: segment_bytes.max(1),
            seg_index: 0,
            file,
            path,
            written: 0,
            blocks: 0,
            updates: 0,
        })
    }

    /// Append one block of routed updates.
    pub fn append_block(&mut self, block: &[RoutedUpdate]) -> PersistResult<()> {
        if self.written >= self.segment_bytes {
            // fsync point: a segment is durable before its successor opens.
            self.file
                .sync_all()
                .map_err(|e| PersistError::io(&self.path, e))?;
            self.seg_index += 1;
            self.path = segment_path(&self.dir, self.seg_index);
            self.file = File::create(&self.path).map_err(|e| PersistError::io(&self.path, e))?;
            fsync_dir(&self.dir)?;
            self.written = 0;
        }
        let rec = frame(KIND_WAL_BLOCK, &encode_routed_block(block));
        self.file
            .write_all(&rec)
            .map_err(|e| PersistError::io(&self.path, e))?;
        self.written += rec.len();
        self.blocks += 1;
        self.updates += block.len() as u64;
        Ok(())
    }

    /// Blocks appended so far (including blocks recovered by
    /// [`WalWriter::reopen`]).
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Updates appended so far (including updates recovered by
    /// [`WalWriter::reopen`]).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Write the seal record and fsync: after this returns, the whole
    /// stream is durable and recovery can rebuild the feed from disk.
    /// Records uniform placement — a feed routed under a non-trivial
    /// [`ShardMap`] must seal through [`WalWriter::seal_with_map`] or
    /// recovery will reject the log's routing.
    pub fn seal(
        self,
        num_vertices: usize,
        num_shards: usize,
        block_len: usize,
    ) -> PersistResult<WalMeta> {
        self.seal_with_map(num_vertices, &ShardMap::uniform(num_shards), block_len)
    }

    /// [`WalWriter::seal`] recording an explicit placement: the map's
    /// overrides ride the seal record, so `sgs recover` rebuilds the
    /// load-balanced feed with the routing it was written under.
    pub fn seal_with_map(
        mut self,
        num_vertices: usize,
        map: &ShardMap,
        block_len: usize,
    ) -> PersistResult<WalMeta> {
        let meta = WalMeta {
            num_vertices: num_vertices as u64,
            stream_len: self.updates,
            num_shards: map.num_shards() as u64,
            total_blocks: self.blocks,
            total_updates: self.updates,
            block_len: block_len as u64,
            overrides: map.overrides().to_vec(),
        };
        let rec = frame(KIND_WAL_SEAL, &meta.encode());
        self.file
            .write_all(&rec)
            .map_err(|e| PersistError::io(&self.path, e))?;
        // fsync point: seal + every record before it hit the platter,
        // and the directory so every segment's entry survives with it.
        self.file
            .sync_all()
            .map_err(|e| PersistError::io(&self.path, e))?;
        fsync_dir(&self.dir)?;
        Ok(meta)
    }

    /// Reopen an existing WAL for continued appends — the serve restart
    /// path. Scans the log first ([`read_wal`], truncating any torn
    /// tail in place), strips the seal record if present (a gracefully
    /// stopped server reopens its log unsealed and keeps ingesting),
    /// and resumes appending to the last surviving segment. The
    /// returned [`RecoveredWal`] holds every intact block; the writer's
    /// block/update counters continue from those totals, so a later
    /// seal records whole-history totals.
    pub fn reopen(dir: &Path, segment_bytes: usize) -> PersistResult<(Self, RecoveredWal)> {
        let recovered = read_wal(dir)?;
        let mut seg_paths = Vec::new();
        for entry in fs::read_dir(dir).map_err(|e| PersistError::io(dir, e))? {
            let entry = entry.map_err(|e| PersistError::io(dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("wal-") && name.ends_with(".seg") {
                seg_paths.push(entry.path());
            }
        }
        seg_paths.sort();
        let path = seg_paths.last().cloned().expect("read_wal saw segments");
        if recovered.meta.is_some() {
            // The seal is the last record of the last segment; cut the
            // segment back to just before it so appends continue the
            // block sequence.
            let buf = read_file(&path)?;
            let mut off = 0usize;
            let mut seal_at = None;
            while off < buf.len() {
                let f = read_frame(&buf[off..], off as u64).map_err(|e| e.located(&path))?;
                if f.kind == KIND_WAL_SEAL {
                    seal_at = Some(off);
                }
                off += f.len;
            }
            let seal_at = seal_at.ok_or_else(|| {
                PersistError::corrupt(0, "sealed WAL lost its seal record").located(&path)
            })?;
            let f = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| PersistError::io(&path, e))?;
            f.set_len(seal_at as u64)
                .map_err(|e| PersistError::io(&path, e))?;
            f.sync_all().map_err(|e| PersistError::io(&path, e))?;
        }
        let mut file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| PersistError::io(&path, e))?;
        let written = file
            .seek(SeekFrom::End(0))
            .map_err(|e| PersistError::io(&path, e))? as usize;
        let seg_index = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("wal-"))
            .and_then(|n| n.strip_suffix(".seg"))
            .and_then(|n| n.parse::<u64>().ok())
            .expect("segment names are wal-NNNNNN.seg");
        Ok((
            WalWriter {
                dir: dir.to_path_buf(),
                segment_bytes: segment_bytes.max(1),
                seg_index,
                file,
                path,
                written,
                blocks: recovered.blocks.len() as u64,
                updates: recovered.blocks.iter().map(|b| b.len() as u64).sum(),
            },
            recovered,
        ))
    }
}

fn clear_run_files(dir: &Path) -> PersistResult<()> {
    for entry in fs::read_dir(dir).map_err(|e| PersistError::io(dir, e))? {
        let entry = entry.map_err(|e| PersistError::io(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ours = (name.starts_with("wal-") && name.ends_with(".seg"))
            || (name.starts_with("snap-") && name.ends_with(".bin"))
            || name == "MANIFEST"
            || name == "CONFIG";
        if ours {
            fs::remove_file(entry.path()).map_err(|e| PersistError::io(entry.path(), e))?;
        }
    }
    Ok(())
}

/// The outcome of scanning a WAL directory.
pub struct RecoveredWal {
    /// Every intact block, in order.
    pub blocks: Vec<Vec<RoutedUpdate>>,
    /// The seal record, if the ingest phase completed and the tail is
    /// intact. `None` means the log is unsealed — there is nothing
    /// consistent to resume from it.
    pub meta: Option<WalMeta>,
    /// Human-readable report when a torn/corrupt tail was truncated.
    pub truncation: Option<String>,
}

/// Scan `dir`'s WAL segments in order. On the first bad record the
/// damaged segment is truncated at the last good record boundary, later
/// segments are deleted (their boundaries can't be trusted), and the
/// report is returned in [`RecoveredWal::truncation`]. Version-mismatch
/// records are a hard error (a future format, not tail damage).
pub fn read_wal(dir: &Path) -> PersistResult<RecoveredWal> {
    let mut seg_paths = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| PersistError::io(dir, e))? {
        let entry = entry.map_err(|e| PersistError::io(dir, e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("wal-") && name.ends_with(".seg") {
            seg_paths.push(entry.path());
        }
    }
    seg_paths.sort();
    if seg_paths.is_empty() {
        return Err(PersistError::Io {
            path: dir.display().to_string(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "no WAL segments"),
        });
    }
    let mut blocks = Vec::new();
    let mut meta = None;
    let mut truncation = None;
    'segments: for (si, path) in seg_paths.iter().enumerate() {
        let buf = read_file(path)?;
        let mut off = 0usize;
        while off < buf.len() {
            if meta.is_some() {
                return Err(
                    PersistError::corrupt(off as u64, "records found after the WAL seal")
                        .located(path),
                );
            }
            match read_frame(&buf[off..], off as u64) {
                Ok(f) => {
                    match f.kind {
                        KIND_WAL_BLOCK => blocks
                            .push(decode_routed_block(f.payload).map_err(|e| e.located(path))?),
                        KIND_WAL_SEAL => {
                            meta = Some(WalMeta::decode(f.payload).map_err(|e| e.located(path))?)
                        }
                        k => {
                            return Err(PersistError::corrupt(
                                off as u64,
                                format!("unexpected record kind {k} in WAL"),
                            )
                            .located(path))
                        }
                    }
                    off += f.len;
                }
                Err(e) if e.is_tail_damage() => {
                    // Torn or corrupt tail: cut the segment back to the
                    // last good record and drop everything after it.
                    let report = format!(
                        "WAL tail damaged ({}); truncated {} to {off} bytes, dropped {} later segment(s)",
                        e.located(path),
                        path.display(),
                        seg_paths.len() - si - 1,
                    );
                    let f = OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|er| PersistError::io(path, er))?;
                    f.set_len(off as u64)
                        .map_err(|er| PersistError::io(path, er))?;
                    f.sync_all().map_err(|er| PersistError::io(path, er))?;
                    for later in &seg_paths[si + 1..] {
                        fs::remove_file(later).map_err(|er| PersistError::io(later, er))?;
                    }
                    truncation = Some(report);
                    break 'segments;
                }
                Err(e) => return Err(e.located(path)),
            }
        }
    }
    if let Some(m) = &meta {
        if m.total_blocks != blocks.len() as u64
            || m.total_updates != blocks.iter().map(|b| b.len() as u64).sum::<u64>()
        {
            return Err(PersistError::corrupt(
                0,
                format!(
                    "WAL seal records {} blocks / {} updates but {} blocks survived",
                    m.total_blocks,
                    m.total_updates,
                    blocks.len()
                ),
            )
            .located(&seg_paths[0]));
        }
    }
    Ok(RecoveredWal {
        blocks,
        meta,
        truncation,
    })
}

// ---------------------------------------------------------------------------
// Snapshots + manifest + config blob
// ---------------------------------------------------------------------------

/// Publish snapshot `seq`: write `snap-<seq>.bin` (temp + fsync +
/// rename), then swing `MANIFEST` at it the same way. A crash anywhere
/// in between leaves the previous manifest/snapshot pair authoritative.
pub fn publish_snapshot(dir: &Path, seq: u64, payload: &[u8]) -> PersistResult<PathBuf> {
    let path = snapshot_path(dir, seq);
    write_atomic(&path, &frame(KIND_SNAPSHOT, payload))?;
    let mut enc = Encoder::new();
    enc.u64(seq);
    write_atomic(
        &dir.join("MANIFEST"),
        &frame(KIND_MANIFEST, &enc.into_bytes()),
    )?;
    Ok(path)
}

/// Load the snapshot the manifest points at: `Ok(None)` when no snapshot
/// was ever published.
pub fn read_latest_snapshot(dir: &Path) -> PersistResult<Option<(u64, Vec<u8>)>> {
    let manifest = dir.join("MANIFEST");
    if !manifest.exists() {
        return Ok(None);
    }
    let buf = read_file(&manifest)?;
    let f = read_frame_of(&buf, 0, KIND_MANIFEST).map_err(|e| e.located(&manifest))?;
    let mut dec = Decoder::new(f.payload);
    let seq = dec.u64("snapshot seq").map_err(|e| e.located(&manifest))?;
    dec.finish().map_err(|e| e.located(&manifest))?;
    let spath = snapshot_path(dir, seq);
    if !spath.exists() {
        // A structured error, not a raw NotFound: the manifest is the
        // authority and it names a snapshot that is gone.
        return Err(PersistError::corrupt(
            0,
            format!(
                "MANIFEST points at missing snapshot {} (directory entry lost?)",
                spath.display()
            ),
        )
        .located(&manifest));
    }
    let sbuf = read_file(&spath)?;
    let sf = read_frame_of(&sbuf, 0, KIND_SNAPSHOT).map_err(|e| e.located(&spath))?;
    Ok(Some((seq, sf.payload.to_vec())))
}

/// Write the caller-owned run configuration blob (atomic).
pub fn write_config(dir: &Path, payload: &[u8]) -> PersistResult<()> {
    write_atomic(&dir.join("CONFIG"), &frame(KIND_CONFIG, payload))
}

/// Read the run configuration blob, if present.
pub fn read_config(dir: &Path) -> PersistResult<Option<Vec<u8>>> {
    let path = dir.join("CONFIG");
    if !path.exists() {
        return Ok(None);
    }
    let buf = read_file(&path)?;
    let f = read_frame_of(&buf, 0, KIND_CONFIG).map_err(|e| e.located(&path))?;
    Ok(Some(f.payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::InsertionStream;
    use crate::ShardedFeed;
    use sgs_graph::gen;

    fn routed(shards: usize) -> Vec<RoutedUpdate> {
        let g = gen::gnm(20, 60, 7);
        let s = InsertionStream::from_graph(&g, 8);
        ShardedFeed::partition(&s, shards).routed().to_vec()
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"hello persistence".to_vec();
        let rec = frame(KIND_CONFIG, &payload);
        let f = read_frame(&rec, 0).unwrap();
        assert_eq!(f.kind, KIND_CONFIG);
        assert_eq!(f.payload, &payload[..]);
        assert_eq!(f.len, rec.len());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let rec = frame(KIND_WAL_BLOCK, &encode_routed_block(&routed(3)[..7]));
        for byte in 0..rec.len() {
            for bit in 0..8 {
                let mut bad = rec.clone();
                bad[byte] ^= 1 << bit;
                let res =
                    read_frame(&bad, 0).and_then(|f| decode_routed_block(f.payload).map(|_| ()));
                assert!(
                    res.is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn short_buffer_is_truncated_not_panic() {
        let rec = frame(KIND_SNAPSHOT, b"0123456789");
        for cut in 0..rec.len() {
            let res = read_frame(&rec[..cut], 0);
            assert!(res.is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn version_mismatch_is_reported_with_both_versions() {
        let mut rec = frame(KIND_SNAPSHOT, b"x");
        rec[4] = 0x7f; // bump the version field
        match read_frame(&rec, 0) {
            Err(PersistError::VersionMismatch {
                found, supported, ..
            }) => {
                assert_eq!(found, 0x7f);
                assert_eq!(supported, PERSIST_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn routed_block_round_trips_exactly() {
        let block = routed(4);
        let back = decode_routed_block(&encode_routed_block(&block)).unwrap();
        assert_eq!(back, block);
        assert!(decode_routed_block(&encode_routed_block(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn wal_write_read_round_trip() {
        let dir = std::env::temp_dir().join("sgs_persist_wal_rt");
        let all = routed(2);
        let mut w = WalWriter::create(&dir, 256).unwrap(); // tiny segments to force rolls
        for chunk in all.chunks(9) {
            w.append_block(chunk).unwrap();
        }
        let sealed = w.seal(20, 2, 9).unwrap();
        let rec = read_wal(&dir).unwrap();
        assert_eq!(rec.meta, Some(sealed));
        assert!(rec.truncation.is_none());
        let flat: Vec<RoutedUpdate> = rec.blocks.into_iter().flatten().collect();
        assert_eq!(flat, all);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_truncated_cleanly() {
        let dir = std::env::temp_dir().join("sgs_persist_wal_torn");
        let all = routed(2);
        let mut w = WalWriter::create(&dir, usize::MAX).unwrap();
        for chunk in all.chunks(10) {
            w.append_block(chunk).unwrap();
        }
        w.seal(20, 2, 10).unwrap();
        // Flip a byte near the end of the single segment (inside the seal
        // or the last block): recovery must truncate, not panic.
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 5] ^= 0xff;
        std::fs::write(&seg, &bytes).unwrap();
        let rec = read_wal(&dir).unwrap();
        assert!(rec.truncation.is_some());
        assert!(rec.meta.is_none(), "seal must not survive a damaged tail");
        let flat: Vec<RoutedUpdate> = rec.blocks.iter().flatten().copied().collect();
        assert_eq!(flat[..], all[..flat.len()], "surviving prefix is intact");
        // A second scan of the truncated log is clean.
        let again = read_wal(&dir).unwrap();
        assert!(again.truncation.is_none());
        assert_eq!(again.blocks.len(), rec.blocks.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_reopen_unsealed_continues_the_block_sequence() {
        let dir = std::env::temp_dir().join("sgs_persist_wal_reopen");
        let all = routed(2);
        let mut w = WalWriter::create(&dir, 256).unwrap();
        for chunk in all[..30].chunks(10) {
            w.append_block(chunk).unwrap();
        }
        drop(w); // a killed server: no seal
        let (mut w2, recovered) = WalWriter::reopen(&dir, 256).unwrap();
        assert!(recovered.meta.is_none());
        assert_eq!(w2.blocks(), 3);
        assert_eq!(w2.updates(), 30);
        for chunk in all[30..].chunks(10) {
            w2.append_block(chunk).unwrap();
        }
        let sealed = w2.seal(20, 2, 10).unwrap();
        assert_eq!(sealed.total_updates, all.len() as u64);
        let rec = read_wal(&dir).unwrap();
        assert_eq!(rec.meta, Some(sealed));
        let flat: Vec<RoutedUpdate> = rec.blocks.into_iter().flatten().collect();
        assert_eq!(flat, all);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_reopen_after_seal_strips_the_seal_and_continues() {
        let dir = std::env::temp_dir().join("sgs_persist_wal_reseal");
        let all = routed(2);
        let mut w = WalWriter::create(&dir, usize::MAX).unwrap();
        for chunk in all[..20].chunks(10) {
            w.append_block(chunk).unwrap();
        }
        w.seal(20, 2, 10).unwrap(); // graceful shutdown
        let (mut w2, recovered) = WalWriter::reopen(&dir, usize::MAX).unwrap();
        assert!(recovered.meta.is_some(), "the sealed log was consistent");
        assert_eq!(w2.blocks(), 2);
        for chunk in all[20..].chunks(10) {
            w2.append_block(chunk).unwrap();
        }
        let resealed = w2.seal(20, 2, 10).unwrap();
        let rec = read_wal(&dir).unwrap();
        assert_eq!(rec.meta, Some(resealed));
        let flat: Vec<RoutedUpdate> = rec.blocks.into_iter().flatten().collect();
        assert_eq!(flat, all, "whole history survives a seal/reopen cycle");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_pointing_at_missing_snapshot_is_a_structured_error() {
        let dir = std::env::temp_dir().join("sgs_persist_snap_gone");
        std::fs::create_dir_all(&dir).unwrap();
        clear_run_files(&dir).unwrap();
        publish_snapshot(&dir, 3, b"payload").unwrap();
        std::fs::remove_file(snapshot_path(&dir, 3)).unwrap();
        match read_latest_snapshot(&dir) {
            Err(PersistError::Corrupt { path, detail, .. }) => {
                assert!(path.ends_with("MANIFEST"));
                assert!(detail.contains("missing snapshot"), "got: {detail}");
            }
            other => panic!("expected a structured Corrupt error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_publish_and_manifest_point_at_latest() {
        let dir = std::env::temp_dir().join("sgs_persist_snap");
        std::fs::create_dir_all(&dir).unwrap();
        clear_run_files(&dir).unwrap();
        assert!(read_latest_snapshot(&dir).unwrap().is_none());
        publish_snapshot(&dir, 1, b"first").unwrap();
        publish_snapshot(&dir, 2, b"second").unwrap();
        let (seq, payload) = read_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(seq, 2);
        assert_eq!(payload, b"second");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_blob_round_trips() {
        let dir = std::env::temp_dir().join("sgs_persist_cfg");
        std::fs::create_dir_all(&dir).unwrap();
        clear_run_files(&dir).unwrap();
        assert!(read_config(&dir).unwrap().is_none());
        write_config(&dir, b"pattern=triangle").unwrap();
        assert_eq!(read_config(&dir).unwrap().unwrap(), b"pattern=triangle");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decoder_count_guard_rejects_huge_lengths() {
        let mut enc = Encoder::new();
        enc.u64(u64::MAX); // absurd element count
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.count(8, "elems").is_err());
    }
}
