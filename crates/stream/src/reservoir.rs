//! Reservoir sampling — the `f1` (uniform random edge) emulator for
//! insertion-only streams (Theorem 9) and the relaxed-`f3` neighbor
//! sampler of the insertion executors.
//!
//! A size-1 reservoir keeps each stream item with probability `1/t` at the
//! `t`-th arrival, so after a full pass every item is retained with
//! probability exactly `1/len`. This costs `O(log n)` bits per sampler,
//! which is where Theorem 9's `O(q log n)` total comes from (one sampler
//! per `f1` query in the round's batch).
//!
//! ## Per-offer vs skip-ahead
//!
//! The textbook loop ([`ReservoirMode::Offer`]) draws one coin per offer:
//! a pass over `m` items through a `k`-sampler bank costs `Θ(k·m)` RNG
//! draws, which is what left blocked insertion passes at parity in the
//! feed-path rework (reservoir offers dominated). But for a size-1
//! reservoir the *gap to the next acceptance* has a closed form: after an
//! acceptance at offer `t`, the probability that the next `j` offers all
//! lose is `∏_{i=t+1}^{t+j} (1 - 1/i) = t/(t+j)`, so one open-interval
//! uniform `u` inverts it exactly — the next winning offer is
//! `t + floor(t/u) - t + 1 = floor(t/u) + 1` (integer inverse transform,
//! no `ln`, no rejection). [`ReservoirMode::Skip`] precomputes that
//! `next_accept` index and turns every non-winning offer into a countdown
//! compare; a sampler draws only `O(log m)` coins per pass (the expected
//! number of acceptances over `m` offers is the harmonic number `H_m`).
//!
//! The two modes consume *different* RNG sequences, so they are
//! distribution-equivalent rather than byte-identical — the winning index
//! is uniform either way (pinned by chi-square tests here and in
//! `tests/reservoir_equivalence.rs`), and `seen()` accounting is exact in
//! both. The per-offer mode is kept as the statistical oracle
//! (`sgs-query`'s `PassOpts` threads the choice end to end).
//!
//! [`ReservoirBank`] stores its samplers struct-of-arrays — contiguous
//! `next_accept` / `seen` / `current` planes, mirroring the ℓ₀ bank's SoA
//! design — so the router-fed hot path ([`ReservoirBank::offer_range`])
//! walks a contiguous lane range per delivery and the whole-bank block
//! path ([`ReservoirBank::offer_batch`]) is `O(k + accepts)` per block
//! instead of `O(k · block)`. Lanes that always receive offers together
//! (one pooled vertex group of the query router) can further be bound as
//! a **cohort** ([`ReservoirBank::bind_cohorts`]): the bank caches the
//! minimum pending `next_accept` per cohort, so a whole pooled range's
//! offer ([`ReservoirBank::offer_cohort`]) is a single clock-vs-minimum
//! compare — zero per-lane plane traffic until some lane is actually due,
//! which is what takes a router-fed pass from `O(k·m)` draws *and*
//! `O(k·m)` lane walks down to `O(m + accepts·cohort)` total work. The
//! cohort path is byte-identical to the per-lane skip walk (pure
//! bookkeeping; pinned by a unit test), so equivalence arguments only
//! ever compare the two acceptance schemes.

use crate::hash::split_seed;
use crate::hash::FastRng;
use crate::persist::{
    frame, read_frame_of, Decoder, Encoder, PersistItem, PersistResult, KIND_RESERVOIR,
};

/// How a reservoir decides acceptances.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ReservoirMode {
    /// One RNG draw per offer (`gen_range(0..seen) == 0`): the textbook
    /// loop and the repo's statistical oracle.
    Offer,
    /// One RNG draw per *acceptance*: the next winning offer index is
    /// precomputed by the exact integer inverse transform, every other
    /// offer is a countdown compare. Distribution-equivalent to `Offer`,
    /// `O(log m)` draws per pass instead of `O(m)`.
    #[default]
    Skip,
}

/// Exact skip-ahead gap: number of consecutive losing offers after an
/// acceptance at offer `t`, sampled by inverting `P(gap ≥ j) = t/(t+j)`
/// with one open-interval uniform: `gap = floor(t/u) - t`.
///
/// `u ∈ (0,1)` structurally ([`FastRng::gen_unit_f64`]), so the division
/// is always finite; the `f64 → u64` cast saturates, so a tiny `u` at a
/// huge `t` yields an effectively-infinite `next_accept` rather than
/// wrapping (the sampler simply never accepts again this pass, which is
/// exactly what such a draw means).
#[inline]
fn skip_gap(t: u64, u: f64) -> u64 {
    debug_assert!(u > 0.0 && u < 1.0, "u = {u} outside (0,1)");
    // t < 2^53 everywhere this workspace reaches, so `t as f64` is exact.
    ((t as f64 / u) as u64).saturating_sub(t)
}

/// Draw one coin and schedule the offer index of the next acceptance
/// after an acceptance at offer `t` — the single definition every skip
/// path (scalar sampler, range walk, cohort walk, whole-bank batch)
/// reschedules through, so the transform can never de-synchronize
/// between them. Consumes exactly one draw from `rng`; bank callers
/// count it in their `draws` tally.
#[inline]
fn schedule_next(t: u64, rng: &mut FastRng) -> u64 {
    t.saturating_add(skip_gap(t, rng.gen_unit_f64()))
        .saturating_add(1)
}

/// A single-item reservoir sampler over items of type `T`.
#[derive(Clone, Debug)]
pub struct ReservoirSampler<T> {
    rng: FastRng,
    mode: ReservoirMode,
    seen: u64,
    /// Skip mode: 1-based offer index of the next acceptance.
    next_accept: u64,
    current: Option<T>,
}

impl<T: Copy> ReservoirSampler<T> {
    /// Create an empty per-offer sampler with its own random stream.
    ///
    /// Stays [`ReservoirMode::Offer`] so the frozen reference executors
    /// (`sgs_query::reference`) keep their pre-skip RNG consumption
    /// byte-for-byte; new code picks explicitly via
    /// [`ReservoirSampler::with_mode`].
    pub fn new(seed: u64) -> Self {
        Self::with_mode(seed, ReservoirMode::Offer)
    }

    /// Create an empty sampler in the given mode.
    pub fn with_mode(seed: u64, mode: ReservoirMode) -> Self {
        ReservoirSampler {
            rng: FastRng::seed_from_u64(seed),
            mode,
            seen: 0,
            // The first offer is accepted with probability 1 in both
            // modes; skip mode encodes that directly and draws its first
            // gap only on that acceptance.
            next_accept: 1,
            current: None,
        }
    }

    /// Offer the next stream item.
    #[inline]
    pub fn offer(&mut self, item: T) {
        self.seen += 1;
        match self.mode {
            ReservoirMode::Offer => {
                if self.rng.gen_range(0..self.seen) == 0 {
                    self.current = Some(item);
                }
            }
            ReservoirMode::Skip => {
                if self.seen == self.next_accept {
                    self.current = Some(item);
                    self.next_accept = schedule_next(self.seen, &mut self.rng);
                }
            }
        }
    }

    /// The sampled item, uniform over everything offered (None if nothing
    /// was offered).
    pub fn sample(&self) -> Option<T> {
        self.current
    }

    /// How many items were offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// A contiguous lane range whose samplers always receive offers
/// together (one pooled vertex group of the router), plus the shared
/// offer clock and the minimum pending `next_accept` across its lanes.
/// The pair is what makes a cohort offer O(1): one compare against
/// `min_next`, no per-lane plane traffic until some lane is actually
/// due.
#[derive(Clone, Copy, Debug)]
struct Cohort {
    start: u32,
    end: u32,
    seen: u64,
    min_next: u64,
}

/// A bank of `k` independent single-item reservoirs filled in one pass —
/// the paper's "parallel" query batches (`k` independent `f1` queries
/// answered in the same pass) and the pooled relaxed-`f3` neighbor
/// samplers of the insertion executors.
///
/// Struct-of-arrays: the per-lane `next_accept`, `seen`, and `current`
/// planes are contiguous, so the countdown compares of
/// [`ReservoirBank::offer_range`] / [`ReservoirBank::offer_batch`] walk
/// adjacent memory and only accepting lanes touch their RNG state. For
/// router-fed pools, [`ReservoirBank::bind_cohorts`] +
/// [`ReservoirBank::offer_cohort`] collapse a whole pooled range's offer
/// to a single clock-vs-minimum compare.
#[derive(Clone, Debug)]
pub struct ReservoirBank<T> {
    mode: ReservoirMode,
    rngs: Vec<FastRng>,
    seen: Vec<u64>,
    /// Skip mode: per-lane 1-based offer index of the next acceptance.
    /// Offer mode leaves the plane at its init value and never reads it.
    next_accept: Vec<u64>,
    current: Vec<Option<T>>,
    /// Skip-mode cohorts (sorted by `start`, disjoint); empty unless
    /// [`ReservoirBank::bind_cohorts`] was called. Lanes inside a cohort
    /// keep their logical offer count in `Cohort::seen`; their slots in
    /// the `seen` plane are not maintained per offer.
    cohorts: Vec<Cohort>,
    /// Lane start index → cohort id (`u32::MAX` = unbound).
    cohort_of_start: Vec<u32>,
    /// RNG draws consumed so far — *counted*, not estimated, so the bench
    /// and the acceptance criteria can report exact draws-per-pass.
    draws: u64,
}

impl<T: Copy> ReservoirBank<T> {
    /// `k` independent samplers, seeds derived from `seed`, default mode
    /// ([`ReservoirMode::Skip`]).
    pub fn new(k: usize, seed: u64) -> Self {
        Self::with_mode(k, seed, ReservoirMode::default())
    }

    /// `k` independent samplers in an explicit mode.
    pub fn with_mode(k: usize, seed: u64, mode: ReservoirMode) -> Self {
        Self::from_seeds((0..k).map(|i| split_seed(seed, i as u64)), mode)
    }

    /// One lane per seed, in iteration order. The executors seed lanes by
    /// *global batch slot* (`split_seed(pass_seed, slot)`), which is what
    /// keeps sharded and single-stream passes on identical coins — this
    /// constructor is that seam.
    pub fn from_seeds(seeds: impl IntoIterator<Item = u64>, mode: ReservoirMode) -> Self {
        let rngs: Vec<FastRng> = seeds.into_iter().map(FastRng::seed_from_u64).collect();
        let k = rngs.len();
        ReservoirBank {
            mode,
            rngs,
            seen: vec![0; k],
            next_accept: vec![1; k],
            current: vec![None; k],
            cohorts: Vec::new(),
            cohort_of_start: Vec::new(),
            draws: 0,
        }
    }

    /// Declare disjoint contiguous lane cohorts — pooled ranges that will
    /// only ever be offered items *together*, via
    /// [`ReservoirBank::offer_cohort`] with exactly these bounds (the
    /// router-fed shape: one cohort per vertex group). Must be called on
    /// a fresh bank, before any offers.
    ///
    /// In skip mode a cohort offer is then O(1) — bump the cohort clock,
    /// compare against the cached minimum `next_accept` — and the
    /// per-lane planes are touched only when some lane is due
    /// (`O(cohort + accepts)` over a pass instead of
    /// `O(cohort · offers)`). In offer mode cohorts change nothing (the
    /// oracle's coins are per-offer by definition).
    pub fn bind_cohorts(&mut self, ranges: impl IntoIterator<Item = (u32, u32)>) {
        if self.mode != ReservoirMode::Skip {
            // Offer mode has no fast path to feed (every offer draws by
            // definition), so keep the bank cohort-free: offers go
            // through the per-lane oracle walk and `seen()` reads the
            // per-lane plane it maintains.
            return;
        }
        debug_assert!(
            self.seen.iter().all(|&s| s == 0) && self.cohorts.is_empty(),
            "cohorts must be bound before any offers"
        );
        self.cohort_of_start = vec![u32::MAX; self.len()];
        for (start, end) in ranges {
            if end <= start {
                continue;
            }
            debug_assert!((end as usize) <= self.len());
            debug_assert!(
                self.cohorts.last().is_none_or(|c| c.end <= start),
                "cohorts must arrive in ascending, disjoint order"
            );
            self.cohort_of_start[start as usize] = self.cohorts.len() as u32;
            self.cohorts.push(Cohort {
                start,
                end,
                seen: 0,
                // All lanes start with next_accept = 1.
                min_next: 1,
            });
        }
    }

    /// Offer an item to the cohort spanning exactly `start..end`. Falls
    /// back to [`ReservoirBank::offer_range`] when the range is not a
    /// bound cohort (or in offer mode, whose per-offer coin sequence is
    /// the oracle contract).
    #[inline]
    pub fn offer_cohort(&mut self, start: usize, end: usize, item: T) {
        if self.mode == ReservoirMode::Skip {
            if let Some(&c) = self.cohort_of_start.get(start) {
                if c != u32::MAX {
                    let co = &mut self.cohorts[c as usize];
                    if co.end as usize == end {
                        co.seen += 1;
                        debug_assert!(co.seen <= co.min_next, "cohort clock ran past min_next");
                        if co.seen == co.min_next {
                            self.cohort_walk(c as usize, item);
                        }
                        return;
                    }
                }
            }
        }
        self.offer_range(start, end, item);
    }

    /// Slow path of a cohort offer: at least one lane's `next_accept` is
    /// due at the current cohort clock. Walk the lanes once — accept and
    /// reschedule the due ones, recompute the cached minimum.
    #[cold]
    fn cohort_walk(&mut self, c: usize, item: T) {
        let Cohort {
            start,
            end,
            seen: t,
            ..
        } = self.cohorts[c];
        let mut min_next = u64::MAX;
        for lane in start as usize..end as usize {
            if self.next_accept[lane] == t {
                self.current[lane] = Some(item);
                self.draws += 1;
                self.next_accept[lane] = schedule_next(t, &mut self.rngs[lane]);
            }
            min_next = min_next.min(self.next_accept[lane]);
        }
        self.cohorts[c].min_next = min_next;
    }

    /// The bank's acceptance mode.
    pub fn mode(&self) -> ReservoirMode {
        self.mode
    }

    /// Slow path of a skip-mode acceptance: record the win, redraw the
    /// gap. Out of line so the countdown loops stay a compare + add per
    /// lane.
    #[cold]
    fn accept(&mut self, lane: usize, item: T) {
        self.current[lane] = Some(item);
        let t = self.seen[lane];
        self.draws += 1;
        self.next_accept[lane] = schedule_next(t, &mut self.rngs[lane]);
    }

    /// Offer an item to the contiguous lane range `start..end` — the
    /// router-fed hot path (one pooled vertex group per delivery). Skip
    /// mode pays a countdown compare per lane; only lanes whose
    /// `next_accept` is due take the acceptance slow path.
    #[inline]
    pub fn offer_range(&mut self, start: usize, end: usize, item: T) {
        // Cohort-bound lanes keep their clock in the cohort, not the
        // per-lane `seen` plane — offering them through the per-lane
        // path would schedule acceptances against a stale clock and
        // silently bias the sampler. Make the contract violation loud
        // (debug builds; cohort counts are small in every test).
        debug_assert!(
            self.cohorts
                .iter()
                .all(|c| end <= c.start as usize || c.end as usize <= start),
            "offer_range({start}..{end}) overlaps a bound cohort — use offer_cohort"
        );
        match self.mode {
            ReservoirMode::Offer => {
                for lane in start..end {
                    let s = self.seen[lane] + 1;
                    self.seen[lane] = s;
                    self.draws += 1;
                    if self.rngs[lane].gen_range(0..s) == 0 {
                        self.current[lane] = Some(item);
                    }
                }
            }
            ReservoirMode::Skip => {
                // Two-phase countdown: a branchless increment+compare
                // scan over the contiguous planes (autovectorizes — no
                // call, no branch, an OR-reduction for "anyone due"),
                // then a fix-up walk only when some lane actually
                // accepts. Late in a pass acceptances are ~1/seen per
                // lane, so the fix-up is rare and the common case is the
                // pure lane scan.
                let seen = &mut self.seen[start..end];
                let next = &self.next_accept[start..end];
                let mut any_due = false;
                for (s, &na) in seen.iter_mut().zip(next) {
                    *s += 1;
                    any_due |= *s == na;
                }
                if any_due {
                    for lane in start..end {
                        if self.seen[lane] == self.next_accept[lane] {
                            self.accept(lane, item);
                        }
                    }
                }
            }
        }
    }

    /// Offer an item to a single lane.
    #[inline]
    pub fn offer_one(&mut self, lane: usize, item: T) {
        self.offer_range(lane, lane + 1, item);
    }

    /// Offer an item to every sampler.
    #[inline]
    pub fn offer(&mut self, item: T) {
        self.offer_range(0, self.len(), item);
    }

    /// Offer a whole block of items to every sampler — the Theorem-9
    /// `f1`-bank fast path. Skip mode is `O(k + accepts)` per block: a
    /// lane whose `next_accept` lands past the block costs one compare
    /// and one add for the *entire* block; only winning lanes index into
    /// `items`. Offer mode replays the per-offer oracle lane-outer
    /// (lanes own independent RNG streams, so lane-outer and item-outer
    /// orders consume identical coins per lane).
    pub fn offer_batch(&mut self, items: &[T]) {
        // See offer_range: whole-bank offers and cohort clocks don't mix.
        debug_assert!(
            self.cohorts.is_empty(),
            "offer_batch on a cohort-bound bank — use offer_cohort per pooled range"
        );
        let l = items.len() as u64;
        match self.mode {
            ReservoirMode::Offer => {
                for lane in 0..self.rngs.len() {
                    let mut s = self.seen[lane];
                    for &item in items {
                        s += 1;
                        self.draws += 1;
                        if self.rngs[lane].gen_range(0..s) == 0 {
                            self.current[lane] = Some(item);
                        }
                    }
                    self.seen[lane] = s;
                }
            }
            ReservoirMode::Skip => {
                for lane in 0..self.rngs.len() {
                    let base = self.seen[lane];
                    let end = base + l;
                    let mut na = self.next_accept[lane];
                    while na <= end {
                        self.current[lane] = Some(items[(na - base - 1) as usize]);
                        self.draws += 1;
                        na = schedule_next(na, &mut self.rngs[lane]);
                    }
                    self.next_accept[lane] = na;
                    self.seen[lane] = end;
                }
            }
        }
    }

    /// Lane `lane`'s sampled item.
    pub fn sample(&self, lane: usize) -> Option<T> {
        self.current[lane]
    }

    /// Borrowing view of all samples, one per reservoir in lane order —
    /// no allocation, unlike [`ReservoirBank::samples`].
    pub fn samples_iter(&self) -> impl Iterator<Item = Option<T>> + '_ {
        self.current.iter().copied()
    }

    /// Samples, one per reservoir (allocates; prefer
    /// [`ReservoirBank::samples_iter`] on hot paths).
    pub fn samples(&self) -> Vec<Option<T>> {
        self.samples_iter().collect()
    }

    /// How many items lane `lane` has been offered. Cohort-bound lanes
    /// read their cohort's shared clock (their slot in the per-lane
    /// plane is not maintained per offer).
    pub fn seen(&self, lane: usize) -> u64 {
        if !self.cohorts.is_empty() {
            // Cohorts are sorted by start; find the last starting <= lane.
            let i = self.cohorts.partition_point(|c| c.start as usize <= lane);
            if i > 0 {
                let co = &self.cohorts[i - 1];
                if (lane as u32) < co.end {
                    return co.seen;
                }
            }
        }
        self.seen[lane]
    }

    /// Every lane's offer count, in lane order (cohort clocks expanded).
    pub fn seen_counts(&self) -> Vec<u64> {
        (0..self.len()).map(|lane| self.seen(lane)).collect()
    }

    /// RNG draws consumed so far (offer mode: one per offer; skip mode:
    /// one per acceptance).
    pub fn rng_draws(&self) -> u64 {
        self.draws
    }

    /// Number of samplers.
    pub fn len(&self) -> usize {
        self.rngs.len()
    }

    /// Whether the bank has no samplers.
    pub fn is_empty(&self) -> bool {
        self.rngs.is_empty()
    }

    /// Serialize the bank's evolving state as one framed, checksummed
    /// record: per-lane RNG state, offer clocks, pending acceptances and
    /// kept items, plus the cohort clocks and the draw tally. Lane
    /// *geometry* (count, mode, cohort bounds) is encoded too, but only
    /// as a cross-check: restore applies onto a freshly constructed and
    /// cohort-bound bank and rejects any mismatch.
    pub fn to_persist_bytes(&self) -> Vec<u8>
    where
        T: PersistItem,
    {
        let mut enc = Encoder::new();
        enc.u8(match self.mode {
            ReservoirMode::Offer => 0,
            ReservoirMode::Skip => 1,
        });
        enc.u64(self.len() as u64);
        for lane in 0..self.len() {
            for w in self.rngs[lane].state() {
                enc.u64(w);
            }
            enc.u64(self.seen[lane]);
            enc.u64(self.next_accept[lane]);
            match self.current[lane] {
                Some(item) => {
                    enc.u8(1);
                    item.encode_item(&mut enc);
                }
                None => enc.u8(0),
            }
        }
        enc.u64(self.cohorts.len() as u64);
        for c in &self.cohorts {
            enc.u32(c.start);
            enc.u32(c.end);
            enc.u64(c.seen);
            enc.u64(c.min_next);
        }
        enc.u64(self.draws);
        frame(KIND_RESERVOIR, &enc.into_bytes())
    }

    /// Restore state written by [`ReservoirBank::to_persist_bytes`] onto
    /// `self`, which must be a bank of identical geometry (same lane
    /// count, mode, and cohort bounds — i.e. constructed and bound the
    /// way the snapshotted bank was). Corrupt input or a geometry
    /// mismatch errors without modifying lane invariants it has already
    /// validated past; it never panics.
    pub fn restore_from_persist_bytes(&mut self, bytes: &[u8]) -> PersistResult<()>
    where
        T: PersistItem,
    {
        let f = read_frame_of(bytes, 0, KIND_RESERVOIR)?;
        let mut dec = Decoder::new(f.payload);
        let mode = match dec.u8("reservoir mode")? {
            0 => ReservoirMode::Offer,
            1 => ReservoirMode::Skip,
            m => return Err(dec.corrupt(format!("unknown reservoir mode {m}"))),
        };
        if mode != self.mode {
            return Err(dec.corrupt(format!(
                "snapshot mode {mode:?} does not match bank mode {:?}",
                self.mode
            )));
        }
        let lanes = dec.count(4 * 8 + 8 + 8 + 1, "lane count")?;
        if lanes != self.len() {
            return Err(dec.corrupt(format!(
                "snapshot has {lanes} lanes, bank has {}",
                self.len()
            )));
        }
        let mut rngs = Vec::with_capacity(lanes);
        let mut seen = Vec::with_capacity(lanes);
        let mut next_accept = Vec::with_capacity(lanes);
        let mut current = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let mut state = [0u64; 4];
            for w in &mut state {
                *w = dec.u64("rng state word")?;
            }
            if state == [0; 4] {
                return Err(dec.corrupt(format!("lane {lane}: all-zero RNG state")));
            }
            rngs.push(FastRng::from_state(state));
            seen.push(dec.u64("seen clock")?);
            next_accept.push(dec.u64("next_accept")?);
            current.push(match dec.u8("item tag")? {
                0 => None,
                1 => Some(T::decode_item(&mut dec)?),
                t => return Err(dec.corrupt(format!("unknown item tag {t}"))),
            });
        }
        let ncoh = dec.count(4 + 4 + 8 + 8, "cohort count")?;
        if ncoh != self.cohorts.len() {
            return Err(dec.corrupt(format!(
                "snapshot has {ncoh} cohorts, bank has {}",
                self.cohorts.len()
            )));
        }
        let mut cohorts = Vec::with_capacity(ncoh);
        for (i, bound) in self.cohorts.iter().enumerate() {
            let (start, end) = (dec.u32("cohort start")?, dec.u32("cohort end")?);
            if start != bound.start || end != bound.end {
                return Err(dec.corrupt(format!(
                    "cohort {i} bounds {start}..{end} do not match bank bounds {}..{}",
                    bound.start, bound.end
                )));
            }
            cohorts.push(Cohort {
                start,
                end,
                seen: dec.u64("cohort seen")?,
                min_next: dec.u64("cohort min_next")?,
            });
        }
        let draws = dec.u64("draw tally")?;
        dec.finish()?;
        self.rngs = rngs;
        self.seen = seen;
        self.next_accept = next_accept;
        self.current = current;
        self.cohorts = cohorts;
        self.draws = draws;
        Ok(())
    }

    /// Semantic per-pass footprint: RNG state + the three SoA planes,
    /// plus the cohort clocks when bound.
    pub fn space_bytes(&self) -> usize {
        use std::mem::size_of;
        self.len() * (size_of::<FastRng>() + 2 * size_of::<u64>() + size_of::<Option<T>>())
            + self.cohorts.len() * size_of::<Cohort>()
            + self.cohort_of_start.len() * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reservoir_returns_none() {
        for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
            let r: ReservoirSampler<u32> = ReservoirSampler::with_mode(1, mode);
            assert!(r.sample().is_none());
        }
    }

    #[test]
    fn single_item_always_kept() {
        for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
            let mut r = ReservoirSampler::with_mode(2, mode);
            r.offer(7u32);
            assert_eq!(r.sample(), Some(7), "{mode:?}");
            assert_eq!(r.seen(), 1);
        }
    }

    #[test]
    fn distribution_is_close_to_uniform_both_modes() {
        // 10 items, many independent samplers: each item should win
        // ~1/10 of the time — in the per-offer oracle AND the skip-ahead
        // rework (whose RNG sequence is entirely different).
        let n_items = 10u32;
        let trials = 20_000;
        for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
            let mut wins = vec![0u32; n_items as usize];
            for t in 0..trials {
                let mut r = ReservoirSampler::with_mode(split_seed(0xabc, t), mode);
                for i in 0..n_items {
                    r.offer(i);
                }
                wins[r.sample().unwrap() as usize] += 1;
            }
            let expect = trials as f64 / n_items as f64;
            for (i, &w) in wins.iter().enumerate() {
                let dev = (w as f64 - expect).abs() / expect;
                assert!(dev < 0.15, "{mode:?} item {i}: {w} wins vs {expect}");
            }
        }
    }

    #[test]
    fn skip_winner_chi_square_uniform() {
        // Stronger than the per-item deviation check: an aggregate
        // chi-square statistic over the winning index. 40 cells, 40k
        // trials → E[chi2] = 39; 99.9th percentile ≈ 73.
        let n_items = 40usize;
        let trials = 40_000u64;
        let mut wins = vec![0u64; n_items];
        for t in 0..trials {
            let mut r = ReservoirSampler::with_mode(split_seed(0x5c1, t), ReservoirMode::Skip);
            for i in 0..n_items as u32 {
                r.offer(i);
            }
            wins[r.sample().unwrap() as usize] += 1;
        }
        let expect = trials as f64 / n_items as f64;
        let chi2: f64 = wins
            .iter()
            .map(|&w| {
                let d = w as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 73.0, "chi2 {chi2:.1} over {n_items} cells");
    }

    #[test]
    fn offer_mode_bank_matches_scalar_samplers_byte_for_byte() {
        // The SoA bank in offer mode must consume exactly the coins the
        // old Vec<ReservoirSampler> did — that is what keeps the
        // `--reservoir offer` oracle path byte-identical to the frozen
        // reference executors.
        let seeds: Vec<u64> = (0..17).map(|i| split_seed(0xb0b, i)).collect();
        let mut bank: ReservoirBank<u32> =
            ReservoirBank::from_seeds(seeds.iter().copied(), ReservoirMode::Offer);
        let mut scalars: Vec<ReservoirSampler<u32>> =
            seeds.iter().map(|&s| ReservoirSampler::new(s)).collect();
        for i in 0..300u32 {
            if i % 3 == 0 {
                bank.offer(i);
                for s in &mut scalars {
                    s.offer(i);
                }
            } else {
                // Partial-range offers (the router-fed shape).
                let (a, b) = ((i as usize * 5) % 17, 17);
                bank.offer_range(a.min(b), b, i);
                for s in &mut scalars[a.min(b)..b] {
                    s.offer(i);
                }
            }
        }
        for (lane, s) in scalars.iter().enumerate() {
            assert_eq!(bank.sample(lane), s.sample(), "lane {lane}");
            assert_eq!(bank.seen(lane), s.seen(), "lane {lane}");
        }
    }

    #[test]
    fn seen_accounting_identical_across_modes_at_every_prefix() {
        let mut offer: ReservoirBank<u32> = ReservoirBank::with_mode(8, 3, ReservoirMode::Offer);
        let mut skip: ReservoirBank<u32> = ReservoirBank::with_mode(8, 3, ReservoirMode::Skip);
        for i in 0..500u32 {
            let lane = (i as usize * 7) % 8;
            offer.offer_one(lane, i);
            skip.offer_one(lane, i);
            assert_eq!(offer.seen_counts(), skip.seen_counts(), "prefix {i}");
        }
    }

    #[test]
    fn offer_batch_matches_offer_loop_exactly_per_mode() {
        // Within a fixed mode, the blocked path must be byte-identical to
        // the scalar loop (it only restructures when coins are drawn per
        // lane, never which lane draws or how many).
        for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
            let items: Vec<u32> = (0..997).collect();
            let mut scalar: ReservoirBank<u32> = ReservoirBank::with_mode(64, 9, mode);
            let mut blocked: ReservoirBank<u32> = ReservoirBank::with_mode(64, 9, mode);
            for &it in &items {
                scalar.offer(it);
            }
            for chunk in items.chunks(37) {
                blocked.offer_batch(chunk);
            }
            assert_eq!(scalar.samples(), blocked.samples(), "{mode:?}");
            assert_eq!(scalar.seen_counts(), blocked.seen_counts(), "{mode:?}");
            assert_eq!(scalar.rng_draws(), blocked.rng_draws(), "{mode:?}");
        }
    }

    #[test]
    fn skip_mode_draw_count_is_logarithmic() {
        let m = 100_000u32;
        let k = 16usize;
        let mut offer: ReservoirBank<u32> = ReservoirBank::with_mode(k, 4, ReservoirMode::Offer);
        let mut skip: ReservoirBank<u32> = ReservoirBank::with_mode(k, 4, ReservoirMode::Skip);
        let items: Vec<u32> = (0..m).collect();
        offer.offer_batch(&items);
        skip.offer_batch(&items);
        assert_eq!(offer.rng_draws(), k as u64 * m as u64, "oracle draws k·m");
        // E[draws per lane] = H_m ≈ ln(m) + γ ≈ 12.1; allow 3× headroom.
        let per_lane = skip.rng_draws() as f64 / k as f64;
        let h_m = (m as f64).ln() + 0.5772;
        assert!(
            per_lane < 3.0 * h_m,
            "skip draws/lane {per_lane:.1} vs H_m {h_m:.1}"
        );
        assert!(per_lane >= 1.0, "at least the first acceptance per lane");
    }

    #[test]
    fn acceptance_count_distribution_matches_oracle() {
        // The number of acceptances over m offers has mean H_m in both
        // modes (it is the same acceptance-set law); compare empirical
        // means across many independently seeded lanes.
        let m = 2_000u32;
        let lanes = 400usize;
        let items: Vec<u32> = (0..m).collect();
        let mean_accepts = |mode| {
            let mut bank: ReservoirBank<u32> = ReservoirBank::with_mode(lanes, 0xacc, mode);
            bank.offer_batch(&items);
            // Offer mode draws every offer; count acceptances by replay
            // instead: infer from draws only in skip mode. For a
            // mode-agnostic count, re-run scalar samplers and count
            // sample *changes* — cheap at this size.
            let mut accepts = 0u64;
            for lane in 0..lanes {
                let mut r: ReservoirSampler<u32> =
                    ReservoirSampler::with_mode(split_seed(0xacc, lane as u64), mode);
                let mut last = None;
                for &it in &items {
                    r.offer(it);
                    // Count an acceptance whenever the kept item changes;
                    // items are distinct, so every acceptance changes it.
                    if r.sample() != last {
                        accepts += 1;
                        last = r.sample();
                    }
                }
                assert_eq!(r.sample(), bank.sample(lane), "lane {lane} {mode:?}");
            }
            accepts as f64 / lanes as f64
        };
        let h_m: f64 = (1..=m as u64).map(|i| 1.0 / i as f64).sum();
        let offer = mean_accepts(ReservoirMode::Offer);
        let skip = mean_accepts(ReservoirMode::Skip);
        // Std of the per-lane count is ~sqrt(H_m) ≈ 2.9, so the mean of
        // 400 lanes has std ≈ 0.15; 4σ gates.
        assert!(
            (offer - h_m).abs() < 0.6,
            "offer mean {offer:.2} vs {h_m:.2}"
        );
        assert!((skip - h_m).abs() < 0.6, "skip mean {skip:.2} vs {h_m:.2}");
    }

    #[test]
    fn bank_samplers_are_independent() {
        let mut bank = ReservoirBank::new(64, 5);
        for i in 0..100u32 {
            bank.offer(i);
        }
        let samples: Vec<u32> = bank.samples_iter().map(Option::unwrap).collect();
        // With 64 samplers over 100 items, at least two differ almost surely.
        assert!(samples.iter().any(|&s| s != samples[0]));
        assert_eq!(bank.len(), 64);
        assert_eq!(bank.samples(), bank.samples_iter().collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_given_seed() {
        for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
            let run = |seed| {
                let mut r = ReservoirSampler::with_mode(seed, mode);
                for i in 0..50u32 {
                    r.offer(i);
                }
                r.sample()
            };
            assert_eq!(run(9), run(9), "{mode:?}");
        }
    }

    #[test]
    fn duplicate_heavy_and_single_update_streams() {
        for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
            // All offers identical: the sample must be that item and seen
            // must count every duplicate.
            let mut r = ReservoirSampler::with_mode(11, mode);
            for _ in 0..1000 {
                r.offer(42u32);
            }
            assert_eq!(r.sample(), Some(42), "{mode:?}");
            assert_eq!(r.seen(), 1000);
            // Single-offer bank.
            let mut bank: ReservoirBank<u32> = ReservoirBank::with_mode(5, 12, mode);
            bank.offer_batch(&[9]);
            assert!(bank.samples_iter().all(|s| s == Some(9)), "{mode:?}");
            assert!(bank.seen_counts().iter().all(|&s| s == 1));
        }
    }

    #[test]
    fn cohort_fast_path_is_byte_identical_to_lane_ranges() {
        // The cohort short-circuit is pure bookkeeping: per-lane
        // next_accept scheduling, draw times, and draw order are exactly
        // those of the per-lane skip walk, so a cohort-fed bank must
        // match a range-fed bank bit for bit (samples, seen, and draw
        // counts) — and in offer mode offer_cohort must fall back to the
        // per-offer oracle unchanged.
        for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
            // Three cohorts of different sizes plus an unbound tail lane.
            let cohorts = [(0u32, 5u32), (5, 6), (6, 14)];
            let mut by_cohort: ReservoirBank<u32> = ReservoirBank::with_mode(15, 0xc0, mode);
            let mut by_range: ReservoirBank<u32> = ReservoirBank::with_mode(15, 0xc0, mode);
            by_cohort.bind_cohorts(cohorts.iter().copied());
            for i in 0..4000u32 {
                let (s, e) = cohorts[(i % 3) as usize];
                by_cohort.offer_cohort(s as usize, e as usize, i);
                by_range.offer_range(s as usize, e as usize, i);
                if i % 7 == 0 {
                    // The unbound lane goes through the plain path in
                    // both banks (offer_cohort falls back).
                    by_cohort.offer_cohort(14, 15, i);
                    by_range.offer_range(14, 15, i);
                }
            }
            assert_eq!(by_cohort.samples(), by_range.samples(), "{mode:?}");
            assert_eq!(by_cohort.seen_counts(), by_range.seen_counts(), "{mode:?}");
            assert_eq!(by_cohort.rng_draws(), by_range.rng_draws(), "{mode:?}");
        }
    }

    #[test]
    fn skip_gap_saturates_instead_of_wrapping() {
        // A tiny u at a huge t must push next_accept toward "never",
        // not wrap around to an early offer.
        let g = skip_gap(1 << 52, 0.5 * (1.0 / (1u64 << 53) as f64));
        assert!(g > 1 << 60, "gap {g} did not saturate high");
    }
}
