//! Reservoir sampling — the `f1` (uniform random edge) emulator for
//! insertion-only streams (Theorem 9).
//!
//! A size-1 reservoir keeps each stream item with probability `1/t` at the
//! `t`-th arrival, so after a full pass every item is retained with
//! probability exactly `1/len`. This costs `O(log n)` bits per sampler,
//! which is where Theorem 9's `O(q log n)` total comes from (one sampler
//! per `f1` query in the round's batch).

use crate::hash::split_seed;
use crate::hash::FastRng;

/// A single-item reservoir sampler over items of type `T`.
#[derive(Clone, Debug)]
pub struct ReservoirSampler<T> {
    rng: FastRng,
    seen: u64,
    current: Option<T>,
}

impl<T: Copy> ReservoirSampler<T> {
    /// Create an empty sampler with its own random stream.
    pub fn new(seed: u64) -> Self {
        ReservoirSampler {
            rng: FastRng::seed_from_u64(seed),
            seen: 0,
            current: None,
        }
    }

    /// Offer the next stream item.
    #[inline]
    pub fn offer(&mut self, item: T) {
        self.seen += 1;
        if self.rng.gen_range(0..self.seen) == 0 {
            self.current = Some(item);
        }
    }

    /// The sampled item, uniform over everything offered (None if nothing
    /// was offered).
    pub fn sample(&self) -> Option<T> {
        self.current
    }

    /// How many items were offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// A bank of `k` independent single-item reservoirs filled in one pass —
/// the paper's "parallel" query batches (`k` independent `f1` queries
/// answered in the same pass).
#[derive(Clone, Debug)]
pub struct ReservoirBank<T> {
    samplers: Vec<ReservoirSampler<T>>,
}

impl<T: Copy> ReservoirBank<T> {
    /// `k` independent samplers, seeds derived from `seed`.
    pub fn new(k: usize, seed: u64) -> Self {
        ReservoirBank {
            samplers: (0..k)
                .map(|i| ReservoirSampler::new(split_seed(seed, i as u64)))
                .collect(),
        }
    }

    /// Offer an item to every sampler.
    #[inline]
    pub fn offer(&mut self, item: T) {
        for s in &mut self.samplers {
            s.offer(item);
        }
    }

    /// Samples, one per reservoir.
    pub fn samples(&self) -> Vec<Option<T>> {
        self.samplers.iter().map(|s| s.sample()).collect()
    }

    /// Number of samplers.
    pub fn len(&self) -> usize {
        self.samplers.len()
    }

    /// Whether the bank has no samplers.
    pub fn is_empty(&self) -> bool {
        self.samplers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reservoir_returns_none() {
        let r: ReservoirSampler<u32> = ReservoirSampler::new(1);
        assert!(r.sample().is_none());
    }

    #[test]
    fn single_item_always_kept() {
        let mut r = ReservoirSampler::new(2);
        r.offer(7u32);
        assert_eq!(r.sample(), Some(7));
        assert_eq!(r.seen(), 1);
    }

    #[test]
    fn distribution_is_close_to_uniform() {
        // 10 items, many independent samplers: each item should win
        // ~1/10 of the time.
        let n_items = 10u32;
        let trials = 20_000;
        let mut wins = vec![0u32; n_items as usize];
        for t in 0..trials {
            let mut r = ReservoirSampler::new(split_seed(0xabc, t));
            for i in 0..n_items {
                r.offer(i);
            }
            wins[r.sample().unwrap() as usize] += 1;
        }
        let expect = trials as f64 / n_items as f64;
        for (i, &w) in wins.iter().enumerate() {
            let dev = (w as f64 - expect).abs() / expect;
            assert!(dev < 0.15, "item {i}: {w} wins vs expected {expect}");
        }
    }

    #[test]
    fn bank_samplers_are_independent() {
        let mut bank = ReservoirBank::new(64, 5);
        for i in 0..100u32 {
            bank.offer(i);
        }
        let samples: Vec<u32> = bank.samples().into_iter().map(Option::unwrap).collect();
        // With 64 samplers over 100 items, at least two differ almost surely.
        assert!(samples.iter().any(|&s| s != samples[0]));
        assert_eq!(bank.len(), 64);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut r = ReservoirSampler::new(seed);
            for i in 0..50u32 {
                r.offer(i);
            }
            r.sample()
        };
        assert_eq!(run(9), run(9));
    }
}
