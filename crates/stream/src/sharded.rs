//! Hash-partitioned stream sharding: one logical pass, N feed shards.
//!
//! The pass emulators replay the same update sequence past thousands of
//! independent sampler queries, and every per-update consumer is keyed by
//! a vertex or an edge (degree counters, neighbor watchers and samplers,
//! adjacency flags, position targets). [`ShardedFeed`] exploits that: it
//! partitions the stream **once** by a stable vertex hash into per-shard
//! buffers, so N workers can each drive the consumers registered on their
//! own key range from one logical pass over the data.
//!
//! Delivery contract (what makes sharded execution *exactly* equivalent
//! to a single-stream pass, not just statistically so):
//!
//! * an update on edge `{u, v}` is delivered to `shard_of(u)` and
//!   `shard_of(v)` (once if they coincide), so a shard sees **every**
//!   update incident to a vertex it owns, in stream order;
//! * exactly one delivery — the one to `shard_of(e.u())`, the canonical
//!   endpoint's shard — is flagged [`ShardUpdate::owned`]. Edge-keyed
//!   state that must count each update once globally (the edge counter
//!   `m`, merged ℓ₀-sketch banks) consumes only owned deliveries;
//! * every delivery carries the update's **global stream position**, so
//!   position-keyed `f1` sampling keeps its single-stream semantics.
//!
//! Pass accounting: replaying all N shard buffers is **one** logical pass
//! over the stream, not N. A [`crate::PassCounter`] wrapped around the
//! *source* observes exactly one replay (at partition time); afterwards
//! the feed tracks [`ShardedFeed::logical_passes`] itself, incremented
//! once per [`ShardedFeed::begin_pass`] regardless of shard count.

use crate::source::EdgeStream;
use crate::update::EdgeUpdate;
use sgs_prng::splitmix64;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Salt for the shard hash, fixed so shard assignment is stable across
/// passes, processes, and the query-side routing in `sgs-query`.
const SHARD_SALT: u64 = 0x5ead_ed5e_ed5e_a11a;

/// The shard that owns vertex `v` under uniform `num_shards`-way hash
/// partitioning.
///
/// Both the feed (update delivery) and the query router (query
/// assignment) must agree on the placement; a feed built with a
/// non-uniform [`ShardMap`] couples the two sides through
/// [`ShardedFeed::shard_map`] instead of this bare hash.
#[inline]
pub fn shard_of_vertex(v: u32, num_shards: usize) -> usize {
    debug_assert!(num_shards >= 1);
    (splitmix64(v as u64 ^ SHARD_SALT) % num_shards as u64) as usize
}

/// A vertex → shard placement: the uniform stable hash
/// ([`shard_of_vertex`]) plus a sparse, sorted list of per-vertex
/// overrides. The overrides are the load-balancing lever: placement
/// never changes *answers* (a shard sees every update incident to every
/// vertex it owns, in stream order, whichever shard that is — the
/// equivalence argument in `sgs-query::sharded` is placement-agnostic),
/// only how evenly delivery work spreads across workers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    /// `(vertex, shard)` overrides, sorted by vertex, deduplicated.
    overrides: Vec<(u32, u16)>,
}

impl ShardMap {
    /// The uniform hash placement — what [`ShardedFeed::partition`]
    /// uses, and the only placement checkpoint recovery accepts.
    pub fn uniform(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(shards <= u16::MAX as usize, "shard ids are cached as u16");
        ShardMap {
            shards,
            overrides: Vec::new(),
        }
    }

    /// Uniform placement with explicit `(vertex, shard)` overrides.
    /// Later entries for the same vertex win; every target shard must be
    /// in range.
    pub fn with_overrides(shards: usize, mut overrides: Vec<(u32, u16)>) -> Self {
        let mut map = ShardMap::uniform(shards);
        assert!(
            overrides.iter().all(|&(_, s)| (s as usize) < shards),
            "override targets a shard outside 0..{shards}"
        );
        // Stable sort so the *last* entry for a vertex survives dedup.
        overrides.sort_by_key(|&(v, _)| v);
        overrides.reverse();
        overrides.dedup_by_key(|&mut (v, _)| v);
        overrides.reverse();
        // Drop overrides that restate the uniform hash — keeps
        // `is_uniform` meaningful and the lookup list minimal.
        overrides.retain(|&(v, s)| shard_of_vertex(v, shards) != s as usize);
        map.overrides = overrides;
        map
    }

    /// Greedy hot-vertex rebalancing over observed per-vertex delivery
    /// counts (see [`ShardedFeed::vertex_delivery_counts`]): the
    /// `max_overrides` hottest vertices are lifted out of their hash
    /// shards and re-placed one by one, heaviest first, each onto the
    /// currently lightest shard (classic LPT). Everything else keeps the
    /// uniform hash, so the override list stays sparse and lookups stay
    /// O(log overrides).
    pub fn balanced(shards: usize, counts: &[u64], max_overrides: usize) -> Self {
        let map = ShardMap::uniform(shards);
        if shards <= 1 || max_overrides == 0 {
            return map;
        }
        // Base load: every vertex's deliveries on its uniform shard.
        let mut load = vec![0u64; shards];
        for (v, &c) in counts.iter().enumerate() {
            load[shard_of_vertex(v as u32, shards)] += c;
        }
        // Hottest vertices first; vertex id breaks ties so the result is
        // deterministic for a fixed count vector.
        let mut hot: Vec<u32> = (0..counts.len() as u32)
            .filter(|&v| counts[v as usize] > 0)
            .collect();
        hot.sort_by_key(|&v| (std::cmp::Reverse(counts[v as usize]), v));
        hot.truncate(max_overrides);
        let mut overrides = Vec::with_capacity(hot.len());
        for &v in &hot {
            load[shard_of_vertex(v, shards)] -= counts[v as usize];
        }
        for &v in &hot {
            let target = (0..shards).min_by_key(|&s| (load[s], s)).unwrap();
            load[target] += counts[v as usize];
            overrides.push((v, target as u16));
        }
        ShardMap::with_overrides(shards, overrides)
    }

    /// Number of shards this map places onto.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Whether this is the pure uniform hash (no effective overrides).
    #[inline]
    pub fn is_uniform(&self) -> bool {
        self.overrides.is_empty()
    }

    /// The effective `(vertex, shard)` overrides, sorted by vertex.
    #[inline]
    pub fn overrides(&self) -> &[(u32, u16)] {
        &self.overrides
    }

    /// The shard that owns vertex `v` under this placement.
    #[inline]
    pub fn shard_of(&self, v: u32) -> usize {
        match self.overrides.binary_search_by_key(&v, |&(x, _)| x) {
            Ok(i) => self.overrides[i].1 as usize,
            Err(_) => shard_of_vertex(v, self.shards),
        }
    }
}

/// One source-stream update with its shard routing resolved **once, at
/// buffer-fill time**: the global position, the owner shard (the
/// canonical endpoint's), and the other endpoint's shard. This is the
/// element type of [`ShardedFeed::routed`] — the global-order buffer the
/// broadcast fan-out produces from — so a consumer deciding relevance or
/// ownedness reads two cached fields instead of redoing the shard hash
/// per cursor read. `owner == other` when both endpoints hash to the
/// same shard (always, with one shard).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoutedUpdate {
    /// Global position in the source stream (`0..stream_len`).
    pub position: u32,
    /// Shard of the canonical endpoint `e.u()` — the owned delivery.
    pub owner: u16,
    /// Shard of the other endpoint `e.v()`.
    pub other: u16,
    /// The update itself.
    pub update: EdgeUpdate,
}

impl RoutedUpdate {
    /// Whether shard `s` receives this update at all.
    #[inline]
    pub fn delivers_to(&self, s: usize) -> bool {
        self.owner as usize == s || self.other as usize == s
    }

    /// The delivery shard `s` would see, if any: the same
    /// [`ShardUpdate`] the scoped-thread path reads from its per-shard
    /// buffer (owned iff `s` is the canonical endpoint's shard).
    #[inline]
    pub fn delivery_for(&self, s: usize) -> Option<ShardUpdate> {
        if self.delivers_to(s) {
            Some(ShardUpdate {
                position: self.position,
                update: self.update,
                owned: self.owner as usize == s,
            })
        } else {
            None
        }
    }
}

/// One delivered stream element: the update, its global position in the
/// source stream, and whether this shard is the canonical owner.
#[derive(Clone, Copy, Debug)]
pub struct ShardUpdate {
    /// Global position in the source stream (`0..stream_len`).
    pub position: u32,
    /// The update itself.
    pub update: EdgeUpdate,
    /// Whether this delivery is the canonical one (the shard of the
    /// update's smaller endpoint). Exactly one delivery per update is
    /// owned; consume it for globally-once state (edge counts, merged
    /// ℓ₀ banks, position targets can ignore it — duplicate position
    /// hits produce identical answers).
    pub owned: bool,
}

/// A stream partitioned into per-shard buffers, built once and replayed
/// shard-parallel on every logical pass. Shared by reference across the
/// worker threads of a sharded executor (the pass counter is atomic).
#[derive(Debug)]
pub struct ShardedFeed {
    n: usize,
    stream_len: usize,
    total_delta: i64,
    shards: Vec<Vec<ShardUpdate>>,
    /// The whole source stream in global order with shard routing cached
    /// at partition time — the broadcast producer's buffer.
    routed: Vec<RoutedUpdate>,
    /// The placement the buffers were routed with; the query side splits
    /// batches through this same map.
    map: ShardMap,
    logical_passes: AtomicUsize,
}

impl ShardedFeed {
    /// Partition `stream` into `num_shards` buffers under the uniform
    /// hash placement (one replay of the source — the only time the
    /// source stream is read).
    pub fn partition(stream: &impl EdgeStream, num_shards: usize) -> Self {
        ShardedFeed::partition_with_map(stream, ShardMap::uniform(num_shards))
    }

    /// [`ShardedFeed::partition`] under an explicit [`ShardMap`]
    /// placement — the load-aware entry point. Any placement yields
    /// byte-identical answers; only per-shard delivery balance changes.
    pub fn partition_with_map(stream: &impl EdgeStream, map: ShardMap) -> Self {
        let num_shards = map.num_shards();
        assert!(
            stream.len() < u32::MAX as usize,
            "stream positions are stored as u32"
        );
        let mut shards: Vec<Vec<ShardUpdate>> = vec![Vec::new(); num_shards];
        // Pre-size: each shard receives ~len/N owned plus ~len/N foreign
        // deliveries.
        let expect = if num_shards == 1 {
            stream.len()
        } else {
            2 * stream.len() / num_shards + 16
        };
        for buf in &mut shards {
            buf.reserve(expect);
        }
        let mut routed: Vec<RoutedUpdate> = Vec::with_capacity(stream.len());
        let mut total_delta = 0i64;
        let mut position = 0u32;
        stream.replay(&mut |update| {
            let (u, v) = update.edge.endpoints();
            let owner = map.shard_of(u.0);
            let other = map.shard_of(v.0);
            shards[owner].push(ShardUpdate {
                position,
                update,
                owned: true,
            });
            if other != owner {
                shards[other].push(ShardUpdate {
                    position,
                    update,
                    owned: false,
                });
            }
            routed.push(RoutedUpdate {
                position,
                owner: owner as u16,
                other: other as u16,
                update,
            });
            total_delta += update.delta as i64;
            position += 1;
        });
        ShardedFeed {
            n: stream.num_vertices(),
            stream_len: position as usize,
            total_delta,
            shards,
            routed,
            map,
            logical_passes: AtomicUsize::new(0),
        }
    }

    /// Rebuild a feed from a WAL-recovered routed buffer — the recovery
    /// half of [`ShardedFeed::partition`]. Validates every entry against
    /// the partition invariants (sequential positions, owner/other
    /// matching the stable **uniform** shard hash) so a log that decodes
    /// but lies about its routing is rejected instead of silently
    /// skewing shard delivery. A feed routed with a non-uniform
    /// [`ShardMap`] is rejected here loudly rather than recovered with
    /// the wrong routing — placement-aware recovery must go through
    /// [`ShardedFeed::from_routed_with_map`] with the persisted map.
    /// The rebuilt feed is field-identical to the original (pass counter
    /// reset to zero).
    pub fn from_routed(
        n: usize,
        num_shards: usize,
        routed: Vec<RoutedUpdate>,
    ) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::PersistError;
        if num_shards < 1 || num_shards > u16::MAX as usize {
            return Err(PersistError::corrupt(
                0,
                format!("implausible shard count {num_shards}"),
            ));
        }
        ShardedFeed::from_routed_with_map(n, ShardMap::uniform(num_shards), routed)
    }

    /// [`ShardedFeed::from_routed`] under an explicit [`ShardMap`] —
    /// the placement-aware recovery path. Every entry's owner/other is
    /// validated against `map.shard_of`, so a routed buffer recovered
    /// with the wrong placement (or a map from a different deployment)
    /// is rejected loudly at the first mismatching update instead of
    /// silently skewing shard delivery. The checkpoint layer persists
    /// the map (uniform hash + overrides) in the WAL seal and threads it
    /// back through here on resume.
    pub fn from_routed_with_map(
        n: usize,
        map: ShardMap,
        routed: Vec<RoutedUpdate>,
    ) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::PersistError;
        let num_shards = map.num_shards();
        if num_shards < 1 || num_shards > u16::MAX as usize {
            return Err(PersistError::corrupt(
                0,
                format!("implausible shard count {num_shards}"),
            ));
        }
        if routed.len() >= u32::MAX as usize {
            return Err(PersistError::corrupt(
                0,
                format!("implausible stream length {}", routed.len()),
            ));
        }
        let mut shards: Vec<Vec<ShardUpdate>> = vec![Vec::new(); num_shards];
        let mut total_delta = 0i64;
        for (i, r) in routed.iter().enumerate() {
            if r.position as usize != i {
                return Err(PersistError::corrupt(
                    i as u64,
                    format!("update {i} carries position {}", r.position),
                ));
            }
            let (u, v) = r.update.edge.endpoints();
            let owner = map.shard_of(u.0);
            let other = map.shard_of(v.0);
            if r.owner as usize != owner || r.other as usize != other {
                return Err(PersistError::corrupt(
                    i as u64,
                    format!(
                        "update {i} routed to shards {}/{}, placement says {owner}/{other}",
                        r.owner, r.other
                    ),
                ));
            }
            if u.0 as usize >= n || v.0 as usize >= n {
                return Err(PersistError::corrupt(
                    i as u64,
                    format!("update {i} touches vertex outside 0..{n}"),
                ));
            }
            shards[owner].push(ShardUpdate {
                position: r.position,
                update: r.update,
                owned: true,
            });
            if other != owner {
                shards[other].push(ShardUpdate {
                    position: r.position,
                    update: r.update,
                    owned: false,
                });
            }
            total_delta += r.update.delta as i64;
        }
        Ok(ShardedFeed {
            n,
            stream_len: routed.len(),
            total_delta,
            shards,
            routed,
            map,
            logical_passes: AtomicUsize::new(0),
        })
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The vertex → shard placement this feed was routed with. The query
    /// side must split batches through this map (not the bare hash) for
    /// the placement-agnostic equivalence to hold.
    #[inline]
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Per-vertex delivery counts observed in the routed buffer: entry
    /// `v` is the number of stream updates incident to vertex `v`, i.e.
    /// the deliveries `v`'s owner shard performs on `v`'s behalf every
    /// pass. This is the real-load input [`ShardMap::balanced`] consumes
    /// — no re-hash, no replay, one linear scan of the cached buffer.
    pub fn vertex_delivery_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.n];
        for r in &self.routed {
            let (u, v) = r.update.edge.endpoints();
            counts[u.0 as usize] += 1;
            counts[v.0 as usize] += 1;
        }
        counts
    }

    /// Number of vertices `n` of the underlying graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Length of the *source* stream (global positions are `0..len`).
    #[inline]
    pub fn stream_len(&self) -> usize {
        self.stream_len
    }

    /// Net edge count after all updates (`Σ delta`): what a single-stream
    /// pass's edge counter reads at end of stream.
    #[inline]
    pub fn final_edge_count(&self) -> i64 {
        self.total_delta
    }

    /// The delivery buffer of shard `i`, in global stream order.
    #[inline]
    pub fn shard(&self, i: usize) -> &[ShardUpdate] {
        &self.shards[i]
    }

    /// The whole source stream in global order, each update carrying its
    /// shard routing (owner/other) cached at partition time. This is the
    /// buffer a broadcast producer chunks into ring blocks; a shard
    /// consumer reconstructs exactly [`ShardedFeed::shard`]`(i)` from it
    /// via [`RoutedUpdate::delivery_for`] with **zero** hash recomputes.
    #[inline]
    pub fn routed(&self) -> &[RoutedUpdate] {
        &self.routed
    }

    /// Record the start of one logical pass. Replaying all N shard
    /// buffers after this call is *one* pass over the data — callers
    /// drive every shard exactly once per `begin_pass`.
    pub fn begin_pass(&self) {
        self.logical_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Logical passes performed so far (see [`ShardedFeed::begin_pass`]).
    pub fn logical_passes(&self) -> usize {
        self.logical_passes.load(Ordering::Relaxed)
    }
}

/// A `ShardedFeed` is itself a replayable stream: replay walks the
/// routed global-order buffer cached at partition time, reconstructing
/// the source stream exactly (it used to k-way-merge the per-shard
/// buffers' owned deliveries; the routed cache makes the merge a linear
/// scan). Each such replay is one logical pass. This is what lets
/// `run_insertion`/`run_turnstile` remain thin single-shard cases of the
/// sharded path, and lets sharded and unsharded consumers be driven from
/// the same feed.
impl EdgeStream for ShardedFeed {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn replay(&self, sink: &mut dyn FnMut(EdgeUpdate)) {
        self.begin_pass();
        for r in &self.routed {
            sink(r.update);
        }
    }

    fn len(&self) -> usize {
        self.stream_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{InsertionStream, PassCounter, TurnstileStream};
    use sgs_graph::gen;

    fn collect(stream: &impl EdgeStream) -> Vec<EdgeUpdate> {
        let mut v = Vec::new();
        stream.replay(&mut |u| v.push(u));
        v
    }

    #[test]
    fn every_position_owned_exactly_once() {
        let g = gen::gnm(40, 200, 1);
        let s = InsertionStream::from_graph(&g, 2);
        for shards in [1usize, 2, 4, 7] {
            let feed = ShardedFeed::partition(&s, shards);
            let mut seen = vec![0u32; s.len()];
            for i in 0..shards {
                for su in feed.shard(i) {
                    if su.owned {
                        seen[su.position as usize] += 1;
                    }
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{shards} shards: {seen:?}");
        }
    }

    #[test]
    fn shards_see_every_incident_update_in_order() {
        let g = gen::gnm(30, 150, 3);
        let s = TurnstileStream::from_graph_with_churn(&g, 1.0, 4);
        let source = collect(&s);
        let shards = 4;
        let feed = ShardedFeed::partition(&s, shards);
        for i in 0..shards {
            // Expected: the subsequence of source updates with an
            // endpoint hashing to shard i.
            let expected: Vec<EdgeUpdate> = source
                .iter()
                .copied()
                .filter(|u| {
                    let (a, b) = u.edge.endpoints();
                    shard_of_vertex(a.0, shards) == i || shard_of_vertex(b.0, shards) == i
                })
                .collect();
            let got: Vec<EdgeUpdate> = feed.shard(i).iter().map(|su| su.update).collect();
            assert_eq!(got, expected, "shard {i}");
            // Positions strictly increase (global order preserved).
            assert!(feed
                .shard(i)
                .windows(2)
                .all(|w| w[0].position < w[1].position));
        }
    }

    #[test]
    fn owner_is_canonical_endpoint_shard() {
        let g = gen::gnm(25, 100, 5);
        let s = InsertionStream::from_graph(&g, 6);
        let shards = 3;
        let feed = ShardedFeed::partition(&s, shards);
        for i in 0..shards {
            for su in feed.shard(i) {
                let owner = shard_of_vertex(su.update.edge.u().0, shards);
                assert_eq!(su.owned, owner == i, "{su:?} in shard {i}");
            }
        }
    }

    #[test]
    fn logical_pass_over_n_shards_counts_once() {
        // The PassCounter-semantics contract under sharding: partitioning
        // reads the source once; after that, driving all N shard buffers
        // is one logical pass — never N.
        let g = gen::gnm(20, 80, 7);
        let s = InsertionStream::from_graph(&g, 8);
        let pc = PassCounter::new(&s);
        let feed = ShardedFeed::partition(&pc, 7);
        assert_eq!(pc.passes(), 1, "partitioning is the only source read");
        assert_eq!(feed.logical_passes(), 0);
        for _ in 0..3 {
            feed.begin_pass();
            for i in 0..feed.num_shards() {
                // Touch every shard: this is what an executor's worker
                // threads do, and it must not bump any pass counter.
                let _ = feed.shard(i).len();
            }
        }
        assert_eq!(feed.logical_passes(), 3, "3 logical passes, not 21");
        assert_eq!(pc.passes(), 1, "shard replays never re-read the source");
    }

    #[test]
    fn replay_reconstructs_source_order_and_counts_a_pass() {
        let g = gen::gnm(35, 160, 9);
        for shards in [1usize, 2, 5] {
            let s = TurnstileStream::from_graph_with_churn(&g, 0.7, 10);
            let feed = ShardedFeed::partition(&s, shards);
            assert_eq!(collect(&feed), collect(&s), "{shards} shards");
            assert_eq!(feed.logical_passes(), 1);
            assert_eq!(feed.len(), s.len());
            assert_eq!(feed.num_vertices(), s.num_vertices());
        }
    }

    #[test]
    fn final_edge_count_matches_stream() {
        let g = gen::gnm(30, 120, 11);
        let tst = TurnstileStream::from_graph_with_churn(&g, 2.0, 12);
        let feed = ShardedFeed::partition(&tst, 4);
        assert_eq!(feed.final_edge_count(), 120);
        let ins = InsertionStream::from_graph(&g, 13);
        let feed = ShardedFeed::partition(&ins, 4);
        assert_eq!(feed.final_edge_count(), 120);
    }

    #[test]
    fn routed_cache_matches_recomputed_hashes_and_shard_buffers() {
        // The owned-delivery/owner-shard flags are computed once, at
        // buffer-fill time; consumers must be able to trust the cache
        // instead of redoing the shard hash per cursor read.
        let g = gen::gnm(30, 140, 21);
        let s = TurnstileStream::from_graph_with_churn(&g, 0.8, 22);
        for shards in [1usize, 2, 4, 7] {
            let feed = ShardedFeed::partition(&s, shards);
            assert_eq!(feed.routed().len(), s.len());
            for (i, r) in feed.routed().iter().enumerate() {
                assert_eq!(r.position as usize, i);
                let (u, v) = r.update.edge.endpoints();
                assert_eq!(r.owner as usize, shard_of_vertex(u.0, shards));
                assert_eq!(r.other as usize, shard_of_vertex(v.0, shards));
            }
            // Reconstructing each shard's deliveries from the routed
            // buffer reproduces the per-shard buffers exactly.
            for i in 0..shards {
                let rebuilt: Vec<ShardUpdate> = feed
                    .routed()
                    .iter()
                    .filter_map(|r| r.delivery_for(i))
                    .collect();
                let direct = feed.shard(i);
                assert_eq!(rebuilt.len(), direct.len(), "shard {i}");
                for (a, b) in rebuilt.iter().zip(direct) {
                    assert_eq!(a.position, b.position, "shard {i}");
                    assert_eq!(a.update, b.update, "shard {i}");
                    assert_eq!(a.owned, b.owned, "shard {i}");
                }
            }
        }
    }

    #[test]
    fn shard_map_overrides_win_and_rest_stay_uniform() {
        let shards = 4;
        let map = ShardMap::with_overrides(shards, vec![(7, 2), (7, 3), (100, 1)]);
        // Later entry for vertex 7 wins.
        assert_eq!(map.shard_of(7), 3);
        assert_eq!(map.shard_of(100), 1);
        for v in 0..64u32 {
            if v != 7 {
                assert_eq!(map.shard_of(v), shard_of_vertex(v, shards));
            }
        }
        // Overrides restating the hash are dropped.
        let hash_home = shard_of_vertex(9, shards) as u16;
        let map = ShardMap::with_overrides(shards, vec![(9, hash_home)]);
        assert!(map.is_uniform());
    }

    #[test]
    fn balanced_map_improves_skewed_load() {
        let shards = 4;
        // One scorching vertex plus a flat background.
        let mut counts = vec![4u64; 256];
        counts[3] = 10_000;
        counts[17] = 6_000;
        let spread = |map: &ShardMap| -> (u64, u64) {
            let mut load = vec![0u64; shards];
            for (v, &c) in counts.iter().enumerate() {
                load[map.shard_of(v as u32)] += c;
            }
            (*load.iter().max().unwrap(), *load.iter().min().unwrap())
        };
        let uniform = ShardMap::uniform(shards);
        let balanced = ShardMap::balanced(shards, &counts, 8);
        let (umax, _) = spread(&uniform);
        let (bmax, bmin) = spread(&balanced);
        assert!(
            bmax <= umax,
            "rebalance made the hottest shard hotter: {bmax} > {umax}"
        );
        // The two hubs must land on different shards.
        assert_ne!(balanced.shard_of(3), balanced.shard_of(17));
        assert!(bmax - bmin <= 10_000, "still pathological: {bmax}-{bmin}");
        // Deterministic for a fixed count vector.
        assert_eq!(balanced, ShardMap::balanced(shards, &counts, 8));
    }

    #[test]
    fn vertex_delivery_counts_match_incidence() {
        let g = gen::gnm(30, 140, 41);
        let s = TurnstileStream::from_graph_with_churn(&g, 0.5, 42);
        let feed = ShardedFeed::partition(&s, 3);
        let counts = feed.vertex_delivery_counts();
        let mut expect = vec![0u64; s.num_vertices()];
        s.replay(&mut |u| {
            let (a, b) = u.edge.endpoints();
            expect[a.0 as usize] += 1;
            expect[b.0 as usize] += 1;
        });
        assert_eq!(counts, expect);
    }

    #[test]
    fn placed_feed_delivers_every_incident_update_in_order() {
        // The delivery contract under a non-uniform map — the feed-side
        // half of the placement-equivalence argument.
        let g = gen::gnm(40, 200, 43);
        let s = InsertionStream::from_graph(&g, 44);
        let source = collect(&s);
        let shards = 4;
        let map = ShardMap::balanced(
            shards,
            &{
                let feed = ShardedFeed::partition(&s, shards);
                feed.vertex_delivery_counts()
            },
            16,
        );
        let feed = ShardedFeed::partition_with_map(&s, map.clone());
        assert_eq!(feed.shard_map(), &map);
        let mut owned_seen = vec![0u32; s.len()];
        for i in 0..shards {
            let expected: Vec<EdgeUpdate> = source
                .iter()
                .copied()
                .filter(|u| {
                    let (a, b) = u.edge.endpoints();
                    map.shard_of(a.0) == i || map.shard_of(b.0) == i
                })
                .collect();
            let got: Vec<EdgeUpdate> = feed.shard(i).iter().map(|su| su.update).collect();
            assert_eq!(got, expected, "shard {i}");
            assert!(feed
                .shard(i)
                .windows(2)
                .all(|w| w[0].position < w[1].position));
            for su in feed.shard(i) {
                assert_eq!(su.owned, map.shard_of(su.update.edge.u().0) == i);
                if su.owned {
                    owned_seen[su.position as usize] += 1;
                }
            }
        }
        assert!(owned_seen.iter().all(|&c| c == 1));
        // Routed cache agrees with the map.
        for r in feed.routed() {
            let (u, v) = r.update.edge.endpoints();
            assert_eq!(r.owner as usize, map.shard_of(u.0));
            assert_eq!(r.other as usize, map.shard_of(v.0));
        }
    }

    #[test]
    fn from_routed_rejects_non_uniform_placement() {
        // Checkpoint recovery only accepts the uniform hash; a routed
        // buffer written under a placement map must be rejected loudly,
        // not silently re-routed.
        let g = gen::gnm(20, 80, 45);
        let s = InsertionStream::from_graph(&g, 46);
        let counts = ShardedFeed::partition(&s, 3).vertex_delivery_counts();
        let map = ShardMap::balanced(3, &counts, 8);
        assert!(!map.is_uniform(), "need a real override to test with");
        let feed = ShardedFeed::partition_with_map(&s, map);
        let err = ShardedFeed::from_routed(20, 3, feed.routed().to_vec());
        assert!(err.is_err(), "non-uniform routing must not recover");
    }

    #[test]
    fn shard_assignment_is_stable_and_spread() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for v in 0..4096u32 {
            let s = shard_of_vertex(v, shards);
            assert_eq!(s, shard_of_vertex(v, shards));
            counts[s] += 1;
        }
        for &c in &counts {
            assert!(
                (300..=800).contains(&c),
                "shard badly unbalanced: {counts:?}"
            );
        }
    }
}
