//! Broadcast ingest: one bounded feed fans out to many pass consumers,
//! over a **lock-free seqlock SPMC ring**.
//!
//! The paper's estimators, the TRIÈST baseline, the exact oracle, and
//! plain pass counters are all *consumers of the same update sequence*.
//! A serving deployment wants to pay the ingest once: one producer pushes
//! the stream through a bounded single-producer/multi-consumer ring of
//! update blocks, and every registered consumer walks the blocks through
//! its own cursor. No external deps, and — since PR 7 — no lock on the
//! hot path either:
//!
//! * **Slot array + per-slot sequence numbers (seqlock publish).** The
//!   ring is a fixed array of `capacity` slots. Block `s` lives in slot
//!   `s % capacity`; the producer writes the block, then release-stores
//!   `s + 1` into the slot's atomic sequence word. A consumer at cursor
//!   `c` acquire-loads slot `c % capacity`'s sequence and reads the
//!   block only on an exact `c + 1` match — any other value means "not
//!   yet published" (an older generation is proof the new block has not
//!   landed, never a torn read, because of the reclamation rule below).
//! * **Atomic per-consumer cursors.** Each consumer owns an atomic
//!   cursor (its next sequence number), bumped with a release store
//!   *after* the block `Arc` is cloned out of the slot. The producer may
//!   overwrite slot `s % capacity` with block `s + capacity` only once
//!   every active cursor has passed `s` — and a consumer mid-read still
//!   sits *at* `s` — so a published slot is immutable for exactly as
//!   long as anyone may read it. That protocol is what lets readers skip
//!   the classic seqlock re-check loop: the single sequence load is
//!   already conclusive.
//! * **Cached-minimum producer fast path.** The space check compares the
//!   next sequence against a cached lower bound of the minimum active
//!   cursor; only when the bound says "full" does the producer rescan
//!   the (fixed, subscribe-before-produce) consumer set and refresh the
//!   cache. Fast-moving consumers therefore cost the producer one
//!   relaxed load per block, not a scan.
//! * **Bounded spin-then-park blocking.** The blocking APIs spin briefly
//!   (`spin_loop` then `yield_now`), then park on a doorbell — a
//!   `Mutex`+`Condvar` pair touched *only* by parked threads; wakers pay
//!   a single atomic load when nobody is parked. Parks use short timed
//!   waits, which is also how a producer stuck behind a stalled cursor
//!   keeps its [`StallEvent`] duration current while still blocked.
//!
//! Semantics are unchanged from the mutex ring (preserved verbatim in
//! [`crate::broadcast_mutex`] as bench baseline and stress-test oracle):
//!
//! * **Blocks, not updates.** The ring holds up to `capacity` blocks of
//!   [`RoutedUpdate`]s; memory is bounded by `capacity × block_len`
//!   regardless of stream length.
//! * **Per-consumer cursors.** Every consumer sees every block, in
//!   order, exactly once. In the default **pass mode** consumers
//!   subscribe before production starts (the ring seals on the first
//!   push), so each one observes the whole stream — that is what makes
//!   a broadcast pass *equivalent* to a private replay, not just
//!   similar. A ring built with [`Broadcast::open_ingest`] instead runs
//!   in **open-ingest mode** for long-lived serving: production never
//!   seals the consumer set, and a late subscriber joins at the
//!   published tail (a block boundary), observing every block from its
//!   join point on. Open-mode producers scan the live registry (under
//!   its lock) when the cached minimum reports the ring full — a cold
//!   path — so the lock-free hot path is unchanged.
//! * **Backpressure.** The producer can run at most `capacity` blocks
//!   ahead of the slowest **active** consumer; past that it blocks (or
//!   reports no-space through [`Broadcast::try_push`]).
//! * **Consumer loss is not producer loss.** Dropping a
//!   [`BroadcastConsumer`] mid-pass deregisters its cursor: the producer
//!   and the remaining consumers finish normally, and pass accounting is
//!   untouched.
//!
//! Both a blocking schedule (producer + consumers on threads) and a
//! cooperative single-threaded schedule (`try_push`/`try_next`
//! round-robin) drive the same ring; the executors in `sgs-query` pick
//! per [`ExecPolicy`], and `tests/ring_stress.rs` drives randomized
//! interleavings through both APIs against the mutex oracle.

use crate::sharded::{RoutedUpdate, ShardedFeed};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default number of in-flight ring blocks.
pub const DEFAULT_RING_CAPACITY: usize = 8;
/// Default updates per ring block (transport granularity — independent
/// of, and equivalent under, any executor feed-block size).
pub const DEFAULT_RING_BLOCK: usize = 256;

/// Spin iterations before yielding in the blocking APIs.
const SPIN_LIMIT: u32 = 64;
/// Yield iterations before parking in the blocking APIs.
const YIELD_LIMIT: u32 = 16;
/// Park slice for blocked threads: long enough to keep a parked thread
/// cheap, short enough that a missed wakeup (impossible by protocol, but
/// belt-and-braces) or an in-progress stall stays observable.
const PARK_SLICE: Duration = Duration::from_micros(500);

/// One ring block: a shared, immutable chunk of the routed stream.
pub type Block = Arc<[RoutedUpdate]>;

/// Outcome of a non-blocking cursor read.
#[derive(Clone, Debug)]
pub enum TryNext {
    /// The next block, cursor advanced.
    Block(Block),
    /// Nothing available yet; the producer is still running.
    Pending,
    /// The stream is finished and this cursor consumed all of it.
    Ended,
}

/// One recorded producer stall: [`Broadcast::push`] sat blocked on the
/// slowest active cursor for longer than the configured threshold.
/// Queryable from the feed via [`Broadcast::stall_events`], this turns a
/// silent backpressure deadlock-in-waiting into observable state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallEvent {
    /// The consumer the producer was blocked on when the threshold fired
    /// (the slowest active cursor — minimum cursor — at that moment).
    pub consumer: usize,
    /// Total nanoseconds the producer spent blocked in that push. The
    /// event is recorded at the first threshold crossing and its
    /// duration updated until the push unblocks, so a still-stalled
    /// producer is visible *while* it is stuck.
    pub blocked_ns: u64,
}

/// One ring slot: the seqlock word plus the block cell it guards.
///
/// `seq == s + 1` publishes block `s` (always an exact match test — see
/// the module docs for why a single acquire load is conclusive). The
/// cell is written by the producer only while no published-and-unread
/// generation can still be referenced, so consumers read it without any
/// versioned retry loop.
struct Slot {
    seq: AtomicU64,
    block: UnsafeCell<Option<Block>>,
}

// SAFETY: the `UnsafeCell` is coordinated by the seqlock protocol — the
// producer has exclusive write access to a slot until it release-stores
// the publish sequence, after which the slot is read-only until every
// active cursor has moved past it (the producer's space check), which
// re-grants exclusive write access for the next generation.
unsafe impl Sync for Slot {}
unsafe impl Send for Slot {}

/// One consumer's shared registration: an atomic cursor (next sequence
/// to read), a consumed-updates counter, and the active flag the
/// producer's minimum scan honors.
struct ConsumerSlot {
    cursor: AtomicU64,
    updates: AtomicU64,
    active: AtomicBool,
}

/// A park point: `Mutex` + `Condvar` touched only by threads that have
/// exhausted their spin budget. `waiters` is maintained under the lock;
/// wakers skip the lock entirely while it reads zero.
struct Doorbell {
    waiters: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Doorbell {
    fn new() -> Self {
        Doorbell {
            waiters: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Park for at most `slice` unless `ready()` already holds. The
    /// re-check runs under the lock, and wakers notify under the same
    /// lock, so a wakeup between the caller's last check and the park
    /// cannot be lost; the timed slice bounds the cost of any scenario
    /// the protocol has not imagined.
    fn park<F: Fn() -> bool>(&self, ready: F, slice: Duration) {
        let guard = self.lock.lock().unwrap();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        if !ready() {
            let (guard, _) = self.cv.wait_timeout(guard, slice).unwrap();
            drop(guard);
        } else {
            drop(guard);
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wake every parked thread. One atomic load when nobody is parked.
    fn ring(&self) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _guard = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }
}

struct Shared {
    slots: Box<[Slot]>,
    capacity: usize,
    /// Next sequence number a producer will claim (= blocks pushed or
    /// being pushed). Claimed by CAS so even a misused multi-producer
    /// ring stays memory-safe; the intended schedule is single-producer.
    claim: AtomicU64,
    /// Blocks fully published (the counter behind
    /// [`Broadcast::produced_blocks`]; consumers gate on per-slot
    /// sequences, not on this).
    produced_seq: AtomicU64,
    produced_updates: AtomicU64,
    finished: AtomicBool,
    /// Set on the first push (under the registry lock): no further
    /// subscriptions.
    sealed: AtomicBool,
    /// Open-ingest mode ([`Broadcast::open_ingest`]): production never
    /// seals the consumer set and late subscribers join at the
    /// published tail. The producer's minimum refresh scans the live
    /// registry under its lock instead of the frozen snapshot — a cold
    /// path reached only when the cached bound reports the ring full.
    open: bool,
    /// Cached lower bound on the minimum active cursor — the producer's
    /// fast-path space check. Refreshed by a full scan only when the
    /// bound reports the ring full.
    cached_min: AtomicU64,
    /// Subscription registry (cold path: subscribe / active_consumers /
    /// seal snapshot).
    registry: Mutex<Vec<Arc<ConsumerSlot>>>,
    /// The consumer set frozen at seal time, scanned lock-free by the
    /// producer's minimum refresh and the stall diagnostics.
    frozen: OnceLock<Box<[Arc<ConsumerSlot>]>>,
    /// Producer parks here for ring space.
    space: Doorbell,
    /// Consumers park here for new blocks (or finish).
    data: Doorbell,
    /// Record a [`StallEvent`] when a blocking push waits longer than
    /// this. `None` disables the diagnostics.
    stall_threshold: Option<Duration>,
    /// Cold path: only written by a blocked producer past its threshold.
    stall_events: Mutex<Vec<StallEvent>>,
}

impl Shared {
    /// The consumer set the producer races against: frozen at seal time.
    /// Empty before the first push — but nothing scans it before then.
    fn consumers(&self) -> &[Arc<ConsumerSlot>] {
        self.frozen.get().map(|b| &b[..]).unwrap_or(&[])
    }

    /// Recompute the minimum active cursor (acquire loads — a cursor
    /// bump must order the consumer's slot read before our overwrite).
    /// With no active consumers everything is reclaimable: the bound is
    /// `at_least`, so production never blocks. In open-ingest mode the
    /// scan runs over the live registry under its lock (serializing
    /// with late subscribes, which join at the published tail — so the
    /// cached bound can only ever be stale-*low*, never unsafe).
    fn refresh_min(&self, at_least: u64) -> u64 {
        let min = if self.open {
            let reg = self.registry.lock().unwrap();
            reg.iter()
                .filter(|c| c.active.load(Ordering::Acquire))
                .map(|c| c.cursor.load(Ordering::Acquire))
                .min()
                .unwrap_or(at_least)
        } else {
            self.consumers()
                .iter()
                .filter(|c| c.active.load(Ordering::Acquire))
                .map(|c| c.cursor.load(Ordering::Acquire))
                .min()
                .unwrap_or(at_least)
        };
        self.cached_min.store(min, Ordering::Relaxed);
        min
    }

    /// Whether sequence `seq` has a free slot right now. Fast path: one
    /// relaxed load of the cached minimum; slow path: rescan.
    fn has_space(&self, seq: u64) -> bool {
        if seq - self.cached_min.load(Ordering::Relaxed) < self.capacity as u64 {
            return true;
        }
        seq - self.refresh_min(seq) < self.capacity as u64
    }

    /// The consumer the producer is blocked on: the slowest active
    /// cursor (minimum cursor; lowest id breaks ties).
    fn slowest_active(&self) -> Option<usize> {
        if self.open {
            let reg = self.registry.lock().unwrap();
            return reg
                .iter()
                .enumerate()
                .filter(|(_, c)| c.active.load(Ordering::Acquire))
                .min_by_key(|(_, c)| c.cursor.load(Ordering::Acquire))
                .map(|(i, _)| i);
        }
        self.consumers()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.active.load(Ordering::Acquire))
            .min_by_key(|(_, c)| c.cursor.load(Ordering::Acquire))
            .map(|(i, _)| i)
    }

    /// Seal the ring on the first push: freeze the consumer set. Runs
    /// under the registry lock so it cannot race a subscribe. A no-op
    /// in open-ingest mode, whose whole point is that production never
    /// closes the door on late subscribers.
    fn seal(&self) {
        if self.open {
            return;
        }
        if !self.sealed.load(Ordering::Acquire) {
            let reg = self.registry.lock().unwrap();
            if !self.sealed.swap(true, Ordering::AcqRel) {
                let _ = self.frozen.set(reg.clone().into_boxed_slice());
            }
        }
    }

    /// Publish `block` as sequence `seq` (the slot must be reclaimed —
    /// guaranteed by a `has_space(seq)` check that held since `seq` was
    /// claimed, because cursors only move forward).
    fn publish(&self, seq: u64, block: &[RoutedUpdate]) {
        let slot = &self.slots[(seq % self.capacity as u64) as usize];
        debug_assert_ne!(slot.seq.load(Ordering::Relaxed), seq + 1);
        // SAFETY: `seq` was claimed by this producer via CAS and every
        // active cursor has passed `seq - capacity` (space check), so no
        // reader can hold a reference into this slot and no other writer
        // can claim it.
        unsafe {
            *slot.block.get() = Some(Arc::from(block));
        }
        slot.seq.store(seq + 1, Ordering::Release);
        self.produced_updates
            .fetch_add(block.len() as u64, Ordering::Relaxed);
        self.produced_seq.fetch_max(seq + 1, Ordering::AcqRel);
        self.data.ring();
    }
}

/// The producer handle of a bounded, lock-free SPMC broadcast ring.
pub struct Broadcast {
    shared: Arc<Shared>,
}

impl Broadcast {
    /// A ring holding at most `capacity` blocks in flight (`>= 1`).
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// A ring that additionally records a [`StallEvent`] whenever a
    /// blocking [`Broadcast::push`] waits on the slowest cursor for
    /// longer than `threshold`.
    pub fn with_stall_threshold(capacity: usize, threshold: Duration) -> Self {
        Self::build(capacity, Some(threshold))
    }

    /// A ring in **open-ingest mode**: production never seals the
    /// consumer set, so a query session may subscribe at any time and
    /// joins at the published tail — a block boundary, observing every
    /// block from its join point on. Backpressure still caps the
    /// producer at `capacity` blocks ahead of the slowest active
    /// consumer; with no consumers attached, ingest runs unbounded
    /// (the serving node keeps its own durable history).
    pub fn open_ingest(capacity: usize) -> Self {
        Self::build_at(capacity, None, true, 0)
    }

    /// [`Broadcast::open_ingest`] resuming an earlier ring's sequence
    /// numbering: the next pushed block publishes as sequence
    /// `start_seq`, and [`Broadcast::produced_blocks`] starts there. A
    /// restarted server rebuilds its ring at the WAL's block count so
    /// checkpointed consumer cursors stay meaningful across restarts.
    /// (`produced_updates` restarts at zero — updates before
    /// `start_seq` live in the WAL, not the ring.)
    pub fn open_ingest_at(capacity: usize, start_seq: u64) -> Self {
        Self::build_at(capacity, None, true, start_seq)
    }

    fn build(capacity: usize, stall_threshold: Option<Duration>) -> Self {
        Self::build_at(capacity, stall_threshold, false, 0)
    }

    fn build_at(
        capacity: usize,
        stall_threshold: Option<Duration>,
        open: bool,
        start_seq: u64,
    ) -> Self {
        assert!(capacity >= 1, "ring needs at least one block slot");
        let slots: Box<[Slot]> = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                block: UnsafeCell::new(None),
            })
            .collect();
        Broadcast {
            shared: Arc::new(Shared {
                slots,
                capacity,
                claim: AtomicU64::new(start_seq),
                produced_seq: AtomicU64::new(start_seq),
                produced_updates: AtomicU64::new(0),
                finished: AtomicBool::new(false),
                sealed: AtomicBool::new(false),
                open,
                cached_min: AtomicU64::new(start_seq),
                registry: Mutex::new(Vec::new()),
                frozen: OnceLock::new(),
                space: Doorbell::new(),
                data: Doorbell::new(),
                stall_threshold,
                stall_events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Register a consumer cursor. In pass mode the cursor starts at
    /// the head of the (not yet started) stream and panics once
    /// production has begun — a late subscriber could not see the whole
    /// stream, which would silently break the equivalence contract. In
    /// open-ingest mode subscription is always allowed: the cursor
    /// joins at the published tail (a block boundary; the registry lock
    /// serializes the join against the producer's minimum refresh, and
    /// a concurrently-publishing block lands exactly at the join
    /// point). [`BroadcastConsumer::joined_at`] reports the boundary.
    pub fn subscribe(&self) -> BroadcastConsumer {
        let mut reg = self.shared.registry.lock().unwrap();
        let start = if self.shared.open {
            // Cold path: reclaim registrations of dropped consumers so
            // a long-lived server's registry stays proportional to the
            // live session count.
            reg.retain(|c| c.active.load(Ordering::Acquire));
            self.shared.produced_seq.load(Ordering::Acquire)
        } else {
            assert!(
                !self.shared.sealed.load(Ordering::Acquire),
                "broadcast consumers must subscribe before production starts"
            );
            0
        };
        let slot = Arc::new(ConsumerSlot {
            cursor: AtomicU64::new(start),
            updates: AtomicU64::new(0),
            active: AtomicBool::new(true),
        });
        reg.push(slot.clone());
        BroadcastConsumer {
            shared: self.shared.clone(),
            slot,
            joined_at: start,
        }
    }

    /// Push one block, blocking (bounded spin, then park) while the ring
    /// is full with respect to the slowest active consumer. Copies
    /// `block` into a shared allocation (the ring owns its blocks; the
    /// producer's buffer can be transient).
    pub fn push(&self, block: &[RoutedUpdate]) {
        let sh = &*self.shared;
        assert!(!sh.finished.load(Ordering::Acquire), "push after finish");
        sh.seal();
        let seq = self.claim_next();
        if !sh.has_space(seq) {
            self.wait_for_space(seq);
        }
        sh.publish(seq, block);
    }

    /// Claim the next sequence number (uncontended single CAS for the
    /// intended single producer; a retry loop keeps accidental
    /// multi-producer use memory-safe).
    fn claim_next(&self) -> u64 {
        let sh = &*self.shared;
        loop {
            let seq = sh.claim.load(Ordering::Acquire);
            if sh
                .claim
                .compare_exchange(seq, seq + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return seq;
            }
        }
    }

    /// The blocking slow path of [`Broadcast::push`]: spin, yield, then
    /// park on the space doorbell in short slices, keeping the stall
    /// diagnostics current the whole time.
    fn wait_for_space(&self, seq: u64) {
        let sh = &*self.shared;
        for _ in 0..SPIN_LIMIT {
            std::hint::spin_loop();
            if sh.has_space(seq) {
                return;
            }
        }
        for _ in 0..YIELD_LIMIT {
            std::thread::yield_now();
            if sh.has_space(seq) {
                return;
            }
        }
        let wait_start = Instant::now();
        let mut event: Option<usize> = None;
        loop {
            sh.space.park(|| sh.has_space(seq), PARK_SLICE);
            if let Some(threshold) = sh.stall_threshold {
                let blocked = wait_start.elapsed();
                if blocked >= threshold {
                    // Recorded at the first threshold crossing, duration
                    // kept current on every slice until the push
                    // unblocks — a still-stalled producer is visible
                    // *while* it is stuck.
                    let blocked_ns = blocked.as_nanos() as u64;
                    let mut events = sh.stall_events.lock().unwrap();
                    match event {
                        Some(i) => events[i].blocked_ns = blocked_ns,
                        None => {
                            let consumer = sh.slowest_active().unwrap_or(usize::MAX);
                            event = Some(events.len());
                            events.push(StallEvent {
                                consumer,
                                blocked_ns,
                            });
                        }
                    }
                }
            }
            if sh.has_space(seq) {
                break;
            }
        }
        if let Some(i) = event {
            let mut events = sh.stall_events.lock().unwrap();
            events[i].blocked_ns = wait_start.elapsed().as_nanos() as u64;
        }
    }

    /// Non-blocking [`Broadcast::push`]: `false` (and no cursor or ring
    /// change) when the ring is full. The cooperative single-threaded
    /// schedule is built on this.
    pub fn try_push(&self, block: &[RoutedUpdate]) -> bool {
        let sh = &*self.shared;
        assert!(!sh.finished.load(Ordering::Acquire), "push after finish");
        sh.seal();
        // Check-then-claim is exact for the intended single producer
        // (nobody else advances `claim`); a racing second producer can
        // only make the check conservative, never unsafe, because the
        // claimed sequence is re-verified before publishing.
        let seq = sh.claim.load(Ordering::Acquire);
        if !sh.has_space(seq) {
            return false;
        }
        if sh
            .claim
            .compare_exchange(seq, seq + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        if !sh.has_space(seq) {
            // Unreachable single-producer (space cannot shrink while we
            // hold the claim: cursors only advance); if a misused second
            // producer raced us here, fall back to the blocking wait so
            // the claimed sequence is never abandoned.
            self.wait_for_space(seq);
        }
        sh.publish(seq, block);
        true
    }

    /// Seal the stream: consumers that drain past the last block see the
    /// end instead of waiting.
    pub fn finish(&self) {
        self.shared.seal();
        self.shared.finished.store(true, Ordering::Release);
        self.shared.data.ring();
    }

    /// Whether [`Broadcast::finish`] was called.
    pub fn is_finished(&self) -> bool {
        self.shared.finished.load(Ordering::Acquire)
    }

    /// Whether this ring runs in open-ingest mode
    /// ([`Broadcast::open_ingest`]).
    pub fn is_open(&self) -> bool {
        self.shared.open
    }

    /// Blocks produced so far.
    pub fn produced_blocks(&self) -> u64 {
        self.shared.produced_seq.load(Ordering::Acquire)
    }

    /// Updates produced so far (sum of block lengths).
    pub fn produced_updates(&self) -> u64 {
        self.shared.produced_updates.load(Ordering::Acquire)
    }

    /// Consumers still attached (not dropped).
    pub fn active_consumers(&self) -> usize {
        self.shared
            .registry
            .lock()
            .unwrap()
            .iter()
            .filter(|c| c.active.load(Ordering::Acquire))
            .count()
    }

    /// Ring capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Recorded producer stalls (pushes blocked past the threshold set
    /// by [`Broadcast::with_stall_threshold`]), in record order. An
    /// in-progress stall is already visible here with its
    /// duration-so-far.
    pub fn stall_events(&self) -> Vec<StallEvent> {
        self.shared.stall_events.lock().unwrap().clone()
    }
}

/// One consumer's cursor into a [`Broadcast`] ring. Dropping it
/// deregisters the cursor (the producer stops waiting on it).
pub struct BroadcastConsumer {
    shared: Arc<Shared>,
    slot: Arc<ConsumerSlot>,
    joined_at: u64,
}

impl BroadcastConsumer {
    /// Non-blocking [`Iterator::next`].
    pub fn try_next(&mut self) -> TryNext {
        let cur = self.slot.cursor.load(Ordering::Relaxed);
        if let Some(block) = self.read_at(cur) {
            return TryNext::Block(block);
        }
        if self.shared.finished.load(Ordering::Acquire) {
            // `finish` happens after every publish in the producer, so
            // seeing it means a still-unpublished slot will stay that
            // way — but re-check once: the publish of `cur` may have
            // landed between our slot load and the finished load.
            match self.read_at(cur) {
                Some(block) => TryNext::Block(block),
                None => TryNext::Ended,
            }
        } else {
            TryNext::Pending
        }
    }

    /// Read (and consume) the block at sequence `cur` if published.
    fn read_at(&mut self, cur: u64) -> Option<Block> {
        let sh = &*self.shared;
        let slot = &sh.slots[(cur % sh.capacity as u64) as usize];
        if slot.seq.load(Ordering::Acquire) != cur + 1 {
            return None;
        }
        // SAFETY: exact sequence match means block `cur` is published in
        // this slot, and the producer cannot start overwriting it until
        // our cursor (still at `cur`) moves past it — which happens only
        // in the release store below, after the clone completes.
        let block = unsafe { (*slot.block.get()).clone() }.expect("published slot holds a block");
        self.slot
            .updates
            .fetch_add(block.len() as u64, Ordering::Relaxed);
        self.slot.cursor.store(cur + 1, Ordering::Release);
        // The slowest cursor may just have moved: wake a parked producer
        // (one atomic load when none is parked).
        sh.space.ring();
        Some(block)
    }

    /// Blocks consumed so far — the cursor position. Monotone, and never
    /// ahead of [`Broadcast::produced_blocks`].
    pub fn blocks_consumed(&self) -> u64 {
        self.slot.cursor.load(Ordering::Acquire)
    }

    /// Updates consumed so far.
    pub fn updates_consumed(&self) -> u64 {
        self.slot.updates.load(Ordering::Acquire)
    }

    /// The sequence this cursor started at: `0` in pass mode, the
    /// published tail at subscription time in open-ingest mode.
    pub fn joined_at(&self) -> u64 {
        self.joined_at
    }
}

/// Blocking cursor walk: `next()` spins briefly, then parks for the next
/// block, and yields `None` once the stream is finished and fully
/// consumed.
impl Iterator for BroadcastConsumer {
    type Item = Block;

    fn next(&mut self) -> Option<Block> {
        let mut spins = 0u32;
        let mut yields = 0u32;
        loop {
            match self.try_next() {
                TryNext::Block(b) => return Some(b),
                TryNext::Ended => return None,
                TryNext::Pending => {
                    if spins < SPIN_LIMIT {
                        spins += 1;
                        std::hint::spin_loop();
                    } else if yields < YIELD_LIMIT {
                        yields += 1;
                        std::thread::yield_now();
                    } else {
                        let cur = self.slot.cursor.load(Ordering::Relaxed);
                        let sh = &*self.shared;
                        let slot = &sh.slots[(cur % sh.capacity as u64) as usize];
                        sh.data.park(
                            || {
                                slot.seq.load(Ordering::SeqCst) == cur + 1
                                    || sh.finished.load(Ordering::SeqCst)
                            },
                            PARK_SLICE,
                        );
                    }
                }
            }
        }
    }
}

impl Drop for BroadcastConsumer {
    fn drop(&mut self) {
        self.slot.active.store(false, Ordering::Release);
        // The producer may have been parked on this cursor.
        self.shared.space.ring();
    }
}

/// The canonical producer: replays a [`ShardedFeed`]'s routed buffer
/// into a ring in blocks. Creating one records **one logical pass** on
/// the feed — however many consumers (including zero) draw from the
/// ring, and whether or not all of them survive it.
pub struct RoutedProducer<'f> {
    feed: &'f ShardedFeed,
    block: usize,
    offset: usize,
    done: bool,
}

impl<'f> RoutedProducer<'f> {
    /// Start a broadcast pass over `feed` with the given transport block
    /// length (`0` is clamped to 1). Counts the logical pass immediately.
    pub fn new(feed: &'f ShardedFeed, block: usize) -> Self {
        feed.begin_pass();
        RoutedProducer {
            feed,
            block: block.max(1),
            offset: 0,
            done: false,
        }
    }

    /// Whether every block (and the finish marker) has been pushed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Blocking schedule: push the whole stream, then finish the ring.
    /// Run this on its own thread next to blocking consumers.
    pub fn run(mut self, ring: &Broadcast) {
        let routed = self.feed.routed();
        while self.offset < routed.len() {
            let end = (self.offset + self.block).min(routed.len());
            ring.push(&routed[self.offset..end]);
            self.offset = end;
        }
        ring.finish();
        self.done = true;
    }

    /// Cooperative schedule: push as many blocks as fit right now
    /// without blocking; finishes the ring when the stream is exhausted.
    /// Returns `true` once done (idempotent afterwards).
    pub fn pump(&mut self, ring: &Broadcast) -> bool {
        let routed = self.feed.routed();
        while !self.done {
            if self.offset >= routed.len() {
                ring.finish();
                self.done = true;
                break;
            }
            let end = (self.offset + self.block).min(routed.len());
            if !ring.try_push(&routed[self.offset..end]) {
                return false;
            }
            self.offset = end;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::InsertionStream;
    use sgs_graph::gen;

    fn feed(shards: usize) -> ShardedFeed {
        let g = gen::gnm(30, 150, 41);
        let s = InsertionStream::from_graph(&g, 42);
        ShardedFeed::partition(&s, shards)
    }

    fn drain(c: BroadcastConsumer) -> Vec<RoutedUpdate> {
        let mut out = Vec::new();
        for b in c {
            out.extend_from_slice(&b);
        }
        out
    }

    #[test]
    fn every_consumer_sees_the_whole_stream_in_order() {
        let f = feed(3);
        let ring = Broadcast::new(4);
        let consumers: Vec<_> = (0..3).map(|_| ring.subscribe()).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = consumers
                .into_iter()
                .map(|c| s.spawn(move || drain(c)))
                .collect();
            RoutedProducer::new(&f, 16).run(&ring);
            for h in handles {
                assert_eq!(h.join().unwrap(), f.routed());
            }
        });
        assert_eq!(f.logical_passes(), 1);
        assert_eq!(ring.produced_updates(), f.routed().len() as u64);
    }

    #[test]
    fn zero_consumer_feed_completes() {
        let f = feed(2);
        let ring = Broadcast::new(2);
        // Nothing subscribed: production must run to completion without
        // blocking on ring space.
        RoutedProducer::new(&f, 8).run(&ring);
        assert!(ring.is_finished());
        assert_eq!(ring.produced_updates(), f.routed().len() as u64);
        assert_eq!(f.logical_passes(), 1);
    }

    #[test]
    fn cooperative_schedule_matches_blocking() {
        let f = feed(4);
        let ring = Broadcast::new(2);
        let mut a = ring.subscribe();
        let mut b = ring.subscribe();
        let mut producer = RoutedProducer::new(&f, 7);
        let (mut got_a, mut got_b) = (Vec::new(), Vec::new());
        let (mut done_a, mut done_b) = (false, false);
        loop {
            let produced = producer.pump(&ring);
            for (c, got, done) in [
                (&mut a, &mut got_a, &mut done_a),
                (&mut b, &mut got_b, &mut done_b),
            ] {
                loop {
                    match c.try_next() {
                        TryNext::Block(bl) => got.extend_from_slice(&bl),
                        TryNext::Pending => break,
                        TryNext::Ended => {
                            *done = true;
                            break;
                        }
                    }
                }
            }
            if produced && done_a && done_b {
                break;
            }
        }
        assert_eq!(got_a, f.routed());
        assert_eq!(got_b, f.routed());
    }

    #[test]
    fn backpressure_caps_producer_at_capacity_ahead_of_stalled_consumer() {
        let f = feed(1);
        let capacity = 2;
        let ring = Broadcast::new(capacity);
        let mut stalled = ring.subscribe();
        let mut producer = RoutedProducer::new(&f, 4);
        // Cooperative pump with a consumer that never reads: the ring
        // fills to capacity and production stops advancing — bounded
        // memory, no deadlock (try_push just reports no space).
        assert!(!producer.pump(&ring));
        assert_eq!(ring.produced_blocks(), capacity as u64);
        assert!(!producer.pump(&ring), "stalled consumer keeps the cap");
        assert_eq!(ring.produced_blocks(), capacity as u64);
        // The consumer wakes up: every read frees one slot.
        let _ = stalled.try_next();
        assert!(!producer.pump(&ring));
        assert_eq!(ring.produced_blocks(), capacity as u64 + 1);
        // Drain fully: production completes.
        while !producer.pump(&ring) {
            match stalled.try_next() {
                TryNext::Block(_) => {}
                TryNext::Pending => {}
                TryNext::Ended => break,
            }
        }
        assert!(ring.is_finished() || producer.is_done());
    }

    #[test]
    fn blocking_producer_survives_a_stalled_then_dropped_consumer() {
        let f = feed(2);
        let ring = Broadcast::new(2);
        let stalled = ring.subscribe();
        let live = ring.subscribe();
        std::thread::scope(|s| {
            let h = s.spawn(|| drain(live));
            let p = s.spawn(|| RoutedProducer::new(&f, 8).run(&ring));
            // Give the producer time to hit the backpressure cap, then
            // drop the stalled cursor: the producer must resume and both
            // remaining parties finish.
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(!ring.is_finished(), "stalled consumer caps the producer");
            drop(stalled);
            p.join().unwrap();
            assert_eq!(h.join().unwrap(), f.routed());
        });
        assert_eq!(f.logical_passes(), 1, "one pass despite the lost consumer");
        // Both cursors are gone by now: one dropped mid-pass, one
        // deregistered when `drain` consumed it.
        assert_eq!(ring.active_consumers(), 0);
    }

    #[test]
    #[should_panic(expected = "subscribe before production")]
    fn late_subscription_is_rejected() {
        let f = feed(1);
        let ring = Broadcast::new(2);
        ring.push(&f.routed()[..1]);
        let _ = ring.subscribe();
    }

    #[test]
    fn open_ingest_late_subscriber_joins_at_block_boundary() {
        let f = feed(1);
        let routed = f.routed();
        let ring = Broadcast::open_ingest(4);
        // Three blocks land before anyone subscribes — legal in open
        // mode, and with no consumers production never blocks.
        for chunk in routed[..12].chunks(4) {
            ring.push(chunk);
        }
        let late = ring.subscribe();
        assert_eq!(late.joined_at(), 3);
        for chunk in routed[12..20].chunks(4) {
            ring.push(chunk);
        }
        ring.finish();
        // The late cursor sees exactly the blocks published after its
        // join point, in order.
        assert_eq!(drain(late), routed[12..20].to_vec());
    }

    #[test]
    fn open_ingest_at_resumes_sequence_numbering() {
        let f = feed(1);
        let routed = f.routed();
        let ring = Broadcast::open_ingest_at(2, 10);
        assert!(ring.is_open());
        assert_eq!(ring.produced_blocks(), 10);
        let mut c = ring.subscribe();
        assert_eq!(c.joined_at(), 10);
        ring.push(&routed[..4]);
        assert_eq!(ring.produced_blocks(), 11);
        match c.try_next() {
            TryNext::Block(b) => assert_eq!(&b[..], &routed[..4]),
            other => panic!("expected the resumed block, got {other:?}"),
        }
        assert_eq!(c.blocks_consumed(), 11);
        assert_eq!(ring.produced_updates(), 4);
    }

    #[test]
    fn open_ingest_backpressure_respects_late_consumer() {
        let f = feed(1);
        let routed = f.routed();
        let ring = Broadcast::open_ingest(2);
        // Five unconsumed blocks: the ring recycles slots freely while
        // nobody is subscribed.
        for chunk in routed[..20].chunks(4) {
            ring.push(chunk);
        }
        let mut c = ring.subscribe();
        assert_eq!(c.joined_at(), 5);
        // Once a consumer is attached, the producer is capped at
        // `capacity` blocks ahead of it again.
        assert!(ring.try_push(&routed[20..24]));
        assert!(ring.try_push(&routed[24..28]));
        assert!(!ring.try_push(&routed[28..32]), "late cursor caps ingest");
        match c.try_next() {
            TryNext::Block(b) => assert_eq!(&b[..], &routed[20..24]),
            other => panic!("expected first post-join block, got {other:?}"),
        }
        assert!(ring.try_push(&routed[28..32]), "each read frees one slot");
    }

    #[test]
    fn slot_generations_wrap_cleanly_at_capacity_one() {
        // Capacity 1 maximizes slot reuse: every block recycles the same
        // slot, so any seqlock generation bug shows immediately.
        let f = feed(2);
        let ring = Broadcast::new(1);
        let c = ring.subscribe();
        std::thread::scope(|s| {
            let h = s.spawn(move || drain(c));
            RoutedProducer::new(&f, 3).run(&ring);
            assert_eq!(h.join().unwrap(), f.routed());
        });
    }

    #[test]
    fn stall_event_records_blocked_producer() {
        let f = feed(1);
        let ring = Broadcast::with_stall_threshold(1, Duration::from_millis(5));
        let stalled = ring.subscribe();
        let live = ring.subscribe();
        std::thread::scope(|s| {
            let h = s.spawn(|| drain(live));
            let p = s.spawn(|| RoutedProducer::new(&f, 4).run(&ring));
            std::thread::sleep(Duration::from_millis(40));
            let events = ring.stall_events();
            assert!(
                !events.is_empty(),
                "blocked producer past threshold must be visible"
            );
            assert!(events[0].blocked_ns >= 5_000_000);
            drop(stalled);
            p.join().unwrap();
            assert_eq!(h.join().unwrap(), f.routed());
        });
    }
}
