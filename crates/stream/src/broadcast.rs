//! Broadcast ingest: one bounded feed fans out to many pass consumers.
//!
//! The paper's estimators, the TRIÈST baseline, the exact oracle, and
//! plain pass counters are all *consumers of the same update sequence*.
//! A serving deployment wants to pay the ingest once: one producer pushes
//! the stream through a **bounded single-producer/multi-consumer ring of
//! update blocks**, and every registered consumer walks the blocks
//! through its own cursor. No external deps — `Mutex` + two `Condvar`s.
//!
//! Semantics:
//!
//! * **Blocks, not updates.** The ring holds up to `capacity` blocks of
//!   [`RoutedUpdate`]s (shard routing cached at partition time, so no
//!   consumer redoes the shard hash). Memory is bounded by
//!   `capacity × block_len` regardless of stream length.
//! * **Per-consumer cursors.** Every consumer sees every block, in
//!   order, exactly once. Consumers subscribe before production starts
//!   (the ring seals on the first push), so each one observes the whole
//!   stream — that is what makes a broadcast pass *equivalent* to a
//!   private replay, not just similar.
//! * **Backpressure.** The producer can run at most `capacity` blocks
//!   ahead of the slowest **active** consumer; past that it blocks (or
//!   reports no-space through [`Broadcast::try_push`]). A stalled
//!   consumer therefore caps producer advance without deadlocking
//!   anyone else.
//! * **Consumer loss is not producer loss.** Dropping a
//!   [`BroadcastConsumer`] mid-pass deregisters its cursor: the producer
//!   and the remaining consumers finish normally, and pass accounting is
//!   untouched (a broadcast session is *one* logical pass however many
//!   consumers ride it, including zero).
//!
//! Both a blocking schedule (producer + consumers on scoped threads) and
//! a cooperative single-threaded schedule (`try_push`/`try_next`
//! round-robin) drive the same ring; the executors in `sgs-query` pick
//! per host, and the property suite drives randomized interleavings
//! through the try-APIs directly.

use crate::sharded::{RoutedUpdate, ShardedFeed};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default number of in-flight ring blocks.
pub const DEFAULT_RING_CAPACITY: usize = 8;
/// Default updates per ring block (transport granularity — independent
/// of, and equivalent under, any executor feed-block size).
pub const DEFAULT_RING_BLOCK: usize = 256;

/// One ring block: a shared, immutable chunk of the routed stream.
pub type Block = Arc<[RoutedUpdate]>;

/// Outcome of a non-blocking cursor read.
#[derive(Clone, Debug)]
pub enum TryNext {
    /// The next block, cursor advanced.
    Block(Block),
    /// Nothing available yet; the producer is still running.
    Pending,
    /// The stream is finished and this cursor consumed all of it.
    Ended,
}

struct Cursor {
    /// Sequence number of the next block this consumer will read.
    next_seq: u64,
    updates: u64,
    active: bool,
}

/// One recorded producer stall: [`Broadcast::push`] sat blocked on the
/// slowest active cursor for longer than the configured threshold.
/// Queryable from the feed via [`Broadcast::stall_events`], this turns a
/// silent backpressure deadlock-in-waiting into observable state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallEvent {
    /// The consumer the producer was blocked on when the threshold fired
    /// (the slowest active cursor — minimum `next_seq` — at that moment).
    pub consumer: usize,
    /// Total nanoseconds the producer spent blocked in that push. The
    /// event is recorded at the first threshold crossing and its
    /// duration updated until the push unblocks, so a still-stalled
    /// producer is visible *while* it is stuck.
    pub blocked_ns: u64,
}

struct State {
    ring: VecDeque<Block>,
    /// Sequence number of `ring[0]`.
    base_seq: u64,
    /// Sequence number the next produced block will get (= total blocks
    /// produced so far).
    produced_seq: u64,
    produced_updates: u64,
    finished: bool,
    /// Set on the first push: no further subscriptions.
    sealed: bool,
    consumers: Vec<Cursor>,
    /// Producer stalls past the configured threshold, in record order.
    stall_events: Vec<StallEvent>,
}

impl State {
    /// Drop ring blocks every active consumer has passed. With no active
    /// consumers everything is evictable — production never blocks.
    fn evict(&mut self) {
        let target = self
            .consumers
            .iter()
            .filter(|c| c.active)
            .map(|c| c.next_seq)
            .min()
            .unwrap_or(self.produced_seq);
        while self.base_seq < target && !self.ring.is_empty() {
            self.ring.pop_front();
            self.base_seq += 1;
        }
    }

    /// The consumer the producer is blocked on: the slowest active
    /// cursor (minimum `next_seq`; lowest id breaks ties). `None` with
    /// no active consumers — but then eviction frees space and the
    /// producer never waits.
    fn slowest_active(&self) -> Option<usize> {
        self.consumers
            .iter()
            .enumerate()
            .filter(|(_, c)| c.active)
            .min_by_key(|(_, c)| c.next_seq)
            .map(|(i, _)| i)
    }
}

struct Shared {
    state: Mutex<State>,
    /// Producer waits here for ring space.
    space: Condvar,
    /// Consumers wait here for new blocks (or finish).
    data: Condvar,
    capacity: usize,
    /// Record a [`StallEvent`] when a blocking push waits longer than
    /// this. `None` disables the diagnostics (no timed waits at all).
    stall_threshold: Option<Duration>,
}

/// The producer handle of a bounded SPMC broadcast ring.
pub struct Broadcast {
    shared: Arc<Shared>,
}

impl Broadcast {
    /// A ring holding at most `capacity` blocks in flight (`>= 1`).
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// A ring that additionally records a [`StallEvent`] whenever a
    /// blocking [`Broadcast::push`] waits on the slowest cursor for
    /// longer than `threshold`.
    pub fn with_stall_threshold(capacity: usize, threshold: Duration) -> Self {
        Self::build(capacity, Some(threshold))
    }

    fn build(capacity: usize, stall_threshold: Option<Duration>) -> Self {
        assert!(capacity >= 1, "ring needs at least one block slot");
        Broadcast {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    ring: VecDeque::with_capacity(capacity),
                    base_seq: 0,
                    produced_seq: 0,
                    produced_updates: 0,
                    finished: false,
                    sealed: false,
                    consumers: Vec::new(),
                    stall_events: Vec::new(),
                }),
                space: Condvar::new(),
                data: Condvar::new(),
                capacity,
                stall_threshold,
            }),
        }
    }

    /// Register a consumer cursor at the head of the (not yet started)
    /// stream. Panics once production has begun — a late subscriber
    /// could not see the whole stream, which would silently break the
    /// equivalence contract.
    pub fn subscribe(&self) -> BroadcastConsumer {
        let mut st = self.shared.state.lock().unwrap();
        assert!(
            !st.sealed,
            "broadcast consumers must subscribe before production starts"
        );
        st.consumers.push(Cursor {
            next_seq: 0,
            updates: 0,
            active: true,
        });
        BroadcastConsumer {
            shared: self.shared.clone(),
            id: st.consumers.len() - 1,
        }
    }

    /// Push one block, blocking while the ring is full with respect to
    /// the slowest active consumer. Copies `block` into a shared
    /// allocation (the ring owns its blocks; the producer's buffer can
    /// be transient).
    pub fn push(&self, block: &[RoutedUpdate]) {
        let mut st = self.shared.state.lock().unwrap();
        assert!(!st.finished, "push after finish");
        st.sealed = true;
        let mut wait_start: Option<Instant> = None;
        let mut event: Option<usize> = None;
        loop {
            st.evict();
            if st.ring.len() < self.shared.capacity {
                break;
            }
            match self.shared.stall_threshold {
                None => st = self.shared.space.wait(st).unwrap(),
                Some(threshold) => {
                    // Timed wait so a producer stuck on a stalled cursor
                    // surfaces as an observable event instead of a silent
                    // hang. The event is recorded at the first threshold
                    // crossing and its duration kept current on every
                    // re-check until the push unblocks.
                    let start = *wait_start.get_or_insert_with(Instant::now);
                    st = self.shared.space.wait_timeout(st, threshold).unwrap().0;
                    let blocked = start.elapsed();
                    if blocked >= threshold {
                        let blocked_ns = blocked.as_nanos() as u64;
                        match event {
                            Some(i) => st.stall_events[i].blocked_ns = blocked_ns,
                            None => {
                                let consumer = st.slowest_active().unwrap_or(usize::MAX);
                                event = Some(st.stall_events.len());
                                st.stall_events.push(StallEvent {
                                    consumer,
                                    blocked_ns,
                                });
                            }
                        }
                    }
                }
            }
        }
        if let (Some(start), Some(i)) = (wait_start, event) {
            st.stall_events[i].blocked_ns = start.elapsed().as_nanos() as u64;
        }
        st.produced_seq += 1;
        st.produced_updates += block.len() as u64;
        st.ring.push_back(Arc::from(block));
        drop(st);
        self.shared.data.notify_all();
    }

    /// Non-blocking [`Broadcast::push`]: `false` (and no cursor or ring
    /// change) when the ring is full. The cooperative single-threaded
    /// schedule is built on this.
    pub fn try_push(&self, block: &[RoutedUpdate]) -> bool {
        let mut st = self.shared.state.lock().unwrap();
        assert!(!st.finished, "push after finish");
        st.sealed = true;
        st.evict();
        if st.ring.len() >= self.shared.capacity {
            return false;
        }
        st.produced_seq += 1;
        st.produced_updates += block.len() as u64;
        st.ring.push_back(Arc::from(block));
        drop(st);
        self.shared.data.notify_all();
        true
    }

    /// Seal the stream: consumers that drain past the last block see the
    /// end instead of waiting.
    pub fn finish(&self) {
        let mut st = self.shared.state.lock().unwrap();
        st.sealed = true;
        st.finished = true;
        drop(st);
        self.shared.data.notify_all();
    }

    /// Whether [`Broadcast::finish`] was called.
    pub fn is_finished(&self) -> bool {
        self.shared.state.lock().unwrap().finished
    }

    /// Blocks produced so far.
    pub fn produced_blocks(&self) -> u64 {
        self.shared.state.lock().unwrap().produced_seq
    }

    /// Updates produced so far (sum of block lengths).
    pub fn produced_updates(&self) -> u64 {
        self.shared.state.lock().unwrap().produced_updates
    }

    /// Consumers still attached (not dropped).
    pub fn active_consumers(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap()
            .consumers
            .iter()
            .filter(|c| c.active)
            .count()
    }

    /// Ring capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Recorded producer stalls (pushes blocked past the threshold set
    /// by [`Broadcast::with_stall_threshold`]), in record order. An
    /// in-progress stall is already visible here with its
    /// duration-so-far.
    pub fn stall_events(&self) -> Vec<StallEvent> {
        self.shared.state.lock().unwrap().stall_events.clone()
    }
}

/// One consumer's cursor into a [`Broadcast`] ring. Dropping it
/// deregisters the cursor (the producer stops waiting on it).
pub struct BroadcastConsumer {
    shared: Arc<Shared>,
    id: usize,
}

/// Blocking cursor walk: `next()` waits for the next block and yields
/// `None` once the stream is finished and fully consumed.
impl Iterator for BroadcastConsumer {
    type Item = Block;

    fn next(&mut self) -> Option<Block> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            let cur = st.consumers[self.id].next_seq;
            if cur < st.produced_seq {
                let idx = (cur - st.base_seq) as usize;
                let block = st.ring[idx].clone();
                let c = &mut st.consumers[self.id];
                c.next_seq += 1;
                c.updates += block.len() as u64;
                drop(st);
                // The slowest cursor may just have moved: wake the
                // producer to re-check eviction space.
                self.shared.space.notify_all();
                return Some(block);
            }
            if st.finished {
                return None;
            }
            st = self.shared.data.wait(st).unwrap();
        }
    }
}

impl BroadcastConsumer {
    /// Non-blocking [`Iterator::next`].
    pub fn try_next(&mut self) -> TryNext {
        let mut st = self.shared.state.lock().unwrap();
        let cur = st.consumers[self.id].next_seq;
        if cur < st.produced_seq {
            let idx = (cur - st.base_seq) as usize;
            let block = st.ring[idx].clone();
            let c = &mut st.consumers[self.id];
            c.next_seq += 1;
            c.updates += block.len() as u64;
            drop(st);
            self.shared.space.notify_all();
            return TryNext::Block(block);
        }
        if st.finished {
            TryNext::Ended
        } else {
            TryNext::Pending
        }
    }

    /// Blocks consumed so far — the cursor position. Monotone, and never
    /// ahead of [`Broadcast::produced_blocks`].
    pub fn blocks_consumed(&self) -> u64 {
        self.shared.state.lock().unwrap().consumers[self.id].next_seq
    }

    /// Updates consumed so far.
    pub fn updates_consumed(&self) -> u64 {
        self.shared.state.lock().unwrap().consumers[self.id].updates
    }
}

impl Drop for BroadcastConsumer {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.consumers[self.id].active = false;
        st.evict();
        drop(st);
        // The producer may have been waiting on this cursor.
        self.shared.space.notify_all();
    }
}

/// The canonical producer: replays a [`ShardedFeed`]'s routed buffer
/// into a ring in blocks. Creating one records **one logical pass** on
/// the feed — however many consumers (including zero) draw from the
/// ring, and whether or not all of them survive it.
pub struct RoutedProducer<'f> {
    feed: &'f ShardedFeed,
    block: usize,
    offset: usize,
    done: bool,
}

impl<'f> RoutedProducer<'f> {
    /// Start a broadcast pass over `feed` with the given transport block
    /// length (`0` is clamped to 1). Counts the logical pass immediately.
    pub fn new(feed: &'f ShardedFeed, block: usize) -> Self {
        feed.begin_pass();
        RoutedProducer {
            feed,
            block: block.max(1),
            offset: 0,
            done: false,
        }
    }

    /// Whether every block (and the finish marker) has been pushed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Blocking schedule: push the whole stream, then finish the ring.
    /// Run this on its own thread next to blocking consumers.
    pub fn run(mut self, ring: &Broadcast) {
        let routed = self.feed.routed();
        while self.offset < routed.len() {
            let end = (self.offset + self.block).min(routed.len());
            ring.push(&routed[self.offset..end]);
            self.offset = end;
        }
        ring.finish();
        self.done = true;
    }

    /// Cooperative schedule: push as many blocks as fit right now
    /// without blocking; finishes the ring when the stream is exhausted.
    /// Returns `true` once done (idempotent afterwards).
    pub fn pump(&mut self, ring: &Broadcast) -> bool {
        let routed = self.feed.routed();
        while !self.done {
            if self.offset >= routed.len() {
                ring.finish();
                self.done = true;
                break;
            }
            let end = (self.offset + self.block).min(routed.len());
            if !ring.try_push(&routed[self.offset..end]) {
                return false;
            }
            self.offset = end;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::InsertionStream;
    use sgs_graph::gen;

    fn feed(shards: usize) -> ShardedFeed {
        let g = gen::gnm(30, 150, 41);
        let s = InsertionStream::from_graph(&g, 42);
        ShardedFeed::partition(&s, shards)
    }

    fn drain(c: BroadcastConsumer) -> Vec<RoutedUpdate> {
        let mut out = Vec::new();
        for b in c {
            out.extend_from_slice(&b);
        }
        out
    }

    #[test]
    fn every_consumer_sees_the_whole_stream_in_order() {
        let f = feed(3);
        let ring = Broadcast::new(4);
        let consumers: Vec<_> = (0..3).map(|_| ring.subscribe()).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = consumers
                .into_iter()
                .map(|c| s.spawn(move || drain(c)))
                .collect();
            RoutedProducer::new(&f, 16).run(&ring);
            for h in handles {
                assert_eq!(h.join().unwrap(), f.routed());
            }
        });
        assert_eq!(f.logical_passes(), 1);
        assert_eq!(ring.produced_updates(), f.routed().len() as u64);
    }

    #[test]
    fn zero_consumer_feed_completes() {
        let f = feed(2);
        let ring = Broadcast::new(2);
        // Nothing subscribed: production must run to completion without
        // blocking on ring space.
        RoutedProducer::new(&f, 8).run(&ring);
        assert!(ring.is_finished());
        assert_eq!(ring.produced_updates(), f.routed().len() as u64);
        assert_eq!(f.logical_passes(), 1);
    }

    #[test]
    fn cooperative_schedule_matches_blocking() {
        let f = feed(4);
        let ring = Broadcast::new(2);
        let mut a = ring.subscribe();
        let mut b = ring.subscribe();
        let mut producer = RoutedProducer::new(&f, 7);
        let (mut got_a, mut got_b) = (Vec::new(), Vec::new());
        let (mut done_a, mut done_b) = (false, false);
        loop {
            let produced = producer.pump(&ring);
            for (c, got, done) in [
                (&mut a, &mut got_a, &mut done_a),
                (&mut b, &mut got_b, &mut done_b),
            ] {
                loop {
                    match c.try_next() {
                        TryNext::Block(bl) => got.extend_from_slice(&bl),
                        TryNext::Pending => break,
                        TryNext::Ended => {
                            *done = true;
                            break;
                        }
                    }
                }
            }
            if produced && done_a && done_b {
                break;
            }
        }
        assert_eq!(got_a, f.routed());
        assert_eq!(got_b, f.routed());
    }

    #[test]
    fn backpressure_caps_producer_at_capacity_ahead_of_stalled_consumer() {
        let f = feed(1);
        let capacity = 2;
        let ring = Broadcast::new(capacity);
        let mut stalled = ring.subscribe();
        let mut producer = RoutedProducer::new(&f, 4);
        // Cooperative pump with a consumer that never reads: the ring
        // fills to capacity and production stops advancing — bounded
        // memory, no deadlock (try_push just reports no space).
        assert!(!producer.pump(&ring));
        assert_eq!(ring.produced_blocks(), capacity as u64);
        assert!(!producer.pump(&ring), "stalled consumer keeps the cap");
        assert_eq!(ring.produced_blocks(), capacity as u64);
        // The consumer wakes up: every read frees one slot.
        let _ = stalled.try_next();
        assert!(!producer.pump(&ring));
        assert_eq!(ring.produced_blocks(), capacity as u64 + 1);
        // Drain fully: production completes.
        while !producer.pump(&ring) {
            match stalled.try_next() {
                TryNext::Block(_) => {}
                TryNext::Pending => {}
                TryNext::Ended => break,
            }
        }
        assert!(ring.is_finished() || producer.is_done());
    }

    #[test]
    fn blocking_producer_survives_a_stalled_then_dropped_consumer() {
        let f = feed(2);
        let ring = Broadcast::new(2);
        let stalled = ring.subscribe();
        let live = ring.subscribe();
        std::thread::scope(|s| {
            let h = s.spawn(|| drain(live));
            let p = s.spawn(|| RoutedProducer::new(&f, 8).run(&ring));
            // Give the producer time to hit the backpressure cap, then
            // drop the stalled cursor: the producer must resume and both
            // remaining parties finish.
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(!ring.is_finished(), "stalled consumer caps the producer");
            drop(stalled);
            p.join().unwrap();
            assert_eq!(h.join().unwrap(), f.routed());
        });
        assert_eq!(f.logical_passes(), 1, "one pass despite the lost consumer");
        // Both cursors are gone by now: one dropped mid-pass, one
        // deregistered when `drain` consumed it.
        assert_eq!(ring.active_consumers(), 0);
    }

    #[test]
    #[should_panic(expected = "subscribe before production")]
    fn late_subscription_is_rejected() {
        let f = feed(1);
        let ring = Broadcast::new(2);
        ring.push(&f.routed()[..1]);
        let _ = ring.subscribe();
    }
}
