//! ℓ₀-samplers for turnstile streams (Lemma 7).
//!
//! An ℓ₀-sampler summarizes a vector undergoing additive updates and, on
//! query, returns a (near-)uniform element of its support. Theorem 11 uses
//! one sampler per `f1` query (over the edge domain) and per `f3` query
//! (over the adjacency list of one vertex).
//!
//! The construction follows the unifying framework of Cormode & Firmani
//! (Lemma 7's citation): a hierarchy of geometrically subsampled levels,
//! each summarized by a 1-sparse detector (count, key-sum, random-linear
//! fingerprint). Recovery walks from the deepest level up and returns the
//! unique survivor of the first exactly-1-sparse level; by symmetry of the
//! hash, that survivor is uniform over the support. A repetition fails when
//! the maximal subsampling level holds a tie, so the sampler keeps `R`
//! independent repetitions; empirical failure rates and uniformity are
//! measured by experiment E3.
//!
//! Space: `R · (max_level + 1)` detectors of 4 words each — the concrete
//! counterpart of Lemma 7's `O(log⁴ n)` bits (we keep the `log` levels and
//! replace the remaining union-bound machinery with repetitions; the
//! *interface contract* — uniform support element or explicit failure — is
//! what downstream algorithms rely on).
//!
//! Two engineering properties the sharded pipeline leans on:
//!
//! * **Shared geometric draw** — one base hash per update feeds the whole
//!   repetition bank: each repetition derives its level and fingerprint
//!   from the shared draw with one SplitMix64 remix each (full avalanche,
//!   so per-repetition level assignments stay decorrelated), instead of
//!   two independent double-hashes per repetition. Turnstile passes are
//!   dominated by exactly this loop (`BENCH_executor.json`), so the bank
//!   bottleneck drops from `4R` to `2 + 2R` SplitMix64 steps per update.
//!   The `shared_draw_distribution_matches_independent_draws` test pins
//!   the output distribution and failure rate against the independent
//!   per-repetition scheme it replaced.
//! * **Linearity** — every detector field is additive, so
//!   [`L0Sampler::merge`] of identically-seeded samplers that absorbed
//!   disjoint update subsets is *bit-identical* to one sampler that
//!   absorbed them all: per-shard sketch banks merge exactly.

use crate::hash::{split_seed, splitmix64, SeededHash};
use crate::space::SpaceUsage;

/// A 1-sparse detector: decides whether the updates it absorbed form a
/// single key with net weight exactly `+1` (strict-turnstile simple-graph
/// semantics), and if so recovers that key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct OneSparse {
    count: i64,
    key_sum: i128,
    fingerprint: u64,
}

impl OneSparse {
    /// `fp` must be the fingerprint hash of `key` (hoisted by the caller
    /// so the level hierarchy hashes each update once, not once per
    /// level).
    #[inline]
    fn update(&mut self, key: u64, delta: i64, fp: u64) {
        self.count += delta;
        self.key_sum += key as i128 * delta as i128;
        // fingerprint += delta · fp over Z/2^64: two's-complement wrapping
        // multiplication makes negative deltas subtract, so the
        // accumulation is O(1) in |delta| (the old loop added/subtracted
        // `fp` once per unit of delta).
        self.fingerprint = self
            .fingerprint
            .wrapping_add((delta as u64).wrapping_mul(fp));
    }

    /// Returns the unique key if the detector is exactly 1-sparse with
    /// weight +1. `fp_of` maps a key to this repetition's fingerprint.
    #[inline]
    fn recover(&self, fp_of: impl Fn(u64) -> u64) -> Option<u64> {
        if self.count != 1 {
            return None;
        }
        if self.key_sum < 0 || self.key_sum > u64::MAX as i128 {
            return None;
        }
        let key = self.key_sum as u64;
        if fp_of(key) == self.fingerprint {
            Some(key)
        } else {
            None
        }
    }

    /// Absorb another detector's state (linearity: fields are additive).
    #[inline]
    fn absorb(&mut self, other: &OneSparse) {
        self.count += other.count;
        self.key_sum += other.key_sum;
        self.fingerprint = self.fingerprint.wrapping_add(other.fingerprint);
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.count == 0 && self.key_sum == 0 && self.fingerprint == 0
    }
}

/// One repetition: a level hierarchy whose level and fingerprint draws
/// are one-SplitMix64 remixes of the bank's shared base draw.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Repetition {
    level_salt: u64,
    fp_salt: u64,
    levels: Vec<OneSparse>,
}

impl Repetition {
    fn new(max_level: u32, seed: u64) -> Self {
        Repetition {
            level_salt: split_seed(seed, 0),
            fp_salt: split_seed(seed, 1),
            levels: vec![OneSparse::default(); max_level as usize + 1],
        }
    }

    /// `base` is the bank-shared hash of the key (computed once per
    /// update); each repetition remixes it with its own salts, giving a
    /// decorrelated geometric level and fingerprint for one SplitMix64
    /// step each instead of a full keyed double-hash.
    #[inline]
    fn update(&mut self, key: u64, delta: i64, base: u64) {
        let max = (self.levels.len() - 1) as u32;
        let lvl = splitmix64(base ^ self.level_salt).trailing_zeros().min(max);
        let fp = splitmix64(base ^ self.fp_salt);
        // Nested levels: the item lives in levels 0..=lvl.
        for l in 0..=lvl as usize {
            self.levels[l].update(key, delta, fp);
        }
    }

    fn sample(&self, base_hash: &SeededHash) -> Option<u64> {
        // Deepest exactly-1-sparse level wins: its survivor has the
        // (unique) maximum subsampling depth, uniform over the support.
        for l in (0..self.levels.len()).rev() {
            if self.levels[l].is_zero() {
                continue;
            }
            return self.levels[l].recover(|key| splitmix64(base_hash.hash64(key) ^ self.fp_salt));
        }
        None
    }
}

/// A turnstile ℓ₀-sampler over `u64` keys.
#[derive(Clone, Debug)]
pub struct L0Sampler {
    /// Shared per-update draw feeding every repetition.
    base_hash: SeededHash,
    /// The construction seed, retained so [`L0Sampler::merge`] can verify
    /// both banks share one hash family.
    seed: u64,
    reps: Vec<Repetition>,
    updates_absorbed: u64,
}

/// Default number of independent repetitions.
pub const DEFAULT_REPS: usize = 8;

impl L0Sampler {
    /// Create a sampler with `reps` repetitions and `max_level + 1`
    /// subsampling levels. `max_level` should be at least
    /// `log2(support size)`; 40 comfortably covers every workload here.
    pub fn new(max_level: u32, reps: usize, seed: u64) -> Self {
        assert!(reps >= 1);
        L0Sampler {
            base_hash: SeededHash::new(split_seed(seed, 99)),
            seed,
            reps: (0..reps)
                .map(|i| Repetition::new(max_level, split_seed(seed, 100 + i as u64)))
                .collect(),
            updates_absorbed: 0,
        }
    }

    /// Sampler sized for a graph on `n` vertices over the edge domain
    /// (`Edge::key()` keys), with default repetitions.
    pub fn for_edge_domain(n: usize, seed: u64) -> Self {
        let bits = (n.max(2) as f64).log2().ceil() as u32;
        Self::new((2 * bits + 4).min(62), DEFAULT_REPS, seed)
    }

    /// Absorb an update: `delta` is `+1`/`-1` in strict turnstile streams.
    #[inline]
    pub fn update(&mut self, key: u64, delta: i64) {
        self.updates_absorbed += 1;
        // One hash of the key feeds the whole repetition bank.
        let base = self.base_hash.hash64(key);
        for r in &mut self.reps {
            r.update(key, delta, base);
        }
    }

    /// Query: a uniform support element, or `None` on failure (all
    /// repetitions had ties) or empty support.
    pub fn sample(&self) -> Option<u64> {
        self.reps.iter().find_map(|r| r.sample(&self.base_hash))
    }

    /// Absorb the state of an identically-seeded sampler that saw a
    /// *disjoint* update subset. Every detector field is linear, so the
    /// merged state is bit-identical to a single sampler that absorbed
    /// both subsets in any order — the property the sharded turnstile
    /// executor uses to split one stream across feed shards.
    ///
    /// Panics if the samplers were built with different seeds or shapes
    /// (their hash families would disagree and the merge would be
    /// meaningless).
    pub fn merge(&mut self, other: &L0Sampler) {
        assert_eq!(self.seed, other.seed, "merging differently-seeded samplers");
        assert_eq!(self.reps.len(), other.reps.len(), "repetition mismatch");
        for (a, b) in self.reps.iter_mut().zip(&other.reps) {
            debug_assert_eq!(a.level_salt, b.level_salt);
            assert_eq!(a.levels.len(), b.levels.len(), "level-count mismatch");
            for (la, lb) in a.levels.iter_mut().zip(&b.levels) {
                la.absorb(lb);
            }
        }
        self.updates_absorbed += other.updates_absorbed;
    }

    /// Whether the first repetition's level 0 is empty — i.e. the absorbed
    /// updates cancel completely. Exact for strict streams (level 0 holds
    /// every key).
    pub fn support_is_empty(&self) -> bool {
        self.reps[0].levels[0].count == 0
    }

    /// Total updates absorbed (diagnostics).
    pub fn updates_absorbed(&self) -> u64 {
        self.updates_absorbed
    }
}

impl SpaceUsage for L0Sampler {
    fn space_bytes(&self) -> usize {
        let per_detector = std::mem::size_of::<OneSparse>();
        let levels: usize = self.reps.iter().map(|r| r.levels.len()).sum();
        levels * per_detector
            + self.reps.len() * 2 * std::mem::size_of::<u64>() // per-rep salts
            + std::mem::size_of::<SeededHash>() // shared base hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn empty_sampler_returns_none() {
        let s = L0Sampler::new(20, 4, 1);
        assert!(s.sample().is_none());
        assert!(s.support_is_empty());
    }

    #[test]
    fn singleton_support_always_recovered() {
        for seed in 0..20 {
            let mut s = L0Sampler::new(20, 4, seed);
            s.update(12345, 1);
            assert_eq!(s.sample(), Some(12345), "seed {seed}");
        }
    }

    #[test]
    fn deletions_cancel() {
        let mut s = L0Sampler::new(20, 4, 3);
        s.update(7, 1);
        s.update(9, 1);
        s.update(7, -1);
        assert_eq!(s.sample(), Some(9));
        s.update(9, -1);
        assert!(s.sample().is_none());
        assert!(s.support_is_empty());
    }

    #[test]
    fn returns_only_live_keys() {
        // Insert 100 keys, delete the even ones; samples must be odd.
        for trial in 0..50u64 {
            let mut s = L0Sampler::new(30, 6, split_seed(0xdead, trial));
            for k in 0..100u64 {
                s.update(k, 1);
            }
            for k in (0..100u64).step_by(2) {
                s.update(k, -1);
            }
            if let Some(k) = s.sample() {
                assert_eq!(k % 2, 1, "trial {trial} returned deleted key {k}");
            }
        }
    }

    #[test]
    fn failure_rate_is_low_with_reps() {
        let mut failures = 0;
        let trials = 300u64;
        for t in 0..trials {
            let mut s = L0Sampler::new(30, DEFAULT_REPS, split_seed(0xbeef, t));
            for k in 0..64u64 {
                s.update(k * 17 + 1, 1);
            }
            if s.sample().is_none() {
                failures += 1;
            }
        }
        assert!(
            (failures as f64) < trials as f64 * 0.05,
            "{failures}/{trials} failures"
        );
    }

    #[test]
    fn distribution_roughly_uniform() {
        let n_keys = 16u64;
        let trials = 8000u64;
        let mut hits: HashMap<u64, u64> = HashMap::new();
        for t in 0..trials {
            let mut s = L0Sampler::new(30, DEFAULT_REPS, split_seed(0xf00d, t));
            for k in 0..n_keys {
                s.update(k, 1);
            }
            if let Some(k) = s.sample() {
                *hits.entry(k).or_default() += 1;
            }
        }
        let total: u64 = hits.values().sum();
        let expect = total as f64 / n_keys as f64;
        for k in 0..n_keys {
            let h = *hits.get(&k).unwrap_or(&0) as f64;
            assert!(
                (h - expect).abs() / expect < 0.25,
                "key {k}: {h} vs {expect}"
            );
        }
    }

    #[test]
    fn space_usage_scales_with_parameters() {
        let small = L0Sampler::new(10, 2, 1);
        let big = L0Sampler::new(40, 8, 1);
        assert!(big.space_bytes() > small.space_bytes());
        assert!(small.space_bytes() > 0);
    }

    #[test]
    fn large_magnitude_deltas_cancel_in_constant_time() {
        // Non-strict deltas exercise the wrapping-mul fingerprint path:
        // +1000 then -999 leaves net weight +1 and must recover the key.
        let mut s = L0Sampler::new(20, 4, 11);
        s.update(42, 1000);
        s.update(42, -999);
        assert_eq!(s.sample(), Some(42));
        s.update(42, -1);
        assert!(s.sample().is_none());
        assert!(s.support_is_empty());
    }

    #[test]
    fn merge_is_bit_identical_to_sequential_absorption() {
        // Split a strict update sequence across two identically-seeded
        // samplers and merge: every detector must match the single
        // sampler bit for bit (linearity), for every split point.
        for seed in 0..10u64 {
            let updates: Vec<(u64, i64)> = (0..60u64)
                .map(|k| (k * 13 + 1, 1))
                .chain((0..30u64).map(|k| (k * 13 + 1, -1)))
                .collect();
            let mut whole = L0Sampler::new(24, 4, seed);
            for &(k, d) in &updates {
                whole.update(k, d);
            }
            for split in [0, 17, 45, updates.len()] {
                let mut a = L0Sampler::new(24, 4, seed);
                let mut b = L0Sampler::new(24, 4, seed);
                for &(k, d) in &updates[..split] {
                    a.update(k, d);
                }
                for &(k, d) in &updates[split..] {
                    b.update(k, d);
                }
                a.merge(&b);
                assert_eq!(a.reps, whole.reps, "seed {seed} split {split}");
                assert_eq!(a.updates_absorbed(), whole.updates_absorbed());
                assert_eq!(a.sample(), whole.sample());
            }
        }
    }

    #[test]
    #[should_panic(expected = "differently-seeded")]
    fn merge_rejects_seed_mismatch() {
        let mut a = L0Sampler::new(10, 2, 1);
        let b = L0Sampler::new(10, 2, 2);
        a.merge(&b);
    }

    /// The independent-draw scheme the shared base draw replaced: two
    /// full keyed hashes per repetition per update. Kept here as the
    /// distributional baseline for the equivalence test below.
    struct IndependentDrawSampler {
        reps: Vec<(SeededHash, SeededHash, Vec<OneSparse>)>,
    }

    impl IndependentDrawSampler {
        fn new(max_level: u32, reps: usize, seed: u64) -> Self {
            IndependentDrawSampler {
                reps: (0..reps)
                    .map(|i| {
                        let s = split_seed(seed, 100 + i as u64);
                        (
                            SeededHash::new(split_seed(s, 0)),
                            SeededHash::new(split_seed(s, 1)),
                            vec![OneSparse::default(); max_level as usize + 1],
                        )
                    })
                    .collect(),
            }
        }

        fn update(&mut self, key: u64, delta: i64) {
            for (level_hash, fp_hash, levels) in &mut self.reps {
                let max = (levels.len() - 1) as u32;
                let lvl = level_hash.geometric_level(key, max);
                let fp = fp_hash.hash64(key);
                for level in levels.iter_mut().take(lvl as usize + 1) {
                    level.update(key, delta, fp);
                }
            }
        }

        fn sample(&self) -> Option<u64> {
            self.reps.iter().find_map(|(_, fp_hash, levels)| {
                for l in (0..levels.len()).rev() {
                    if levels[l].is_zero() {
                        continue;
                    }
                    return levels[l].recover(|key| fp_hash.hash64(key));
                }
                None
            })
        }
    }

    #[test]
    fn shared_draw_distribution_matches_independent_draws() {
        // Equivalence of distribution: on a fixed 16-key support, the
        // shared-base-draw sampler must (a) fail no more often than the
        // independent-draw scheme plus noise margin, and (b) produce a
        // support distribution at least as close to uniform.
        let n_keys = 16u64;
        let trials = 4000u64;
        let mut shared_hits: HashMap<u64, u64> = HashMap::new();
        let mut indep_hits: HashMap<u64, u64> = HashMap::new();
        let (mut shared_fail, mut indep_fail) = (0u64, 0u64);
        for t in 0..trials {
            let seed = split_seed(0x5ab5, t);
            let mut s = L0Sampler::new(30, DEFAULT_REPS, seed);
            let mut r = IndependentDrawSampler::new(30, DEFAULT_REPS, seed);
            for k in 0..n_keys {
                s.update(k * 7 + 3, 1);
                r.update(k * 7 + 3, 1);
            }
            match s.sample() {
                Some(k) => *shared_hits.entry(k).or_default() += 1,
                None => shared_fail += 1,
            }
            match r.sample() {
                Some(k) => *indep_hits.entry(k).or_default() += 1,
                None => indep_fail += 1,
            }
        }
        assert!(
            shared_fail as f64 <= indep_fail as f64 + trials as f64 * 0.01,
            "shared-draw failures {shared_fail} vs independent {indep_fail}"
        );
        let max_dev = |hits: &HashMap<u64, u64>| {
            let total: u64 = hits.values().sum();
            let expect = total as f64 / n_keys as f64;
            (0..n_keys)
                .map(|k| {
                    let h = *hits.get(&(k * 7 + 3)).unwrap_or(&0) as f64;
                    (h - expect).abs() / expect
                })
                .fold(0.0f64, f64::max)
        };
        let (sd, id) = (max_dev(&shared_hits), max_dev(&indep_hits));
        assert!(sd < 0.25, "shared-draw max deviation {sd}");
        assert!(
            sd <= id + 0.1,
            "shared-draw deviation {sd} worse than independent {id}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut s = L0Sampler::new(25, 4, seed);
            for k in 0..50u64 {
                s.update(k * 3, 1);
            }
            s.sample()
        };
        assert_eq!(run(77), run(77));
    }
}
