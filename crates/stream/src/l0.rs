//! ℓ₀-samplers for turnstile streams (Lemma 7).
//!
//! An ℓ₀-sampler summarizes a vector undergoing additive updates and, on
//! query, returns a (near-)uniform element of its support. Theorem 11 uses
//! one sampler per `f1` query (over the edge domain) and per `f3` query
//! (over the adjacency list of one vertex).
//!
//! The construction follows the unifying framework of Cormode & Firmani
//! (Lemma 7's citation): a hierarchy of geometrically subsampled levels,
//! each summarized by a 1-sparse detector (count, key-sum, random-linear
//! fingerprint). Recovery walks from the deepest level up and returns the
//! unique survivor of the first exactly-1-sparse level; by symmetry of the
//! hash, that survivor is uniform over the support. A repetition fails when
//! the maximal subsampling level holds a tie, so the sampler keeps `R`
//! independent repetitions; empirical failure rates and uniformity are
//! measured by experiment E3.
//!
//! Space: `R · (max_level + 1)` detectors of 4 words each — the concrete
//! counterpart of Lemma 7's `O(log⁴ n)` bits (we keep the `log` levels and
//! replace the remaining union-bound machinery with repetitions; the
//! *interface contract* — uniform support element or explicit failure — is
//! what downstream algorithms rely on).
//!
//! Three engineering properties the sharded / blocked pipeline leans on:
//!
//! * **Shared geometric draw** — one base hash per update feeds the whole
//!   repetition bank: each repetition derives its level and fingerprint
//!   from the shared draw with one SplitMix64 remix each (full avalanche,
//!   so per-repetition level assignments stay decorrelated), instead of
//!   two independent double-hashes per repetition. Turnstile passes are
//!   dominated by exactly this loop (`BENCH_executor.json`), so the bank
//!   bottleneck drops from `4R` to `2 + 2R` SplitMix64 steps per update.
//!   The `shared_draw_distribution_matches_independent_draws` test pins
//!   the output distribution and failure rate against the independent
//!   per-repetition scheme it replaced.
//! * **Struct-of-arrays bank** — the detectors live in three contiguous
//!   *planes* (`count`, `key_sum`, `fingerprint`), level-major, so all
//!   `R` detectors of one level are adjacent in memory. An update becomes
//!   a handful of lane loops over repetitions (level remix, fingerprint
//!   remix, then one predicated add per plane per touched level) that the
//!   stable-Rust autovectorizer turns into SIMD; the old
//!   `Vec<Repetition>` array-of-structs walked a branchy per-repetition
//!   inner loop over scattered level vectors. The
//!   `soa_bank_is_bit_identical_to_aos_bank` test pins the new layout
//!   against a replica of the old one detector for detector.
//! * **Survivor-level dispatch** — the shared draw fixes, per (update,
//!   repetition), the deepest level ℓ the update survives into, and
//!   `P[ℓ ≥ l] = 2^-l` makes the expected touched prefix ~2 rows of
//!   L ≈ 16. The default feed path ([`L0Mode::Dispatch`]) therefore
//!   walks only rows `0..=ℓ` per repetition instead of predicating
//!   through the whole bank, and the blocked variant counting-sorts
//!   each prehashed block into per-level cohorts so every detector row
//!   takes one accumulated add per block. The predicated scan stays as
//!   the bit-identity oracle ([`L0Mode::Predicated`]); the three-way
//!   pin in `soa_bank_is_bit_identical_to_aos_bank` holds all paths to
//!   the same detector bits.
//! * **Linearity** — every detector field is additive, so
//!   [`L0Sampler::merge`] of identically-seeded samplers that absorbed
//!   disjoint update subsets is *bit-identical* to one sampler that
//!   absorbed them all: per-shard sketch banks merge exactly, and
//!   [`L0Sampler::update_batch`] may apply a block of updates sampler-hot
//!   without changing a single output bit (addition commutes).

use crate::hash::{split_seed, splitmix64, SeededHash};
use crate::persist::{frame, read_frame_of, Decoder, Encoder, PersistResult, KIND_L0};
use crate::space::SpaceUsage;

/// Which feed path an ℓ₀ bank consumer drives.
///
/// Both paths produce bit-identical detector planes for any update
/// sequence (every plane field is a commutative wrapping sum), so the
/// knob trades instruction mix, not answers:
///
/// * [`L0Mode::Predicated`] — the PR 3 path: every update visits every
///   level row up to the bank's deepest draw, masking inactive lanes
///   with a sign-extended AND. Wide, branch-free, autovectorizes; kept
///   as the bit-identity oracle.
/// * [`L0Mode::Dispatch`] — survivor-level dispatch: the shared base
///   draw already fixes, per (update, repetition), the deepest level ℓ
///   the update belongs to (`P[survive to ℓ] = 2^-ℓ`, so `E[ℓ] ≈ 2`
///   rows of L ≈ 16). The bank walks only rows `0..=ℓ` unconditionally;
///   blocked feeds additionally counting-sort each prehashed block into
///   per-level cohorts so each detector row takes **one** accumulated
///   add per block instead of one per update.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum L0Mode {
    /// Full-bank predicated lane scan (the pre-dispatch oracle path).
    Predicated,
    /// Survivor-level dispatch with block-level level-cohort slicing.
    #[default]
    Dispatch,
}

impl L0Mode {
    /// Stable lowercase name (CLI flags, bench labels).
    pub fn as_str(self) -> &'static str {
        match self {
            L0Mode::Predicated => "predicated",
            L0Mode::Dispatch => "dispatch",
        }
    }

    /// Parse a CLI-style name; inverse of [`L0Mode::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "predicated" => Some(L0Mode::Predicated),
            "dispatch" => Some(L0Mode::Dispatch),
            _ => None,
        }
    }
}

/// A turnstile ℓ₀-sampler over `u64` keys.
///
/// Detector state is stored as a struct-of-arrays bank: three planes
/// indexed by `(level, repetition)` with repetition minor, so the
/// per-update lane loops run over contiguous memory.
#[derive(Clone, Debug)]
pub struct L0Sampler {
    /// Shared per-update draw feeding every repetition.
    base_hash: SeededHash,
    /// The construction seed, retained so [`L0Sampler::merge`] can verify
    /// both banks share one hash family.
    seed: u64,
    /// Number of repetitions `R` (the lane count).
    reps: usize,
    /// Levels per repetition (`max_level + 1`).
    levels: usize,
    /// Per-repetition level-draw salts, one lane each.
    level_salt: Vec<u64>,
    /// Per-repetition fingerprint salts, one lane each.
    fp_salt: Vec<u64>,
    /// Detector plane: net weight, `[level * reps + rep]`.
    count: Vec<i64>,
    /// Detector planes: `Σ key · delta`, an exact 128-bit two's-complement
    /// accumulator split into low/high 64-bit halves with explicit carry —
    /// bit-identical to an `i128` add, but every lane op is 64-bit so the
    /// plane vectorizes like the others (a scalar `i128` plane pinned the
    /// whole level row to scalar code).
    key_sum_lo: Vec<u64>,
    key_sum_hi: Vec<u64>,
    /// Detector plane: `Σ fp(key) · delta` over `Z/2^64`.
    fingerprint: Vec<u64>,
    /// Per-update lane scratch: this update's level draw per repetition.
    lvl_scratch: Vec<u32>,
    /// Per-update lane scratch: this update's fingerprint per repetition.
    fp_scratch: Vec<u64>,
    /// Dispatch-block scratch, one slot per level: this block's cohort
    /// sums for the repetition being drained (net delta, split 128-bit
    /// key·delta, fingerprint delta). Derived state — zeroed between
    /// uses, never persisted.
    coh_count: Vec<i64>,
    coh_kd_lo: Vec<u64>,
    coh_kd_hi: Vec<u64>,
    coh_fp: Vec<u64>,
    updates_absorbed: u64,
}

/// Default number of independent repetitions.
pub const DEFAULT_REPS: usize = 8;

/// Updates sharing one cohort drain on the dispatch batch path. The
/// drain walks `(deepest+1)·reps` detector rows per chunk, so the
/// per-update drain cost falls roughly linearly in the chunk width;
/// 64 keeps the stack-side key·delta split buffers small while putting
/// the drain near one row-add per update.
pub const DISPATCH_CHUNK: usize = 128;

impl L0Sampler {
    /// Create a sampler with `reps` repetitions and `max_level + 1`
    /// subsampling levels. `max_level` should be at least
    /// `log2(support size)`; 40 comfortably covers every workload here.
    pub fn new(max_level: u32, reps: usize, seed: u64) -> Self {
        assert!(reps >= 1);
        let levels = max_level as usize + 1;
        let (mut level_salt, mut fp_salt) = (Vec::with_capacity(reps), Vec::with_capacity(reps));
        for i in 0..reps {
            // Identical salt derivation to the old per-`Repetition`
            // construction: the SoA re-layout moves bytes, not coins.
            let rep_seed = split_seed(seed, 100 + i as u64);
            level_salt.push(split_seed(rep_seed, 0));
            fp_salt.push(split_seed(rep_seed, 1));
        }
        L0Sampler {
            base_hash: SeededHash::new(split_seed(seed, 99)),
            seed,
            reps,
            levels,
            level_salt,
            fp_salt,
            count: vec![0; levels * reps],
            key_sum_lo: vec![0; levels * reps],
            key_sum_hi: vec![0; levels * reps],
            fingerprint: vec![0; levels * reps],
            lvl_scratch: vec![0; reps],
            fp_scratch: vec![0; reps],
            coh_count: vec![0; levels],
            coh_kd_lo: vec![0; levels],
            coh_kd_hi: vec![0; levels],
            coh_fp: vec![0; levels],
            updates_absorbed: 0,
        }
    }

    /// Sampler sized for a graph on `n` vertices over the edge domain
    /// (`Edge::key()` keys), with default repetitions.
    pub fn for_edge_domain(n: usize, seed: u64) -> Self {
        let bits = (n.max(2) as f64).log2().ceil() as u32;
        Self::new((2 * bits + 4).min(62), DEFAULT_REPS, seed)
    }

    /// Number of repetitions.
    #[inline]
    pub fn num_reps(&self) -> usize {
        self.reps
    }

    /// Absorb one update whose shared base draw is already computed.
    ///
    /// The body is lane loops over repetitions: one SplitMix64 remix per
    /// lane for the level draw, one for the per-lane fingerprint delta
    /// `delta · fp(key)` (hoisted — the old layout recomputed the product
    /// on every level), then plane-row adds. Level 0 holds every key, so
    /// its row is three unconditional lane adds; deeper rows predicate
    /// each lane with a sign-extended mask AND (`x & -(active)`), which is
    /// branch-free and cheap even on the `i128` plane where a
    /// multiply-by-predicate is not. Levels above the per-update maximum
    /// (geometric, so `E[max] ≈ log2 R + 1`) are never touched, and each
    /// plane gets its own homogeneous loop so mixed-width arithmetic
    /// (`i64` / `i128` / `u64`) cannot pin the whole body to scalar code.
    #[inline]
    fn absorb(&mut self, key: u64, delta: i64, base: u64) {
        let reps = self.reps;
        let max = (self.levels - 1) as u32;
        for (l, &salt) in self.lvl_scratch.iter_mut().zip(&self.level_salt) {
            *l = splitmix64(base ^ salt).trailing_zeros().min(max);
        }
        let du = delta as u64;
        for (f, &salt) in self.fp_scratch.iter_mut().zip(&self.fp_salt) {
            // fingerprint += delta · fp over Z/2^64: two's-complement
            // wrapping multiplication makes negative deltas subtract, so
            // the accumulation is O(1) in |delta|.
            *f = du.wrapping_mul(splitmix64(base ^ salt));
        }
        let kd = key as i128 * delta as i128;
        let (kd_lo, kd_hi) = (kd as u64, (kd >> 64) as u64);
        // Level 0: every lane participates, no predication.
        for c in &mut self.count[..reps] {
            *c += delta;
        }
        for (f, &d) in self.fingerprint[..reps].iter_mut().zip(&self.fp_scratch) {
            *f = f.wrapping_add(d);
        }
        for (lo, hi) in self.key_sum_lo[..reps]
            .iter_mut()
            .zip(&mut self.key_sum_hi[..reps])
        {
            let nl = lo.wrapping_add(kd_lo);
            *hi = hi.wrapping_add(kd_hi).wrapping_add((nl < kd_lo) as u64);
            *lo = nl;
        }
        // Deeper levels: predicated lane adds up to the deepest draw.
        let deepest = self.lvl_scratch.iter().copied().max().unwrap_or(0) as usize;
        for level in 1..=deepest {
            let lv = level as u32;
            let row = level * reps;
            let counts = &mut self.count[row..row + reps];
            for (c, &l) in counts.iter_mut().zip(&self.lvl_scratch) {
                *c += delta & -((l >= lv) as i64);
            }
            let fps = &mut self.fingerprint[row..row + reps];
            for (f, (&l, &d)) in fps
                .iter_mut()
                .zip(self.lvl_scratch.iter().zip(&self.fp_scratch))
            {
                *f = f.wrapping_add(d & (-((l >= lv) as i64) as u64));
            }
            let lows = &mut self.key_sum_lo[row..row + reps];
            let highs = &mut self.key_sum_hi[row..row + reps];
            for ((lo, hi), &l) in lows.iter_mut().zip(highs.iter_mut()).zip(&self.lvl_scratch) {
                let m = -((l >= lv) as i64) as u64;
                let (x_lo, x_hi) = (kd_lo & m, kd_hi & m);
                let nl = lo.wrapping_add(x_lo);
                *hi = hi.wrapping_add(x_hi).wrapping_add((nl < x_lo) as u64);
                *lo = nl;
            }
        }
    }

    /// Absorb an update: `delta` is `+1`/`-1` in strict turnstile streams.
    #[inline]
    pub fn update(&mut self, key: u64, delta: i64) {
        self.updates_absorbed += 1;
        // One hash of the key feeds the whole repetition bank.
        let base = self.base_hash.hash64(key);
        self.absorb(key, delta, base);
    }

    /// Absorb a block of `(key, delta)` updates.
    ///
    /// Bit-identical to calling [`L0Sampler::update`] once per element
    /// (same draws, same additions, same order); the point is memory
    /// shape: base hashes are computed a chunk ahead (breaking the
    /// hash→update dependency chain), and a caller iterating *samplers
    /// outer, block inner* keeps one bank's planes cache-hot across the
    /// whole block instead of cycling every bank through cache per
    /// update — the access pattern of the turnstile executors, whose `f1`
    /// banks all absorb every update.
    pub fn update_batch(&mut self, updates: &[(u64, i64)]) {
        const CHUNK: usize = 16;
        let mut keys = [0u64; CHUNK];
        let mut bases = [0u64; CHUNK];
        for chunk in updates.chunks(CHUNK) {
            for (k, &(key, _)) in keys.iter_mut().zip(chunk) {
                *k = key;
            }
            self.base_hash
                .hash64_batch(&keys[..chunk.len()], &mut bases[..chunk.len()]);
            for (&(key, delta), &base) in chunk.iter().zip(&bases) {
                self.absorb(key, delta, base);
            }
        }
        self.updates_absorbed += updates.len() as u64;
    }

    /// Survivor-level dispatch body: per repetition, derive the deepest
    /// level ℓ from the shared draw and add to exactly the rows `0..=ℓ`
    /// at lane stride. Same rows, same wrapping adds as [`absorb`]'s
    /// predicated scan — only the rows that never sample are skipped —
    /// so the resulting planes are bit-identical.
    ///
    /// [`absorb`]: L0Sampler::absorb
    #[inline]
    fn absorb_dispatch(&mut self, key: u64, delta: i64, base: u64) {
        let reps = self.reps;
        let max = (self.levels - 1) as u32;
        let du = delta as u64;
        let kd = key as i128 * delta as i128;
        let (kd_lo, kd_hi) = (kd as u64, (kd >> 64) as u64);
        for r in 0..reps {
            let lvl = splitmix64(base ^ self.level_salt[r])
                .trailing_zeros()
                .min(max) as usize;
            let fpd = du.wrapping_mul(splitmix64(base ^ self.fp_salt[r]));
            let mut i = r;
            for _ in 0..=lvl {
                self.count[i] = self.count[i].wrapping_add(delta);
                self.fingerprint[i] = self.fingerprint[i].wrapping_add(fpd);
                let nl = self.key_sum_lo[i].wrapping_add(kd_lo);
                self.key_sum_hi[i] = self.key_sum_hi[i]
                    .wrapping_add(kd_hi)
                    .wrapping_add((nl < kd_lo) as u64);
                self.key_sum_lo[i] = nl;
                i += reps;
            }
        }
    }

    /// [`L0Sampler::update`] through the survivor-level dispatch path
    /// ([`L0Mode::Dispatch`]). Bit-identical to the predicated path for
    /// any update sequence.
    #[inline]
    pub fn update_dispatch(&mut self, key: u64, delta: i64) {
        self.updates_absorbed += 1;
        let base = self.base_hash.hash64(key);
        self.absorb_dispatch(key, delta, base);
    }

    /// Dispatch a prehashed block with level-cohort slicing: for one
    /// repetition, bucket every update's (delta, key·delta, fingerprint
    /// delta) by its exact survivor level, then drain the cohorts
    /// deepest→0 with a running suffix sum — each detector row of the
    /// prefix `0..=deepest` takes **one** accumulated add for the whole
    /// block. Every plane field is a commutative wrapping sum, so the
    /// re-association leaves the final plane bits identical to per-update
    /// dispatch (and hence to the predicated scan). The chunk width
    /// ([`DISPATCH_CHUNK`]) sets how many updates share one drain: the
    /// drain touches `(deepest+1)·reps` rows per chunk, so widening the
    /// chunk amortizes it — 64 puts the drain near one row-add per
    /// update while the cohort scratch (4 planes × levels) stays L1-hot.
    fn absorb_block_dispatch(&mut self, chunk: &[(u64, i64)], bases: &[u64]) {
        let reps = self.reps;
        let max = (self.levels - 1) as u32;
        let n = chunk.len();
        // Repetition-independent work, once per chunk: split key·delta,
        // copy deltas into a flat lane array, and pre-total the row-0
        // contribution — *every* update survives to level 0, so the
        // chunk's delta and key·delta row-0 adds are shared by all
        // repetitions.
        let mut kd_lo = [0u64; DISPATCH_CHUNK];
        let mut kd_hi = [0u64; DISPATCH_CHUNK];
        let mut del = [0i64; DISPATCH_CHUNK];
        let mut dtot = 0i64;
        let mut ktot = 0i128;
        for (((kl, kh), dl), &(key, delta)) in kd_lo[..n]
            .iter_mut()
            .zip(kd_hi[..n].iter_mut())
            .zip(del[..n].iter_mut())
            .zip(chunk)
        {
            let kd = key as i128 * delta as i128;
            *kl = kd as u64;
            *kh = (kd >> 64) as u64;
            *dl = delta;
            dtot = dtot.wrapping_add(delta);
            // A plain wrapping i128 sum lands the same 2^128-modular
            // value as the per-element lo/hi carry chain, so the row-0
            // total stays bit-exact.
            ktot = ktot.wrapping_add(kd);
        }
        let (ktot_lo, ktot_hi) = (ktot as u64, ((ktot as u128) >> 64) as u64);
        let mut lvl = [0u32; DISPATCH_CHUNK];
        let mut fpd = [0u64; DISPATCH_CHUNK];
        for r in 0..reps {
            let lsalt = self.level_salt[r];
            let fsalt = self.fp_salt[r];
            // Lane passes — two SplitMix64 chains, a trailing-zeros
            // count, one multiply per update, stores only into the flat
            // lane arrays. Written as zipped iterators so no bounds
            // check survives into the loop bodies: these loops
            // autovectorize, which is where the predicated scan got its
            // throughput. The scattered work below is left with only
            // the survivors.
            let bs = &bases[..n];
            let mut ftot = 0u64;
            for (((l, f), &b), &d) in lvl[..n]
                .iter_mut()
                .zip(fpd[..n].iter_mut())
                .zip(bs)
                .zip(&del[..n])
            {
                *l = splitmix64(b ^ lsalt).trailing_zeros().min(max);
                let fp = (d as u64).wrapping_mul(splitmix64(b ^ fsalt));
                *f = fp;
                // Row-0 fingerprint total folds into the same reduction.
                ftot = ftot.wrapping_add(fp);
            }
            // Branchless survivor compaction: collect the indices that
            // survive past level 0 (P = 1/2 each) without a data-
            // dependent branch — the store always happens, the cursor
            // advances conditionally, so there is nothing to mispredict.
            let mut surv = [0u8; DISPATCH_CHUNK];
            let mut ns = 0usize;
            for (j, &l) in lvl[..n].iter().enumerate() {
                surv[ns] = j as u8;
                ns += (l != 0) as usize;
            }
            // Deepest survivor level: a vectorizable max reduction over
            // the lane array, so the scatter below carries no extra
            // loop-carried dependency.
            let mut deepest = 0u32;
            for &l in &lvl[..n] {
                deepest = deepest.max(l);
            }
            let deepest = deepest as usize;
            // Counting-sort pass over the compacted half: each survivor
            // pays one scattered cohort add. The cohort planes are
            // sliced to `levels` up front and the index re-clamped so
            // every bounds check hoists out of the loop.
            {
                let levels = self.levels;
                let cc = &mut self.coh_count[..levels];
                let cf = &mut self.coh_fp[..levels];
                let cklo = &mut self.coh_kd_lo[..levels];
                let ckhi = &mut self.coh_kd_hi[..levels];
                for &j8 in &surv[..ns] {
                    // `% DISPATCH_CHUNK` is a no-op (j8 < n <= DISPATCH_CHUNK)
                    // that lets the compiler drop the lane-array bounds
                    // checks inside the loop.
                    let j = j8 as usize % DISPATCH_CHUNK;
                    let l = (lvl[j] as usize).min(levels - 1);
                    cc[l] = cc[l].wrapping_add(del[j]);
                    cf[l] = cf[l].wrapping_add(fpd[j]);
                    let nl = cklo[l].wrapping_add(kd_lo[j]);
                    ckhi[l] = ckhi[l]
                        .wrapping_add(kd_hi[j])
                        .wrapping_add((nl < kd_lo[j]) as u64);
                    cklo[l] = nl;
                }
            }
            // Drain pass: a level-ℓ survivor contributes to every row
            // `0..=ℓ`, so the running suffix sum over cohorts is exactly
            // each row's block total. Rows deepest..=1 take one
            // accumulated add each; cohorts are re-zeroed as they are
            // consumed, leaving the scratch clean for the next lane.
            let (mut dsum, mut fsum) = (0i64, 0u64);
            let (mut klo, mut khi) = (0u64, 0u64);
            for level in (1..=deepest).rev() {
                dsum = dsum.wrapping_add(self.coh_count[level]);
                fsum = fsum.wrapping_add(self.coh_fp[level]);
                let (c_lo, c_hi) = (self.coh_kd_lo[level], self.coh_kd_hi[level]);
                let nl = klo.wrapping_add(c_lo);
                khi = khi.wrapping_add(c_hi).wrapping_add((nl < c_lo) as u64);
                klo = nl;
                self.coh_count[level] = 0;
                self.coh_fp[level] = 0;
                self.coh_kd_lo[level] = 0;
                self.coh_kd_hi[level] = 0;
                let i = level * reps + r;
                self.count[i] = self.count[i].wrapping_add(dsum);
                self.fingerprint[i] = self.fingerprint[i].wrapping_add(fsum);
                let nl = self.key_sum_lo[i].wrapping_add(klo);
                self.key_sum_hi[i] = self.key_sum_hi[i]
                    .wrapping_add(khi)
                    .wrapping_add((nl < klo) as u64);
                self.key_sum_lo[i] = nl;
            }
            // Row 0 lands the precomputed chunk totals. Every plane
            // field is a commutative wrapping sum (the 128-bit key sum
            // is carried exactly), so the re-association leaves the
            // final bits identical to per-update dispatch — and hence
            // to the predicated scan.
            self.count[r] = self.count[r].wrapping_add(dtot);
            self.fingerprint[r] = self.fingerprint[r].wrapping_add(ftot);
            let nl = self.key_sum_lo[r].wrapping_add(ktot_lo);
            self.key_sum_hi[r] = self.key_sum_hi[r]
                .wrapping_add(ktot_hi)
                .wrapping_add((nl < ktot_lo) as u64);
            self.key_sum_lo[r] = nl;
        }
    }

    /// [`L0Sampler::update_batch`] through the survivor-level dispatch
    /// path: base hashes are computed a chunk ahead exactly as in the
    /// predicated batch, then each chunk is fed via level-cohort slicing
    /// ([`L0Sampler::absorb_block_dispatch`]). Bit-identical to both the
    /// scalar paths and the predicated batch at every block size.
    pub fn update_batch_dispatch(&mut self, updates: &[(u64, i64)]) {
        const CHUNK: usize = DISPATCH_CHUNK;
        let mut keys = [0u64; CHUNK];
        let mut bases = [0u64; CHUNK];
        for chunk in updates.chunks(CHUNK) {
            for (k, &(key, _)) in keys.iter_mut().zip(chunk) {
                *k = key;
            }
            self.base_hash
                .hash64_batch(&keys[..chunk.len()], &mut bases[..chunk.len()]);
            self.absorb_block_dispatch(chunk, &bases[..chunk.len()]);
        }
        self.updates_absorbed += updates.len() as u64;
    }

    /// Mode-selected scalar update: dispatch or predicated per `mode`.
    #[inline]
    pub fn update_with(&mut self, mode: L0Mode, key: u64, delta: i64) {
        match mode {
            L0Mode::Predicated => self.update(key, delta),
            L0Mode::Dispatch => self.update_dispatch(key, delta),
        }
    }

    /// Mode-selected batch update: dispatch or predicated per `mode`.
    #[inline]
    pub fn update_batch_with(&mut self, mode: L0Mode, updates: &[(u64, i64)]) {
        match mode {
            L0Mode::Predicated => self.update_batch(updates),
            L0Mode::Dispatch => self.update_batch_dispatch(updates),
        }
    }

    /// The 128-bit key-sum accumulator of detector `i`, reassembled from
    /// its split planes (bit-exact two's complement).
    #[inline]
    fn key_sum_at(&self, i: usize) -> i128 {
        (((self.key_sum_hi[i] as u128) << 64) | self.key_sum_lo[i] as u128) as i128
    }

    /// One repetition's query: walk its levels deepest-first and recover
    /// from the first non-empty one.
    fn sample_rep(&self, rep: usize) -> Option<u64> {
        for level in (0..self.levels).rev() {
            let i = level * self.reps + rep;
            let key_sum = self.key_sum_at(i);
            if self.count[i] == 0 && key_sum == 0 && self.fingerprint[i] == 0 {
                continue;
            }
            // Deepest non-empty level: exactly-1-sparse with weight +1
            // (strict-turnstile simple-graph semantics) or failure.
            if self.count[i] != 1 {
                return None;
            }
            if !(0..=u64::MAX as i128).contains(&key_sum) {
                return None;
            }
            let key = key_sum as u64;
            let fp = splitmix64(self.base_hash.hash64(key) ^ self.fp_salt[rep]);
            return (fp == self.fingerprint[i]).then_some(key);
        }
        None
    }

    /// Query: a uniform support element, or `None` on failure (all
    /// repetitions had ties) or empty support.
    pub fn sample(&self) -> Option<u64> {
        (0..self.reps).find_map(|rep| self.sample_rep(rep))
    }

    /// Absorb the state of an identically-seeded sampler that saw a
    /// *disjoint* update subset. Every detector field is linear, so the
    /// merged state is bit-identical to a single sampler that absorbed
    /// both subsets in any order — the property the sharded turnstile
    /// executor uses to split one stream across feed shards. On the SoA
    /// bank the merge is three plane-wide lane loops.
    ///
    /// Panics if the samplers were built with different seeds or shapes
    /// (their hash families would disagree and the merge would be
    /// meaningless).
    pub fn merge(&mut self, other: &L0Sampler) {
        assert_eq!(self.seed, other.seed, "merging differently-seeded samplers");
        assert_eq!(self.reps, other.reps, "repetition mismatch");
        assert_eq!(self.levels, other.levels, "level-count mismatch");
        debug_assert_eq!(self.level_salt, other.level_salt);
        for (a, b) in self.count.iter_mut().zip(&other.count) {
            *a += b;
        }
        for ((lo, hi), (&b_lo, &b_hi)) in self
            .key_sum_lo
            .iter_mut()
            .zip(self.key_sum_hi.iter_mut())
            .zip(other.key_sum_lo.iter().zip(&other.key_sum_hi))
        {
            let nl = lo.wrapping_add(b_lo);
            *hi = hi.wrapping_add(b_hi).wrapping_add((nl < b_lo) as u64);
            *lo = nl;
        }
        for (a, b) in self.fingerprint.iter_mut().zip(&other.fingerprint) {
            *a = a.wrapping_add(*b);
        }
        self.updates_absorbed += other.updates_absorbed;
    }

    /// Whether the first repetition's level 0 is empty — i.e. the absorbed
    /// updates cancel completely. Exact for strict streams (level 0 holds
    /// every key). Index 0 of the count plane is `(level 0, repetition 0)`.
    pub fn support_is_empty(&self) -> bool {
        self.count[0] == 0
    }

    /// Total updates absorbed (diagnostics).
    pub fn updates_absorbed(&self) -> u64 {
        self.updates_absorbed
    }

    /// Negate the sketch in place: afterwards it summarizes `-x` instead
    /// of `x`. Every detector field is linear, so merging a negated
    /// snapshot into a live sketch *subtracts* the snapshot's update
    /// prefix exactly — the sliding-window subtraction the windowed demo
    /// is built on. (`updates_absorbed` is diagnostics, not sketch state;
    /// it is left as the count of updates this bank processed.)
    pub fn negate(&mut self) {
        for c in &mut self.count {
            *c = -*c;
        }
        for (lo, hi) in self.key_sum_lo.iter_mut().zip(&mut self.key_sum_hi) {
            // 128-bit two's-complement negate across the split planes.
            let v = (((*hi as u128) << 64) | *lo as u128).wrapping_neg();
            *lo = v as u64;
            *hi = (v >> 64) as u64;
        }
        for fp in &mut self.fingerprint {
            *fp = fp.wrapping_neg();
        }
    }

    /// Serialize the sketch as one framed, checksummed record: seed and
    /// shape (from which the salts and base hash re-derive exactly) plus
    /// the four detector planes and the update counter.
    pub fn to_persist_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u64(self.seed);
        enc.u64(self.reps as u64);
        enc.u64(self.levels as u64);
        enc.u64(self.updates_absorbed);
        for &c in &self.count {
            enc.i64(c);
        }
        for &v in &self.key_sum_lo {
            enc.u64(v);
        }
        for &v in &self.key_sum_hi {
            enc.u64(v);
        }
        for &v in &self.fingerprint {
            enc.u64(v);
        }
        frame(KIND_L0, &enc.into_bytes())
    }

    /// Deserialize a record written by [`L0Sampler::to_persist_bytes`].
    /// The sampler is reconstructed through [`L0Sampler::new`] (salts and
    /// hash re-derived from the seed) and its planes overwritten, so a
    /// decoded sampler is bit-identical to the encoded one. Corrupt
    /// input errors; it never panics.
    pub fn from_persist_bytes(bytes: &[u8]) -> PersistResult<L0Sampler> {
        let f = read_frame_of(bytes, 0, KIND_L0)?;
        let mut dec = Decoder::new(f.payload);
        let seed = dec.u64("sampler seed")?;
        let reps = dec.u64("repetition count")?;
        let levels = dec.u64("level count")?;
        let updates_absorbed = dec.u64("update counter")?;
        let detectors = reps
            .checked_mul(levels)
            .filter(|&d| d > 0 && d as usize * 32 <= dec.remaining())
            .ok_or_else(|| dec.corrupt(format!("implausible sampler shape {reps}x{levels}")))?
            as usize;
        let mut s = L0Sampler::new((levels - 1) as u32, reps as usize, seed);
        for c in &mut s.count[..detectors] {
            *c = dec.i64("count plane")?;
        }
        for v in &mut s.key_sum_lo[..detectors] {
            *v = dec.u64("key-sum-lo plane")?;
        }
        for v in &mut s.key_sum_hi[..detectors] {
            *v = dec.u64("key-sum-hi plane")?;
        }
        for v in &mut s.fingerprint[..detectors] {
            *v = dec.u64("fingerprint plane")?;
        }
        s.updates_absorbed = updates_absorbed;
        dec.finish()?;
        Ok(s)
    }
}

impl SpaceUsage for L0Sampler {
    fn space_bytes(&self) -> usize {
        // One detector = count + key_sum + fingerprint (the 4-word record
        // of the old array-of-structs layout, minus its padding).
        let per_detector =
            std::mem::size_of::<i64>() + std::mem::size_of::<i128>() + std::mem::size_of::<u64>();
        self.count.len() * per_detector
            + self.reps * 2 * std::mem::size_of::<u64>() // per-rep salts
            + self.reps * (std::mem::size_of::<u32>() + std::mem::size_of::<u64>()) // lane scratch
            + self.levels * 4 * std::mem::size_of::<u64>() // dispatch cohort scratch
            + std::mem::size_of::<SeededHash>() // shared base hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// The pre-SoA 1-sparse detector, kept verbatim as the reference for
    /// the layout-equivalence tests below.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    struct OneSparse {
        count: i64,
        key_sum: i128,
        fingerprint: u64,
    }

    impl OneSparse {
        fn update(&mut self, key: u64, delta: i64, fp: u64) {
            self.count += delta;
            self.key_sum += key as i128 * delta as i128;
            self.fingerprint = self
                .fingerprint
                .wrapping_add((delta as u64).wrapping_mul(fp));
        }

        fn recover(&self, fp_of: impl Fn(u64) -> u64) -> Option<u64> {
            if self.count != 1 {
                return None;
            }
            if self.key_sum < 0 || self.key_sum > u64::MAX as i128 {
                return None;
            }
            let key = self.key_sum as u64;
            (fp_of(key) == self.fingerprint).then_some(key)
        }

        fn is_zero(&self) -> bool {
            self.count == 0 && self.key_sum == 0 && self.fingerprint == 0
        }
    }

    /// Replica of the pre-SoA array-of-structs bank (shared base draw,
    /// per-repetition `Vec<OneSparse>` level hierarchy): the oracle the
    /// SoA re-layout must match bit for bit.
    struct AosSampler {
        base_hash: SeededHash,
        reps: Vec<(u64, u64, Vec<OneSparse>)>, // (level_salt, fp_salt, levels)
    }

    impl AosSampler {
        fn new(max_level: u32, reps: usize, seed: u64) -> Self {
            AosSampler {
                base_hash: SeededHash::new(split_seed(seed, 99)),
                reps: (0..reps)
                    .map(|i| {
                        let s = split_seed(seed, 100 + i as u64);
                        (
                            split_seed(s, 0),
                            split_seed(s, 1),
                            vec![OneSparse::default(); max_level as usize + 1],
                        )
                    })
                    .collect(),
            }
        }

        fn update(&mut self, key: u64, delta: i64) {
            let base = self.base_hash.hash64(key);
            for (level_salt, fp_salt, levels) in &mut self.reps {
                let max = (levels.len() - 1) as u32;
                let lvl = splitmix64(base ^ *level_salt).trailing_zeros().min(max);
                let fp = splitmix64(base ^ *fp_salt);
                for level in levels.iter_mut().take(lvl as usize + 1) {
                    level.update(key, delta, fp);
                }
            }
        }

        fn sample(&self) -> Option<u64> {
            let base_hash = &self.base_hash;
            self.reps.iter().find_map(|(_, fp_salt, levels)| {
                for l in (0..levels.len()).rev() {
                    if levels[l].is_zero() {
                        continue;
                    }
                    return levels[l].recover(|key| splitmix64(base_hash.hash64(key) ^ fp_salt));
                }
                None
            })
        }
    }

    /// A deterministic mixed update sequence (inserts, deletes, repeated
    /// keys, larger deltas) for the equivalence tests.
    fn mixed_updates(seed: u64, len: usize) -> Vec<(u64, i64)> {
        (0..len as u64)
            .map(|i| {
                let k = splitmix64(seed ^ i) % 97 + 1;
                let d = match i % 7 {
                    0..=3 => 1,
                    4 => -1,
                    5 => 3,
                    _ => -2,
                };
                (k, d)
            })
            .collect()
    }

    /// Assert that two SoA banks hold bit-identical detector planes.
    fn assert_planes_eq(a: &L0Sampler, b: &L0Sampler, what: &str) {
        assert_eq!(a.count, b.count, "{what}: count plane");
        assert_eq!(a.key_sum_lo, b.key_sum_lo, "{what}: key-sum-lo plane");
        assert_eq!(a.key_sum_hi, b.key_sum_hi, "{what}: key-sum-hi plane");
        assert_eq!(a.fingerprint, b.fingerprint, "{what}: fingerprint plane");
    }

    #[test]
    fn soa_bank_is_bit_identical_to_aos_bank() {
        // The layout/feed-path tentpole claim, as a three-way pin: the
        // SoA re-layout changes the memory walk and survivor-level
        // dispatch changes the instruction mix, but neither changes one
        // bit of detector state. Every detector of every repetition must
        // match the array-of-structs replica via the predicated scalar,
        // predicated batched, dispatch scalar, and dispatch level-cohort
        // paths, across lane counts (including non-multiples of the
        // vector width) — and negate/merge/persist round-trips after
        // dispatch-fed updates must land on the same bits too.
        for &reps in &[1usize, 3, 4, 8, 16, 31] {
            let updates = mixed_updates(0x50a ^ reps as u64, 300);
            let max_level = 24u32;
            let seed = 0xabc0 + reps as u64;
            let mut aos = AosSampler::new(max_level, reps, seed);
            let mut soa = L0Sampler::new(max_level, reps, seed);
            let mut soa_blocked = L0Sampler::new(max_level, reps, seed);
            let mut disp = L0Sampler::new(max_level, reps, seed);
            let mut disp_blocked = L0Sampler::new(max_level, reps, seed);
            for &(k, d) in &updates {
                aos.update(k, d);
                soa.update(k, d);
                disp.update_dispatch(k, d);
            }
            for block in updates.chunks(13) {
                soa_blocked.update_batch(block);
                disp_blocked.update_batch_dispatch(block);
            }
            for rep in 0..reps {
                let (_, _, levels) = &aos.reps[rep];
                for (level, det) in levels.iter().enumerate() {
                    let i = level * reps + rep;
                    assert_eq!(soa.count[i], det.count, "reps {reps} rep {rep} lvl {level}");
                    assert_eq!(
                        soa.key_sum_at(i),
                        det.key_sum,
                        "reps {reps} rep {rep} lvl {level}"
                    );
                    assert_eq!(
                        soa.fingerprint[i], det.fingerprint,
                        "reps {reps} rep {rep} lvl {level}"
                    );
                }
            }
            assert_planes_eq(&soa_blocked, &soa, "predicated blocked vs scalar");
            assert_planes_eq(&disp, &soa, "dispatch scalar vs predicated");
            assert_planes_eq(&disp_blocked, &soa, "dispatch blocked vs predicated");
            assert_eq!(soa.sample(), aos.sample(), "reps {reps}");
            assert_eq!(soa_blocked.sample(), aos.sample(), "reps {reps}");
            assert_eq!(disp.sample(), aos.sample(), "reps {reps}");
            assert_eq!(disp_blocked.sample(), aos.sample(), "reps {reps}");
            assert_eq!(soa_blocked.updates_absorbed(), updates.len() as u64);
            assert_eq!(disp_blocked.updates_absorbed(), updates.len() as u64);

            // Negate after dispatch feeding: same bits as negating the
            // predicated bank.
            let mut disp_neg = disp_blocked.clone();
            let mut soa_neg = soa.clone();
            disp_neg.negate();
            soa_neg.negate();
            assert_planes_eq(&disp_neg, &soa_neg, "negate after dispatch");

            // Merge a dispatch-fed half into a predicated-fed half: the
            // merged bank must equal the whole-stream bank bit for bit.
            let split = updates.len() / 3;
            let mut a = L0Sampler::new(max_level, reps, seed);
            let mut b = L0Sampler::new(max_level, reps, seed);
            a.update_batch_dispatch(&updates[..split]);
            b.update_batch(&updates[split..]);
            a.merge(&b);
            assert_planes_eq(&a, &soa, "merge dispatch+predicated halves");

            // Persist round-trip of a dispatch-fed bank, then keep
            // feeding the decoded bank through dispatch: identical to
            // the uninterrupted predicated run.
            let restored = L0Sampler::from_persist_bytes(&disp_blocked.to_persist_bytes()).unwrap();
            assert_planes_eq(&restored, &soa, "persist round-trip after dispatch");
            let mut resumed = restored.clone();
            let mut oracle = soa.clone();
            resumed.update_batch_dispatch(&updates[..40.min(updates.len())]);
            oracle.update_batch(&updates[..40.min(updates.len())]);
            assert_planes_eq(&resumed, &oracle, "dispatch feed after restore");
            assert_eq!(resumed.updates_absorbed(), oracle.updates_absorbed());
        }
    }

    #[test]
    fn dispatch_matches_predicated_at_every_block_size() {
        let updates = mixed_updates(0xd15b, 157);
        let mut scalar = L0Sampler::new(30, DEFAULT_REPS, 5);
        for &(k, d) in &updates {
            scalar.update(k, d);
        }
        for block in [1usize, 2, 7, 16, 64, 157, 400] {
            let mut batched = L0Sampler::new(30, DEFAULT_REPS, 5);
            for chunk in updates.chunks(block) {
                batched.update_batch_dispatch(chunk);
            }
            batched.update_batch_dispatch(&[]); // empty block is a no-op
            assert_planes_eq(&batched, &scalar, "dispatch block");
            assert_eq!(batched.updates_absorbed(), scalar.updates_absorbed());
            assert_eq!(batched.sample(), scalar.sample(), "block {block}");
        }
    }

    #[test]
    fn dispatch_handles_level_clamp_zero_deltas_and_duplicates() {
        // Three dispatch edge cases in one sweep. Tiny level budgets
        // (max_level 0/1/2) force the trailing-zeros draw to clamp at
        // ℓ = L-1 constantly — the all-levels-survive case where the
        // dispatched prefix is the whole bank. Zero deltas must add
        // zeros everywhere (planes identical to never feeding them), and
        // duplicate-heavy blocks pile many updates into one cohort.
        for max_level in [0u32, 1, 2, 24] {
            let mut updates = mixed_updates(0xc1a + max_level as u64, 120);
            for i in (0..updates.len()).step_by(5) {
                updates[i].1 = 0; // interleave zero-delta updates
            }
            let dup_key = updates[0].0;
            updates.extend(std::iter::repeat_n((dup_key, 1), 40));
            updates.extend(std::iter::repeat_n((dup_key, -1), 40));
            let mut pred = L0Sampler::new(max_level, DEFAULT_REPS, 77);
            let mut disp = L0Sampler::new(max_level, DEFAULT_REPS, 77);
            let mut disp_blocked = L0Sampler::new(max_level, DEFAULT_REPS, 77);
            for &(k, d) in &updates {
                pred.update(k, d);
                disp.update_dispatch(k, d);
            }
            disp_blocked.update_batch_dispatch(&updates);
            assert_planes_eq(&disp, &pred, "clamp/zero/dup scalar");
            assert_planes_eq(&disp_blocked, &pred, "clamp/zero/dup blocked");
            assert_eq!(disp.sample(), pred.sample(), "max_level {max_level}");
        }
    }

    #[test]
    fn mode_selected_helpers_route_to_the_right_path() {
        let updates = mixed_updates(0x30de, 90);
        let mut oracle = L0Sampler::new(24, 4, 9);
        for &(k, d) in &updates {
            oracle.update(k, d);
        }
        for mode in [L0Mode::Predicated, L0Mode::Dispatch] {
            let mut scalar = L0Sampler::new(24, 4, 9);
            let mut blocked = L0Sampler::new(24, 4, 9);
            for &(k, d) in &updates {
                scalar.update_with(mode, k, d);
            }
            for chunk in updates.chunks(17) {
                blocked.update_batch_with(mode, chunk);
            }
            assert_planes_eq(&scalar, &oracle, mode.as_str());
            assert_planes_eq(&blocked, &oracle, mode.as_str());
        }
        assert_eq!(L0Mode::default(), L0Mode::Dispatch);
        assert_eq!(L0Mode::parse("predicated"), Some(L0Mode::Predicated));
        assert_eq!(L0Mode::parse("dispatch"), Some(L0Mode::Dispatch));
        assert_eq!(L0Mode::parse("bogus"), None);
    }

    #[test]
    fn update_batch_matches_scalar_updates_at_every_block_size() {
        let updates = mixed_updates(0xb10c, 157);
        let mut scalar = L0Sampler::new(30, DEFAULT_REPS, 5);
        for &(k, d) in &updates {
            scalar.update(k, d);
        }
        for block in [1usize, 2, 7, 16, 64, 157, 400] {
            let mut batched = L0Sampler::new(30, DEFAULT_REPS, 5);
            for chunk in updates.chunks(block) {
                batched.update_batch(chunk);
            }
            batched.update_batch(&[]); // empty block is a no-op
            assert_eq!(batched.count, scalar.count, "block {block}");
            assert_eq!(batched.key_sum_lo, scalar.key_sum_lo, "block {block}");
            assert_eq!(batched.key_sum_hi, scalar.key_sum_hi, "block {block}");
            assert_eq!(batched.fingerprint, scalar.fingerprint, "block {block}");
            assert_eq!(batched.updates_absorbed(), scalar.updates_absorbed());
            assert_eq!(batched.sample(), scalar.sample(), "block {block}");
        }
    }

    #[test]
    fn empty_sampler_returns_none() {
        let s = L0Sampler::new(20, 4, 1);
        assert!(s.sample().is_none());
        assert!(s.support_is_empty());
    }

    #[test]
    fn singleton_support_always_recovered() {
        for seed in 0..20 {
            let mut s = L0Sampler::new(20, 4, seed);
            s.update(12345, 1);
            assert_eq!(s.sample(), Some(12345), "seed {seed}");
        }
    }

    #[test]
    fn deletions_cancel() {
        let mut s = L0Sampler::new(20, 4, 3);
        s.update(7, 1);
        s.update(9, 1);
        s.update(7, -1);
        assert_eq!(s.sample(), Some(9));
        s.update(9, -1);
        assert!(s.sample().is_none());
        assert!(s.support_is_empty());
    }

    #[test]
    fn returns_only_live_keys() {
        // Insert 100 keys, delete the even ones; samples must be odd.
        for trial in 0..50u64 {
            let mut s = L0Sampler::new(30, 6, split_seed(0xdead, trial));
            for k in 0..100u64 {
                s.update(k, 1);
            }
            for k in (0..100u64).step_by(2) {
                s.update(k, -1);
            }
            if let Some(k) = s.sample() {
                assert_eq!(k % 2, 1, "trial {trial} returned deleted key {k}");
            }
        }
    }

    #[test]
    fn failure_rate_is_low_with_reps() {
        let mut failures = 0;
        let trials = 300u64;
        for t in 0..trials {
            let mut s = L0Sampler::new(30, DEFAULT_REPS, split_seed(0xbeef, t));
            for k in 0..64u64 {
                s.update(k * 17 + 1, 1);
            }
            if s.sample().is_none() {
                failures += 1;
            }
        }
        assert!(
            (failures as f64) < trials as f64 * 0.05,
            "{failures}/{trials} failures"
        );
    }

    #[test]
    fn distribution_roughly_uniform() {
        let n_keys = 16u64;
        let trials = 8000u64;
        let mut hits: HashMap<u64, u64> = HashMap::new();
        for t in 0..trials {
            let mut s = L0Sampler::new(30, DEFAULT_REPS, split_seed(0xf00d, t));
            for k in 0..n_keys {
                s.update(k, 1);
            }
            if let Some(k) = s.sample() {
                *hits.entry(k).or_default() += 1;
            }
        }
        let total: u64 = hits.values().sum();
        let expect = total as f64 / n_keys as f64;
        for k in 0..n_keys {
            let h = *hits.get(&k).unwrap_or(&0) as f64;
            assert!(
                (h - expect).abs() / expect < 0.25,
                "key {k}: {h} vs {expect}"
            );
        }
    }

    #[test]
    fn space_usage_scales_with_parameters() {
        let small = L0Sampler::new(10, 2, 1);
        let big = L0Sampler::new(40, 8, 1);
        assert!(big.space_bytes() > small.space_bytes());
        assert!(small.space_bytes() > 0);
    }

    #[test]
    fn large_magnitude_deltas_cancel_in_constant_time() {
        // Non-strict deltas exercise the wrapping-mul fingerprint path:
        // +1000 then -999 leaves net weight +1 and must recover the key.
        let mut s = L0Sampler::new(20, 4, 11);
        s.update(42, 1000);
        s.update(42, -999);
        assert_eq!(s.sample(), Some(42));
        s.update(42, -1);
        assert!(s.sample().is_none());
        assert!(s.support_is_empty());
    }

    #[test]
    fn merge_is_bit_identical_to_sequential_absorption() {
        // Split a strict update sequence across two identically-seeded
        // samplers and merge: every detector plane must match the single
        // sampler bit for bit (linearity), for every split point.
        for seed in 0..10u64 {
            let updates: Vec<(u64, i64)> = (0..60u64)
                .map(|k| (k * 13 + 1, 1))
                .chain((0..30u64).map(|k| (k * 13 + 1, -1)))
                .collect();
            let mut whole = L0Sampler::new(24, 4, seed);
            for &(k, d) in &updates {
                whole.update(k, d);
            }
            for split in [0, 17, 45, updates.len()] {
                let mut a = L0Sampler::new(24, 4, seed);
                let mut b = L0Sampler::new(24, 4, seed);
                for &(k, d) in &updates[..split] {
                    a.update(k, d);
                }
                for &(k, d) in &updates[split..] {
                    b.update(k, d);
                }
                a.merge(&b);
                assert_eq!(a.count, whole.count, "seed {seed} split {split}");
                assert_eq!(a.key_sum_lo, whole.key_sum_lo, "seed {seed} split {split}");
                assert_eq!(a.key_sum_hi, whole.key_sum_hi, "seed {seed} split {split}");
                assert_eq!(
                    a.fingerprint, whole.fingerprint,
                    "seed {seed} split {split}"
                );
                assert_eq!(a.updates_absorbed(), whole.updates_absorbed());
                assert_eq!(a.sample(), whole.sample());
            }
        }
    }

    #[test]
    #[should_panic(expected = "differently-seeded")]
    fn merge_rejects_seed_mismatch() {
        let mut a = L0Sampler::new(10, 2, 1);
        let b = L0Sampler::new(10, 2, 2);
        a.merge(&b);
    }

    /// The independent-draw scheme the shared base draw replaced: two
    /// full keyed hashes per repetition per update. Kept here as the
    /// distributional baseline for the equivalence test below.
    struct IndependentDrawSampler {
        reps: Vec<(SeededHash, SeededHash, Vec<OneSparse>)>,
    }

    impl IndependentDrawSampler {
        fn new(max_level: u32, reps: usize, seed: u64) -> Self {
            IndependentDrawSampler {
                reps: (0..reps)
                    .map(|i| {
                        let s = split_seed(seed, 100 + i as u64);
                        (
                            SeededHash::new(split_seed(s, 0)),
                            SeededHash::new(split_seed(s, 1)),
                            vec![OneSparse::default(); max_level as usize + 1],
                        )
                    })
                    .collect(),
            }
        }

        fn update(&mut self, key: u64, delta: i64) {
            for (level_hash, fp_hash, levels) in &mut self.reps {
                let max = (levels.len() - 1) as u32;
                let lvl = level_hash.geometric_level(key, max);
                let fp = fp_hash.hash64(key);
                for level in levels.iter_mut().take(lvl as usize + 1) {
                    level.update(key, delta, fp);
                }
            }
        }

        fn sample(&self) -> Option<u64> {
            self.reps.iter().find_map(|(_, fp_hash, levels)| {
                for l in (0..levels.len()).rev() {
                    if levels[l].is_zero() {
                        continue;
                    }
                    return levels[l].recover(|key| fp_hash.hash64(key));
                }
                None
            })
        }
    }

    #[test]
    fn shared_draw_distribution_matches_independent_draws() {
        // Equivalence of distribution: on a fixed 16-key support, the
        // shared-base-draw sampler must (a) fail no more often than the
        // independent-draw scheme plus noise margin, and (b) produce a
        // support distribution at least as close to uniform.
        let n_keys = 16u64;
        let trials = 4000u64;
        let mut shared_hits: HashMap<u64, u64> = HashMap::new();
        let mut indep_hits: HashMap<u64, u64> = HashMap::new();
        let (mut shared_fail, mut indep_fail) = (0u64, 0u64);
        for t in 0..trials {
            let seed = split_seed(0x5ab5, t);
            let mut s = L0Sampler::new(30, DEFAULT_REPS, seed);
            let mut r = IndependentDrawSampler::new(30, DEFAULT_REPS, seed);
            for k in 0..n_keys {
                s.update(k * 7 + 3, 1);
                r.update(k * 7 + 3, 1);
            }
            match s.sample() {
                Some(k) => *shared_hits.entry(k).or_default() += 1,
                None => shared_fail += 1,
            }
            match r.sample() {
                Some(k) => *indep_hits.entry(k).or_default() += 1,
                None => indep_fail += 1,
            }
        }
        assert!(
            shared_fail as f64 <= indep_fail as f64 + trials as f64 * 0.01,
            "shared-draw failures {shared_fail} vs independent {indep_fail}"
        );
        let max_dev = |hits: &HashMap<u64, u64>| {
            let total: u64 = hits.values().sum();
            let expect = total as f64 / n_keys as f64;
            (0..n_keys)
                .map(|k| {
                    let h = *hits.get(&(k * 7 + 3)).unwrap_or(&0) as f64;
                    (h - expect).abs() / expect
                })
                .fold(0.0f64, f64::max)
        };
        let (sd, id) = (max_dev(&shared_hits), max_dev(&indep_hits));
        assert!(sd < 0.25, "shared-draw max deviation {sd}");
        assert!(
            sd <= id + 0.1,
            "shared-draw deviation {sd} worse than independent {id}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut s = L0Sampler::new(25, 4, seed);
            for k in 0..50u64 {
                s.update(k * 3, 1);
            }
            s.sample()
        };
        assert_eq!(run(77), run(77));
    }
}
