//! Edge updates: the elements of a graph stream.

use sgs_graph::Edge;

/// One stream element: an edge insertion (`delta = +1`) or deletion
/// (`delta = -1`).
///
/// In the insertion-only (cash-register) model every update has
/// `delta = +1`; the turnstile model allows both, with the *strict*
/// guarantee that the running multiplicity of every edge stays in
/// `{0, 1}` (the stream describes a simple graph at every prefix).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeUpdate {
    /// The edge being updated.
    pub edge: Edge,
    /// `+1` for insertion, `-1` for deletion.
    pub delta: i8,
}

impl EdgeUpdate {
    /// An insertion.
    #[inline]
    pub fn insert(edge: Edge) -> Self {
        EdgeUpdate { edge, delta: 1 }
    }

    /// A deletion.
    #[inline]
    pub fn delete(edge: Edge) -> Self {
        EdgeUpdate { edge, delta: -1 }
    }

    /// Whether this is an insertion.
    #[inline]
    pub fn is_insert(self) -> bool {
        self.delta > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::VertexId;

    #[test]
    fn constructors() {
        let e = Edge::new(VertexId(1), VertexId(2));
        assert!(EdgeUpdate::insert(e).is_insert());
        assert!(!EdgeUpdate::delete(e).is_insert());
        assert_eq!(EdgeUpdate::insert(e).delta, 1);
        assert_eq!(EdgeUpdate::delete(e).delta, -1);
    }
}
