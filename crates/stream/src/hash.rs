//! Seeded hashing and fast randomness for sketches — the single facade
//! every streaming component draws its coins through.
//!
//! The implementations live in [`sgs_prng`] (so `sgs_graph`'s workload
//! generators can share them without a dependency cycle); this module
//! re-exports them under the stable `sgs_stream::hash` path the rest of
//! the workspace uses:
//!
//! * [`splitmix64`] / [`SeededHash`] — Lemma 7's idealized random hash,
//!   substituted by a keyed bijective finalizer with full avalanche
//!   (validated empirically by experiment E3),
//! * [`split_seed`] — deterministic derivation of independent sub-seeds,
//! * [`FastRng`] — xoshiro256++, the per-trial generator of every sampler
//!   (an order of magnitude cheaper to build and draw from than the
//!   ChaCha-based `StdRng` the samplers used before the QueryRouter
//!   refactor).

pub use sgs_prng::{split_seed, splitmix64, FastRng, SampleRange, SeededHash};

#[cfg(test)]
mod tests {
    use super::*;

    // The substantive distribution tests live in `sgs_prng`; these only
    // pin the re-exported facade: same symbols, same behavior.

    #[test]
    fn facade_reexports_are_live() {
        assert_eq!(splitmix64(42), sgs_prng::splitmix64(42));
        assert_eq!(split_seed(1, 2), sgs_prng::split_seed(1, 2));
        assert_eq!(
            SeededHash::new(7).hash64(9),
            sgs_prng::SeededHash::new(7).hash64(9)
        );
        let mut a = FastRng::seed_from_u64(3);
        let mut b = sgs_prng::FastRng::seed_from_u64(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn batched_hash_matches_scalar_hash() {
        // The blocked feed path hashes whole update blocks through
        // hash64_batch; lane results must equal per-key hash64 calls.
        let h = SeededHash::new(0xfeed);
        let keys: Vec<u64> = (0..37u64).map(|i| i * 0x9e37 + 5).collect();
        let mut out = vec![0u64; keys.len()];
        h.hash64_batch(&keys, &mut out);
        for (&k, &o) in keys.iter().zip(&out) {
            assert_eq!(o, h.hash64(k));
        }
    }
}
