//! Seeded hashing for sketches.
//!
//! Lemma 7's ℓ₀-sampler assumes access to random hash functions. We use
//! SplitMix64 (Steele et al.) as a cheap, well-mixed keyed hash: it is a
//! bijective finalizer with full avalanche, and seeding it with
//! independently drawn 64-bit keys approximates an independent hash family
//! closely enough that the sampler's uniformity is statistically
//! indistinguishable from ideal at our scales (validated empirically by
//! experiment E3). This is the standard engineering substitution for the
//! idealized random oracle in the analysis.

/// The SplitMix64 finalizer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A keyed 64-bit hash function.
#[derive(Clone, Copy, Debug)]
pub struct SeededHash {
    seed: u64,
}

impl SeededHash {
    /// Create with an explicit seed.
    pub fn new(seed: u64) -> Self {
        SeededHash {
            seed: splitmix64(seed ^ 0xa076_1d64_78bd_642f),
        }
    }

    /// Hash a 64-bit key.
    #[inline]
    pub fn hash64(&self, key: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(key))
    }

    /// Hash to a level in `0..=max_level`: level `l` with probability
    /// `2^-(l+1)` (geometric), clamped to `max_level`. Used by the
    /// ℓ₀-sampler's subsampling hierarchy: item `i` "survives to level l"
    /// iff `level(i) >= l`.
    #[inline]
    pub fn geometric_level(&self, key: u64, max_level: u32) -> u32 {
        self.hash64(key).trailing_zeros().min(max_level)
    }
}

/// Derive a deterministic sub-seed: `split_seed(s, i) != split_seed(s, j)`
/// for `i != j` with overwhelming probability. All components that need
/// multiple independent random streams derive them through this.
#[inline]
pub fn split_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed.wrapping_add(splitmix64(index ^ 0x6a09_e667_f3bc_c909)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        // Avalanche smoke test: flipping one input bit flips ~half the
        // output bits on average.
        let mut total = 0u32;
        for i in 0..64 {
            total += (splitmix64(7) ^ splitmix64(7 ^ (1 << i))).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((20.0..44.0).contains(&avg), "avg flipped bits {avg}");
    }

    #[test]
    fn seeded_hash_differs_by_seed() {
        let a = SeededHash::new(1);
        let b = SeededHash::new(2);
        assert_ne!(a.hash64(100), b.hash64(100));
        assert_eq!(a.hash64(100), SeededHash::new(1).hash64(100));
    }

    #[test]
    fn geometric_level_distribution() {
        let h = SeededHash::new(33);
        let mut counts = [0usize; 8];
        let trials = 1 << 16;
        for k in 0..trials {
            let l = h.geometric_level(k, 7);
            counts[l as usize] += 1;
        }
        // Level 0 should hold about half the keys.
        let frac0 = counts[0] as f64 / trials as f64;
        assert!((0.47..0.53).contains(&frac0), "level-0 fraction {frac0}");
        // Monotone decreasing up to noise.
        assert!(counts[1] > counts[3]);
    }

    #[test]
    fn split_seed_spreads() {
        let s = 12345;
        let derived: std::collections::HashSet<u64> =
            (0..1000).map(|i| split_seed(s, i)).collect();
        assert_eq!(derived.len(), 1000);
    }
}
