//! The PR-5 `Mutex` + two-`Condvar` broadcast ring, preserved verbatim
//! (types renamed) as the **reference implementation** for the lock-free
//! ring in [`crate::broadcast`].
//!
//! Two consumers keep it alive:
//!
//! * `benches/parallel.rs` measures the lock-free ring *against* this
//!   one on ingest-bound fan-out — the "old ring vs new ring" curve in
//!   `BENCH_parallel.json` is an apples-to-apples comparison only
//!   because the old design still compiles and runs;
//! * `tests/ring_stress.rs` replays randomized producer/consumer
//!   schedules through both rings and asserts identical observable
//!   behavior (per-cursor block sequences, backpressure caps, end
//!   conditions) — the mutex ring's single big lock makes its semantics
//!   easy to trust, so it serves as the oracle for the atomic one.
//!
//! Nothing on the serving path uses this module; the executors in
//! `sgs-query` ride [`crate::broadcast::Broadcast`].

use crate::broadcast::{Block, TryNext};
use crate::sharded::RoutedUpdate;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Cursor {
    /// Sequence number of the next block this consumer will read.
    next_seq: u64,
    updates: u64,
    active: bool,
}

struct State {
    ring: VecDeque<Block>,
    /// Sequence number of `ring[0]`.
    base_seq: u64,
    /// Sequence number the next produced block will get (= total blocks
    /// produced so far).
    produced_seq: u64,
    produced_updates: u64,
    finished: bool,
    /// Set on the first push: no further subscriptions.
    sealed: bool,
    consumers: Vec<Cursor>,
}

impl State {
    /// Drop ring blocks every active consumer has passed. With no active
    /// consumers everything is evictable — production never blocks.
    fn evict(&mut self) {
        let target = self
            .consumers
            .iter()
            .filter(|c| c.active)
            .map(|c| c.next_seq)
            .min()
            .unwrap_or(self.produced_seq);
        while self.base_seq < target && !self.ring.is_empty() {
            self.ring.pop_front();
            self.base_seq += 1;
        }
    }
}

struct Shared {
    state: Mutex<State>,
    /// Producer waits here for ring space.
    space: Condvar,
    /// Consumers wait here for new blocks (or finish).
    data: Condvar,
    capacity: usize,
}

/// The producer handle of the mutex-based reference ring.
pub struct MutexBroadcast {
    shared: Arc<Shared>,
}

impl MutexBroadcast {
    /// A ring holding at most `capacity` blocks in flight (`>= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring needs at least one block slot");
        MutexBroadcast {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    ring: VecDeque::with_capacity(capacity),
                    base_seq: 0,
                    produced_seq: 0,
                    produced_updates: 0,
                    finished: false,
                    sealed: false,
                    consumers: Vec::new(),
                }),
                space: Condvar::new(),
                data: Condvar::new(),
                capacity,
            }),
        }
    }

    /// Register a consumer cursor at the head of the (not yet started)
    /// stream. Panics once production has begun.
    pub fn subscribe(&self) -> MutexConsumer {
        let mut st = self.shared.state.lock().unwrap();
        assert!(
            !st.sealed,
            "broadcast consumers must subscribe before production starts"
        );
        st.consumers.push(Cursor {
            next_seq: 0,
            updates: 0,
            active: true,
        });
        MutexConsumer {
            shared: self.shared.clone(),
            id: st.consumers.len() - 1,
        }
    }

    /// Push one block, blocking while the ring is full with respect to
    /// the slowest active consumer.
    pub fn push(&self, block: &[RoutedUpdate]) {
        let mut st = self.shared.state.lock().unwrap();
        assert!(!st.finished, "push after finish");
        st.sealed = true;
        loop {
            st.evict();
            if st.ring.len() < self.shared.capacity {
                break;
            }
            st = self.shared.space.wait(st).unwrap();
        }
        st.produced_seq += 1;
        st.produced_updates += block.len() as u64;
        st.ring.push_back(Arc::from(block));
        drop(st);
        self.shared.data.notify_all();
    }

    /// Non-blocking [`MutexBroadcast::push`]: `false` (and no cursor or
    /// ring change) when the ring is full.
    pub fn try_push(&self, block: &[RoutedUpdate]) -> bool {
        let mut st = self.shared.state.lock().unwrap();
        assert!(!st.finished, "push after finish");
        st.sealed = true;
        st.evict();
        if st.ring.len() >= self.shared.capacity {
            return false;
        }
        st.produced_seq += 1;
        st.produced_updates += block.len() as u64;
        st.ring.push_back(Arc::from(block));
        drop(st);
        self.shared.data.notify_all();
        true
    }

    /// Seal the stream: consumers that drain past the last block see the
    /// end instead of waiting.
    pub fn finish(&self) {
        let mut st = self.shared.state.lock().unwrap();
        st.sealed = true;
        st.finished = true;
        drop(st);
        self.shared.data.notify_all();
    }

    /// Whether [`MutexBroadcast::finish`] was called.
    pub fn is_finished(&self) -> bool {
        self.shared.state.lock().unwrap().finished
    }

    /// Blocks produced so far.
    pub fn produced_blocks(&self) -> u64 {
        self.shared.state.lock().unwrap().produced_seq
    }

    /// Updates produced so far (sum of block lengths).
    pub fn produced_updates(&self) -> u64 {
        self.shared.state.lock().unwrap().produced_updates
    }

    /// Consumers still attached (not dropped).
    pub fn active_consumers(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap()
            .consumers
            .iter()
            .filter(|c| c.active)
            .count()
    }

    /// Ring capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

/// One consumer's cursor into a [`MutexBroadcast`] ring. Dropping it
/// deregisters the cursor (the producer stops waiting on it).
pub struct MutexConsumer {
    shared: Arc<Shared>,
    id: usize,
}

/// Blocking cursor walk: `next()` waits for the next block and yields
/// `None` once the stream is finished and fully consumed.
impl Iterator for MutexConsumer {
    type Item = Block;

    fn next(&mut self) -> Option<Block> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            let cur = st.consumers[self.id].next_seq;
            if cur < st.produced_seq {
                let idx = (cur - st.base_seq) as usize;
                let block = st.ring[idx].clone();
                let c = &mut st.consumers[self.id];
                c.next_seq += 1;
                c.updates += block.len() as u64;
                drop(st);
                // The slowest cursor may just have moved: wake the
                // producer to re-check eviction space.
                self.shared.space.notify_all();
                return Some(block);
            }
            if st.finished {
                return None;
            }
            st = self.shared.data.wait(st).unwrap();
        }
    }
}

impl MutexConsumer {
    /// Non-blocking [`Iterator::next`].
    pub fn try_next(&mut self) -> TryNext {
        let mut st = self.shared.state.lock().unwrap();
        let cur = st.consumers[self.id].next_seq;
        if cur < st.produced_seq {
            let idx = (cur - st.base_seq) as usize;
            let block = st.ring[idx].clone();
            let c = &mut st.consumers[self.id];
            c.next_seq += 1;
            c.updates += block.len() as u64;
            drop(st);
            self.shared.space.notify_all();
            return TryNext::Block(block);
        }
        if st.finished {
            TryNext::Ended
        } else {
            TryNext::Pending
        }
    }

    /// Blocks consumed so far — the cursor position.
    pub fn blocks_consumed(&self) -> u64 {
        self.shared.state.lock().unwrap().consumers[self.id].next_seq
    }

    /// Updates consumed so far.
    pub fn updates_consumed(&self) -> u64 {
        self.shared.state.lock().unwrap().consumers[self.id].updates
    }
}

impl Drop for MutexConsumer {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.consumers[self.id].active = false;
        st.evict();
        drop(st);
        // The producer may have been waiting on this cursor.
        self.shared.space.notify_all();
    }
}
