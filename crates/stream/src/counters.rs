//! Small per-query streaming state: the `f2`–`f4` emulators from the
//! proofs of Theorems 9 and 11.
//!
//! Each structure tracks a *fixed, known* set of targets (the vertices /
//! pairs named by the current round's queries) through one pass:
//!
//! * [`DegreeCounters`] — `f2`: one counter per tracked vertex; works in
//!   both insertion-only and turnstile streams (deletions decrement).
//! * [`NeighborWatchers`] — `f3` (insertion-only): report the `i`-th
//!   incident edge of a vertex seen in stream order.
//! * [`AdjacencyFlags`] — `f4`: one flag per tracked pair; in turnstile
//!   streams the flag follows the last update (insert sets, delete clears).
//! * [`EdgeCounter`] — the running edge count `m` (used by pass 1 of
//!   Algorithm 1).
//!
//! These are the straightforward HashMap-based emulators from the
//! original executors; `sgs_query::reference` (the frozen pre-router
//! baseline) still drives them. The production executors route through
//! `sgs_query::router::QueryRouter`, which fuses the same `f2`–`f4`
//! logic into shared flat per-vertex/per-edge indexes for O(1 + hits)
//! per-update cost — seeded equivalence tests pin the two
//! implementations to identical answers.

use crate::space::SpaceUsage;
use crate::update::EdgeUpdate;
use sgs_graph::{Edge, VertexId};
use std::collections::HashMap;

/// Degree counters for a tracked vertex set (`f2`).
#[derive(Clone, Debug, Default)]
pub struct DegreeCounters {
    counts: HashMap<VertexId, i64>,
}

impl DegreeCounters {
    /// Track the given vertices (duplicates fine).
    pub fn new(vertices: impl IntoIterator<Item = VertexId>) -> Self {
        DegreeCounters {
            counts: vertices.into_iter().map(|v| (v, 0)).collect(),
        }
    }

    /// Feed one stream update.
    #[inline]
    pub fn feed(&mut self, u: EdgeUpdate) {
        let (a, b) = u.edge.endpoints();
        let d = u.delta as i64;
        if let Some(c) = self.counts.get_mut(&a) {
            *c += d;
        }
        if let Some(c) = self.counts.get_mut(&b) {
            *c += d;
        }
    }

    /// The degree of a tracked vertex (None if untracked).
    pub fn degree(&self, v: VertexId) -> Option<usize> {
        self.counts.get(&v).map(|&c| c.max(0) as usize)
    }

    /// The collected dictionary `d[V']` as a lookup closure input.
    pub fn as_map(&self) -> HashMap<VertexId, usize> {
        self.counts
            .iter()
            .map(|(&v, &c)| (v, c.max(0) as usize))
            .collect()
    }

    /// Number of tracked vertices.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

impl SpaceUsage for DegreeCounters {
    fn space_bytes(&self) -> usize {
        self.counts.len() * (std::mem::size_of::<VertexId>() + std::mem::size_of::<i64>())
    }
}

/// Watches for the `i`-th edge incident to a vertex in stream arrival
/// order (`f3` in insertion-only streams; Theorem 9's proof).
///
/// Queries are grouped by vertex so that a pass carrying thousands of
/// watchers (the "parallel for" batches of Theorem 17) costs O(1) per
/// stream update for untracked endpoints: one hash probe per endpoint,
/// plus O(hits) when an awaited arrival index is reached.
#[derive(Clone, Debug, Default)]
pub struct NeighborWatchers {
    /// Per-vertex: (arrivals seen, pending (index, slot) sorted descending
    /// so the next-due entry is last).
    per_vertex: HashMap<VertexId, (u64, Vec<(u64, usize)>)>,
    /// Answers by registration slot.
    answers: Vec<Option<VertexId>>,
}

impl NeighborWatchers {
    /// Watch for the `i`-th neighbor (1-based as in the paper) of each
    /// listed vertex.
    pub fn new(queries: impl IntoIterator<Item = (VertexId, u64)>) -> Self {
        let mut per_vertex: HashMap<VertexId, (u64, Vec<(u64, usize)>)> = HashMap::new();
        let mut slots = 0usize;
        for (v, i) in queries {
            per_vertex.entry(v).or_default().1.push((i, slots));
            slots += 1;
        }
        for (_, pending) in per_vertex.values_mut() {
            // Descending by index: pop() yields the smallest outstanding.
            pending.sort_unstable_by_key(|&(idx, _)| std::cmp::Reverse(idx));
        }
        NeighborWatchers {
            per_vertex,
            answers: vec![None; slots],
        }
    }

    /// Feed one stream update (insertion-only semantics: deletions are
    /// rejected with a panic, as `f3`-by-index is not well defined under
    /// deletions — the turnstile executor uses ℓ₀-samplers instead).
    #[inline]
    pub fn feed(&mut self, u: EdgeUpdate) {
        assert!(
            u.is_insert(),
            "NeighborWatchers only support insertion-only streams"
        );
        let (a, b) = u.edge.endpoints();
        self.feed_endpoint(a, b);
        self.feed_endpoint(b, a);
    }

    #[inline]
    fn feed_endpoint(&mut self, v: VertexId, other: VertexId) {
        if let Some((seen, pending)) = self.per_vertex.get_mut(&v) {
            *seen += 1;
            while let Some(&(idx, slot)) = pending.last() {
                if idx == *seen {
                    self.answers[slot] = Some(other);
                    pending.pop();
                } else if idx < *seen {
                    // Index 0 or duplicates already consumed; drop.
                    pending.pop();
                } else {
                    break;
                }
            }
        }
    }

    /// The answer for the `q`-th registered query: the neighbor, or None
    /// if the vertex had fewer than `i` incident edges (or `i = 0`).
    pub fn answer(&self, q: usize) -> Option<VertexId> {
        self.answers[q]
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// Whether no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }
}

impl SpaceUsage for NeighborWatchers {
    fn space_bytes(&self) -> usize {
        self.answers.len() * (std::mem::size_of::<(u64, usize)>() + 8) + self.per_vertex.len() * 16
    }
}

/// Presence flags for a tracked set of vertex pairs (`f4`).
#[derive(Clone, Debug, Default)]
pub struct AdjacencyFlags {
    flags: HashMap<u64, bool>,
}

impl AdjacencyFlags {
    /// Track the given pairs.
    pub fn new(pairs: impl IntoIterator<Item = Edge>) -> Self {
        AdjacencyFlags {
            flags: pairs.into_iter().map(|e| (e.key(), false)).collect(),
        }
    }

    /// Feed one stream update: an insertion sets the flag, a deletion
    /// clears it (the turnstile "last update wins" semantics from the
    /// proof of Theorem 11, which coincides with presence under the
    /// strict-turnstile invariant).
    #[inline]
    pub fn feed(&mut self, u: EdgeUpdate) {
        if let Some(f) = self.flags.get_mut(&u.edge.key()) {
            *f = u.is_insert();
        }
    }

    /// Whether the tracked pair is present (None if untracked).
    pub fn present(&self, e: Edge) -> Option<bool> {
        self.flags.get(&e.key()).copied()
    }

    /// Number of tracked pairs.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether no pairs are tracked.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }
}

impl SpaceUsage for AdjacencyFlags {
    fn space_bytes(&self) -> usize {
        self.flags.len() * (std::mem::size_of::<u64>() + 1)
    }
}

/// Running edge count `m` (net, under deletions).
#[derive(Clone, Copy, Debug, Default)]
pub struct EdgeCounter {
    m: i64,
}

impl EdgeCounter {
    /// Fresh counter.
    pub fn new() -> Self {
        EdgeCounter::default()
    }

    /// Feed one update.
    #[inline]
    pub fn feed(&mut self, u: EdgeUpdate) {
        self.m += u.delta as i64;
    }

    /// Current edge count.
    pub fn count(&self) -> usize {
        self.m.max(0) as usize
    }
}

impl SpaceUsage for EdgeCounter {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{EdgeStream, InsertionStream, TurnstileStream};
    use sgs_graph::{gen, StaticGraph};

    #[test]
    fn degree_counters_match_graph() {
        let g = gen::gnm(20, 60, 1);
        let s = InsertionStream::from_graph(&g, 2);
        let mut dc = DegreeCounters::new((0..20).map(|v| VertexId(v as u32)));
        s.replay(&mut |u| dc.feed(u));
        for v in g.vertices() {
            assert_eq!(dc.degree(v), Some(g.degree(v)));
        }
        assert_eq!(dc.degree(VertexId(99)), None);
    }

    #[test]
    fn degree_counters_under_deletions() {
        let g = gen::gnm(20, 60, 1);
        let s = TurnstileStream::from_graph_with_churn(&g, 1.0, 5);
        let mut dc = DegreeCounters::new((0..20).map(|v| VertexId(v as u32)));
        s.replay(&mut |u| dc.feed(u));
        for v in g.vertices() {
            assert_eq!(dc.degree(v), Some(g.degree(v)), "{v:?}");
        }
    }

    #[test]
    fn neighbor_watcher_returns_ith_arrival() {
        use sgs_graph::Edge;
        let edges = vec![
            Edge::from((0, 5)),
            Edge::from((1, 2)),
            Edge::from((0, 3)),
            Edge::from((4, 0)),
        ];
        let s = InsertionStream::from_edge_order(6, edges);
        let mut nw = NeighborWatchers::new([
            (VertexId(0), 1),
            (VertexId(0), 2),
            (VertexId(0), 3),
            (VertexId(0), 4),
        ]);
        s.replay(&mut |u| nw.feed(u));
        assert_eq!(nw.answer(0), Some(VertexId(5)));
        assert_eq!(nw.answer(1), Some(VertexId(3)));
        assert_eq!(nw.answer(2), Some(VertexId(4)));
        assert_eq!(nw.answer(3), None); // only 3 incident edges
    }

    #[test]
    fn adjacency_flags_follow_last_update() {
        use sgs_graph::Edge;
        let e = Edge::from((0, 1));
        let f = Edge::from((2, 3));
        let mut af = AdjacencyFlags::new([e, f]);
        af.feed(EdgeUpdate::insert(e));
        af.feed(EdgeUpdate::insert(f));
        af.feed(EdgeUpdate::delete(f));
        assert_eq!(af.present(e), Some(true));
        assert_eq!(af.present(f), Some(false));
        assert_eq!(af.present(Edge::from((4, 5))), None);
    }

    #[test]
    fn edge_counter_nets_out() {
        let g = gen::gnm(30, 90, 7);
        let s = TurnstileStream::from_graph_with_churn(&g, 2.0, 8);
        let mut ec = EdgeCounter::new();
        s.replay(&mut |u| ec.feed(u));
        assert_eq!(ec.count(), 90);
    }

    #[test]
    fn space_accounting_nonzero() {
        let dc = DegreeCounters::new([VertexId(1), VertexId(2)]);
        assert!(dc.space_bytes() > 0);
        let nw = NeighborWatchers::new([(VertexId(0), 1)]);
        assert!(nw.space_bytes() > 0);
    }
}
