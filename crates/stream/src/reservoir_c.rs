//! Size-`C` reservoir with skip-ahead acceptance — Vitter's Algorithm Z.
//!
//! The single-slot samplers in [`crate::reservoir`] close their offer/skip
//! split with an *exact integer inverse transform*: for `C = 1` the gap
//! law `P(gap ≥ s) = t/(t+s)` inverts in closed form with one uniform.
//! For a reservoir of `C > 1` slots no closed form exists, so the skip
//! path needs a different construction. This module supplies it:
//!
//! * **Offer mode** is textbook Algorithm R and doubles as the
//!   statistical oracle: offer `t` (1-based) draws `j ∈ [0, t)` and
//!   replaces slot `j` when `j < C`. One draw per offer.
//! * **Skip mode** samples the *gap* (number of consecutive losing
//!   offers after clock `t`) directly from its exact law
//!
//!   ```text
//!   R(s) = P(gap ≥ s) = ∏_{k=0}^{C−1} (t−k) / (t+s−k)        (O(C))
//!   p(s) = P(gap = s) = R(s) · C / (t+s+1)
//!   ```
//!
//!   and then touches nothing but a countdown compare until the next
//!   acceptance — zero floating-point work on losing offers, `O(C log m)`
//!   draws per pass instead of `O(m)`.
//!
//! The gap sampler switches regimes the way Vitter's Algorithm Z does:
//!
//! * **Small clocks** (`t < 22·C`): sequential-search inversion with ONE
//!   uniform `V` — walk `R(s+1) = R(s)·(t+s+1−C)/(t+s+1)` until it drops
//!   to `V`. Cheap because the gap is short when the clock is small.
//! * **Large clocks**: rejection from the continuous envelope
//!   `G(x) = (t/(t+x))^C`. The candidate `X = t·(U^{−1/C} − 1)` has tail
//!   exactly `G`, so `s = ⌊X⌋` lands in cell `q(s) = G(s) − G(s+1)`.
//!   Since `R(s) ≤ G(s)` termwise and
//!   `q(s) ≥ G(s)·(C/(t+s+1))·(1 − (C−1)/(2(t+s+1)))` (binomial lower
//!   bound on `1 − (1−x)^C`), the constant
//!   `M = 1 / (1 − (C−1)/(2(t+1)))` dominates `p(s) ≤ M·q(s)` and the
//!   acceptance test `W·M·q(s) ≤ p(s)` is exact. `M ≤ 2` for every
//!   `t ≥ C`, so the loop runs ~1–2 iterations. The `powf`s here are per
//!   *candidate*, not per offer — the skip contract is intact.
//! * **`C == 1`** reduces to the closed-form inverse transform, the same
//!   `⌊t/u⌋ − t` law [`crate::reservoir`] schedules through.
//!
//! The executors keep their frozen coin chains (byte-identity across
//! the repo hangs off them), so this bank never replaces them. Its
//! first real consumer is the TRIÈST baseline's edge bank
//! (`sgs_core::baselines::triest`, scheme `TriestScheme::SizeC`), which
//! tracks evictions through [`SizeCReservoir::offer_report`] to keep an
//! adjacency index over the retained edges.

use crate::hash::FastRng;
use crate::reservoir::ReservoirMode;

/// Clock multiple below which sequential-search inversion beats the
/// rejection envelope (Vitter's measured crossover is ≈ 22·C).
const SEQ_CUTOFF: u64 = 22;

/// Sequential-search inversion: `S = min{ s ≥ 0 : R(s+1) ≤ V }` with one
/// uniform, walking the tail ratio `R(s+1)/R(s) = (t+s+1−C)/(t+s+1)`
/// incrementally. Exact for every `t ≥ C`; intended for small clocks
/// where the expected gap (≈ `t/(C−1)`) keeps the walk short.
fn gap_sequential(t: u64, c: u64, rng: &mut FastRng, draws: &mut u64) -> u64 {
    let v = rng.gen_unit_f64();
    *draws += 1;
    let (tf, cf) = (t as f64, c as f64);
    let mut prod = 1.0f64; // R(s) running tail, R(0) = 1
    let mut s = 0u64;
    loop {
        let denom = tf + s as f64 + 1.0;
        prod *= (denom - cf) / denom;
        if prod <= v {
            return s;
        }
        s += 1;
    }
}

/// Rejection from the continuous envelope `G(x) = (t/(t+x))^C` — the
/// large-clock arm of Algorithm Z. Two uniforms per candidate; expected
/// candidates ≤ `M ≤ 2`. Exact for every `t ≥ C` (the test suite runs it
/// at small clocks on purpose to pin that).
fn gap_rejection(t: u64, c: u64, rng: &mut FastRng, draws: &mut u64) -> u64 {
    let (tf, cf) = (t as f64, c as f64);
    let m = 1.0 / (1.0 - (cf - 1.0) / (2.0 * (tf + 1.0)));
    loop {
        let u = rng.gen_unit_f64();
        let w = rng.gen_unit_f64();
        *draws += 2;
        // Candidate with tail exactly G: X = t·(U^{−1/C} − 1) ≥ 0.
        let x = tf * (u.powf(-1.0 / cf) - 1.0);
        let s = x as u64; // floor; saturates at the same tail skip_gap does
        let sf = s as f64;
        // Envelope cell mass q(s) = G(s) − G(s+1).
        let q = (tf / (tf + sf)).powf(cf) - (tf / (tf + sf + 1.0)).powf(cf);
        // Exact pmf p(s) = R(s) · C/(t+s+1), R(s) as the O(C) product.
        let mut r = 1.0f64;
        for k in 0..c {
            r *= (tf - k as f64) / (tf + sf - k as f64);
        }
        let p = r * cf / (tf + sf + 1.0);
        // q underflowing to 0 in the far tail accepts (p underflows with
        // it) — same numerics class as skip_gap's saturating cast.
        if w * m * q <= p {
            return s;
        }
    }
}

/// Exact gap after clock `t` for a full size-`c` reservoir, dispatching
/// per the Algorithm Z regime split.
fn gap_after(t: u64, c: u64, rng: &mut FastRng, draws: &mut u64) -> u64 {
    debug_assert!(t >= c && c >= 1);
    if c == 1 {
        // Closed-form inverse transform: P(gap ≥ s) = t/(t+s).
        let u = rng.gen_unit_f64();
        *draws += 1;
        return ((t as f64 / u) as u64).saturating_sub(t);
    }
    if t < SEQ_CUTOFF * c {
        gap_sequential(t, c, rng, draws)
    } else {
        gap_rejection(t, c, rng, draws)
    }
}

/// A uniform size-`C` reservoir over items of type `T`: after `m ≥ C`
/// offers, every `C`-subset of the stream is equally likely to be the
/// slot set (so each item is retained with probability `C/m`).
#[derive(Clone, Debug)]
pub struct SizeCReservoir<T> {
    rng: FastRng,
    slots: Vec<Option<T>>,
    mode: ReservoirMode,
    /// Offers seen (the clock `t`).
    seen: u64,
    /// Skip mode: 1-based offer index of the next acceptance; meaningful
    /// only once the fill phase ends.
    next_accept: u64,
    /// RNG draws consumed — the skip contract's observable.
    draws: u64,
}

impl<T> SizeCReservoir<T> {
    /// A reservoir of `c ≥ 1` slots in the default ([`ReservoirMode::Skip`])
    /// acceptance scheme.
    pub fn new(c: usize, seed: u64) -> Self {
        Self::with_mode(c, seed, ReservoirMode::default())
    }

    pub fn with_mode(c: usize, seed: u64, mode: ReservoirMode) -> Self {
        assert!(c >= 1, "a reservoir needs at least one slot");
        Self {
            rng: FastRng::seed_from_u64(seed),
            slots: (0..c).map(|_| None).collect(),
            mode,
            seen: 0,
            next_accept: 0,
            draws: 0,
        }
    }

    /// Offer one item. Fill phase keeps the first `C` verbatim; after
    /// that, offer mode draws per offer and skip mode compares against
    /// the precomputed acceptance clock.
    pub fn offer(&mut self, item: T) {
        let _ = self.offer_report(item);
    }

    /// [`SizeCReservoir::offer`] that reports what happened: `None` if
    /// the item lost, `Some((slot, evicted))` if it was stored —
    /// `evicted` is `None` during the fill phase. Consumers that index
    /// the retained set (e.g. an adjacency map over reservoir edges)
    /// need the eviction to stay consistent; the coin chain is exactly
    /// `offer`'s.
    pub fn offer_report(&mut self, item: T) -> Option<(usize, Option<T>)> {
        self.seen += 1;
        let t = self.seen;
        let c = self.slots.len() as u64;
        if t <= c {
            let slot = (t - 1) as usize;
            let evicted = self.slots[slot].replace(item);
            if self.mode == ReservoirMode::Skip && t == c {
                self.next_accept = c + gap_after(c, c, &mut self.rng, &mut self.draws) + 1;
            }
            return Some((slot, evicted));
        }
        match self.mode {
            ReservoirMode::Offer => {
                let j = self.rng.gen_range(0..t);
                self.draws += 1;
                if j < c {
                    let evicted = self.slots[j as usize].replace(item);
                    return Some((j as usize, evicted));
                }
                None
            }
            ReservoirMode::Skip => {
                if t == self.next_accept {
                    // Victim slot is uniform in [0, C) independently of
                    // the gap — Algorithm Z's replacement rule.
                    let j = self.rng.gen_range(0..c);
                    self.draws += 1;
                    let evicted = self.slots[j as usize].replace(item);
                    self.next_accept = t + gap_after(t, c, &mut self.rng, &mut self.draws) + 1;
                    return Some((j as usize, evicted));
                }
                None
            }
        }
    }

    /// The slot array; `None` only while the fill phase is incomplete.
    pub fn samples(&self) -> &[Option<T>] {
        &self.slots
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub fn seen(&self) -> u64 {
        self.seen
    }

    pub fn mode(&self) -> ReservoirMode {
        self.mode
    }

    /// RNG draws consumed so far — offer mode spends exactly one per
    /// post-fill offer; skip mode spends `O(C log(m/C))` per pass.
    pub fn rng_draws(&self) -> u64 {
        self.draws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::split_seed;

    /// Greedy ≥2%-mass cells over the exact gap pmf at clock `t`,
    /// reservoir size `c`, plus an implicit ≥2% tail: at most 50 cells
    /// total, so χ²₀.₉₉₉ stays below 86 for every split.
    fn pmf_cells(t: u64, c: u64) -> Vec<(u64, u64, f64)> {
        let (tf, cf) = (t as f64, c as f64);
        let (mut r, mut s, mut cum) = (1.0f64, 0u64, 0.0f64);
        let mut cells = Vec::new();
        while cum < 0.98 {
            let start = s;
            let mut mass = 0.0;
            while mass < 0.02 {
                let denom = tf + s as f64 + 1.0;
                mass += r * cf / denom;
                r *= (denom - cf) / denom;
                s += 1;
            }
            cells.push((start, s, mass));
            cum += mass;
        }
        cells.push((s, u64::MAX, 1.0 - cum)); // tail cell, mass ≥ 0.02
        cells
    }

    fn chi2_against_pmf(gaps: &[u64], cells: &[(u64, u64, f64)]) -> f64 {
        let mut obs = vec![0u64; cells.len()];
        'outer: for &g in gaps {
            for (i, &(lo, hi, _)) in cells.iter().enumerate() {
                if g >= lo && g < hi {
                    obs[i] += 1;
                    continue 'outer;
                }
            }
            unreachable!("gap {g} fell outside the cell cover");
        }
        let n = gaps.len() as f64;
        obs.iter()
            .zip(cells)
            .map(|(&o, &(_, _, mass))| {
                let e = n * mass;
                let d = o as f64 - e;
                d * d / e
            })
            .sum()
    }

    /// Both gap samplers, run *outside their production regime on
    /// purpose*, must match the exact pmf: the regime split is a cost
    /// choice, never a distribution choice.
    #[test]
    fn gap_law_exact_in_both_regimes() {
        const N: usize = 40_000;
        for &(t, c) in &[(40u64, 3u64), (300, 6)] {
            let cells = pmf_cells(t, c);
            assert!(cells.len() <= 50, "cell cover too fine: {}", cells.len());
            for arm in ["sequential", "rejection"] {
                let mut rng = FastRng::seed_from_u64(split_seed(0xa1f, t ^ c));
                let mut draws = 0u64;
                let gaps: Vec<u64> = (0..N)
                    .map(|_| match arm {
                        "sequential" => gap_sequential(t, c, &mut rng, &mut draws),
                        _ => gap_rejection(t, c, &mut rng, &mut draws),
                    })
                    .collect();
                let chi2 = chi2_against_pmf(&gaps, &cells);
                assert!(
                    chi2 < 86.0,
                    "{arm} t={t} C={c}: chi2 {chi2:.1} over {} cells",
                    cells.len()
                );
            }
        }
    }

    /// Membership marginal vs the Algorithm R oracle: each of `m` items
    /// retained with probability `C/m`, in both modes, including the
    /// `C == 1` closed-form arm. 40 cells / 40k trials → χ² < 73, the
    /// same gate the single-slot samplers pass.
    #[test]
    fn membership_marginal_matches_oracle_chi_square() {
        let n_items = 40usize;
        let trials = 40_000u64;
        for &c in &[1usize, 5] {
            for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
                let mut kept = vec![0u64; n_items];
                for t in 0..trials {
                    let mut r: SizeCReservoir<u32> =
                        SizeCReservoir::with_mode(c, split_seed(0xc0de, t), mode);
                    for i in 0..n_items as u32 {
                        r.offer(i);
                    }
                    for s in r.samples() {
                        kept[s.unwrap() as usize] += 1;
                    }
                }
                let expect = trials as f64 * c as f64 / n_items as f64;
                let chi2: f64 = kept
                    .iter()
                    .map(|&w| {
                        let d = w as f64 - expect;
                        d * d / expect
                    })
                    .sum();
                assert!(chi2 < 73.0, "C={c} {mode:?}: chi2 {chi2:.1}");
            }
        }
    }

    /// The skip contract, observed through the draw counter: offer mode
    /// pays one draw per post-fill offer, skip mode pays per acceptance
    /// (`O(C log(m/C))` ≪ `m`).
    #[test]
    fn skip_mode_draw_budget_is_logarithmic() {
        let (c, m) = (5usize, 5_000u32);
        let mut offer: SizeCReservoir<u32> = SizeCReservoir::with_mode(c, 9, ReservoirMode::Offer);
        let mut skip: SizeCReservoir<u32> = SizeCReservoir::with_mode(c, 9, ReservoirMode::Skip);
        for i in 0..m {
            offer.offer(i);
            skip.offer(i);
        }
        assert_eq!(offer.rng_draws(), m as u64 - c as u64);
        assert!(skip.rng_draws() > 0);
        // E[draws] ≈ 6·C·ln(m/C) ≈ 210 here; m/10 leaves a wide margin
        // while still pinning the asymptotic separation from offer mode.
        assert!(
            skip.rng_draws() < m as u64 / 10,
            "skip spent {} draws on {m} offers",
            skip.rng_draws()
        );
        assert!(offer.samples().iter().all(|s| s.is_some()));
        assert!(skip.samples().iter().all(|s| s.is_some()));
        assert_eq!(skip.seen(), m as u64);
    }

    #[test]
    fn offer_report_is_coin_identical_to_offer() {
        // Same seed, same offers: the reporting path must hold the same
        // slots and spend the same draws, while telling the truth about
        // fills, wins, and evictions.
        for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
            let mut plain: SizeCReservoir<u32> = SizeCReservoir::with_mode(6, 23, mode);
            let mut report: SizeCReservoir<u32> = SizeCReservoir::with_mode(6, 23, mode);
            let mut wins = 0usize;
            for i in 0..2_000u32 {
                plain.offer(i);
                match report.offer_report(i) {
                    Some((slot, evicted)) => {
                        wins += 1;
                        assert!(slot < 6);
                        assert_eq!(report.samples()[slot], Some(i));
                        assert_eq!(evicted.is_none(), i < 6, "{mode:?} offer {i}");
                    }
                    None => assert!(i >= 6, "fill-phase offers always win"),
                }
            }
            assert_eq!(plain.samples(), report.samples(), "{mode:?}");
            assert_eq!(plain.rng_draws(), report.rng_draws(), "{mode:?}");
            assert!(wins >= 6, "at least the fill phase wins");
        }
    }

    #[test]
    fn fill_phase_keeps_first_c_and_reruns_are_deterministic() {
        for mode in [ReservoirMode::Offer, ReservoirMode::Skip] {
            let mut r: SizeCReservoir<u32> = SizeCReservoir::with_mode(4, 17, mode);
            for i in 0..3u32 {
                r.offer(i);
            }
            assert_eq!(r.samples(), &[Some(0), Some(1), Some(2), None]);
            assert_eq!(r.rng_draws(), 0, "fill phase must not spend coins");

            let run = |seed: u64| {
                let mut r: SizeCReservoir<u32> = SizeCReservoir::with_mode(4, seed, mode);
                for i in 0..500u32 {
                    r.offer(i);
                }
                (r.samples().to_vec(), r.rng_draws())
            };
            assert_eq!(run(17), run(17), "{mode:?} rerun diverged");
        }
    }
}
