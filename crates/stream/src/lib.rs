//! # sgs-stream — stream substrate
//!
//! Edge-stream models and the streaming primitives the paper's
//! transformation theorems (Theorems 9 and 11) rely on:
//!
//! * [`update`] — edge insertions/deletions (`EdgeUpdate`),
//! * [`source`] — arbitrary-order insertion-only and turnstile streams,
//!   with pass accounting,
//! * [`reservoir`] — reservoir sampling, the `f1` emulator for
//!   insertion-only streams (Theorem 9),
//! * [`l0`] — ℓ₀-samplers for turnstile streams (Lemma 7, Theorem 11),
//! * [`counters`] — degree counters, i-th-neighbor watchers, adjacency
//!   flags, edge counters (the `f2`–`f4` emulators),
//! * [`sharded`] — hash-partitioned feed shards driving N consumers from
//!   one logical pass (the sharded pipeline's stream side),
//! * [`broadcast`] — a bounded single-producer/multi-consumer ring of
//!   routed-update blocks with per-consumer cursors and backpressure:
//!   one ingest feeding every estimator at once (the serving path's
//!   fan-out side); lock-free seqlock internals since PR 7, with the
//!   prior mutex design preserved in [`broadcast_mutex`] as the bench
//!   baseline and stress-test oracle,
//! * [`flat`] — open-addressed hash indexes backing the per-pass routing
//!   structures (one SplitMix64 probe per update instead of SipHash),
//! * [`persist`] — versioned, checksummed binary codecs for every sketch
//!   plus a segment-based write-ahead log and snapshot manifest (the
//!   durability substrate of checkpointed runs),
//! * [`space`] — measured space usage of every sketch, so the experiment
//!   harness can report *actual* words instead of asymptotic claims,
//! * [`hash`] — seeded hashing used by the sketches.

pub mod broadcast;
pub mod broadcast_mutex;
pub mod counters;
pub mod flat;
pub mod hash;
pub mod l0;
pub mod persist;
pub mod reservoir;
pub mod reservoir_c;
pub mod sharded;
pub mod source;
pub mod space;
pub mod update;

pub use broadcast::{Broadcast, BroadcastConsumer, RoutedProducer, StallEvent, TryNext};
pub use broadcast_mutex::{MutexBroadcast, MutexConsumer};
pub use persist::{PersistError, PersistResult};
pub use reservoir_c::SizeCReservoir;
pub use sharded::{shard_of_vertex, RoutedUpdate, ShardMap, ShardUpdate, ShardedFeed};
pub use source::{EdgeStream, InsertionStream, PassCounter, TurnstileStream};
pub use space::SpaceUsage;
pub use update::EdgeUpdate;
