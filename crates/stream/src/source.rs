//! Stream sources and pass accounting.
//!
//! A multi-pass streaming algorithm sees the *same* update sequence on
//! every pass (the arbitrary-order model: the order is fixed but
//! adversarial, not random). [`EdgeStream`] abstracts a replayable
//! sequence; [`PassCounter`] wraps one and counts how many passes an
//! algorithm actually performed, which is how the experiment harness
//! verifies the paper's pass-complexity claims (3 passes for Theorem 1,
//! `5r` for Theorem 2).

use crate::hash::FastRng;
use crate::update::EdgeUpdate;
use sgs_graph::{AdjListGraph, Edge, StaticGraph};
use std::cell::Cell;

/// A replayable edge stream over a graph on `num_vertices()` vertices.
pub trait EdgeStream {
    /// Number of vertices `n` of the underlying graph (ids `0..n`), known
    /// to the algorithm up front as in the paper's model.
    fn num_vertices(&self) -> usize;

    /// Replay the whole stream once, feeding every update to `sink` in
    /// stream order.
    fn replay(&self, sink: &mut dyn FnMut(EdgeUpdate));

    /// Number of updates in the stream (stream length, not `m`).
    fn len(&self) -> usize;

    /// The whole stream as one contiguous slice, when the source
    /// materializes it that way. Blocked consumers chunk this directly
    /// (zero copies, no per-update callback); sources that synthesize
    /// updates on the fly, count passes on replay, or merge buffers
    /// (`PassCounter`, `ShardedFeed`) return `None` and are buffered by
    /// the caller through [`EdgeStream::replay`].
    fn as_updates(&self) -> Option<&[EdgeUpdate]> {
        None
    }

    /// Whether the stream carries no updates.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the final graph (applying all updates). Ground-truth
    /// helper for tests and experiments — *not* available to streaming
    /// algorithms.
    fn final_graph(&self) -> AdjListGraph {
        let mut g = AdjListGraph::new(self.num_vertices());
        self.replay(&mut |u| {
            if u.is_insert() {
                g.add_edge(u.edge);
            } else {
                g.remove_edge(u.edge);
            }
        });
        g
    }
}

/// An insertion-only stream: a fixed, arbitrarily ordered list of edge
/// insertions.
#[derive(Clone, Debug)]
pub struct InsertionStream {
    n: usize,
    updates: Vec<EdgeUpdate>,
}

impl InsertionStream {
    /// Stream the edges of `g` in a seeded pseudo-random order
    /// ("arbitrary order": deterministic given the seed, unknown to the
    /// algorithm).
    pub fn from_graph(g: &impl StaticGraph, order_seed: u64) -> Self {
        let mut edges = g.edges();
        let mut rng = FastRng::seed_from_u64(order_seed);
        rng.shuffle(&mut edges);
        InsertionStream {
            n: g.num_vertices(),
            updates: edges.into_iter().map(EdgeUpdate::insert).collect(),
        }
    }

    /// Stream edges in the exact order given (adversarial-order tests).
    pub fn from_edge_order(n: usize, edges: Vec<Edge>) -> Self {
        InsertionStream {
            n,
            updates: edges.into_iter().map(EdgeUpdate::insert).collect(),
        }
    }
}

impl EdgeStream for InsertionStream {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn replay(&self, sink: &mut dyn FnMut(EdgeUpdate)) {
        for &u in &self.updates {
            sink(u);
        }
    }

    fn len(&self) -> usize {
        self.updates.len()
    }

    fn as_updates(&self) -> Option<&[EdgeUpdate]> {
        Some(&self.updates)
    }
}

/// A strict turnstile stream: insertions and deletions whose final effect
/// is a given graph, with every prefix describing a simple graph.
#[derive(Clone, Debug)]
pub struct TurnstileStream {
    n: usize,
    updates: Vec<EdgeUpdate>,
}

impl TurnstileStream {
    /// Build a turnstile stream whose final graph is `g`, with churn:
    /// roughly `churn_factor · m` *extra* non-final edges are inserted and
    /// later deleted, and final edges may also be deleted and re-inserted.
    ///
    /// Construction: each final edge gets one surviving insertion (possibly
    /// preceded by insert/delete cycles); each churn edge gets an
    /// insert-then-delete pair. Events are ordered by random timestamps
    /// that respect per-edge causality, so every prefix is a simple graph.
    pub fn from_graph_with_churn(g: &impl StaticGraph, churn_factor: f64, seed: u64) -> Self {
        assert!(churn_factor >= 0.0);
        let mut rng = FastRng::seed_from_u64(seed);
        let n = g.num_vertices();
        let m = g.num_edges();
        // (timestamp, tiebreak, update)
        let mut events: Vec<(f64, u64, EdgeUpdate)> = Vec::new();

        for e in g.edges() {
            // Optionally one insert/delete cycle before the surviving insert.
            if rng.gen_bool(0.25) {
                let a = rng.gen_f64() * 0.5;
                let b = a + rng.gen_f64() * (0.75 - a).max(1e-9);
                let c = b + rng.gen_f64() * (1.0 - b).max(1e-9);
                events.push((a, rng.next_u64(), EdgeUpdate::insert(e)));
                events.push((b, rng.next_u64(), EdgeUpdate::delete(e)));
                events.push((c, rng.next_u64(), EdgeUpdate::insert(e)));
            } else {
                let t = rng.gen_f64();
                events.push((t, rng.next_u64(), EdgeUpdate::insert(e)));
            }
        }

        // Churn edges: sample distinct non-edges of g, insert then delete.
        let churn_target = (churn_factor * m as f64).round() as usize;
        let mut churned = std::collections::HashSet::new();
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < churn_target && guard < churn_target * 20 + 100 {
            guard += 1;
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            if a == b {
                continue;
            }
            let e = Edge::from((a, b));
            if g.has_edge(e.u(), e.v()) || !churned.insert(e.key()) {
                continue;
            }
            let t0 = rng.gen_f64() * 0.9;
            let t1 = t0 + rng.gen_f64() * (1.0 - t0);
            events.push((t0, rng.next_u64(), EdgeUpdate::insert(e)));
            events.push((t1, rng.next_u64(), EdgeUpdate::delete(e)));
            added += 1;
        }

        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let updates: Vec<EdgeUpdate> = events.into_iter().map(|(_, _, u)| u).collect();
        let s = TurnstileStream { n, updates };
        debug_assert!(s.is_strict());
        s
    }

    /// A turnstile stream from an explicit update list (caller guarantees
    /// strictness; checked in debug builds).
    pub fn from_updates(n: usize, updates: Vec<EdgeUpdate>) -> Self {
        let s = TurnstileStream { n, updates };
        debug_assert!(s.is_strict(), "stream violates strict turnstile");
        s
    }

    /// Verify the strict-turnstile invariant: every prefix keeps all edge
    /// multiplicities in `{0, 1}`.
    pub fn is_strict(&self) -> bool {
        let mut present = std::collections::HashSet::new();
        for u in &self.updates {
            if u.is_insert() {
                if !present.insert(u.edge.key()) {
                    return false;
                }
            } else if !present.remove(&u.edge.key()) {
                return false;
            }
        }
        true
    }

    /// Fraction of updates that are deletions.
    pub fn deletion_fraction(&self) -> f64 {
        if self.updates.is_empty() {
            return 0.0;
        }
        self.updates.iter().filter(|u| !u.is_insert()).count() as f64 / self.updates.len() as f64
    }
}

impl EdgeStream for TurnstileStream {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn replay(&self, sink: &mut dyn FnMut(EdgeUpdate)) {
        for &u in &self.updates {
            sink(u);
        }
    }

    fn len(&self) -> usize {
        self.updates.len()
    }

    fn as_updates(&self) -> Option<&[EdgeUpdate]> {
        Some(&self.updates)
    }
}

/// Wraps a stream and counts passes (replays). The paper's pass-complexity
/// claims are asserted against this counter in tests and reported in the
/// experiment tables.
pub struct PassCounter<'s, S: EdgeStream + ?Sized> {
    inner: &'s S,
    passes: Cell<usize>,
}

impl<'s, S: EdgeStream + ?Sized> PassCounter<'s, S> {
    /// Wrap a stream.
    pub fn new(inner: &'s S) -> Self {
        PassCounter {
            inner,
            passes: Cell::new(0),
        }
    }

    /// Number of passes performed so far.
    pub fn passes(&self) -> usize {
        self.passes.get()
    }
}

impl<S: EdgeStream + ?Sized> EdgeStream for PassCounter<'_, S> {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn replay(&self, sink: &mut dyn FnMut(EdgeUpdate)) {
        self.passes.set(self.passes.get() + 1);
        self.inner.replay(sink);
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::gen;

    #[test]
    fn insertion_stream_replays_all_edges() {
        let g = gen::gnm(30, 100, 1);
        let s = InsertionStream::from_graph(&g, 99);
        assert_eq!(s.len(), 100);
        let mut count = 0;
        s.replay(&mut |u| {
            assert!(u.is_insert());
            count += 1;
        });
        assert_eq!(count, 100);
    }

    #[test]
    fn insertion_stream_order_is_seeded() {
        let g = gen::gnm(30, 100, 1);
        let collect = |seed| {
            let s = InsertionStream::from_graph(&g, seed);
            let mut v = Vec::new();
            s.replay(&mut |u| v.push(u.edge));
            v
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn final_graph_matches_source() {
        let g = gen::gnm(25, 80, 2);
        let s = InsertionStream::from_graph(&g, 3);
        assert_eq!(s.final_graph().edge_vec(), g.edge_vec());
    }

    #[test]
    fn turnstile_is_strict_and_converges() {
        let g = gen::gnm(40, 150, 4);
        for churn in [0.0, 0.5, 2.0] {
            let s = TurnstileStream::from_graph_with_churn(&g, churn, 17);
            assert!(s.is_strict());
            assert_eq!(s.final_graph().edge_vec(), g.edge_vec(), "churn {churn}");
        }
    }

    #[test]
    fn turnstile_churn_adds_deletions() {
        let g = gen::gnm(40, 150, 4);
        let s = TurnstileStream::from_graph_with_churn(&g, 1.0, 9);
        assert!(s.deletion_fraction() > 0.2, "{}", s.deletion_fraction());
        assert!(s.len() > 2 * 150);
    }

    #[test]
    fn pass_counter_counts() {
        let g = gen::gnm(10, 20, 5);
        let s = InsertionStream::from_graph(&g, 0);
        let pc = PassCounter::new(&s);
        assert_eq!(pc.passes(), 0);
        pc.replay(&mut |_| {});
        pc.replay(&mut |_| {});
        assert_eq!(pc.passes(), 2);
        assert_eq!(pc.num_vertices(), 10);
    }

    #[test]
    fn strictness_detector() {
        use sgs_graph::VertexId;
        let e = Edge::new(VertexId(0), VertexId(1));
        let bad = TurnstileStream {
            n: 2,
            updates: vec![EdgeUpdate::delete(e)],
        };
        assert!(!bad.is_strict());
        let bad2 = TurnstileStream {
            n: 2,
            updates: vec![EdgeUpdate::insert(e), EdgeUpdate::insert(e)],
        };
        assert!(!bad2.is_strict());
    }
}
