//! Canonical cycles and stars (Definitions 13 and 14).
//!
//! The FGP sampler counts each cycle/star subgraph exactly once by fixing a
//! *canonical* sequence representation relative to the vertex order `≺_G`:
//!
//! * a sequence `(u_1, …, u_k)` is a **canonical k-cycle** in `(E', ≺)` if
//!   all consecutive pairs (cyclically) are edges of `E'`, `u_1 ≺ u_i` for
//!   all `i ≥ 2`, and `u_k ≺ u_2` (the start is the `≺`-minimum and the
//!   direction is fixed);
//! * a sequence `(u_0, u_1, …, u_k)` is a **canonical k-star** if
//!   `(u_0, u_i) ∈ E'` for all `i ≥ 1` and `u_1 ≺ u_2 ≺ … ≺ u_k`.
//!
//! Every cycle subgraph has exactly one canonical sequence; every star
//! subgraph with `k ≥ 2` petals has exactly one; an `S_1` (single edge) has
//! two (either endpoint may serve as the center). The predicates here are
//! generic over an edge test and an order test so that streaming
//! postprocessing can evaluate them from collected dictionaries
//! (`E'`, `d[V']`) rather than a full graph.

use crate::ids::VertexId;

/// Check Definition 13 against arbitrary edge/order predicates.
///
/// `has_edge(a, b)` must be symmetric; `precedes(a, b)` must be a total
/// order on the sequence's vertices.
pub fn is_canonical_cycle(
    seq: &[VertexId],
    has_edge: impl Fn(VertexId, VertexId) -> bool,
    precedes: impl Fn(VertexId, VertexId) -> bool,
) -> bool {
    let k = seq.len();
    if k < 3 {
        return false;
    }
    // Distinctness (a cycle visits each vertex once).
    for i in 0..k {
        for j in (i + 1)..k {
            if seq[i] == seq[j] {
                return false;
            }
        }
    }
    // Consecutive edges, cyclically.
    for i in 0..k {
        if !has_edge(seq[i], seq[(i + 1) % k]) {
            return false;
        }
    }
    // u_1 is the ≺-minimum.
    for &u in &seq[1..] {
        if !precedes(seq[0], u) {
            return false;
        }
    }
    // Direction: u_k ≺ u_2.
    precedes(seq[k - 1], seq[1])
}

/// Check Definition 14 against arbitrary edge/order predicates. The first
/// element of `seq` is the center `u_0`.
pub fn is_canonical_star(
    seq: &[VertexId],
    has_edge: impl Fn(VertexId, VertexId) -> bool,
    precedes: impl Fn(VertexId, VertexId) -> bool,
) -> bool {
    if seq.len() < 2 {
        return false;
    }
    let center = seq[0];
    let petals = &seq[1..];
    for &p in petals {
        if p == center || !has_edge(center, p) {
            return false;
        }
    }
    // Petals strictly ascending in ≺ (also enforces distinctness).
    petals.windows(2).all(|w| precedes(w[0], w[1]))
}

/// The canonical sequence of the cycle given as an arbitrary cyclic vertex
/// sequence, under `precedes`; `None` if the input repeats vertices.
///
/// Rotates so the `≺`-minimum leads and flips the direction so the last
/// vertex precedes the second.
pub fn canonicalize_cycle(
    cycle: &[VertexId],
    precedes: impl Fn(VertexId, VertexId) -> bool,
) -> Option<Vec<VertexId>> {
    let k = cycle.len();
    if k < 3 {
        return None;
    }
    for i in 0..k {
        for j in (i + 1)..k {
            if cycle[i] == cycle[j] {
                return None;
            }
        }
    }
    // Find ≺-min position.
    let mut min_i = 0;
    for i in 1..k {
        if precedes(cycle[i], cycle[min_i]) {
            min_i = i;
        }
    }
    let mut rot: Vec<VertexId> = (0..k).map(|i| cycle[(min_i + i) % k]).collect();
    // Fix direction: need rot[k-1] ≺ rot[1].
    if !precedes(rot[k - 1], rot[1]) {
        rot[1..].reverse();
    }
    Some(rot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::precedes as g_precedes;
    use crate::{AdjListGraph, StaticGraph};

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    /// 5-cycle 0-1-2-3-4 plus chords to vary degrees.
    fn pentagon() -> AdjListGraph {
        AdjListGraph::from_pairs(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    }

    #[test]
    fn exactly_one_canonical_rotation_per_cycle() {
        let g = pentagon();
        let has = |a, b| g.has_edge(a, b);
        let ord = |a, b| g_precedes(&g, a, b);
        let base = [v(0), v(1), v(2), v(3), v(4)];
        let mut canonical_count = 0;
        // All 10 directed rotations of the pentagon.
        for start in 0..5 {
            for dir in [1i32, -1] {
                let seq: Vec<VertexId> = (0..5)
                    .map(|i| base[(start + dir * i).rem_euclid(5) as usize])
                    .collect();
                if is_canonical_cycle(&seq, has, ord) {
                    canonical_count += 1;
                }
            }
        }
        assert_eq!(canonical_count, 1);
    }

    #[test]
    fn canonicalize_agrees_with_predicate() {
        let g = pentagon();
        let ord = |a, b| g_precedes(&g, a, b);
        let has = |a, b| g.has_edge(a, b);
        let seq = canonicalize_cycle(&[v(3), v(2), v(1), v(0), v(4)], ord).unwrap();
        assert!(is_canonical_cycle(&seq, has, ord));
        // Degrees all equal (2), so ≺ is id order: canonical starts at 0.
        assert_eq!(seq[0], v(0));
        assert_eq!(seq, vec![v(0), v(4), v(3), v(2), v(1)]);
        // check u_k ≺ u_2: 1 < 4 means seq (0,4,...,1): last=1 ≺ second=4 ✓
    }

    #[test]
    fn non_cycle_rejected() {
        let g = pentagon();
        let has = |a, b| g.has_edge(a, b);
        let ord = |a, b| g_precedes(&g, a, b);
        // 0-1-3 is not a triangle in the pentagon.
        assert!(!is_canonical_cycle(&[v(0), v(1), v(3)], has, ord));
        // repeated vertex
        assert!(!is_canonical_cycle(
            &[v(0), v(1), v(0), v(4), v(1)],
            has,
            ord
        ));
        // too short
        assert!(!is_canonical_cycle(&[v(0), v(1)], has, ord));
    }

    #[test]
    fn canonical_star_requires_sorted_petals() {
        let g = AdjListGraph::from_pairs(4, [(0, 1), (0, 2), (0, 3)]);
        let has = |a, b| g.has_edge(a, b);
        let ord = |a, b| g_precedes(&g, a, b);
        // all petals have degree 1; ≺ is id order among them
        assert!(is_canonical_star(&[v(0), v(1), v(2), v(3)], has, ord));
        assert!(!is_canonical_star(&[v(0), v(2), v(1), v(3)], has, ord));
        assert!(!is_canonical_star(&[v(0), v(1), v(1)], has, ord));
        // center not adjacent to some petal
        assert!(!is_canonical_star(&[v(1), v(2)], has, ord));
    }

    #[test]
    fn single_edge_star_has_two_canonical_orientations() {
        let g = AdjListGraph::from_pairs(2, [(0, 1)]);
        let has = |a, b| g.has_edge(a, b);
        let ord = |a, b| g_precedes(&g, a, b);
        assert!(is_canonical_star(&[v(0), v(1)], has, ord));
        assert!(is_canonical_star(&[v(1), v(0)], has, ord));
    }

    #[test]
    fn canonical_cycle_respects_degree_order() {
        // Triangle 0-1-2 with an extra pendant on 0, making deg(0)=3.
        let g = AdjListGraph::from_pairs(4, [(0, 1), (1, 2), (2, 0), (0, 3)]);
        let has = |a, b| g.has_edge(a, b);
        let ord = |a, b| g_precedes(&g, a, b);
        // ≺-min of {0,1,2} is 1 (deg 2, lower id than 2).
        let c = canonicalize_cycle(&[v(0), v(1), v(2)], ord).unwrap();
        assert_eq!(c[0], v(1));
        assert!(is_canonical_cycle(&c, has, ord));
    }
}
