//! Plain-text edge-list I/O.
//!
//! Format: one `u v` pair per line; lines starting with `#` or `%` are
//! comments (covering common SNAP / KONECT exports). Vertex ids are dense
//! `0..n`; `n` is inferred as `max id + 1` unless given.

use crate::AdjListGraph;
use std::io::{BufRead, Write};

/// Parse an edge list from a reader.
///
/// Duplicate edges and self-loops are skipped (simple-graph semantics);
/// malformed lines produce an error naming the line number.
pub fn read_edge_list(r: impl BufRead) -> Result<AdjListGraph, String> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (lineno, line) in r.lines().enumerate() {
        let line = line.map_err(|e| format!("io error at line {}: {e}", lineno + 1))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let a: u32 = it
            .next()
            .ok_or_else(|| format!("line {}: missing source", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad source ({e})", lineno + 1))?;
        let b: u32 = it
            .next()
            .ok_or_else(|| format!("line {}: missing target", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad target ({e})", lineno + 1))?;
        if a == b {
            continue;
        }
        max_id = max_id.max(a).max(b);
        edges.push((a, b));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    Ok(AdjListGraph::from_pairs(n, edges))
}

/// Write a graph as an edge list (each edge once, `u < v`, sorted).
pub fn write_edge_list(g: &AdjListGraph, mut w: impl Write) -> std::io::Result<()> {
    for e in g.edge_vec() {
        writeln!(w, "{} {}", e.u(), e.v())?;
    }
    Ok(())
}

/// Parse from an in-memory string (convenience for tests and examples).
pub fn parse_edge_list(s: &str) -> Result<AdjListGraph, String> {
    read_edge_list(std::io::Cursor::new(s))
}

/// Serialize to a string.
pub fn to_edge_list_string(g: &AdjListGraph) -> String {
    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("edge list is ASCII")
}

impl std::str::FromStr for AdjListGraph {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_edge_list(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticGraph;

    #[test]
    fn roundtrip() {
        let g = crate::gen::gnm(20, 50, 8);
        let s = to_edge_list_string(&g);
        let h = parse_edge_list(&s).unwrap();
        assert_eq!(g.edge_vec(), h.edge_vec());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let g = parse_edge_list("# header\n\n0 1\n% more\n1 2\n").unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn self_loops_dropped() {
        let g = parse_edge_list("0 0\n0 1\n").unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn bad_line_reports_position() {
        let err = parse_edge_list("0 1\nx y\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn from_str_impl() {
        let g: AdjListGraph = "0 1\n1 2\n2 0".parse().unwrap();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn empty_input() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
