//! Lemma 4 decompositions and the fractional edge-cover number `ρ(H)`.
//!
//! Definition 3 defines `ρ(H)` as the optimum of a linear program. Lemma 4
//! (Ngo et al. / Assadi–Kapralov–Khanna; see also Schrijver Thm 30.10)
//! states that every `H` admits a decomposition into **vertex-disjoint odd
//! cycles and stars** whose pieces' `ρ` values sum to exactly `ρ(H)`, with
//! `ρ(C_{2k+1}) = k + 1/2` and `ρ(S_k) = k`. Because target patterns have
//! constant size, we compute an optimal decomposition by memoized exhaustive
//! search over vertex subsets instead of solving the LP — this also yields
//! the concrete pieces the FGP sampler must sample.
//!
//! The module additionally computes the *tuple multiplicity* `f_T(H)` used
//! by Algorithm 9 (`SampleSubgraph`) line 15: the number of distinct ordered
//! piece-tuples that are images of the chosen decomposition `T` under
//! isomorphisms of `H` onto a fixed copy (times an orientation factor of 2
//! for every single-edge star, whose canonical sequence is ambiguous).
//! Dividing the acceptance probability by `f_T(H)` is what makes each copy
//! of `H` returned with probability exactly `1/(2m)^ρ(H)` (Lemma 15).

use crate::pattern::Pattern;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A half-integer rational, the value domain of `ρ` for cycle/star
/// decompositions (`ρ(C_{2k+1}) = k + 1/2`, `ρ(S_k) = k`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Rho {
    halves: u32,
}

impl Rho {
    /// From a count of halves: `Rho::from_halves(3)` is `3/2`.
    pub const fn from_halves(halves: u32) -> Self {
        Rho { halves }
    }

    /// From an integer.
    pub const fn from_int(v: u32) -> Self {
        Rho { halves: 2 * v }
    }

    /// Numerator over 2.
    pub const fn halves(self) -> u32 {
        self.halves
    }

    /// As a float, e.g. for `(2m)^ρ`.
    pub fn as_f64(self) -> f64 {
        self.halves as f64 / 2.0
    }

    /// `x^ρ` for a float base.
    pub fn pow(self, base: f64) -> f64 {
        base.powf(self.as_f64())
    }

    /// Sum of two values.
    #[allow(clippy::should_implement_trait)] // named sum, not operator overloading
    pub fn add(self, other: Rho) -> Rho {
        Rho {
            halves: self.halves + other.halves,
        }
    }
}

impl fmt::Display for Rho {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.halves.is_multiple_of(2) {
            write!(f, "{}", self.halves / 2)
        } else {
            write!(f, "{}/2", self.halves)
        }
    }
}

/// One piece of a Lemma 4 decomposition, with vertices referring to the
/// pattern `H` it decomposes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Piece {
    /// An odd cycle given as its cyclic vertex sequence (length odd, >= 3).
    OddCycle(Vec<u8>),
    /// A star with `petals.len()` petals.
    Star { center: u8, petals: Vec<u8> },
}

impl Piece {
    /// `ρ` of this piece: `k + 1/2` for a `(2k+1)`-cycle, `k` for `S_k`.
    pub fn rho(&self) -> Rho {
        match self {
            // cycle of length 2k+1 has rho = (2k+1)/2 halves-wise: k+1/2
            Piece::OddCycle(vs) => Rho::from_halves(vs.len() as u32),
            Piece::Star { petals, .. } => Rho::from_int(petals.len() as u32),
        }
    }

    /// Number of pattern vertices covered.
    pub fn num_vertices(&self) -> usize {
        match self {
            Piece::OddCycle(vs) => vs.len(),
            Piece::Star { petals, .. } => petals.len() + 1,
        }
    }

    /// All pattern vertices of the piece.
    pub fn vertices(&self) -> Vec<u8> {
        match self {
            Piece::OddCycle(vs) => vs.clone(),
            Piece::Star { center, petals } => {
                let mut v = vec![*center];
                v.extend_from_slice(petals);
                v
            }
        }
    }

    /// Whether the piece is a single-edge star `S_1` (whose canonical
    /// sequence has two orientations).
    pub fn is_single_edge_star(&self) -> bool {
        matches!(self, Piece::Star { petals, .. } if petals.len() == 1)
    }
}

/// A normalized, subgraph-level key for a piece image, used to deduplicate
/// tuples when computing `f_T(H)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum PieceKey {
    /// Sorted edge set of a cycle.
    Cycle(Vec<(u8, u8)>),
    /// `(center, sorted petals)` for stars with >= 2 petals.
    Star(u8, Vec<u8>),
    /// Sorted endpoints for `S_1` (center ambiguous).
    SingleEdge(u8, u8),
}

impl PieceKey {
    fn of(piece: &Piece, map: &[u8]) -> PieceKey {
        match piece {
            Piece::OddCycle(vs) => {
                let mut edges: Vec<(u8, u8)> = (0..vs.len())
                    .map(|i| {
                        let a = map[vs[i] as usize];
                        let b = map[vs[(i + 1) % vs.len()] as usize];
                        if a < b {
                            (a, b)
                        } else {
                            (b, a)
                        }
                    })
                    .collect();
                edges.sort_unstable();
                PieceKey::Cycle(edges)
            }
            Piece::Star { center, petals } if petals.len() == 1 => {
                let a = map[*center as usize];
                let b = map[petals[0] as usize];
                if a < b {
                    PieceKey::SingleEdge(a, b)
                } else {
                    PieceKey::SingleEdge(b, a)
                }
            }
            Piece::Star { center, petals } => {
                let c = map[*center as usize];
                let mut ps: Vec<u8> = petals.iter().map(|&p| map[p as usize]).collect();
                ps.sort_unstable();
                PieceKey::Star(c, ps)
            }
        }
    }
}

/// An optimal Lemma 4 decomposition of a pattern.
#[derive(Clone, Debug)]
pub struct CycleStarDecomposition {
    /// The pieces; their vertex sets partition `V(H)`.
    pub pieces: Vec<Piece>,
    /// `ρ(H) = Σ ρ(piece)`.
    pub rho: Rho,
    /// The tuple multiplicity `f_T(H)` (see module docs).
    pub tuple_multiplicity: u64,
}

impl CycleStarDecomposition {
    /// Cycle pieces, in tuple order.
    pub fn cycles(&self) -> impl Iterator<Item = &Piece> {
        self.pieces
            .iter()
            .filter(|p| matches!(p, Piece::OddCycle(_)))
    }

    /// Star pieces, in tuple order.
    pub fn stars(&self) -> impl Iterator<Item = &Piece> {
        self.pieces
            .iter()
            .filter(|p| matches!(p, Piece::Star { .. }))
    }
}

/// Compute an optimal decomposition of `p` into vertex-disjoint odd cycles
/// and stars (Lemma 4), returning `None` when impossible — exactly when `p`
/// has an isolated vertex (then no edge cover exists and `ρ(H) = ∞`).
pub fn decompose(p: &Pattern) -> Option<CycleStarDecomposition> {
    let n = p.num_vertices();
    assert!((1..=32).contains(&n));
    if (0..n).any(|v| p.degree(v) == 0) {
        return None;
    }
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut memo: HashMap<u32, Option<(u32, Vec<Piece>)>> = HashMap::new();
    let best = search(p, 0, full, &mut memo)?;
    let rho = Rho::from_halves(best.0);
    let pieces = best.1;
    let tuple_multiplicity = tuple_multiplicity(p, &pieces);
    Some(CycleStarDecomposition {
        pieces,
        rho,
        tuple_multiplicity,
    })
}

/// Just `ρ(H)`, or `None` for patterns with isolated vertices.
pub fn rho(p: &Pattern) -> Option<Rho> {
    decompose(p).map(|d| d.rho)
}

/// Memoized search: minimum total `ρ` (in halves) to cover exactly the
/// vertices *not* in `covered`, with the chosen pieces.
fn search(
    p: &Pattern,
    covered: u32,
    full: u32,
    memo: &mut HashMap<u32, Option<(u32, Vec<Piece>)>>,
) -> Option<(u32, Vec<Piece>)> {
    if covered == full {
        return Some((0, Vec::new()));
    }
    if let Some(hit) = memo.get(&covered) {
        return hit.clone();
    }
    let v = (!covered & full).trailing_zeros() as usize;
    let avail = !covered & full;
    let mut best: Option<(u32, Vec<Piece>)> = None;

    let mut consider = |cost: u32, piece: Piece, rest: Option<(u32, Vec<Piece>)>| {
        if let Some((rc, mut rp)) = rest {
            let total = cost + rc;
            if best.as_ref().is_none_or(|(b, _)| total < *b) {
                rp.insert(0, piece);
                best = Some((total, rp));
            }
        }
    };

    // Option A: v is the center of a star; petals = any nonempty subset of
    // available neighbors.
    let nbrs_v = p.adj_mask(v) & avail;
    for_each_subset(nbrs_v, |petal_mask| {
        if petal_mask == 0 {
            return;
        }
        let petals = mask_to_vec(petal_mask);
        let piece = Piece::Star {
            center: v as u8,
            petals,
        };
        let cost = 2 * petal_mask.count_ones(); // rho(S_k) = k -> 2k halves
        let rest = search(p, covered | petal_mask | (1 << v), full, memo);
        consider(cost, piece, rest);
    });

    // Option B: v is a petal of a star centered at an available neighbor u.
    let mut centers = p.adj_mask(v) & avail;
    while centers != 0 {
        let u = centers.trailing_zeros() as usize;
        centers &= centers - 1;
        let candidate_petals = p.adj_mask(u) & avail & !(1 << u);
        // Subsets of candidate petals that contain v.
        let others = candidate_petals & !(1 << v);
        for_each_subset(others, |sub| {
            let petal_mask = sub | (1 << v);
            let petals = mask_to_vec(petal_mask);
            let piece = Piece::Star {
                center: u as u8,
                petals,
            };
            let cost = 2 * petal_mask.count_ones();
            let rest = search(p, covered | petal_mask | (1 << u), full, memo);
            consider(cost, piece, rest);
        });
    }

    // Option C: v lies on an odd cycle among available vertices.
    for cyc in odd_cycles_through(p, v, avail) {
        let mut mask = 0u32;
        for &w in &cyc {
            mask |= 1 << w;
        }
        let cost = cyc.len() as u32; // rho(C_{2k+1}) = (2k+1)/2 halves-wise
        let piece = Piece::OddCycle(cyc);
        let rest = search(p, covered | mask, full, memo);
        consider(cost, piece, rest);
    }

    memo.insert(covered, best.clone());
    best
}

/// Enumerate all simple odd cycles (length >= 3) through `v` using only
/// vertices in `avail`, each cycle reported once (direction fixed by
/// requiring the second vertex id to be smaller than the last).
fn odd_cycles_through(p: &Pattern, v: usize, avail: u32) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut path = vec![v as u8];
    let mut seen = 1u32 << v;
    dfs_cycles(p, v, v, avail, &mut path, &mut seen, &mut out);
    out
}

fn dfs_cycles(
    p: &Pattern,
    start: usize,
    cur: usize,
    avail: u32,
    path: &mut Vec<u8>,
    seen: &mut u32,
    out: &mut Vec<Vec<u8>>,
) {
    let mut next = p.adj_mask(cur) & avail & !*seen;
    // Close the cycle?
    if path.len() >= 3 && path.len() % 2 == 1 && p.has_edge(cur, start) {
        // direction dedup: path[1] < path[len-1]
        if path[1] < path[path.len() - 1] {
            out.push(path.clone());
        }
    }
    if path.len() >= p.num_vertices() {
        return;
    }
    while next != 0 {
        let w = next.trailing_zeros() as usize;
        next &= next - 1;
        path.push(w as u8);
        *seen |= 1 << w;
        dfs_cycles(p, start, w, avail, path, seen, out);
        *seen &= !(1 << w);
        path.pop();
    }
}

fn mask_to_vec(mut m: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(m.count_ones() as usize);
    while m != 0 {
        out.push(m.trailing_zeros() as u8);
        m &= m - 1;
    }
    out
}

/// Call `f` on every subset of `mask` (including 0 and `mask`).
fn for_each_subset(mask: u32, mut f: impl FnMut(u32)) {
    let mut sub = mask;
    loop {
        f(sub);
        if sub == 0 {
            break;
        }
        sub = (sub - 1) & mask;
    }
}

/// Compute the tuple multiplicity `f_T(H)`: the number of distinct ordered
/// subgraph-level piece tuples obtainable as images of `pieces` under
/// automorphisms of `p`, times `2^(#single-edge stars)` to account for the
/// two canonical orientations of an `S_1`.
pub fn tuple_multiplicity(p: &Pattern, pieces: &[Piece]) -> u64 {
    let autos = automorphisms(p);
    let mut distinct: HashSet<Vec<PieceKey>> = HashSet::new();
    for phi in &autos {
        let tuple: Vec<PieceKey> = pieces.iter().map(|pc| PieceKey::of(pc, phi)).collect();
        distinct.insert(tuple);
    }
    let single_edges = pieces.iter().filter(|pc| pc.is_single_edge_star()).count();
    distinct.len() as u64 * (1u64 << single_edges)
}

/// All automorphisms of `p` as permutation vectors (`phi[v] = image of v`).
pub fn automorphisms(p: &Pattern) -> Vec<Vec<u8>> {
    let n = p.num_vertices();
    assert!(n <= 12, "automorphism enumeration limited to n <= 12");
    let degs: Vec<usize> = (0..n).map(|v| p.degree(v)).collect();
    let mut out = Vec::new();
    let mut perm = vec![u8::MAX; n];
    let mut used = 0u32;
    enumerate_autos(p, 0, &mut perm, &mut used, &degs, &mut out);
    out
}

fn enumerate_autos(
    p: &Pattern,
    v: usize,
    perm: &mut Vec<u8>,
    used: &mut u32,
    degs: &[usize],
    out: &mut Vec<Vec<u8>>,
) {
    let n = p.num_vertices();
    if v == n {
        out.push(perm.clone());
        return;
    }
    for img in 0..n {
        if *used & (1 << img) != 0 || degs[img] != degs[v] {
            continue;
        }
        let ok = (0..v).all(|w| p.has_edge(v, w) == p.has_edge(img, perm[w] as usize));
        if !ok {
            continue;
        }
        perm[v] = img as u8;
        *used |= 1 << img;
        enumerate_autos(p, v + 1, perm, used, degs, out);
        *used &= !(1 << img);
        perm[v] = u8::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rho_of(p: &Pattern) -> Rho {
        rho(p).expect("pattern should decompose")
    }

    #[test]
    fn rho_closed_forms_cliques() {
        // rho(K_r) = r/2
        for r in 2..=8 {
            assert_eq!(
                rho_of(&Pattern::clique(r)),
                Rho::from_halves(r as u32),
                "K{r}"
            );
        }
    }

    #[test]
    fn rho_closed_forms_cycles() {
        // rho(C_{2k+1}) = k + 1/2, rho(C_{2k}) = k
        for k in 3..=9 {
            let expect = if k % 2 == 1 {
                Rho::from_halves(k as u32)
            } else {
                Rho::from_int(k as u32 / 2)
            };
            assert_eq!(rho_of(&Pattern::cycle(k)), expect, "C{k}");
        }
    }

    #[test]
    fn rho_closed_forms_stars() {
        // rho(S_k) = k
        for k in 1..=8 {
            assert_eq!(rho_of(&Pattern::star(k)), Rho::from_int(k as u32), "S{k}");
        }
    }

    #[test]
    fn rho_paths() {
        // rho(P_k) (k edges, k+1 vertices) = ceil((k+1)/2)
        for k in 1..=7 {
            let expect = Rho::from_int(((k + 1) as u32).div_ceil(2));
            assert_eq!(rho_of(&Pattern::path(k)), expect, "P{k}");
        }
    }

    #[test]
    fn triangle_decomposes_to_single_cycle() {
        let d = decompose(&Pattern::triangle()).unwrap();
        assert_eq!(d.pieces.len(), 1);
        assert!(matches!(&d.pieces[0], Piece::OddCycle(c) if c.len() == 3));
        assert_eq!(d.rho, Rho::from_halves(3));
    }

    #[test]
    fn k4_decomposes_to_two_edges() {
        let d = decompose(&Pattern::clique(4)).unwrap();
        assert_eq!(d.rho, Rho::from_int(2));
        assert_eq!(d.pieces.len(), 2);
        assert!(d.pieces.iter().all(|p| p.is_single_edge_star()));
    }

    #[test]
    fn k5_decomposition_uses_cycle_and_edge() {
        let d = decompose(&Pattern::clique(5)).unwrap();
        assert_eq!(d.rho, Rho::from_halves(5));
        let cycles = d.cycles().count();
        let stars = d.stars().count();
        assert_eq!((cycles, stars), (1, 1));
    }

    #[test]
    fn pieces_partition_vertices() {
        for p in [
            Pattern::triangle(),
            Pattern::clique(4),
            Pattern::clique(6),
            Pattern::cycle(5),
            Pattern::cycle(6),
            Pattern::star(4),
            Pattern::path(4),
        ] {
            let d = decompose(&p).unwrap();
            let mut seen = vec![false; p.num_vertices()];
            for piece in &d.pieces {
                for v in piece.vertices() {
                    assert!(!seen[v as usize], "{p:?}: vertex {v} covered twice");
                    seen[v as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "{p:?}: not all vertices covered");
        }
    }

    #[test]
    fn pieces_are_subgraphs_of_pattern() {
        for p in [Pattern::clique(5), Pattern::cycle(7), Pattern::path(5)] {
            let d = decompose(&p).unwrap();
            for piece in &d.pieces {
                match piece {
                    Piece::OddCycle(vs) => {
                        assert!(vs.len() % 2 == 1 && vs.len() >= 3);
                        for i in 0..vs.len() {
                            let a = vs[i] as usize;
                            let b = vs[(i + 1) % vs.len()] as usize;
                            assert!(p.has_edge(a, b), "{p:?}: cycle edge ({a},{b}) missing");
                        }
                    }
                    Piece::Star { center, petals } => {
                        for &q in petals {
                            assert!(p.has_edge(*center as usize, q as usize));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn isolated_vertex_has_no_cover() {
        let p = Pattern::from_edges(3, [(0, 1)]);
        assert!(decompose(&p).is_none());
        assert!(rho(&p).is_none());
    }

    #[test]
    fn rho_lower_bound_half_vertices() {
        // Every vertex needs >= 1/2 from a fractional cover, so rho >= n/2.
        for p in [
            Pattern::clique(4),
            Pattern::cycle(5),
            Pattern::star(3),
            Pattern::path(3),
        ] {
            let r = rho_of(&p);
            assert!(r.halves() >= p.num_vertices() as u32);
        }
    }

    #[test]
    fn rho_upper_bound_edges() {
        // rho <= |E| (put weight 1 everywhere).
        for p in [Pattern::clique(5), Pattern::cycle(6), Pattern::star(4)] {
            let r = rho_of(&p);
            assert!(r.as_f64() <= p.num_edges() as f64);
        }
    }

    #[test]
    fn automorphism_enumeration_matches_count() {
        for p in [
            Pattern::triangle(),
            Pattern::clique(4),
            Pattern::cycle(5),
            Pattern::star(3),
            Pattern::path(3),
        ] {
            assert_eq!(automorphisms(&p).len() as u64, p.automorphism_count());
        }
    }

    #[test]
    fn tuple_multiplicity_triangle() {
        // One 3-cycle piece; all 6 automorphisms yield the same edge set.
        let d = decompose(&Pattern::triangle()).unwrap();
        assert_eq!(d.tuple_multiplicity, 1);
    }

    #[test]
    fn tuple_multiplicity_k4() {
        // Two S_1 pieces: 3 matchings x 2 tuple orders = 6 subgraph tuples,
        // wait: automorphism orbit of one ordered matching: images of the
        // fixed ordered pair of disjoint edges under the 24 automorphisms:
        // 3 matchings x 2 orders = 6 ordered tuples; x 2^2 orientations = 24.
        let d = decompose(&Pattern::clique(4)).unwrap();
        assert_eq!(d.tuple_multiplicity, 24);
    }

    #[test]
    fn tuple_multiplicity_star() {
        // S_k decomposes as itself: single star piece, orbit size 1, no S_1.
        let d = decompose(&Pattern::star(3)).unwrap();
        assert_eq!(d.tuple_multiplicity, 1);
    }

    #[test]
    fn tuple_multiplicity_c5() {
        // Single 5-cycle piece: all automorphisms map the cycle to itself.
        let d = decompose(&Pattern::cycle(5)).unwrap();
        assert_eq!(d.tuple_multiplicity, 1);
    }

    #[test]
    fn tuple_multiplicity_single_edge() {
        // H = K2 = S_1: one S_1 piece, orbit 1, times 2 orientations.
        let d = decompose(&Pattern::single_edge()).unwrap();
        assert_eq!(d.tuple_multiplicity, 2);
    }

    #[test]
    fn even_cycle_decomposes_to_matching() {
        let d = decompose(&Pattern::cycle(6)).unwrap();
        assert_eq!(d.rho, Rho::from_int(3));
        assert_eq!(d.pieces.len(), 3);
        assert!(d.pieces.iter().all(|p| p.is_single_edge_star()));
    }
}
