//! Immutable compressed-sparse-row graph for cache-friendly exact counting.

use crate::ids::{Edge, VertexId};
use crate::StaticGraph;

/// A frozen undirected graph in CSR (compressed sparse row) layout with
/// sorted neighbor lists, enabling binary-search adjacency tests and
/// merge-style neighborhood intersections.
///
/// Exact counters (`crate::exact`) prefer this layout: one contiguous
/// allocation, sorted ranges, no hashing on the hot path.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
    m: usize,
}

impl CsrGraph {
    /// Build from any [`StaticGraph`].
    pub fn from_graph(g: &impl StaticGraph) -> Self {
        Self::from_edges(g.num_vertices(), g.edges())
    }

    /// Build from an edge list (each undirected edge listed once).
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        let edges: Vec<Edge> = edges.into_iter().collect();
        let mut deg = vec![0u32; n];
        for e in &edges {
            deg[e.u().index()] += 1;
            deg[e.v().index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![VertexId(0); acc as usize];
        for e in &edges {
            let (u, v) = e.endpoints();
            targets[cursor[u.index()] as usize] = v;
            cursor[u.index()] += 1;
            targets[cursor[v.index()] as usize] = u;
            cursor[v.index()] += 1;
        }
        for v in 0..n {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        CsrGraph {
            offsets,
            targets,
            m: edges.len(),
        }
    }

    /// Sorted neighbor slice of `v`.
    #[inline]
    pub fn sorted_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// Size of the intersection of the sorted neighbor lists of `u` and `v`.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> usize {
        let (mut a, mut b) = (self.sorted_neighbors(u), self.sorted_neighbors(v));
        if a.len() > b.len() {
            std::mem::swap(&mut a, &mut b);
        }
        // Merge scan; switch to binary probing when sizes are lopsided.
        if a.len() * 16 < b.len() {
            a.iter().filter(|x| b.binary_search(x).is_ok()).count()
        } else {
            let mut i = 0;
            let mut j = 0;
            let mut c = 0;
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        c += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            c
        }
    }
}

impl StaticGraph for CsrGraph {
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    fn num_edges(&self) -> usize {
        self.m
    }

    fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.sorted_neighbors(v)
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && self.sorted_neighbors(u).binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdjListGraph;

    fn sample() -> CsrGraph {
        let g = AdjListGraph::from_pairs(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        CsrGraph::from_graph(&g)
    }

    #[test]
    fn csr_matches_source() {
        let g = sample();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(VertexId(2)), 3);
        assert!(g.has_edge(VertexId(3), VertexId(4)));
        assert!(!g.has_edge(VertexId(0), VertexId(4)));
    }

    #[test]
    fn neighbors_sorted() {
        let g = sample();
        let ns = g.sorted_neighbors(VertexId(2));
        assert_eq!(ns, &[VertexId(0), VertexId(1), VertexId(3)]);
    }

    #[test]
    fn common_neighbors_counts() {
        let g = sample();
        // 0 and 1 share neighbor 2
        assert_eq!(g.common_neighbors(VertexId(0), VertexId(1)), 1);
        // 0's neighbors {1,2}, 4's neighbors {3}: disjoint
        assert_eq!(g.common_neighbors(VertexId(0), VertexId(4)), 0);
    }

    #[test]
    fn common_neighbors_disjoint() {
        let g = sample();
        assert_eq!(g.common_neighbors(VertexId(1), VertexId(4)), 0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(3, []);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(VertexId(1)), 0);
        assert!(g.neighbors(VertexId(0)).is_empty());
    }
}
