//! Seeded workload generators.
//!
//! The experiment harness exercises the streaming algorithms on three graph
//! families the paper's introduction motivates:
//!
//! * uniform random graphs `G(n, m)` / `G(n, p)` — the generic worst case,
//! * Barabási–Albert preferential attachment — the paper cites this family
//!   explicitly as having constant degeneracy (§1, Bera–Seshadhri
//!   discussion), making it the natural workload for Theorem 2,
//! * planted-motif graphs — a base graph plus a controlled number of copies
//!   of a target pattern, giving workloads with a tunable `#H`.

use crate::ids::{Edge, VertexId};
use crate::pattern::Pattern;
use crate::{AdjListGraph, StaticGraph};
use sgs_prng::FastRng;
use std::collections::HashSet;

/// Uniform random graph with exactly `m` distinct edges.
///
/// Panics if `m` exceeds `C(n, 2)`.
pub fn gnm(n: usize, m: usize, seed: u64) -> AdjListGraph {
    let max = n * (n - 1) / 2;
    assert!(m <= max, "requested {m} edges but K{n} has only {max}");
    let mut rng = FastRng::seed_from_u64(seed);
    let mut g = AdjListGraph::new(n);
    if m > max / 2 {
        // Dense: sample which edges to *exclude*.
        let mut all: Vec<(u32, u32)> = Vec::with_capacity(max);
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                all.push((a, b));
            }
        }
        rng.shuffle(&mut all);
        for &(a, b) in all.iter().take(m) {
            g.add_edge(Edge::from((a, b)));
        }
    } else {
        let mut seen = HashSet::with_capacity(m * 2);
        while g.num_edges() < m {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            if a == b {
                continue;
            }
            let e = Edge::from((a, b));
            if seen.insert(e.key()) {
                g.add_edge(e);
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)`.
pub fn gnp(n: usize, p: f64, seed: u64) -> AdjListGraph {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = FastRng::seed_from_u64(seed);
    let mut g = AdjListGraph::new(n);
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(p) {
                g.add_edge(Edge::from((a, b)));
            }
        }
    }
    g
}

/// Barabási–Albert preferential attachment: start from a clique on
/// `k + 1` vertices; each new vertex attaches to `k` distinct existing
/// vertices chosen proportionally to degree. Degeneracy is at most `k`.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> AdjListGraph {
    assert!(k >= 1 && n > k + 1, "need n > k + 1");
    let mut rng = FastRng::seed_from_u64(seed);
    let mut g = AdjListGraph::new(n);
    // Endpoint multiset: vertex appears once per incident edge endpoint,
    // so uniform sampling from it is degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::new();
    for a in 0..=k as u32 {
        for b in (a + 1)..=k as u32 {
            g.add_edge(Edge::from((a, b)));
            endpoints.push(a);
            endpoints.push(b);
        }
    }
    for v in (k + 1) as u32..n as u32 {
        let mut targets: HashSet<u32> = HashSet::with_capacity(k);
        while targets.len() < k {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            targets.insert(t);
        }
        for t in targets {
            g.add_edge(Edge::from((v, t)));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

/// Plant `copies` vertex-random copies of `pattern` into `base`, returning
/// the new graph. Planted copies may overlap pre-existing edges, so the
/// exact counters must still be used for ground truth.
pub fn plant_pattern(
    base: &AdjListGraph,
    pattern: &Pattern,
    copies: usize,
    seed: u64,
) -> AdjListGraph {
    let mut rng = FastRng::seed_from_u64(seed);
    let n = base.num_vertices();
    assert!(n >= pattern.num_vertices());
    let mut g = base.clone();
    let mut pool: Vec<u32> = (0..n as u32).collect();
    for _ in 0..copies {
        rng.shuffle(&mut pool);
        let chosen = &pool[..pattern.num_vertices()];
        for &(a, b) in pattern.edges() {
            g.add_edge(Edge::new(
                VertexId(chosen[a as usize]),
                VertexId(chosen[b as usize]),
            ));
        }
    }
    g
}

/// The complete graph `K_n`.
pub fn complete_graph(n: usize) -> AdjListGraph {
    let mut g = AdjListGraph::new(n);
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            g.add_edge(Edge::from((a, b)));
        }
    }
    g
}

/// Complete bipartite graph `K_{a,b}` (sides `0..a` and `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> AdjListGraph {
    let mut g = AdjListGraph::new(a + b);
    for x in 0..a as u32 {
        for y in 0..b as u32 {
            g.add_edge(Edge::from((x, a as u32 + y)));
        }
    }
    g
}

/// Star with `k` petals: center `0`, petals `1..=k`.
pub fn star_graph(k: usize) -> AdjListGraph {
    let mut g = AdjListGraph::new(k + 1);
    for i in 1..=k as u32 {
        g.add_edge(Edge::from((0, i)));
    }
    g
}

/// Cycle on `n` vertices.
pub fn cycle_graph(n: usize) -> AdjListGraph {
    assert!(n >= 3);
    let mut g = AdjListGraph::new(n);
    for i in 0..n as u32 {
        g.add_edge(Edge::from((i, (i + 1) % n as u32)));
    }
    g
}

/// The Petersen graph: outer 5-cycle, inner pentagram, five spokes.
/// A classic validation target: girth 5, vertex-transitive, 3-regular,
/// with a well-known small-subgraph census (no triangles or 4-cycles,
/// twelve 5-cycles, ten 6-cycles).
pub fn petersen() -> AdjListGraph {
    let mut g = AdjListGraph::new(10);
    for i in 0..5u32 {
        g.add_edge(Edge::from((i, (i + 1) % 5))); // outer cycle
        g.add_edge(Edge::from((5 + i, 5 + (i + 2) % 5))); // pentagram
        g.add_edge(Edge::from((i, 5 + i))); // spokes
    }
    g
}

/// Path on `n` vertices (`n - 1` edges).
pub fn path_graph(n: usize) -> AdjListGraph {
    let mut g = AdjListGraph::new(n);
    for i in 0..(n - 1) as u32 {
        g.add_edge(Edge::from((i, i + 1)));
    }
    g
}

/// Chung–Lu power-law-ish graph: vertex weights `w_v ∝ (v+1)^(-1/(γ-1))`
/// scaled to an expected `m` edges; edge `{u,v}` appears independently with
/// probability `min(1, w_u w_v / Σw)`.
pub fn chung_lu(n: usize, target_m: usize, gamma: f64, seed: u64) -> AdjListGraph {
    assert!(gamma > 2.0, "need gamma > 2 for bounded expected degrees");
    let mut rng = FastRng::seed_from_u64(seed);
    let exp = -1.0 / (gamma - 1.0);
    let raw: Vec<f64> = (0..n).map(|v| ((v + 1) as f64).powf(exp)).collect();
    let sum: f64 = raw.iter().sum();
    // E[m] ≈ (Σw)² / (2Σw) = Σw / 2, so scale weights to Σw = 2·target_m.
    let scale = 2.0 * target_m as f64 / sum;
    let w: Vec<f64> = raw.iter().map(|x| x * scale).collect();
    let total: f64 = w.iter().sum();
    let mut g = AdjListGraph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            let p = (w[a] * w[b] / total).min(1.0);
            if rng.gen_bool(p) {
                g.add_edge(Edge::from((a as u32, b as u32)));
            }
        }
    }
    g
}

/// Zipf-endpoint power-law graph: exactly `m` distinct edges, each
/// endpoint drawn independently from a zipf(`s`) distribution over the
/// vertex ids (vertex `v` with probability ∝ `(v+1)^-s`), rejecting
/// self-loops and duplicates. With `s` around 0.8–1.2 a handful of
/// low-id hub vertices dominate the incidence counts — the skewed
/// delivery workload the load-aware `ShardMap` placement targets
/// (uniform hashing puts whole hubs on single shards; rebalancing can
/// only move them, which is why the skew, not the balance, is the hard
/// part this generator manufactures).
///
/// Panics if `m` exceeds `C(n, 2)`.
pub fn zipf_hub(n: usize, m: usize, s: f64, seed: u64) -> AdjListGraph {
    let max = n * (n - 1) / 2;
    assert!(m <= max, "requested {m} edges but K{n} has only {max}");
    assert!(s >= 0.0, "zipf exponent must be non-negative");
    let mut rng = FastRng::seed_from_u64(seed);
    // Inverse-CDF table over the zipf weights: one binary search per
    // endpoint draw.
    let mut cdf: Vec<f64> = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for v in 0..n {
        acc += ((v + 1) as f64).powf(-s);
        cdf.push(acc);
    }
    let total = acc;
    let draw = |rng: &mut FastRng| -> u32 {
        let x = rng.gen_f64() * total;
        cdf.partition_point(|&c| c < x).min(n - 1) as u32
    };
    let mut g = AdjListGraph::new(n);
    let mut seen = HashSet::with_capacity(m * 2);
    let mut stall = 0usize;
    while g.num_edges() < m {
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        if a == b {
            continue;
        }
        let e = Edge::from((a, b));
        if seen.insert(e.key()) {
            g.add_edge(e);
            stall = 0;
        } else {
            // Heavy skew saturates the hub-hub edge pairs; fall back to
            // a uniform second endpoint so dense requests terminate.
            stall += 1;
            if stall > 64 {
                let b = rng.gen_range(0..n as u32);
                if a != b && seen.insert(Edge::from((a, b)).key()) {
                    g.add_edge(Edge::from((a, b)));
                    stall = 0;
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degeneracy::degeneracy;
    use crate::StaticGraph;

    #[test]
    fn gnm_has_exact_edge_count() {
        for &(n, m) in &[(10, 0), (10, 20), (10, 45), (50, 300)] {
            let g = gnm(n, m, 1);
            assert_eq!(g.num_edges(), m);
            assert_eq!(g.num_vertices(), n);
        }
    }

    #[test]
    fn gnm_deterministic_per_seed() {
        let a = gnm(30, 100, 42).edge_vec();
        let b = gnm(30, 100, 42).edge_vec();
        let c = gnm(30, 100, 43).edge_vec();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn ba_graph_low_degeneracy() {
        let g = barabasi_albert(300, 3, 7);
        assert!(degeneracy(&g) <= 3, "BA(k=3) degeneracy is at most 3");
        // m = C(4,2) + (n - 4) * 3
        assert_eq!(g.num_edges(), 6 + (300 - 4) * 3);
    }

    #[test]
    fn plant_pattern_raises_count() {
        use crate::exact::triangles::count_triangles;
        let base = gnm(60, 60, 5);
        let before = count_triangles(&base);
        let planted = plant_pattern(&base, &Pattern::triangle(), 20, 6);
        let after = count_triangles(&planted);
        assert!(after > before, "{after} !> {before}");
    }

    #[test]
    fn fixed_families() {
        assert_eq!(complete_graph(5).num_edges(), 10);
        assert_eq!(complete_bipartite(3, 4).num_edges(), 12);
        assert_eq!(star_graph(6).num_edges(), 6);
        assert_eq!(cycle_graph(8).num_edges(), 8);
        assert_eq!(path_graph(9).num_edges(), 8);
    }

    #[test]
    fn chung_lu_roughly_hits_target() {
        let g = chung_lu(400, 1200, 2.5, 11);
        let m = g.num_edges() as f64;
        assert!(m > 600.0 && m < 2400.0, "m = {m}");
    }

    #[test]
    fn dense_gnm_path() {
        // Exercise the dense branch (m > max/2).
        let g = gnm(12, 60, 3);
        assert_eq!(g.num_edges(), 60);
    }

    #[test]
    fn zipf_hub_exact_m_and_skewed() {
        let g = zipf_hub(500, 2_000, 1.0, 17);
        assert_eq!(g.num_edges(), 2_000);
        assert_eq!(g.num_vertices(), 500);
        // The hottest vertex must carry far more than its uniform share
        // (2 * m / n = 8 incidences) — that's the point of the family.
        let hottest = (0..500).map(|v| g.degree(VertexId(v))).max().unwrap();
        assert!(hottest > 80, "hottest degree {hottest} — not a hub graph");
        // Determinism per seed.
        assert_eq!(g.edge_vec(), zipf_hub(500, 2_000, 1.0, 17).edge_vec());
        assert_ne!(g.edge_vec(), zipf_hub(500, 2_000, 1.0, 18).edge_vec());
    }

    #[test]
    fn zipf_hub_dense_request_terminates() {
        // Saturating skew: nearly complete graph still terminates via
        // the uniform fallback.
        let g = zipf_hub(20, 180, 1.5, 5);
        assert_eq!(g.num_edges(), 180);
    }
}
