//! Target patterns `H`: small constant-size subgraphs.
//!
//! Patterns are the `H` of the paper: triangles, cliques `K_r`, cycles
//! `C_k`, stars `S_k`, paths, and arbitrary user-provided small graphs.
//! A pattern stores its adjacency as per-vertex bitmasks (`|V(H)| <= 32`),
//! which makes the embedding checks in the exact counters and the FGP
//! postprocessing cheap.

use std::fmt;

/// Maximum number of vertices a pattern may have. The paper assumes `H`
/// has constant size; 32 is far beyond anything tractable anyway.
pub const MAX_PATTERN_VERTICES: usize = 32;

/// A small undirected pattern graph `H`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    n: usize,
    /// Edge list with `a < b`, sorted.
    edges: Vec<(u8, u8)>,
    /// `adj[v]` has bit `u` set iff `{u, v}` is an edge.
    adj: [u32; MAX_PATTERN_VERTICES],
    name: String,
}

impl Pattern {
    /// Build a pattern from an edge list on vertices `0..n`.
    ///
    /// Panics if `n > 32`, on self-loops, or out-of-range endpoints.
    /// Duplicate edges are deduplicated.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        assert!(
            n <= MAX_PATTERN_VERTICES,
            "patterns support at most {MAX_PATTERN_VERTICES} vertices"
        );
        let mut adj = [0u32; MAX_PATTERN_VERTICES];
        let mut es: Vec<(u8, u8)> = Vec::new();
        for (a, b) in edges {
            assert!(a < n && b < n, "pattern edge ({a},{b}) out of range n={n}");
            assert_ne!(a, b, "pattern self-loop ({a},{a})");
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if adj[lo] & (1 << hi) == 0 {
                adj[lo] |= 1 << hi;
                adj[hi] |= 1 << lo;
                es.push((lo as u8, hi as u8));
            }
        }
        es.sort_unstable();
        Pattern {
            n,
            edges: es,
            adj,
            name: String::new(),
        }
    }

    /// Attach a human-readable name (used in experiment tables).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// A single edge (`K_2 = S_1`).
    pub fn single_edge() -> Self {
        Self::from_edges(2, [(0, 1)]).named("K2")
    }

    /// The triangle `K_3 = C_3`.
    pub fn triangle() -> Self {
        Self::clique(3).named("triangle")
    }

    /// The clique `K_r`, `r >= 2`.
    pub fn clique(r: usize) -> Self {
        assert!(r >= 2);
        let mut es = Vec::new();
        for a in 0..r {
            for b in (a + 1)..r {
                es.push((a, b));
            }
        }
        Self::from_edges(r, es).named(format!("K{r}"))
    }

    /// The cycle `C_k`, `k >= 3`.
    pub fn cycle(k: usize) -> Self {
        assert!(k >= 3);
        let es = (0..k).map(|i| (i, (i + 1) % k));
        Self::from_edges(k, es).named(format!("C{k}"))
    }

    /// The star `S_k` with `k` petals: center 0, petals `1..=k`.
    pub fn star(k: usize) -> Self {
        assert!(k >= 1);
        let es = (1..=k).map(|i| (0, i));
        Self::from_edges(k + 1, es).named(format!("S{k}"))
    }

    /// The path `P_k` with `k` edges (`k + 1` vertices).
    pub fn path(k: usize) -> Self {
        assert!(k >= 1);
        let es = (0..k).map(|i| (i, i + 1));
        Self::from_edges(k + 1, es).named(format!("P{k}"))
    }

    /// Number of vertices `|V(H)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges `|E(H)|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The pattern's display name (empty if unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Edge list, each edge once with `a < b`, ascending.
    pub fn edges(&self) -> &[(u8, u8)] {
        &self.edges
    }

    /// Adjacency bitmask of vertex `v`.
    #[inline]
    pub fn adj_mask(&self, v: usize) -> u32 {
        self.adj[v]
    }

    /// Whether `{a, b}` is an edge of the pattern.
    #[inline]
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a != b && self.adj[a] & (1 << b) != 0
    }

    /// Degree of pattern vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].count_ones() as usize
    }

    /// Minimum degree over all pattern vertices.
    pub fn min_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Neighbors of pattern vertex `v`, ascending.
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.degree(v));
        let mut m = self.adj[v];
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            out.push(b);
            m &= m - 1;
        }
        out
    }

    /// Whether the pattern is connected (vacuously true for n <= 1).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen: u32 = 1;
        let mut stack = vec![0usize];
        while let Some(v) = stack.pop() {
            let mut fresh = self.adj[v] & !seen;
            while fresh != 0 {
                let u = fresh.trailing_zeros() as usize;
                seen |= 1 << u;
                stack.push(u);
                fresh &= fresh - 1;
            }
        }
        seen.count_ones() as usize == self.n
    }

    /// Number of automorphisms of the pattern, by brute force over all
    /// degree-respecting permutations. Feasible for `n <= 10`.
    ///
    /// `#copies(H) = #embeddings(H) / |Aut(H)|`, which is how the exact
    /// generic counter converts embeddings to copies.
    pub fn automorphism_count(&self) -> u64 {
        assert!(self.n <= 12, "automorphism brute force limited to n <= 12");
        let degs: Vec<usize> = (0..self.n).map(|v| self.degree(v)).collect();
        let mut perm: Vec<usize> = vec![usize::MAX; self.n];
        let mut used: u32 = 0;
        self.count_autos(0, &mut perm, &mut used, &degs)
    }

    fn count_autos(&self, v: usize, perm: &mut [usize], used: &mut u32, degs: &[usize]) -> u64 {
        if v == self.n {
            return 1;
        }
        let mut total = 0;
        for img in 0..self.n {
            if *used & (1 << img) != 0 || degs[img] != degs[v] {
                continue;
            }
            // Check consistency with already-assigned vertices.
            let ok = (0..v).all(|w| self.has_edge(v, w) == self.has_edge(img, perm[w]));
            if !ok {
                continue;
            }
            perm[v] = img;
            *used |= 1 << img;
            total += self.count_autos(v + 1, perm, used, degs);
            *used &= !(1 << img);
            perm[v] = usize::MAX;
        }
        total
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "Pattern(n={}, m={})", self.n, self.edges.len())
        } else {
            write!(f, "Pattern({})", self.name)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_right_sizes() {
        assert_eq!(Pattern::triangle().num_vertices(), 3);
        assert_eq!(Pattern::triangle().num_edges(), 3);
        assert_eq!(Pattern::clique(5).num_edges(), 10);
        assert_eq!(Pattern::cycle(6).num_edges(), 6);
        assert_eq!(Pattern::star(4).num_vertices(), 5);
        assert_eq!(Pattern::star(4).num_edges(), 4);
        assert_eq!(Pattern::path(3).num_vertices(), 4);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let p = Pattern::cycle(5);
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(p.has_edge(a, b), p.has_edge(b, a));
            }
        }
    }

    #[test]
    fn degrees() {
        let s = Pattern::star(3);
        assert_eq!(s.degree(0), 3);
        assert_eq!(s.degree(1), 1);
        assert_eq!(s.min_degree(), 1);
        assert_eq!(Pattern::cycle(7).min_degree(), 2);
    }

    #[test]
    fn connectivity() {
        assert!(Pattern::clique(4).is_connected());
        assert!(Pattern::path(5).is_connected());
        let disconnected = Pattern::from_edges(4, [(0, 1), (2, 3)]);
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn automorphisms_of_known_patterns() {
        assert_eq!(Pattern::triangle().automorphism_count(), 6); // 3!
        assert_eq!(Pattern::clique(4).automorphism_count(), 24); // 4!
        assert_eq!(Pattern::cycle(5).automorphism_count(), 10); // dihedral
        assert_eq!(Pattern::cycle(4).automorphism_count(), 8);
        assert_eq!(Pattern::star(3).automorphism_count(), 6); // petals permute
        assert_eq!(Pattern::path(2).automorphism_count(), 2); // flip
        assert_eq!(Pattern::single_edge().automorphism_count(), 2);
    }

    #[test]
    fn duplicate_edges_deduped() {
        let p = Pattern::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
        assert_eq!(p.num_edges(), 2);
    }

    #[test]
    fn neighbors_listing() {
        let p = Pattern::star(3);
        assert_eq!(p.neighbors(0), vec![1, 2, 3]);
        assert_eq!(p.neighbors(2), vec![0]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let _ = Pattern::from_edges(2, [(1, 1)]);
    }
}
