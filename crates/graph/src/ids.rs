//! Vertex and edge identifiers.

use std::fmt;

/// A vertex identifier. Vertices of an `n`-vertex graph are `0..n`,
/// matching the paper's convention `V = [n]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

/// An undirected edge, stored in normalized form with `u() <= v()`.
///
/// Self-loops are rejected by [`Edge::new`]: the paper's model is simple
/// undirected graphs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    lo: VertexId,
    hi: VertexId,
}

impl Edge {
    /// Create a normalized undirected edge. Panics on self-loops.
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert_ne!(a, b, "self-loops are not allowed in simple graphs");
        if a.0 <= b.0 {
            Edge { lo: a, hi: b }
        } else {
            Edge { lo: b, hi: a }
        }
    }

    /// Endpoint with the smaller id.
    #[inline]
    pub fn u(self) -> VertexId {
        self.lo
    }

    /// Endpoint with the larger id.
    #[inline]
    pub fn v(self) -> VertexId {
        self.hi
    }

    /// Both endpoints as a tuple `(u, v)` with `u < v`.
    #[inline]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        (self.lo, self.hi)
    }

    /// The endpoint that is not `x`; panics if `x` is not an endpoint.
    #[inline]
    pub fn other(self, x: VertexId) -> VertexId {
        if x == self.lo {
            self.hi
        } else if x == self.hi {
            self.lo
        } else {
            panic!("{x:?} is not an endpoint of {self:?}")
        }
    }

    /// Whether `x` is one of the two endpoints.
    #[inline]
    pub fn contains(self, x: VertexId) -> bool {
        x == self.lo || x == self.hi
    }

    /// Pack into a `u64` key (useful for hashing into dense maps).
    #[inline]
    pub fn key(self) -> u64 {
        ((self.lo.0 as u64) << 32) | self.hi.0 as u64
    }

    /// Inverse of [`Edge::key`].
    #[inline]
    pub fn from_key(k: u64) -> Self {
        Edge {
            lo: VertexId((k >> 32) as u32),
            hi: VertexId(k as u32),
        }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.lo.0, self.hi.0)
    }
}

impl From<(u32, u32)> for Edge {
    #[inline]
    fn from((a, b): (u32, u32)) -> Self {
        Edge::new(VertexId(a), VertexId(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalizes_order() {
        let e = Edge::new(VertexId(7), VertexId(3));
        assert_eq!(e.u(), VertexId(3));
        assert_eq!(e.v(), VertexId(7));
        assert_eq!(e, Edge::new(VertexId(3), VertexId(7)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(VertexId(4), VertexId(4));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(VertexId(1), VertexId(9));
        assert_eq!(e.other(VertexId(1)), VertexId(9));
        assert_eq!(e.other(VertexId(9)), VertexId(1));
    }

    #[test]
    fn edge_key_roundtrip() {
        let e = Edge::new(VertexId(123), VertexId(77));
        assert_eq!(Edge::from_key(e.key()), e);
    }

    #[test]
    fn edge_contains() {
        let e = Edge::new(VertexId(2), VertexId(5));
        assert!(e.contains(VertexId(2)));
        assert!(e.contains(VertexId(5)));
        assert!(!e.contains(VertexId(3)));
    }
}
