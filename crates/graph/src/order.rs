//! The degree-then-id total vertex order `≺_G` (Definition 12).
//!
//! `u ≺_G v` iff `deg(u) < deg(v)`, or `deg(u) = deg(v)` and `id(u) < id(v)`.
//! The FGP sampler's canonical cycles and stars are defined relative to this
//! order, and the streaming version evaluates it *post hoc* using only the
//! degrees collected for the sampled vertex set (the `d[V']` dictionary in
//! Algorithm 1), which is why the comparison is exposed over an arbitrary
//! degree lookup rather than a whole graph.

use crate::ids::VertexId;
use crate::StaticGraph;

/// Compare two vertices under `≺_G` given their degrees.
///
/// Returns `true` iff `u ≺ v`.
#[inline]
pub fn precedes_with_degrees(u: VertexId, deg_u: usize, v: VertexId, deg_v: usize) -> bool {
    deg_u < deg_v || (deg_u == deg_v && u.0 < v.0)
}

/// Compare two vertices under `≺_G` by querying a full graph.
#[inline]
pub fn precedes(g: &impl StaticGraph, u: VertexId, v: VertexId) -> bool {
    precedes_with_degrees(u, g.degree(u), v, g.degree(v))
}

/// A reusable comparator over a degree-lookup function.
///
/// The lookup is expected to be total on the vertices that will be compared;
/// the streaming algorithms construct it from the degree dictionary they
/// collected in their final pass.
pub struct DegreeOrder<F: Fn(VertexId) -> usize> {
    deg: F,
}

impl<F: Fn(VertexId) -> usize> DegreeOrder<F> {
    /// Wrap a degree lookup.
    pub fn new(deg: F) -> Self {
        DegreeOrder { deg }
    }

    /// `u ≺ v` under this order.
    #[inline]
    pub fn precedes(&self, u: VertexId, v: VertexId) -> bool {
        precedes_with_degrees(u, (self.deg)(u), v, (self.deg)(v))
    }

    /// The ≺-minimum of a non-empty slice.
    pub fn min_of(&self, vs: &[VertexId]) -> VertexId {
        let mut best = vs[0];
        for &v in &vs[1..] {
            if self.precedes(v, best) {
                best = v;
            }
        }
        best
    }
}

/// Sort vertices ascending under `≺_G`.
pub fn sort_by_order(g: &impl StaticGraph, vs: &mut [VertexId]) {
    vs.sort_by(|&a, &b| {
        let (da, db) = (g.degree(a), g.degree(b));
        da.cmp(&db).then(a.0.cmp(&b.0))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdjListGraph;

    fn g() -> AdjListGraph {
        // degrees: 0 -> 2, 1 -> 2, 2 -> 3, 3 -> 1
        AdjListGraph::from_pairs(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn order_is_total_and_antisymmetric() {
        let g = g();
        let vs: Vec<VertexId> = (0..4).map(VertexId).collect();
        for &a in &vs {
            assert!(!precedes(&g, a, a));
            for &b in &vs {
                if a != b {
                    assert_ne!(precedes(&g, a, b), precedes(&g, b, a));
                }
            }
        }
    }

    #[test]
    fn degree_dominates_id() {
        let g = g();
        // deg(3)=1 < deg(2)=3, so 3 ≺ 2 despite 3 > 2 as ids.
        assert!(precedes(&g, VertexId(3), VertexId(2)));
        assert!(!precedes(&g, VertexId(2), VertexId(3)));
    }

    #[test]
    fn id_breaks_ties() {
        let g = g();
        // deg(0) == deg(1) == 2, id tiebreak
        assert!(precedes(&g, VertexId(0), VertexId(1)));
        assert!(!precedes(&g, VertexId(1), VertexId(0)));
    }

    #[test]
    fn sort_matches_pairwise_order() {
        let g = g();
        let mut vs: Vec<VertexId> = (0..4).map(VertexId).collect();
        sort_by_order(&g, &mut vs);
        assert_eq!(vs, vec![VertexId(3), VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn degree_order_min() {
        let g = g();
        let ord = DegreeOrder::new(|v| g.degree(v));
        let vs = vec![VertexId(2), VertexId(0), VertexId(3)];
        assert_eq!(ord.min_of(&vs), VertexId(3));
    }

    #[test]
    fn order_transitive_on_sample() {
        let g = g();
        let vs: Vec<VertexId> = (0..4).map(VertexId).collect();
        for &a in &vs {
            for &b in &vs {
                for &c in &vs {
                    if precedes(&g, a, b) && precedes(&g, b, c) {
                        assert!(precedes(&g, a, c));
                    }
                }
            }
        }
    }
}
