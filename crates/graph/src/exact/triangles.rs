//! Exact triangle counting via degeneracy ordering.

use crate::degeneracy::CoreDecomposition;
use crate::ids::VertexId;
use crate::{CsrGraph, StaticGraph};

/// Count the triangles of `g` exactly in `O(m·λ)` time.
///
/// Standard technique: orient every edge from earlier to later in a
/// degeneracy ordering; every triangle then has a unique "root" vertex with
/// two out-edges, and out-degrees are bounded by `λ`.
pub fn count_triangles(g: &impl StaticGraph) -> u64 {
    let csr = CsrGraph::from_graph(g);
    count_triangles_csr(&csr)
}

/// Same as [`count_triangles`] for an existing CSR graph.
pub fn count_triangles_csr(csr: &CsrGraph) -> u64 {
    let cd = CoreDecomposition::compute(csr);
    let n = csr.num_vertices();
    let mut out_nbrs: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        let v = VertexId(v);
        let mut o = cd.later_neighbors(csr, v);
        o.sort_unstable();
        out_nbrs[v.index()] = o;
    }
    let mut count = 0u64;
    for v in 0..n {
        let outs = &out_nbrs[v];
        for (i, &a) in outs.iter().enumerate() {
            for &b in &outs[i + 1..] {
                // Triangle iff a and b adjacent; check the smaller out-list.
                let (x, y) = if out_nbrs[a.index()].len() <= out_nbrs[b.index()].len() {
                    (a, b)
                } else {
                    (b, a)
                };
                if out_nbrs[x.index()].binary_search(&y).is_ok()
                    || out_nbrs[y.index()].binary_search(&x).is_ok()
                {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::generic::count_pattern;
    use crate::pattern::Pattern;
    use crate::{gen, AdjListGraph};

    #[test]
    fn triangle_graph() {
        let g = AdjListGraph::from_pairs(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_triangles(&g), 1);
    }

    #[test]
    fn complete_graph_counts() {
        // K_n has C(n,3) triangles.
        for n in 3..=9usize {
            let g = gen::complete_graph(n);
            let expect = (n * (n - 1) * (n - 2) / 6) as u64;
            assert_eq!(count_triangles(&g), expect, "K{n}");
        }
    }

    #[test]
    fn bipartite_has_no_triangles() {
        let g = gen::complete_bipartite(5, 7);
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn agrees_with_generic_on_random_graphs() {
        for seed in 0..4u64 {
            let g = gen::gnm(40, 160, seed);
            assert_eq!(
                count_triangles(&g),
                count_pattern(&g, &Pattern::triangle()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn empty_and_tree() {
        assert_eq!(count_triangles(&AdjListGraph::new(5)), 0);
        let path = AdjListGraph::from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(count_triangles(&path), 0);
    }
}
