//! Generic exact pattern counting by embedding backtracking.

use crate::ids::VertexId;
use crate::pattern::Pattern;
use crate::{CsrGraph, StaticGraph};

/// Count copies of an arbitrary pattern `H` in `g`.
///
/// Counts injective homomorphisms (embeddings) `V(H) → V(G)` that map every
/// pattern edge onto a graph edge, then divides by `|Aut(H)|` so each copy
/// (subgraph of `G` isomorphic to `H`) is counted once. This is the
/// definition of `#H` used throughout the paper.
///
/// The search order visits pattern vertices so that each new vertex is
/// adjacent to an already-embedded one when `H` is connected, which prunes
/// heavily: candidates come from the neighborhood of an embedded image.
pub fn count_pattern(g: &impl StaticGraph, p: &Pattern) -> u64 {
    let csr = CsrGraph::from_graph(g);
    let embeddings = count_embeddings(&csr, p);
    let autos = p.automorphism_count();
    debug_assert_eq!(embeddings % autos, 0, "embeddings must divide evenly");
    embeddings / autos
}

/// Count injective edge-preserving maps `V(H) -> V(G)`.
pub fn count_embeddings(g: &CsrGraph, p: &Pattern) -> u64 {
    let k = p.num_vertices();
    if k == 0 {
        return 1;
    }
    let order = search_order(p);
    let mut assigned: Vec<VertexId> = vec![VertexId(u32::MAX); k];
    let mut used = std::collections::HashSet::new();
    backtrack(g, p, &order, 0, &mut assigned, &mut used)
}

/// Pattern-vertex visit order: start at a max-degree vertex; each later
/// vertex is adjacent to an earlier one if possible (BFS-flavored greedy).
fn search_order(p: &Pattern) -> Vec<usize> {
    let k = p.num_vertices();
    let mut order = Vec::with_capacity(k);
    let mut placed = vec![false; k];
    let first = (0..k).max_by_key(|&v| p.degree(v)).unwrap_or(0);
    order.push(first);
    placed[first] = true;
    while order.len() < k {
        // Prefer the unplaced vertex with the most placed neighbors, then
        // highest degree (classic candidate-pruning heuristic).
        let next = (0..k)
            .filter(|&v| !placed[v])
            .max_by_key(|&v| {
                let anchored = p.neighbors(v).iter().filter(|&&u| placed[u]).count();
                (anchored, p.degree(v))
            })
            .unwrap();
        order.push(next);
        placed[next] = true;
    }
    order
}

fn backtrack(
    g: &CsrGraph,
    p: &Pattern,
    order: &[usize],
    depth: usize,
    assigned: &mut Vec<VertexId>,
    used: &mut std::collections::HashSet<VertexId>,
) -> u64 {
    if depth == order.len() {
        return 1;
    }
    let hv = order[depth];
    // Pattern neighbors of hv that are already embedded.
    let anchors: Vec<usize> = p
        .neighbors(hv)
        .into_iter()
        .filter(|&u| assigned[u].0 != u32::MAX)
        .collect();

    let mut total = 0u64;
    let try_candidate = |cand: VertexId,
                         assigned: &mut Vec<VertexId>,
                         used: &mut std::collections::HashSet<VertexId>|
     -> u64 {
        if used.contains(&cand) {
            return 0;
        }
        if g.degree(cand) < p.degree(hv) {
            return 0;
        }
        for &a in &anchors {
            if !g.has_edge(cand, assigned[a]) {
                return 0;
            }
        }
        assigned[hv] = cand;
        used.insert(cand);
        let c = backtrack(g, p, order, depth + 1, assigned, used);
        used.remove(&cand);
        assigned[hv] = VertexId(u32::MAX);
        c
    };

    if let Some(&a0) = anchors.first() {
        // Candidates restricted to the neighborhood of one anchor image.
        let base = assigned[a0];
        for &cand in g.sorted_neighbors(base) {
            total += try_candidate(cand, assigned, used);
        }
    } else {
        // No anchor (first vertex, or disconnected pattern component).
        for v in 0..g.num_vertices() as u32 {
            total += try_candidate(VertexId(v), assigned, used);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, AdjListGraph};

    #[test]
    fn triangle_in_triangle() {
        let g = AdjListGraph::from_pairs(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_pattern(&g, &Pattern::triangle()), 1);
    }

    #[test]
    fn edge_count_is_m() {
        let g = gen::gnm(20, 41, 9);
        assert_eq!(count_pattern(&g, &Pattern::single_edge()), 41);
    }

    #[test]
    fn paths_in_path_graph() {
        // P_k copies in a path with 6 edges: 6-k+1 for k <= 6.
        let g = gen::path_graph(7);
        for k in 1..=6 {
            assert_eq!(count_pattern(&g, &Pattern::path(k)), (7 - k) as u64);
        }
    }

    #[test]
    fn k4_in_k6() {
        let g = gen::complete_graph(6);
        assert_eq!(count_pattern(&g, &Pattern::clique(4)), 15); // C(6,4)
    }

    #[test]
    fn disconnected_pattern() {
        // Two disjoint edges in a path 0-1-2-3: pairs of non-adjacent
        // edges: (01,23) only -> 1 copy.
        let p = Pattern::from_edges(4, [(0, 1), (2, 3)]);
        let g = gen::path_graph(4);
        assert_eq!(count_pattern(&g, &p), 1);
    }

    #[test]
    fn paw_pattern() {
        // Triangle with a pendant in a graph that has exactly one.
        let paw = Pattern::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        let g = AdjListGraph::from_pairs(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(count_pattern(&g, &paw), 1);
    }

    #[test]
    fn embeddings_divisible_by_automorphisms() {
        let g = gen::gnm(18, 60, 2);
        let csr = CsrGraph::from_graph(&g);
        for p in [
            Pattern::triangle(),
            Pattern::cycle(4),
            Pattern::star(3),
            Pattern::clique(4),
        ] {
            let e = count_embeddings(&csr, &p);
            assert_eq!(e % p.automorphism_count(), 0, "{p:?}");
        }
    }
}
