//! Exact star counting.

use crate::exact::cliques::binomial;
use crate::ids::VertexId;
use crate::StaticGraph;

/// Count copies of the star `S_k` (center plus `k` petals) exactly:
/// `#S_k = Σ_v C(deg(v), k)`.
///
/// Each copy is determined by its center and the unordered petal set
/// (for `k >= 2` the center is structurally unique). For `k = 1`, `S_1`
/// is a single edge and `Σ_v C(deg v, 1) = 2m` counts every edge twice,
/// so the sum is halved.
pub fn count_stars(g: &impl StaticGraph, k: usize) -> u64 {
    assert!(k >= 1);
    let total: u64 = (0..g.num_vertices())
        .map(|v| binomial(g.degree(VertexId(v as u32)) as u64, k as u64))
        .sum();
    if k == 1 {
        total / 2
    } else {
        total
    }
}

/// Count wedges (paths of length 2, `S_2`) — a common special case.
pub fn count_wedges(g: &impl StaticGraph) -> u64 {
    count_stars(g, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::generic::count_pattern;
    use crate::pattern::Pattern;
    use crate::{gen, AdjListGraph};

    #[test]
    fn star_graph_counts_itself() {
        let g = gen::star_graph(5); // center 0, petals 1..=5
        assert_eq!(count_stars(&g, 5), 1);
        assert_eq!(count_stars(&g, 4), 5); // choose 4 petals of 5
        assert_eq!(count_stars(&g, 1), 5); // edges
    }

    #[test]
    fn wedges_of_triangle() {
        let g = AdjListGraph::from_pairs(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_wedges(&g), 3);
    }

    #[test]
    fn agrees_with_generic() {
        for seed in 0..3u64 {
            let g = gen::gnm(25, 80, seed);
            for k in 1..=4 {
                assert_eq!(
                    count_stars(&g, k),
                    count_pattern(&g, &Pattern::star(k)),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn single_edge_count_is_m() {
        let g = gen::gnm(20, 50, 3);
        assert_eq!(count_stars(&g, 1), 50);
    }
}
