//! Exact k-clique counting via degeneracy-ordered DAG recursion.

use crate::degeneracy::CoreDecomposition;
use crate::ids::VertexId;
use crate::{CsrGraph, StaticGraph};

/// Count copies of `K_r` exactly.
///
/// Orient edges along a degeneracy ordering; every clique has a unique
/// ≺-ordered representation, so counting ordered tuples in the DAG counts
/// each unordered clique exactly once. Out-degrees are at most `λ`, giving
/// `O(m·λ^{r-2})` — the same structural fact Theorem 2's space bound
/// exploits.
pub fn count_cliques(g: &impl StaticGraph, r: usize) -> u64 {
    assert!(r >= 1);
    if r == 1 {
        return g.num_vertices() as u64;
    }
    if r == 2 {
        return g.num_edges() as u64;
    }
    let csr = CsrGraph::from_graph(g);
    let cd = CoreDecomposition::compute(&csr);
    let n = csr.num_vertices();
    let mut out_nbrs: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        let v = VertexId(v);
        let mut o = cd.later_neighbors(&csr, v);
        o.sort_unstable();
        out_nbrs[v.index()] = o;
    }
    let mut count = 0u64;
    let mut stack_sets: Vec<Vec<VertexId>> = Vec::with_capacity(r);
    for v in 0..n {
        if out_nbrs[v].len() + 1 < r {
            continue;
        }
        stack_sets.clear();
        stack_sets.push(out_nbrs[v].clone());
        count += extend(&out_nbrs, &mut stack_sets, r - 1);
    }
    count
}

/// Count cliques of size `need` inside the candidate set on top of the
/// stack, where candidates are already common out-neighbors of the chosen
/// prefix.
fn extend(out_nbrs: &[Vec<VertexId>], sets: &mut Vec<Vec<VertexId>>, need: usize) -> u64 {
    let cands = sets.last().unwrap().clone();
    if need == 1 {
        return cands.len() as u64;
    }
    if cands.len() < need {
        return 0;
    }
    let mut total = 0u64;
    for (i, &u) in cands.iter().enumerate() {
        // Remaining candidates must come after u in this candidate list to
        // avoid double counting, and be adjacent to u.
        let rest: Vec<VertexId> = cands[i + 1..]
            .iter()
            .copied()
            .filter(|w| {
                out_nbrs[u.index()].binary_search(w).is_ok()
                    || out_nbrs[w.index()].binary_search(&u).is_ok()
            })
            .collect();
        if rest.len() + 1 >= need {
            sets.push(rest);
            total += extend(out_nbrs, sets, need - 1);
            sets.pop();
        } else if need == 1 {
            total += 1;
        }
    }
    total
}

/// Binomial coefficient used by tests and the star counter.
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num = 1u128;
    let mut den = 1u128;
    for i in 0..k {
        num *= (n - i) as u128;
        den *= (i + 1) as u128;
    }
    (num / den) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::generic::count_pattern;
    use crate::pattern::Pattern;
    use crate::{gen, AdjListGraph};

    #[test]
    fn complete_graph_all_r() {
        let g = gen::complete_graph(8);
        for r in 1..=8u64 {
            assert_eq!(
                count_cliques(&g, r as usize),
                binomial(8, r),
                "K8 choose {r}"
            );
        }
    }

    #[test]
    fn small_cases() {
        let g = AdjListGraph::from_pairs(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(count_cliques(&g, 3), 1);
        assert_eq!(count_cliques(&g, 4), 0);
        assert_eq!(count_cliques(&g, 2), 4);
        assert_eq!(count_cliques(&g, 1), 4);
    }

    #[test]
    fn agrees_with_generic() {
        for seed in 0..3u64 {
            let g = gen::gnm(25, 120, seed);
            for r in 3..=5 {
                assert_eq!(
                    count_cliques(&g, r),
                    count_pattern(&g, &Pattern::clique(r)),
                    "seed {seed} r {r}"
                );
            }
        }
    }

    #[test]
    fn planted_cliques_counted() {
        // Two disjoint K5s: C(5,4)*2 = 10 copies of K4.
        let mut edges = Vec::new();
        for base in [0u32, 5] {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    edges.push((base + a, base + b));
                }
            }
        }
        let g = AdjListGraph::from_pairs(10, edges);
        assert_eq!(count_cliques(&g, 4), 10);
        assert_eq!(count_cliques(&g, 5), 2);
        assert_eq!(count_cliques(&g, 6), 0);
    }

    #[test]
    fn binomial_sanity() {
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }
}
