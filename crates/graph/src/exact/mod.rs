//! Exact (ground-truth) subgraph counters.
//!
//! Every streaming estimate in this repository is validated against these
//! counters. They count *copies* of `H` — distinct subgraphs of `G`
//! isomorphic to `H`, not necessarily induced — matching the paper's `#H`.
//!
//! * [`triangles::count_triangles`] — `O(m·λ)` via degeneracy ordering,
//! * [`cliques::count_cliques`] — ordered DAG recursion, `O(m·λ^{r-2})`,
//! * [`stars::count_stars`] — `Σ_v C(deg v, k)` in closed form,
//! * [`cycles::count_cycles`] — pruned DFS over canonical cycle roots,
//! * [`generic::count_pattern`] — backtracking embedding counter divided by
//!   `|Aut(H)|`; works for any pattern and doubles as a cross-check.

pub mod cliques;
pub mod cycles;
pub mod generic;
pub mod stars;
pub mod triangles;

use crate::pattern::Pattern;
use crate::StaticGraph;

/// Count copies of an arbitrary pattern, dispatching to the specialized
/// counter when one applies (they are asymptotically faster) and to the
/// generic embedding counter otherwise.
pub fn count_pattern_auto(g: &impl StaticGraph, p: &Pattern) -> u64 {
    let n = p.num_vertices();
    let m = p.num_edges();
    // K_r: all pairs present.
    if m == n * (n - 1) / 2 && n >= 3 {
        return cliques::count_cliques(g, n);
    }
    if n >= 2 && m == n - 1 {
        // Star: one vertex adjacent to all others.
        if (0..n).any(|v| p.degree(v) == n - 1) && n >= 3 {
            return stars::count_stars(g, n - 1);
        }
    }
    // C_k: connected, 2-regular.
    if m == n && n >= 3 && (0..n).all(|v| p.degree(v) == 2) && p.is_connected() {
        return cycles::count_cycles(g, n);
    }
    generic::count_pattern(g, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn auto_dispatch_agrees_with_generic() {
        let g = gen::gnm(30, 90, 7);
        for p in [
            Pattern::triangle(),
            Pattern::clique(4),
            Pattern::cycle(4),
            Pattern::cycle(5),
            Pattern::star(3),
            Pattern::path(3),
        ] {
            assert_eq!(
                count_pattern_auto(&g, &p),
                generic::count_pattern(&g, &p),
                "mismatch for {p:?}"
            );
        }
    }
}
