//! Exact cycle counting by rooted DFS.

use crate::ids::VertexId;
use crate::{CsrGraph, StaticGraph};

/// Count copies of the cycle `C_k` exactly.
///
/// Enumerates each cycle exactly once by requiring (i) the root to be the
/// minimum-id vertex of the cycle and (ii) the second vertex's id to be
/// smaller than the last vertex's id (fixing the direction). Runtime is
/// `O(n · Δ^{k-1})` in the worst case, which is fine at validation scale;
/// the point of the *streaming* algorithms is precisely to avoid this cost.
pub fn count_cycles(g: &impl StaticGraph, k: usize) -> u64 {
    assert!(k >= 3);
    let csr = CsrGraph::from_graph(g);
    let n = csr.num_vertices();
    let mut count = 0u64;
    let mut path: Vec<VertexId> = Vec::with_capacity(k);
    let mut on_path = vec![false; n];
    for root in 0..n as u32 {
        let root = VertexId(root);
        path.push(root);
        on_path[root.index()] = true;
        dfs(&csr, root, root, k, &mut path, &mut on_path, &mut count);
        on_path[root.index()] = false;
        path.pop();
    }
    count
}

fn dfs(
    g: &CsrGraph,
    root: VertexId,
    cur: VertexId,
    k: usize,
    path: &mut Vec<VertexId>,
    on_path: &mut [bool],
    count: &mut u64,
) {
    if path.len() == k {
        if g.has_edge(cur, root) && path[1] < path[k - 1] {
            *count += 1;
        }
        return;
    }
    for &w in g.sorted_neighbors(cur) {
        // Root must be the id-minimum: only visit larger ids.
        if w <= root || on_path[w.index()] {
            continue;
        }
        path.push(w);
        on_path[w.index()] = true;
        dfs(g, root, w, k, path, on_path, count);
        on_path[w.index()] = false;
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::generic::count_pattern;
    use crate::pattern::Pattern;
    use crate::{gen, AdjListGraph};

    #[test]
    fn cycle_graph_contains_itself_once() {
        for k in 3..=8 {
            let g = gen::cycle_graph(k);
            assert_eq!(count_cycles(&g, k), 1, "C{k}");
            if k > 3 {
                assert_eq!(count_cycles(&g, 3), 0);
            }
        }
    }

    #[test]
    fn complete_graph_cycle_counts() {
        // #C_k in K_n = C(n,k) * (k-1)!/2
        let g = gen::complete_graph(7);
        let fact = |x: u64| (1..=x).product::<u64>();
        for k in 3..=6u64 {
            let expect = crate::exact::cliques::binomial(7, k) * fact(k - 1) / 2;
            assert_eq!(count_cycles(&g, k as usize), expect, "C{k} in K7");
        }
    }

    #[test]
    fn c4_in_complete_bipartite() {
        // #C4 in K_{a,b} = C(a,2)*C(b,2)
        let g = gen::complete_bipartite(4, 5);
        assert_eq!(count_cycles(&g, 4), 6 * 10);
        assert_eq!(count_cycles(&g, 3), 0);
        assert_eq!(count_cycles(&g, 5), 0);
    }

    #[test]
    fn agrees_with_generic() {
        for seed in 0..3u64 {
            let g = gen::gnm(20, 60, seed);
            for k in 3..=6 {
                assert_eq!(
                    count_cycles(&g, k),
                    count_pattern(&g, &Pattern::cycle(k)),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn two_triangles_sharing_edge() {
        // 0-1-2 and 1-2-3: C4 0-1-3-2-0 also exists? edges: 01 12 20 13 23.
        // 0-1-3-2-0 needs edges 01,13,32,20: all present -> one C4.
        let g = AdjListGraph::from_pairs(4, [(0, 1), (1, 2), (2, 0), (1, 3), (2, 3)]);
        assert_eq!(count_cycles(&g, 3), 2);
        assert_eq!(count_cycles(&g, 4), 1);
    }
}
